// Differential tests for the data-parallel kernel layer: the vectorized
// implementations (query/kernels.h, the codec fast paths, the Eytzinger
// lookups) must be bit-identical to their scalar references over adversarial
// inputs — empty chunks, all-match / none-match predicates, NaN and extreme
// doubles, INT64_MIN/MAX operands, max-bitwidth deltas, single-row tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/eytzinger.h"
#include "common/rng.h"
#include "common/simd.h"
#include "layout/sorted_layout.h"
#include "layout/zorder_layout.h"
#include "query/aggregate.h"
#include "query/kernels.h"
#include "query/query.h"
#include "storage/codec.h"
#include "storage/shard_router.h"
#include "storage/table.h"

namespace oreo {
namespace {

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
const double kNaN = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

// Pins the process-wide kernel mode for one scope, restoring kAuto on exit.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(simd::KernelMode m) { simd::SetGlobalKernelMode(m); }
  ~ScopedKernelMode() { simd::SetGlobalKernelMode(simd::KernelMode::kAuto); }
};

// ------------------------------------------------------------ fixtures ----

// 3-column table (int64, double, string) with adversarial values mixed into
// a random base distribution.
Table MakeAdversarialTable(size_t n, uint64_t seed) {
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}});
  Table t(schema);
  Rng rng(seed);
  const std::vector<int64_t> int_specials = {kI64Min, kI64Max, 0, -1, 1};
  const std::vector<double> dbl_specials = {kNaN, kInf, -kInf, 0.0, -0.0,
                                            1e308, -1e308};
  const std::vector<std::string> cats = {"", "a", "aa", "ab", "b",
                                         "zebra", "\x7f\x01"};
  for (size_t r = 0; r < n; ++r) {
    int64_t i = rng.Bernoulli(0.1)
                    ? int_specials[rng.Uniform(int_specials.size())]
                    : rng.UniformInt(-100, 100);
    double d = rng.Bernoulli(0.1)
                   ? dbl_specials[rng.Uniform(dbl_specials.size())]
                   : rng.UniformDouble(-50.0, 50.0);
    const std::string& s = cats[rng.Uniform(cats.size())];
    t.AppendRow({Value(i), Value(d), Value(s)});
  }
  return t;
}

std::vector<Predicate> AdversarialPredicates() {
  std::vector<Predicate> preds;
  // Int64 column: every op, including degenerate bounds.
  for (int64_t v : {int64_t{0}, int64_t{-100}, int64_t{100}, kI64Min, kI64Max}) {
    preds.push_back(Predicate::Eq(0, Value(v)));
    preds.push_back(Predicate::Lt(0, Value(v)));
    preds.push_back(Predicate::Le(0, Value(v)));
    preds.push_back(Predicate::Gt(0, Value(v)));
    preds.push_back(Predicate::Ge(0, Value(v)));
  }
  preds.push_back(Predicate::Between(0, Value(int64_t{-10}), Value(int64_t{10})));
  preds.push_back(Predicate::Between(0, Value(kI64Min), Value(kI64Max)));  // all
  preds.push_back(Predicate::Between(0, Value(int64_t{10}), Value(int64_t{-10})));  // none
  preds.push_back(Predicate::In(0, {Value(int64_t{0}), Value(kI64Min), Value(kI64Max)}));
  preds.push_back(Predicate::In(0, {}));  // empty IN matches nothing
  // Double column: NaN/Inf operands included.
  for (double v : {0.0, -0.0, 25.0, kInf, -kInf, kNaN}) {
    preds.push_back(Predicate::Eq(1, Value(v)));
    preds.push_back(Predicate::Lt(1, Value(v)));
    preds.push_back(Predicate::Le(1, Value(v)));
    preds.push_back(Predicate::Gt(1, Value(v)));
    preds.push_back(Predicate::Ge(1, Value(v)));
  }
  preds.push_back(Predicate::Between(1, Value(-25.0), Value(25.0)));
  preds.push_back(Predicate::Between(1, Value(kNaN), Value(kNaN)));
  preds.push_back(Predicate::In(1, {Value(0.0), Value(kInf), Value(kNaN)}));
  // String column: dictionary codes are insertion-ordered, so range ops
  // exercise the code-match-table path, including operands absent from the
  // dictionary.
  for (const char* s : {"", "a", "ab", "b", "zebra", "zz", "\x7f\x01"}) {
    preds.push_back(Predicate::Eq(2, Value(std::string(s))));
    preds.push_back(Predicate::Lt(2, Value(std::string(s))));
    preds.push_back(Predicate::Ge(2, Value(std::string(s))));
  }
  preds.push_back(Predicate::Between(2, Value(std::string("a")),
                                     Value(std::string("b"))));
  preds.push_back(Predicate::In(2, {Value(std::string("a")),
                                    Value(std::string("nope"))}));
  return preds;
}

std::vector<uint64_t> BitmapWords(const BitVector& b) {
  return std::vector<uint64_t>(b.words(), b.words() + b.num_words());
}

// ------------------------------------------- predicate kernel parity ----

TEST(KernelParityTest, PredicateBitmapsMatchScalarOverAdversarialData) {
  // Sizes straddle the 64-row word boundary and include empty/single-row.
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 100u, 1000u}) {
    Table t = MakeAdversarialTable(n, /*seed=*/n * 7919 + 1);
    for (const Predicate& p : AdversarialPredicates()) {
      std::vector<uint64_t> scalar_words, vector_words;
      {
        ScopedKernelMode mode(simd::KernelMode::kScalar);
        scalar_words = BitmapWords(EvalPredicateBitmap(t, p));
      }
      {
        ScopedKernelMode mode(simd::KernelMode::kVector);
        vector_words = BitmapWords(EvalPredicateBitmap(t, p));
      }
      EXPECT_EQ(scalar_words, vector_words)
          << "n=" << n << " pred=" << p.ToString();
    }
  }
}

TEST(KernelParityTest, RandomConjunctionsMatchScalar) {
  Rng rng(2024);
  const std::vector<Predicate> pool = AdversarialPredicates();
  for (int iter = 0; iter < 200; ++iter) {
    const size_t n = rng.Uniform(300);
    Table t = MakeAdversarialTable(n, rng());
    Query q;
    const size_t n_conj = rng.Uniform(4);  // 0 = full scan
    for (size_t c = 0; c < n_conj; ++c) {
      q.conjuncts.push_back(pool[rng.Uniform(pool.size())]);
    }
    std::vector<uint32_t> subset;
    for (uint32_t r = 0; r < n; ++r) {
      if (rng.Bernoulli(0.5)) subset.push_back(r);
    }
    uint64_t scalar_count, vector_count;
    uint64_t scalar_subset, vector_subset;
    std::vector<uint32_t> scalar_rows, vector_rows;
    std::vector<uint64_t> scalar_words, vector_words;
    {
      ScopedKernelMode mode(simd::KernelMode::kScalar);
      scalar_count = CountMatches(t, q);
      scalar_subset = CountMatches(t, subset, q);
      scalar_rows = KernelMatchingRowIds(t, q);
      scalar_words = BitmapWords(EvalQueryBitmap(t, q));
    }
    {
      ScopedKernelMode mode(simd::KernelMode::kVector);
      vector_count = CountMatches(t, q);
      vector_subset = CountMatches(t, subset, q);
      vector_rows = KernelMatchingRowIds(t, q);
      vector_words = BitmapWords(EvalQueryBitmap(t, q));
    }
    EXPECT_EQ(scalar_count, vector_count) << q.ToString();
    EXPECT_EQ(scalar_subset, vector_subset) << q.ToString();
    EXPECT_EQ(scalar_rows, vector_rows) << q.ToString();
    EXPECT_EQ(scalar_words, vector_words) << q.ToString();
  }
}

TEST(KernelParityTest, AllMatchAndNoneMatchShapes) {
  Table t = MakeAdversarialTable(257, 99);
  Query all, none;
  all.conjuncts.push_back(Predicate::Between(0, Value(kI64Min), Value(kI64Max)));
  none.conjuncts.push_back(Predicate::In(0, {}));
  ScopedKernelMode mode(simd::KernelMode::kVector);
  EXPECT_EQ(CountMatches(t, all), t.num_rows());
  EXPECT_EQ(CountMatches(t, none), 0u);
  // Full-scan query (no conjuncts) matches everything.
  EXPECT_EQ(CountMatches(t, Query{}), t.num_rows());
}

TEST(KernelParityTest, AggregatorConsumeMatchesScalar) {
  Table t = MakeAdversarialTable(500, 4242);
  Query q;
  q.conjuncts.push_back(Predicate::Ge(0, Value(int64_t{-50})));
  std::vector<AggSpec> specs = {{AggOp::kCount, -1},
                                {AggOp::kSum, 0},
                                {AggOp::kMin, 1},
                                {AggOp::kMax, 1}};
  auto run = [&](simd::KernelMode m) {
    ScopedKernelMode mode(m);
    Aggregator agg(specs);
    agg.Consume(t, q);
    return agg.Finish();
  };
  const auto scalar = run(simd::KernelMode::kScalar);
  const auto vec = run(simd::KernelMode::kVector);
  ASSERT_EQ(scalar.size(), vec.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].count, vec[i].count);
    // Bit-identical fold order => bit-identical doubles (NaN-safe compare).
    EXPECT_EQ(std::memcmp(&scalar[i].value, &vec[i].value, sizeof(double)), 0);
  }
}

// ------------------------------------------------- Eytzinger parity ----

TEST(EytzingerTest, MatchesStdBoundsOnRandomArrays) {
  Rng rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    const size_t n = rng.Uniform(200);  // includes 0
    std::vector<double> sorted;
    for (size_t i = 0; i < n; ++i) {
      sorted.push_back(rng.Bernoulli(0.3) ? rng.UniformDouble(0, 5)
                                          : rng.UniformDouble(-1e3, 1e3));
    }
    std::sort(sorted.begin(), sorted.end());
    EytzingerIndex<double> idx(sorted);
    std::vector<double> probes;
    for (double v : sorted) {
      probes.push_back(v);
      probes.push_back(std::nextafter(v, -kInf));
      probes.push_back(std::nextafter(v, kInf));
    }
    for (int p = 0; p < 50; ++p) probes.push_back(rng.UniformDouble(-2e3, 2e3));
    probes.push_back(kInf);
    probes.push_back(-kInf);
    probes.push_back(kNaN);  // x<NaN and NaN<x both false: rank n and 0
    for (double x : probes) {
      const size_t lb = static_cast<size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
      const size_t ub = static_cast<size_t>(
          std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
      EXPECT_EQ(idx.LowerBound(x), lb) << "n=" << n << " x=" << x;
      EXPECT_EQ(idx.UpperBound(x), ub) << "n=" << n << " x=" << x;
    }
    // Batch descent must agree with single-probe descent, including the
    // tail lanes (probes.size() is rarely a multiple of the lane count).
    std::vector<uint32_t> ranks(probes.size());
    idx.LowerBoundBatch(probes.data(), probes.size(), ranks.data());
    for (size_t p = 0; p < probes.size(); ++p) {
      EXPECT_EQ(ranks[p], idx.LowerBound(probes[p])) << "n=" << n << " p=" << p;
    }
  }
}

TEST(EytzingerTest, Uint64AndDuplicateHeavyArrays) {
  Rng rng(11);
  std::vector<uint64_t> sorted;
  for (int i = 0; i < 500; ++i) sorted.push_back(rng.Uniform(20));
  sorted.push_back(0);
  sorted.push_back(~0ULL);
  std::sort(sorted.begin(), sorted.end());
  EytzingerIndex<uint64_t> idx(sorted);
  for (uint64_t x = 0; x < 25; ++x) {
    const size_t lb = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
    const size_t ub = static_cast<size_t>(
        std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
    EXPECT_EQ(idx.LowerBound(x), lb);
    EXPECT_EQ(idx.UpperBound(x), ub);
  }
  EXPECT_EQ(idx.LowerBound(~0ULL), sorted.size() - 1);
  EXPECT_EQ(idx.UpperBound(~0ULL), sorted.size());
}

// --------------------------------------- layout / router mode parity ----

TEST(KernelParityTest, SortedLayoutAssignMatchesScalar) {
  Table t = MakeAdversarialTable(300, 5);
  SortedLayout layout(/*column=*/1, "d", {-10.0, 0.0, 10.0, 1e307});
  std::vector<uint32_t> scalar_assign, vector_assign;
  {
    ScopedKernelMode mode(simd::KernelMode::kScalar);
    scalar_assign = layout.Assign(t);
  }
  {
    ScopedKernelMode mode(simd::KernelMode::kVector);
    vector_assign = layout.Assign(t);
  }
  EXPECT_EQ(scalar_assign, vector_assign);
}

TEST(KernelParityTest, ZOrderAssignMatchesScalar) {
  Table t = MakeAdversarialTable(400, 21);
  ZOrderGenerator gen(/*num_columns=*/3, /*bits_per_dim=*/8);
  std::unique_ptr<Layout> layout = gen.Generate(t, {}, 8);
  std::vector<uint32_t> scalar_assign, vector_assign;
  {
    ScopedKernelMode mode(simd::KernelMode::kScalar);
    scalar_assign = layout->Assign(t);
  }
  {
    ScopedKernelMode mode(simd::KernelMode::kVector);
    vector_assign = layout->Assign(t);
  }
  EXPECT_EQ(scalar_assign, vector_assign);
}

TEST(KernelParityTest, ShardRouterRangeRoutingMatchesScalar) {
  Schema schema({{"k", DataType::kInt64}});
  Table t(schema);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    t.AppendRow({Value(rng.UniformInt(-1000, 1000))});
  }
  ShardRouterOptions opts;
  opts.num_shards = 7;
  opts.routing = ShardRouting::kRange;
  ShardRouter router = ShardRouter::Build(t, opts);
  // Round-trip through Deserialize too: it rebuilds the Eytzinger mirror.
  auto rt = ShardRouter::Deserialize(router.Serialize());
  ASSERT_TRUE(rt.ok());
  for (int64_t v = -1100; v <= 1100; v += 13) {
    uint32_t scalar_shard, vector_shard, rt_shard;
    {
      ScopedKernelMode mode(simd::KernelMode::kScalar);
      scalar_shard = router.ShardOfValue(Value(v));
    }
    {
      ScopedKernelMode mode(simd::KernelMode::kVector);
      vector_shard = router.ShardOfValue(Value(v));
      rt_shard = rt->ShardOfValue(Value(v));
    }
    EXPECT_EQ(scalar_shard, vector_shard) << v;
    EXPECT_EQ(scalar_shard, rt_shard) << v;
  }
}

// ------------------------------------------------- codec fast paths ----

std::vector<int64_t> BoundaryBitwidthValues(uint64_t seed) {
  // Deltas at every varint bitwidth boundary: 2^7k - 1 and 2^7k in zigzag
  // space flip the encoded byte count, which is exactly where the 8-byte
  // fast path hands over to GetVarint64.
  Rng rng(seed);
  std::vector<int64_t> vals;
  int64_t cur = 0;
  vals.push_back(cur);
  for (int k = 0; k <= 9; ++k) {
    const int64_t step =
        (k == 9) ? kI64Max / 2 : static_cast<int64_t>((1ULL << (7 * k)) / 2);
    for (int rep = 0; rep < 20; ++rep) {
      const int64_t delta = rng.Bernoulli(0.5) ? step : -step;
      cur = static_cast<int64_t>(static_cast<uint64_t>(cur) +
                                 static_cast<uint64_t>(delta));
      vals.push_back(cur);
      if (rng.Bernoulli(0.3)) vals.push_back(cur);  // runs for RLE
    }
  }
  vals.push_back(kI64Min);
  vals.push_back(kI64Max);
  return vals;
}

TEST(CodecKernelTest, RoundTripBothModesAtBoundaryBitwidths) {
  for (Encoding enc : {Encoding::kRle, Encoding::kDeltaVarint, Encoding::kPlain}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      std::vector<int64_t> vals = BoundaryBitwidthValues(seed);
      if (enc == Encoding::kRle) {
        // RLE is only used on duplicate-heavy data but must round-trip any.
        std::sort(vals.begin(), vals.end());
      }
      std::string buf;
      EncodeInt64(vals, enc, &buf);
      std::vector<int64_t> scalar_out, vector_out;
      {
        ScopedKernelMode mode(simd::KernelMode::kScalar);
        ASSERT_TRUE(DecodeInt64(buf, enc, vals.size(), &scalar_out).ok());
      }
      {
        ScopedKernelMode mode(simd::KernelMode::kVector);
        ASSERT_TRUE(DecodeInt64(buf, enc, vals.size(), &vector_out).ok());
      }
      EXPECT_EQ(scalar_out, vals) << EncodingName(enc);
      EXPECT_EQ(vector_out, vals) << EncodingName(enc);
    }
  }
}

TEST(CodecKernelTest, CorruptionVerdictsIdenticalAcrossModes) {
  // Fuzz: encode, then mutate/truncate the buffer; both modes must return
  // the same ok/corrupt verdict, and identical bytes whenever both are OK.
  Rng rng(777);
  for (int iter = 0; iter < 500; ++iter) {
    const Encoding enc =
        rng.Bernoulli(0.5) ? Encoding::kRle : Encoding::kDeltaVarint;
    std::vector<int64_t> vals;
    const size_t n = rng.Uniform(64);
    int64_t cur = 0;
    for (size_t i = 0; i < n; ++i) {
      cur += rng.UniformInt(-3, 3);
      vals.push_back(cur);
      if (rng.Bernoulli(0.4)) {
        for (int r = 0; r < 3 && vals.size() < n; ++r) vals.push_back(cur);
      }
    }
    vals.resize(std::min(vals.size(), n));
    std::string buf;
    EncodeInt64(vals, enc, &buf);
    // Mutate: flip a byte, truncate, or append garbage.
    std::string mutated = buf;
    const int kind = static_cast<int>(rng.Uniform(4));
    if (kind == 0 && !mutated.empty()) {
      mutated[rng.Uniform(mutated.size())] ^= static_cast<char>(1 + rng.Uniform(255));
    } else if (kind == 1 && !mutated.empty()) {
      mutated.resize(rng.Uniform(mutated.size()));
    } else if (kind == 2) {
      mutated.push_back(static_cast<char>(rng.Uniform(256)));
    }  // kind 3: untouched
    std::vector<int64_t> scalar_out, vector_out;
    Status scalar_st, vector_st;
    {
      ScopedKernelMode mode(simd::KernelMode::kScalar);
      scalar_st = DecodeInt64(mutated, enc, vals.size(), &scalar_out);
    }
    {
      ScopedKernelMode mode(simd::KernelMode::kVector);
      vector_st = DecodeInt64(mutated, enc, vals.size(), &vector_out);
    }
    EXPECT_EQ(scalar_st.ok(), vector_st.ok())
        << EncodingName(enc) << " kind=" << kind
        << " scalar=" << scalar_st.ToString()
        << " vector=" << vector_st.ToString();
    if (scalar_st.ok() && vector_st.ok()) {
      EXPECT_EQ(scalar_out, vector_out) << EncodingName(enc);
    }
  }
}

TEST(CodecKernelTest, StringDictValidationIdenticalAcrossModes) {
  std::vector<std::string> dict = {"x", "y", "z"};
  std::vector<uint32_t> codes = {0, 1, 2, 1, 0, 2, 2};
  std::string buf;
  EncodeStringDict(codes, dict, &buf);
  // Corrupt one code to an out-of-range value (codes are the trailing raw
  // uint32 array).
  std::string bad = buf;
  uint32_t evil = 17;
  std::memcpy(&bad[bad.size() - sizeof(uint32_t)], &evil, sizeof(evil));
  for (const std::string& input : {buf, bad}) {
    Status scalar_st, vector_st;
    std::vector<uint32_t> c1, c2;
    std::vector<std::string> d1, d2;
    {
      ScopedKernelMode mode(simd::KernelMode::kScalar);
      scalar_st = DecodeStringDict(input, codes.size(), &c1, &d1);
    }
    {
      ScopedKernelMode mode(simd::KernelMode::kVector);
      vector_st = DecodeStringDict(input, codes.size(), &c2, &d2);
    }
    EXPECT_EQ(scalar_st.ok(), vector_st.ok());
    if (scalar_st.ok()) {
      EXPECT_EQ(c1, c2);
      EXPECT_EQ(d1, d2);
    }
  }
}

// --------------------------------------------------------- dispatch ----

TEST(SimdDispatchTest, ModeKnobAndNames) {
  EXPECT_STREQ(simd::KernelModeName(simd::KernelMode::kAuto), "auto");
  EXPECT_STREQ(simd::KernelModeName(simd::KernelMode::kScalar), "scalar");
  EXPECT_STREQ(simd::KernelModeName(simd::KernelMode::kVector), "vector");
  {
    ScopedKernelMode mode(simd::KernelMode::kScalar);
    EXPECT_FALSE(simd::VectorEnabled());
  }
  // kAuto restored: vectorized unless the env var pins scalar.
  EXPECT_EQ(simd::VectorEnabled(), !simd::ForceScalarEnv());
}

}  // namespace
}  // namespace oreo
