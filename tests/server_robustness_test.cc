// Serving-tier robustness: hostile or unlucky inputs — malformed and
// truncated frames, oversized payloads, unknown tenants, over-quota floods,
// mid-stream disconnects — must each be contained to exactly the blast
// radius the protocol promises (one request, one stream, or one rejection),
// with no blocking on the admission path and nothing leaked (ASan/TSan CI
// verifies the "nothing leaked / no race" half).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kTenant = 1;

// Cheap engine: big window and generation cadence so robustness tests never
// pay for layout generation.
core::OreoOptions CheapOptions() {
  core::OreoOptions opts;
  opts.seed = 21;
  opts.num_threads = 1;
  opts.window_size = 100;
  opts.generate_every = 100000;
  opts.target_partitions = 4;
  opts.dataset_sample_rows = 200;
  return opts;
}

// A released-once gate for the dispatcher: on_batch_start blocks every batch
// until Release, so tests can deterministically fill queues and disconnect
// clients while a batch is provably in flight.
struct DispatcherGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  int entered = 0;

  ServerTestHooks hooks() {
    ServerTestHooks h;
    h.on_batch_start = [this](uint32_t, size_t) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
    return h;
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

Query RangeQuery(int64_t id, int64_t lo, int64_t hi) {
  Query q;
  q.id = id;
  q.conjuncts = {Predicate::Between(0, Value(lo), Value(hi))};
  return q;
}

// Blocks for the next complete reply frame on a raw session and decodes it.
QueryReply WaitOneReply(ServerSession* session, uint64_t* request_id) {
  std::string buf;
  FrameHeader header;
  while (true) {
    if (buf.size() >= kHeaderBytes) {
      Status st = DecodeHeader(buf, kDefaultMaxPayload, &header);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (buf.size() >= kHeaderBytes + header.payload_len) break;
    }
    buf += session->WaitResponses();
  }
  QueryReply reply;
  Status st = DecodeReplyPayload(
      std::string_view(buf).substr(kHeaderBytes, header.payload_len), &reply);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (request_id != nullptr) *request_id = header.request_id;
  return reply;
}

class ServerRobustnessTest : public ::testing::Test {
 protected:
  void StartServer(BatchPolicy policy, ServerTestHooks hooks = {},
                   std::string physical_dir = "") {
    table_ = testutil::MakeEventTable(600, 21);
    srv_ = std::make_unique<OreoServer>();
    TenantConfig cfg;
    cfg.name = "t";
    cfg.table = &table_;
    cfg.generator = &generator_;
    cfg.time_column = 0;
    cfg.options = CheapOptions();
    cfg.batch = policy;
    cfg.physical_dir = std::move(physical_dir);
    ASSERT_TRUE(srv_->AddTenant(kTenant, cfg).ok());
    srv_->set_test_hooks(std::move(hooks));
    ASSERT_TRUE(srv_->Start().ok());
  }

  Table table_{testutil::EventSchema()};
  QdTreeGenerator generator_;
  std::unique_ptr<OreoServer> srv_;
};

// ------------------------------------------------------- wire round trip --

TEST(ServerWireTest, QueryFrameRoundTripsEveryPredicateShape) {
  Query q;
  q.id = 4242;
  q.template_id = 7;
  q.conjuncts = {
      Predicate::Between(0, Value(int64_t{-5}), Value(int64_t{1000})),
      Predicate::Eq(2, Value("collector_07")),
      Predicate::In(1, {Value(int64_t{1}), Value(0.25), Value("x")}),
  };
  std::string frame = EncodeQueryFrame(99, 3, q);

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
  EXPECT_EQ(header.magic, kWireMagic);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kQuery));
  EXPECT_EQ(header.request_id, 99u);
  EXPECT_EQ(header.tenant_id, 3u);
  EXPECT_EQ(frame.size(), kHeaderBytes + header.payload_len);

  Query out;
  ASSERT_TRUE(
      DecodeQueryPayload(
          std::string_view(frame).substr(kHeaderBytes, header.payload_len),
          &out)
          .ok());
  EXPECT_EQ(out.id, q.id);
  EXPECT_EQ(out.template_id, q.template_id);
  ASSERT_EQ(out.conjuncts.size(), q.conjuncts.size());
  for (size_t i = 0; i < q.conjuncts.size(); ++i) {
    EXPECT_EQ(out.conjuncts[i].column, q.conjuncts[i].column);
    EXPECT_EQ(out.conjuncts[i].op, q.conjuncts[i].op);
  }
  EXPECT_TRUE(out.conjuncts[0].value == q.conjuncts[0].value);
  EXPECT_TRUE(out.conjuncts[0].value2 == q.conjuncts[0].value2);
  EXPECT_TRUE(out.conjuncts[1].value == q.conjuncts[1].value);
  ASSERT_EQ(out.conjuncts[2].in_list.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(out.conjuncts[2].in_list[i] == q.conjuncts[2].in_list[i]);
  }
}

TEST(ServerWireTest, ReplyFrameRoundTripsCostBitsExactly) {
  QueryReply reply;
  reply.status = ReplyStatus::kOk;
  reply.state = 3;
  reply.reorganized = true;
  reply.query_cost = 0.1 + 0.2;  // not representable: bits must survive
  reply.has_physical = true;
  reply.match_count = 12345678901234ull;
  std::string frame = EncodeReplyFrame(7, 2, reply);

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
  QueryReply out;
  ASSERT_TRUE(
      DecodeReplyPayload(
          std::string_view(frame).substr(kHeaderBytes, header.payload_len),
          &out)
          .ok());
  EXPECT_EQ(out.status, ReplyStatus::kOk);
  EXPECT_EQ(out.state, 3);
  EXPECT_TRUE(out.reorganized);
  EXPECT_EQ(out.query_cost, reply.query_cost);  // exact
  EXPECT_TRUE(out.has_physical);
  EXPECT_EQ(out.match_count, reply.match_count);
}

TEST(ServerWireTest, HeaderValidationRejectsUntrustedFrames) {
  Query q = RangeQuery(1, 0, 10);
  std::string good = EncodeQueryFrame(1, 1, q);
  FrameHeader header;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeHeader(bad_magic, kDefaultMaxPayload, &header).ok());

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_FALSE(DecodeHeader(bad_version, kDefaultMaxPayload, &header).ok());
  // Even on failure the parsed fields are filled (best-effort id echo).
  EXPECT_EQ(header.request_id, 1u);

  std::string bad_type = good;
  bad_type[6] = 77;
  EXPECT_FALSE(DecodeHeader(bad_type, kDefaultMaxPayload, &header).ok());

  // Declared payload over the limit is rejected *before* any buffering.
  EXPECT_FALSE(DecodeHeader(good, /*max_payload=*/4, &header).ok());
}

TEST(ServerWireTest, ToStatusMapsEveryWireStatus) {
  EXPECT_TRUE(ToStatus(ReplyStatus::kOk, "").ok());
  EXPECT_EQ(ToStatus(ReplyStatus::kBackpressure, "m").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ToStatus(ReplyStatus::kShutdown, "m").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ToStatus(ReplyStatus::kBadRequest, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ToStatus(ReplyStatus::kUnknownTenant, "m").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ToStatus(ReplyStatus::kInternal, "m").code(),
            StatusCode::kInternal);
}

// ------------------------------------------------------ stream poisoning --

TEST_F(ServerRobustnessTest, MalformedHeaderPoisonsStreamWithOneReply) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  std::string garbage(64, 'Z');
  session->Feed(garbage);
  QueryReply reply = WaitOneReply(session.get(), nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_TRUE(session->broken());

  // The stream is dark now: even a well-formed frame is discarded.
  session->Feed(EncodeQueryFrame(5, kTenant, RangeQuery(5, 0, 10)));
  EXPECT_TRUE(session->TakeResponses().empty());
  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().executed, 0u);
}

TEST_F(ServerRobustnessTest, OversizedDeclaredPayloadBreaksTheStream) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kQuery);
  header.request_id = 11;
  header.tenant_id = kTenant;
  header.payload_len = srv_->max_payload() + 1;
  std::string frame;
  AppendHeader(header, &frame);
  session->Feed(frame);  // header only: the payload must never be buffered
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 11u);  // best-effort id echo from the bad header
  EXPECT_TRUE(session->broken());
}

TEST_F(ServerRobustnessTest, MalformedPayloadPoisonsOnlyThatRequest) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();

  // Well-framed, garbage payload: request-level error...
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kQuery);
  header.request_id = 21;
  header.tenant_id = kTenant;
  header.payload_len = 3;
  std::string frame;
  AppendHeader(header, &frame);
  frame += "abc";
  session->Feed(frame);
  uint64_t request_id = 0;
  QueryReply bad = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(bad.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 21u);
  EXPECT_FALSE(session->broken());

  // ... and the stream survives: the next query executes normally.
  session->Feed(EncodeQueryFrame(22, kTenant, RangeQuery(22, 0, 10)));
  QueryReply good = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(good.status, ReplyStatus::kOk);
  EXPECT_EQ(request_id, 22u);

  // A stray reply frame sent *to* the server is likewise request-level.
  session->Feed(EncodeReplyFrame(23, kTenant, QueryReply{}));
  QueryReply stray = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(stray.status, ReplyStatus::kBadRequest);
  EXPECT_FALSE(session->broken());

  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().executed, 1u);
  EXPECT_EQ(srv_->stats().rejected_malformed, 2u);
}

TEST_F(ServerRobustnessTest, TruncatedFramesAreBufferedUntilComplete) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  std::string frame = EncodeQueryFrame(31, kTenant, RangeQuery(31, 5, 50));
  // Drip-feed byte by byte: nothing may dispatch or error early.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    session->Feed(std::string_view(frame).substr(i, 1));
    EXPECT_FALSE(session->broken());
  }
  EXPECT_TRUE(session->TakeResponses().empty());
  session->Feed(std::string_view(frame).substr(frame.size() - 1));
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_EQ(request_id, 31u);
}

// ------------------------------------------------------ admission limits --

TEST_F(ServerRobustnessTest, UnknownTenantGetsCleanError) {
  StartServer(BatchPolicy{});
  LoopbackClient client(srv_.get());
  Result<QueryReply> reply = client.Call(99, RangeQuery(1, 0, 10));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kUnknownTenant);
  EXPECT_EQ(ToStatus(reply->status, reply->message).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(srv_->stats().rejected_unknown_tenant, 1u);
}

TEST_F(ServerRobustnessTest, QueueFullAnswersBackpressureWithoutBlocking) {
  DispatcherGate gate;
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.max_delay_us = 0;
  policy.max_queue = 2;
  StartServer(policy, gate.hooks());

  LoopbackClient client(srv_.get());
  // First request is popped into an in-flight batch and held at the gate.
  uint64_t id0 = client.Send(kTenant, RangeQuery(100, 0, 10));
  gate.WaitEntered(1);
  // Quota is 2: two more fit the queue...
  uint64_t id1 = client.Send(kTenant, RangeQuery(101, 0, 10));
  uint64_t id2 = client.Send(kTenant, RangeQuery(102, 0, 10));
  // ... and the rest must bounce immediately. Send returning at all proves
  // the admission path never blocks the connection reader.
  uint64_t id3 = client.Send(kTenant, RangeQuery(103, 0, 10));
  uint64_t id4 = client.Send(kTenant, RangeQuery(104, 0, 10));
  for (uint64_t rejected_id : {id3, id4}) {
    Result<QueryReply> reply = client.Wait(rejected_id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kBackpressure) << reply->message;
  }

  gate.Release();
  for (uint64_t admitted_id : {id0, id1, id2}) {
    Result<QueryReply> reply = client.Wait(admitted_id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
  }
  srv_->Shutdown();

  ServerStats stats = srv_->stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.rejected_backpressure, 2u);
  std::vector<int64_t> expected = {100, 101, 102};
  EXPECT_EQ(srv_->ExecutedIds(kTenant), expected)
      << "rejected queries must never reach the engine";
}

TEST_F(ServerRobustnessTest, MidStreamDisconnectDropsRepliesNotTheBatch) {
  DispatcherGate gate;
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.max_delay_us = 0;
  policy.max_queue = 8;
  StartServer(policy, gate.hooks());

  auto client = std::make_unique<LoopbackClient>(srv_.get());
  uint64_t id0 = client->Send(kTenant, RangeQuery(200, 0, 10));
  gate.WaitEntered(1);
  client->Send(kTenant, RangeQuery(201, 0, 10));  // queued behind the gate

  // Client vanishes with one request in flight and one queued. The in-flight
  // batch must still run to completion; its reply bytes just have nowhere to
  // go (delivered into the closed outbox and dropped).
  client->Disconnect();
  EXPECT_FALSE(client->connected());
  Result<QueryReply> after = client->Wait(id0);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);

  gate.Release();
  srv_->Shutdown();
  ServerStats stats = srv_->stats();
  EXPECT_EQ(stats.admitted, 2u);
  // The queued request raced Shutdown's close: it either executed or was
  // drained with a shutdown reply — both are clean ends.
  EXPECT_GE(stats.executed, 1u);
  EXPECT_EQ(stats.executed + stats.rejected_shutdown, 2u);
}

// ----------------------------------------------------- physical serving --

TEST_F(ServerRobustnessTest, PhysicalTenantServesExactMatchCounts) {
  std::string dir = testutil::ScratchDir("server_robust_phys");
  StartServer(BatchPolicy{}, {}, dir);
  LoopbackClient client(srv_.get());
  // ts is arrival order 0..599, so BETWEEN [lo, hi] matches hi-lo+1 rows.
  struct Case {
    int64_t lo, hi;
  } cases[] = {{100, 199}, {0, 0}, {550, 700}};
  uint64_t expected[] = {100, 1, 50};
  for (size_t i = 0; i < 3; ++i) {
    Result<QueryReply> reply = client.Call(
        kTenant, RangeQuery(static_cast<int64_t>(i), cases[i].lo, cases[i].hi));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
    EXPECT_TRUE(reply->has_physical);
    EXPECT_EQ(reply->match_count, expected[i]) << "case " << i;
  }
  srv_->Shutdown();
  fs::remove_all(dir);
}

// ------------------------------------------- single-caller enforcement ---

// The reusable batch-submission hook must let many producer threads feed one
// engine without tripping the engines' single-caller contract (the debug
// guard aborts on violation, TSan checks the rest).
TEST(BatchSubmitterTest, SerializesConcurrentProducers) {
  Table table = testutil::MakeEventTable(600, 22);
  QdTreeGenerator generator;
  auto engine =
      core::MakeEngine(&table, &generator, /*time_column=*/0, CheapOptions());
  core::BatchSubmitter submitter(engine.get());

  constexpr int kProducers = 8;
  constexpr int kBatchesPerProducer = 20;
  constexpr size_t kBatchSize = 4;
  std::atomic<size_t> steps_seen{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        QueryBatch batch;
        for (size_t i = 0; i < kBatchSize; ++i) {
          batch.queries.push_back(RangeQuery(p * 1000 + b * 10 + i, 0, 50));
        }
        core::OreoEngine::BatchResult result = submitter.Run(batch);
        EXPECT_EQ(result.steps.size(), kBatchSize);
        steps_seen += result.steps.size();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(steps_seen.load(),
            static_cast<size_t>(kProducers) * kBatchesPerProducer *
                kBatchSize);
}

}  // namespace
}  // namespace server
}  // namespace oreo
