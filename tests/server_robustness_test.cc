// Serving-tier robustness: hostile or unlucky inputs — malformed and
// truncated frames, oversized payloads, unknown tenants, over-quota floods,
// mid-stream disconnects — must each be contained to exactly the blast
// radius the protocol promises (one request, one stream, or one rejection),
// with no blocking on the admission path and nothing leaked (ASan/TSan CI
// verifies the "nothing leaked / no race" half).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kTenant = 1;

// Cheap engine: big window and generation cadence so robustness tests never
// pay for layout generation.
core::OreoOptions CheapOptions() {
  core::OreoOptions opts;
  opts.seed = 21;
  opts.num_threads = 1;
  opts.window_size = 100;
  opts.generate_every = 100000;
  opts.target_partitions = 4;
  opts.dataset_sample_rows = 200;
  return opts;
}

// A released-once gate for the dispatcher: on_batch_start blocks every batch
// until Release, so tests can deterministically fill queues and disconnect
// clients while a batch is provably in flight.
struct DispatcherGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  int entered = 0;

  ServerTestHooks hooks() {
    ServerTestHooks h;
    h.on_batch_start = [this](uint32_t, size_t) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
    return h;
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

Query RangeQuery(int64_t id, int64_t lo, int64_t hi) {
  Query q;
  q.id = id;
  q.conjuncts = {Predicate::Between(0, Value(lo), Value(hi))};
  return q;
}

// Blocks for the next complete reply frame on a raw session and decodes it.
QueryReply WaitOneReply(ServerSession* session, uint64_t* request_id) {
  std::string buf;
  FrameHeader header;
  while (true) {
    if (buf.size() >= kHeaderBytes) {
      Status st = DecodeHeader(buf, kDefaultMaxPayload, &header);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (buf.size() >= kHeaderBytes + header.payload_len) break;
    }
    buf += session->WaitResponses();
  }
  QueryReply reply;
  Status st = DecodeReplyPayload(
      std::string_view(buf).substr(kHeaderBytes, header.payload_len), &reply);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (request_id != nullptr) *request_id = header.request_id;
  return reply;
}

class ServerRobustnessTest : public ::testing::Test {
 protected:
  void StartServer(BatchPolicy policy, ServerTestHooks hooks = {},
                   std::string physical_dir = "") {
    table_ = testutil::MakeEventTable(600, 21);
    srv_ = std::make_unique<OreoServer>();
    TenantConfig cfg;
    cfg.name = "t";
    cfg.table = &table_;
    cfg.generator = &generator_;
    cfg.time_column = 0;
    cfg.options = CheapOptions();
    cfg.batch = policy;
    cfg.physical_dir = std::move(physical_dir);
    ASSERT_TRUE(srv_->AddTenant(kTenant, cfg).ok());
    srv_->set_test_hooks(std::move(hooks));
    ASSERT_TRUE(srv_->Start().ok());
  }

  Table table_{testutil::EventSchema()};
  QdTreeGenerator generator_;
  std::unique_ptr<OreoServer> srv_;
};

// ------------------------------------------------------- wire round trip --

TEST(ServerWireTest, QueryFrameRoundTripsEveryPredicateShape) {
  Query q;
  q.id = 4242;
  q.template_id = 7;
  q.conjuncts = {
      Predicate::Between(0, Value(int64_t{-5}), Value(int64_t{1000})),
      Predicate::Eq(2, Value("collector_07")),
      Predicate::In(1, {Value(int64_t{1}), Value(0.25), Value("x")}),
  };
  std::string frame = EncodeQueryFrame(99, 3, q);

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
  EXPECT_EQ(header.magic, kWireMagic);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kQuery));
  EXPECT_EQ(header.request_id, 99u);
  EXPECT_EQ(header.tenant_id, 3u);
  EXPECT_EQ(frame.size(), kHeaderBytes + header.payload_len);

  Query out;
  ASSERT_TRUE(
      DecodeQueryPayload(
          std::string_view(frame).substr(kHeaderBytes, header.payload_len),
          &out)
          .ok());
  EXPECT_EQ(out.id, q.id);
  EXPECT_EQ(out.template_id, q.template_id);
  ASSERT_EQ(out.conjuncts.size(), q.conjuncts.size());
  for (size_t i = 0; i < q.conjuncts.size(); ++i) {
    EXPECT_EQ(out.conjuncts[i].column, q.conjuncts[i].column);
    EXPECT_EQ(out.conjuncts[i].op, q.conjuncts[i].op);
  }
  EXPECT_TRUE(out.conjuncts[0].value == q.conjuncts[0].value);
  EXPECT_TRUE(out.conjuncts[0].value2 == q.conjuncts[0].value2);
  EXPECT_TRUE(out.conjuncts[1].value == q.conjuncts[1].value);
  ASSERT_EQ(out.conjuncts[2].in_list.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(out.conjuncts[2].in_list[i] == q.conjuncts[2].in_list[i]);
  }
}

TEST(ServerWireTest, ReplyFrameRoundTripsCostBitsExactly) {
  QueryReply reply;
  reply.status = ReplyStatus::kOk;
  reply.state = 3;
  reply.reorganized = true;
  reply.query_cost = 0.1 + 0.2;  // not representable: bits must survive
  reply.has_physical = true;
  reply.match_count = 12345678901234ull;
  std::string frame = EncodeReplyFrame(7, 2, reply);

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
  QueryReply out;
  ASSERT_TRUE(
      DecodeReplyPayload(
          std::string_view(frame).substr(kHeaderBytes, header.payload_len),
          &out)
          .ok());
  EXPECT_EQ(out.status, ReplyStatus::kOk);
  EXPECT_EQ(out.state, 3);
  EXPECT_TRUE(out.reorganized);
  EXPECT_EQ(out.query_cost, reply.query_cost);  // exact
  EXPECT_TRUE(out.has_physical);
  EXPECT_EQ(out.match_count, reply.match_count);
}

TEST(ServerWireTest, HeaderValidationRejectsUntrustedFrames) {
  Query q = RangeQuery(1, 0, 10);
  std::string good = EncodeQueryFrame(1, 1, q);
  FrameHeader header;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeHeader(bad_magic, kDefaultMaxPayload, &header).ok());

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_FALSE(DecodeHeader(bad_version, kDefaultMaxPayload, &header).ok());
  // Even on failure the parsed fields are filled (best-effort id echo).
  EXPECT_EQ(header.request_id, 1u);

  std::string bad_type = good;
  bad_type[6] = 77;
  EXPECT_FALSE(DecodeHeader(bad_type, kDefaultMaxPayload, &header).ok());

  // Declared payload over the limit is rejected *before* any buffering.
  EXPECT_FALSE(DecodeHeader(good, /*max_payload=*/4, &header).ok());
}

TEST(ServerWireTest, ToStatusMapsEveryWireStatus) {
  EXPECT_TRUE(ToStatus(ReplyStatus::kOk, "").ok());
  EXPECT_EQ(ToStatus(ReplyStatus::kBackpressure, "m").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ToStatus(ReplyStatus::kShutdown, "m").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(ToStatus(ReplyStatus::kBadRequest, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ToStatus(ReplyStatus::kUnknownTenant, "m").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ToStatus(ReplyStatus::kInternal, "m").code(),
            StatusCode::kInternal);
}

// ------------------------------------------------------- wire fuzzing ----

// Seeded PRNG: failures reproduce. The generators below cover every shape
// the v2 codec can carry, not just the handful the fixed tests use.
Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 3) {
    case 0:
      return Value(static_cast<int64_t>(rng()));
    case 1: {
      std::uniform_real_distribution<double> dist(-1e9, 1e9);
      return Value(dist(rng));
    }
    default: {
      std::string s(rng() % 12, '\0');
      for (char& c : s) c = static_cast<char>('a' + rng() % 26);
      return Value(std::move(s));
    }
  }
}

Predicate RandomPredicate(std::mt19937_64& rng) {
  const int col = static_cast<int>(rng() % 4);
  switch (rng() % 7) {
    case 0:
      return Predicate::Eq(col, RandomValue(rng));
    case 1:
      return Predicate::Lt(col, RandomValue(rng));
    case 2:
      return Predicate::Le(col, RandomValue(rng));
    case 3:
      return Predicate::Gt(col, RandomValue(rng));
    case 4:
      return Predicate::Ge(col, RandomValue(rng));
    case 5:
      return Predicate::Between(col, RandomValue(rng), RandomValue(rng));
    default: {
      std::vector<Value> in;
      const size_t n = 1 + rng() % 4;
      for (size_t i = 0; i < n; ++i) in.push_back(RandomValue(rng));
      return Predicate::In(col, std::move(in));
    }
  }
}

Query RandomQuery(std::mt19937_64& rng) {
  Query q;
  q.id = static_cast<int64_t>(rng());
  q.template_id = static_cast<int>(rng() % 16) - 1;
  const size_t n = rng() % 5;  // 0 conjuncts = full scan, also legal
  for (size_t i = 0; i < n; ++i) q.conjuncts.push_back(RandomPredicate(rng));
  return q;
}

void ExpectSameQuery(const Query& a, const Query& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.template_id, b.template_id);
  ASSERT_EQ(a.conjuncts.size(), b.conjuncts.size());
  for (size_t i = 0; i < a.conjuncts.size(); ++i) {
    EXPECT_EQ(a.conjuncts[i].column, b.conjuncts[i].column);
    EXPECT_EQ(a.conjuncts[i].op, b.conjuncts[i].op);
    EXPECT_TRUE(a.conjuncts[i].value == b.conjuncts[i].value);
    EXPECT_TRUE(a.conjuncts[i].value2 == b.conjuncts[i].value2);
    ASSERT_EQ(a.conjuncts[i].in_list.size(), b.conjuncts[i].in_list.size());
    for (size_t j = 0; j < a.conjuncts[i].in_list.size(); ++j) {
      EXPECT_TRUE(a.conjuncts[i].in_list[j] == b.conjuncts[i].in_list[j]);
    }
  }
}

TEST(ServerWireFuzzTest, RandomizedQueryFramesRoundTripWithDeadlines) {
  std::mt19937_64 rng(20240801);
  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    const Query q = RandomQuery(rng);
    const uint64_t deadline = (rng() % 3 == 0) ? 0 : rng();
    const std::string frame = EncodeQueryFrame(rng(), rng() % 100, q, deadline);

    FrameHeader header;
    ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
    ASSERT_EQ(frame.size(), kHeaderBytes + header.payload_len);
    Query out;
    uint64_t deadline_out = 1;  // poisoned: must be overwritten
    ASSERT_TRUE(DecodeQueryPayload(std::string_view(frame).substr(kHeaderBytes),
                                   &out, &deadline_out)
                    .ok());
    ExpectSameQuery(q, out);
    EXPECT_EQ(deadline_out, deadline);
  }
}

TEST(ServerWireFuzzTest, RandomizedReplyFramesRoundTripEveryStatus) {
  std::mt19937_64 rng(20240802);
  std::uniform_real_distribution<double> cost(-1e12, 1e12);
  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    QueryReply reply;
    reply.status = static_cast<ReplyStatus>(rng() % 7);  // kOk..kDeadline
    std::string msg(rng() % 40, '\0');
    for (char& c : msg) c = static_cast<char>(' ' + rng() % 90);
    reply.message = std::move(msg);
    reply.state = static_cast<int32_t>(rng() % 64) - 1;
    reply.reorganized = rng() % 2 == 0;
    reply.query_cost = cost(rng);
    reply.has_physical = rng() % 2 == 0;
    reply.executed = rng() % 2 == 0;
    reply.match_count = rng();
    const std::string frame = EncodeReplyFrame(rng(), rng() % 100, reply);

    FrameHeader header;
    ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
    QueryReply out;
    ASSERT_TRUE(
        DecodeReplyPayload(std::string_view(frame).substr(kHeaderBytes), &out)
            .ok());
    EXPECT_EQ(out.status, reply.status);
    EXPECT_EQ(out.message, reply.message);
    EXPECT_EQ(out.state, reply.state);
    EXPECT_EQ(out.reorganized, reply.reorganized);
    EXPECT_EQ(out.query_cost, reply.query_cost);  // exact bits
    EXPECT_EQ(out.has_physical, reply.has_physical);
    EXPECT_EQ(out.executed, reply.executed);
    EXPECT_EQ(out.match_count, reply.match_count);
  }
}

TEST(ServerWireFuzzTest, RandomizedStatsFramesRoundTrip) {
  std::mt19937_64 rng(20240803);
  for (int iter = 0; iter < 100; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    StatsSnapshot snap;
    uint64_t* server_fields[] = {
        &snap.server.sessions_opened,       &snap.server.admitted,
        &snap.server.executed,              &snap.server.batches,
        &snap.server.max_batch_observed,    &snap.server.rejected_backpressure,
        &snap.server.rejected_shutdown,     &snap.server.rejected_unknown_tenant,
        &snap.server.rejected_malformed,    &snap.server.expired_admission,
        &snap.server.expired_formation,     &snap.server.expired_reply,
        &snap.server.ingest_batches,        &snap.server.ingest_rows,
    };
    for (uint64_t* f : server_fields) *f = rng();
    const size_t tenants = rng() % 6;  // 0 tenants is legal (pre-Start)
    for (size_t t = 0; t < tenants; ++t) {
      TenantStats ts;
      ts.tenant_id = static_cast<uint32_t>(rng());
      ts.weight = static_cast<uint32_t>(rng() % 1000 + 1);
      ts.deficit = static_cast<int64_t>(rng());  // may be negative
      ts.admitted = rng();
      ts.executed = rng();
      ts.batches = rng();
      ts.max_batch_observed = rng();
      ts.rejected_backpressure = rng();
      ts.rejected_shutdown = rng();
      ts.expired_admission = rng();
      ts.expired_formation = rng();
      ts.expired_reply = rng();
      ts.ingest_batches = rng();
      ts.ingest_rows = rng();
      snap.tenants.push_back(ts);
    }
    const std::string frame = EncodeStatsReplyFrame(rng(), snap);

    FrameHeader header;
    ASSERT_TRUE(DecodeHeader(frame, kDefaultMaxPayload, &header).ok());
    EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kStatsReply));
    StatsSnapshot out;
    ASSERT_TRUE(
        DecodeStatsPayload(std::string_view(frame).substr(kHeaderBytes), &out)
            .ok());
    for (uint64_t* f : server_fields) {
      // Pointer arithmetic into `out.server` mirrors the field list above.
      const size_t off = reinterpret_cast<const char*>(f) -
                         reinterpret_cast<const char*>(&snap.server);
      EXPECT_EQ(*reinterpret_cast<const uint64_t*>(
                    reinterpret_cast<const char*>(&out.server) + off),
                *f);
    }
    ASSERT_EQ(out.tenants.size(), snap.tenants.size());
    for (size_t t = 0; t < tenants; ++t) {
      EXPECT_EQ(out.tenants[t].tenant_id, snap.tenants[t].tenant_id);
      EXPECT_EQ(out.tenants[t].weight, snap.tenants[t].weight);
      EXPECT_EQ(out.tenants[t].deficit, snap.tenants[t].deficit);
      EXPECT_EQ(out.tenants[t].admitted, snap.tenants[t].admitted);
      EXPECT_EQ(out.tenants[t].executed, snap.tenants[t].executed);
      EXPECT_EQ(out.tenants[t].expired_reply, snap.tenants[t].expired_reply);
      EXPECT_EQ(out.tenants[t].ingest_batches, snap.tenants[t].ingest_batches);
      EXPECT_EQ(out.tenants[t].ingest_rows, snap.tenants[t].ingest_rows);
    }
  }
}

// Byte-mutation corpus, codec level: flip random bytes in valid payloads and
// decode. The decoders may accept (the flip hit a value byte) or reject, but
// must never crash, over-read, or loop — ASan/UBSan CI checks the half a
// return code can't express.
TEST(ServerWireFuzzTest, MutatedPayloadsNeverCrashTheDecoders) {
  std::mt19937_64 rng(20240804);
  const Query q = RandomQuery(rng);
  QueryReply reply;
  reply.status = ReplyStatus::kOk;
  reply.message = "fine";
  reply.executed = true;
  StatsSnapshot snap;
  snap.tenants.resize(3);
  const std::string corpus[] = {
      EncodeQueryFrame(1, 1, q, 12345),
      EncodeReplyFrame(2, 1, reply),
      EncodeStatsReplyFrame(3, snap),
  };
  for (int iter = 0; iter < 600; ++iter) {
    std::string frame = corpus[iter % 3];
    const size_t payload_len = frame.size() - kHeaderBytes;
    if (payload_len == 0) continue;
    const size_t flips = 1 + rng() % 4;
    for (size_t f = 0; f < flips; ++f) {
      frame[kHeaderBytes + rng() % payload_len] ^=
          static_cast<char>(1 + rng() % 255);
    }
    const std::string_view payload =
        std::string_view(frame).substr(kHeaderBytes);
    // Outcomes are unconstrained; surviving the call is the contract.
    Query q_out;
    uint64_t deadline_out = 0;
    DecodeQueryPayload(payload, &q_out, &deadline_out).ok();
    QueryReply r_out;
    DecodeReplyPayload(payload, &r_out).ok();
    StatsSnapshot s_out;
    DecodeStatsPayload(payload, &s_out).ok();
  }
}

// Byte-mutation corpus, session level: a mutated frame fed to a live session
// poisons at most that stream — the server survives and keeps serving new
// connections. (Replies are not asserted per-mutation: a mutated length
// field legitimately leaves the session waiting for bytes that never come.)
TEST_F(ServerRobustnessTest, MutatedFramesPoisonAtMostTheirStream) {
  StartServer(BatchPolicy{});
  std::mt19937_64 rng(20240805);
  const std::string good = EncodeQueryFrame(7, kTenant, RangeQuery(7, 0, 10));
  const std::string stats = EncodeStatsRequestFrame(8);
  for (int iter = 0; iter < 300; ++iter) {
    std::string frame = (iter % 2 == 0) ? good : stats;
    const size_t flips = 1 + rng() % 4;
    for (size_t f = 0; f < flips; ++f) {
      frame[rng() % frame.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    std::unique_ptr<ServerSession> session = srv_->OpenSession();
    session->Feed(frame);
    session->TakeResponses();  // drain whatever the server said, if anything
  }
  // Blast radius check: a fresh connection still serves normally.
  LoopbackClient client(srv_.get());
  Result<QueryReply> reply = client.Call(kTenant, RangeQuery(1, 0, 10));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
  srv_->Shutdown();
}

// ---------------------------------------------------- protocol versioning --

TEST_F(ServerRobustnessTest, LegacyV1FramesGetUpgradeHintNotPoison) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();

  // A v1 frame has the identical header layout, so it is framed correctly
  // and must poison only itself: request-level reply, stream survives.
  std::string v1 = EncodeQueryFrame(41, kTenant, RangeQuery(41, 0, 10));
  v1[4] = 1;  // version byte: rewrite v2 -> v1
  session->Feed(v1);
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 41u);
  EXPECT_NE(reply.message.find("upgrade to version"), std::string::npos)
      << reply.message;
  EXPECT_FALSE(session->broken());

  // The same connection keeps serving v2 traffic.
  session->Feed(EncodeQueryFrame(42, kTenant, RangeQuery(42, 0, 10)));
  QueryReply good = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(good.status, ReplyStatus::kOk);
  EXPECT_EQ(request_id, 42u);

  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().rejected_malformed, 1u);
  EXPECT_EQ(srv_->stats().executed, 1u);
}

TEST_F(ServerRobustnessTest, StatsRequestWithPayloadIsRequestLevelError) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();

  // kStats is defined payload-free; trailing bytes are a malformed request,
  // not a framing failure.
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kStats);
  header.request_id = 51;
  header.tenant_id = 0;
  header.payload_len = 1;
  std::string frame;
  AppendHeader(header, &frame);
  frame += 'x';
  session->Feed(frame);
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 51u);
  EXPECT_FALSE(session->broken());

  // A well-formed query on the same stream still executes.
  session->Feed(EncodeQueryFrame(52, kTenant, RangeQuery(52, 0, 10)));
  QueryReply good = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(good.status, ReplyStatus::kOk);
  srv_->Shutdown();
}

// ------------------------------------------------- admission queue edges --

TEST(AdmissionQueueEdgeTest, CapacityZeroCoercesToOne) {
  // A zero quota would deadlock every tenant; the queue coerces it to the
  // smallest workable quota instead.
  AdmissionQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);

  PendingRequest r1;
  r1.request_id = 1;
  EXPECT_EQ(queue.Push(&r1), AdmissionOutcome::kAdmitted);
  PendingRequest r2;
  r2.request_id = 2;
  EXPECT_EQ(queue.Push(&r2), AdmissionOutcome::kBackpressure);

  std::vector<PendingRequest> out;
  bool closed = false;
  EXPECT_EQ(queue.PopBatch(8, 0, &out, &closed), 1u);
  EXPECT_FALSE(closed);
  EXPECT_EQ(out[0].request_id, 1u);

  queue.Close();
  PendingRequest r3;
  EXPECT_EQ(queue.Push(&r3), AdmissionOutcome::kShutdown);
  EXPECT_TRUE(queue.DrainRemaining().empty());
}

TEST(AdmissionQueueEdgeTest, CapacityOneServesOneAtATime) {
  AdmissionQueue queue(1);
  EXPECT_EQ(queue.capacity(), 1u);
  // Admit/pop cycles at quota one: each pop frees exactly one slot.
  for (uint64_t i = 1; i <= 5; ++i) {
    PendingRequest r;
    r.request_id = i;
    ASSERT_EQ(queue.Push(&r), AdmissionOutcome::kAdmitted) << i;
    PendingRequest overflow;
    overflow.request_id = 100 + i;
    EXPECT_EQ(queue.Push(&overflow), AdmissionOutcome::kBackpressure) << i;
    std::vector<PendingRequest> out;
    bool closed = false;
    ASSERT_EQ(queue.PopBatch(4, 0, &out, &closed), 1u) << i;
    EXPECT_EQ(out[0].request_id, i);
  }
  queue.Close();
  std::vector<PendingRequest> out;
  bool closed = false;
  EXPECT_EQ(queue.PopBatch(4, 0, &out, &closed), 0u);
  EXPECT_TRUE(closed);
}

TEST(AdmissionQueueEdgeTest, ConcurrentPushShutdownRaceLosesNoRequest) {
  // Producers hammer Push while the owner closes the queue: every offered
  // request must get exactly one disposition, and exactly the admitted ones
  // must come back out of DrainRemaining (TSan checks the memory half).
  AdmissionQueue queue(64);
  constexpr int kProducers = 4;
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> backpressure{0};
  std::atomic<int> saw_shutdown{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      uint64_t next = static_cast<uint64_t>(p) * 1000000;
      while (true) {
        PendingRequest r;
        r.request_id = ++next;
        const AdmissionOutcome outcome = queue.Push(&r);
        if (outcome == AdmissionOutcome::kAdmitted) {
          ++admitted;
        } else if (outcome == AdmissionOutcome::kBackpressure) {
          ++backpressure;
        } else {
          ++saw_shutdown;
          return;  // closed: the race completed for this producer
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.Close();
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(saw_shutdown.load(), kProducers);
  const std::vector<PendingRequest> drained = queue.DrainRemaining();
  EXPECT_EQ(drained.size(), admitted.load())
      << "admitted and drained must balance exactly";
  EXPECT_LE(drained.size(), queue.capacity());
  // Close is a point in time: nothing sneaks in afterwards.
  PendingRequest late;
  EXPECT_EQ(queue.Push(&late), AdmissionOutcome::kShutdown);
}

// ------------------------------------------------------ stream poisoning --

TEST_F(ServerRobustnessTest, MalformedHeaderPoisonsStreamWithOneReply) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  std::string garbage(64, 'Z');
  session->Feed(garbage);
  QueryReply reply = WaitOneReply(session.get(), nullptr);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_TRUE(session->broken());

  // The stream is dark now: even a well-formed frame is discarded.
  session->Feed(EncodeQueryFrame(5, kTenant, RangeQuery(5, 0, 10)));
  EXPECT_TRUE(session->TakeResponses().empty());
  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().executed, 0u);
}

TEST_F(ServerRobustnessTest, OversizedDeclaredPayloadBreaksTheStream) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kQuery);
  header.request_id = 11;
  header.tenant_id = kTenant;
  header.payload_len = srv_->max_payload() + 1;
  std::string frame;
  AppendHeader(header, &frame);
  session->Feed(frame);  // header only: the payload must never be buffered
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 11u);  // best-effort id echo from the bad header
  EXPECT_TRUE(session->broken());
}

TEST_F(ServerRobustnessTest, MalformedPayloadPoisonsOnlyThatRequest) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();

  // Well-framed, garbage payload: request-level error...
  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kQuery);
  header.request_id = 21;
  header.tenant_id = kTenant;
  header.payload_len = 3;
  std::string frame;
  AppendHeader(header, &frame);
  frame += "abc";
  session->Feed(frame);
  uint64_t request_id = 0;
  QueryReply bad = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(bad.status, ReplyStatus::kBadRequest);
  EXPECT_EQ(request_id, 21u);
  EXPECT_FALSE(session->broken());

  // ... and the stream survives: the next query executes normally.
  session->Feed(EncodeQueryFrame(22, kTenant, RangeQuery(22, 0, 10)));
  QueryReply good = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(good.status, ReplyStatus::kOk);
  EXPECT_EQ(request_id, 22u);

  // A stray reply frame sent *to* the server is likewise request-level.
  session->Feed(EncodeReplyFrame(23, kTenant, QueryReply{}));
  QueryReply stray = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(stray.status, ReplyStatus::kBadRequest);
  EXPECT_FALSE(session->broken());

  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().executed, 1u);
  EXPECT_EQ(srv_->stats().rejected_malformed, 2u);
}

TEST_F(ServerRobustnessTest, TruncatedFramesAreBufferedUntilComplete) {
  StartServer(BatchPolicy{});
  std::unique_ptr<ServerSession> session = srv_->OpenSession();
  std::string frame = EncodeQueryFrame(31, kTenant, RangeQuery(31, 5, 50));
  // Drip-feed byte by byte: nothing may dispatch or error early.
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    session->Feed(std::string_view(frame).substr(i, 1));
    EXPECT_FALSE(session->broken());
  }
  EXPECT_TRUE(session->TakeResponses().empty());
  session->Feed(std::string_view(frame).substr(frame.size() - 1));
  uint64_t request_id = 0;
  QueryReply reply = WaitOneReply(session.get(), &request_id);
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_EQ(request_id, 31u);
}

// ------------------------------------------------------ admission limits --

TEST_F(ServerRobustnessTest, UnknownTenantGetsCleanError) {
  StartServer(BatchPolicy{});
  LoopbackClient client(srv_.get());
  Result<QueryReply> reply = client.Call(99, RangeQuery(1, 0, 10));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kUnknownTenant);
  EXPECT_EQ(ToStatus(reply->status, reply->message).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(srv_->stats().rejected_unknown_tenant, 1u);
}

TEST_F(ServerRobustnessTest, QueueFullAnswersBackpressureWithoutBlocking) {
  DispatcherGate gate;
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.max_delay_us = 0;
  policy.max_queue = 2;
  StartServer(policy, gate.hooks());

  LoopbackClient client(srv_.get());
  // First request is popped into an in-flight batch and held at the gate.
  uint64_t id0 = client.Send(kTenant, RangeQuery(100, 0, 10));
  gate.WaitEntered(1);
  // Quota is 2: two more fit the queue...
  uint64_t id1 = client.Send(kTenant, RangeQuery(101, 0, 10));
  uint64_t id2 = client.Send(kTenant, RangeQuery(102, 0, 10));
  // ... and the rest must bounce immediately. Send returning at all proves
  // the admission path never blocks the connection reader.
  uint64_t id3 = client.Send(kTenant, RangeQuery(103, 0, 10));
  uint64_t id4 = client.Send(kTenant, RangeQuery(104, 0, 10));
  for (uint64_t rejected_id : {id3, id4}) {
    Result<QueryReply> reply = client.Wait(rejected_id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kBackpressure) << reply->message;
  }

  gate.Release();
  for (uint64_t admitted_id : {id0, id1, id2}) {
    Result<QueryReply> reply = client.Wait(admitted_id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
  }
  srv_->Shutdown();

  ServerStats stats = srv_->stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.rejected_backpressure, 2u);
  std::vector<int64_t> expected = {100, 101, 102};
  EXPECT_EQ(srv_->ExecutedIds(kTenant), expected)
      << "rejected queries must never reach the engine";
}

TEST_F(ServerRobustnessTest, MidStreamDisconnectDropsRepliesNotTheBatch) {
  DispatcherGate gate;
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.max_delay_us = 0;
  policy.max_queue = 8;
  StartServer(policy, gate.hooks());

  auto client = std::make_unique<LoopbackClient>(srv_.get());
  uint64_t id0 = client->Send(kTenant, RangeQuery(200, 0, 10));
  gate.WaitEntered(1);
  client->Send(kTenant, RangeQuery(201, 0, 10));  // queued behind the gate

  // Client vanishes with one request in flight and one queued. The in-flight
  // batch must still run to completion; its reply bytes just have nowhere to
  // go (delivered into the closed outbox and dropped).
  client->Disconnect();
  EXPECT_FALSE(client->connected());
  Result<QueryReply> after = client->Wait(id0);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);

  gate.Release();
  srv_->Shutdown();
  ServerStats stats = srv_->stats();
  EXPECT_EQ(stats.admitted, 2u);
  // The queued request raced Shutdown's close: it either executed or was
  // drained with a shutdown reply — both are clean ends.
  EXPECT_GE(stats.executed, 1u);
  EXPECT_EQ(stats.executed + stats.rejected_shutdown, 2u);
}

// ----------------------------------------------------- physical serving --

TEST_F(ServerRobustnessTest, PhysicalTenantServesExactMatchCounts) {
  std::string dir = testutil::ScratchDir("server_robust_phys");
  StartServer(BatchPolicy{}, {}, dir);
  LoopbackClient client(srv_.get());
  // ts is arrival order 0..599, so BETWEEN [lo, hi] matches hi-lo+1 rows.
  struct Case {
    int64_t lo, hi;
  } cases[] = {{100, 199}, {0, 0}, {550, 700}};
  uint64_t expected[] = {100, 1, 50};
  for (size_t i = 0; i < 3; ++i) {
    Result<QueryReply> reply = client.Call(
        kTenant, RangeQuery(static_cast<int64_t>(i), cases[i].lo, cases[i].hi));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
    EXPECT_TRUE(reply->has_physical);
    EXPECT_EQ(reply->match_count, expected[i]) << "case " << i;
  }
  srv_->Shutdown();
  fs::remove_all(dir);
}

// ------------------------------------------- single-caller enforcement ---

// The reusable batch-submission hook must let many producer threads feed one
// engine without tripping the engines' single-caller contract (the debug
// guard aborts on violation, TSan checks the rest).
TEST(BatchSubmitterTest, SerializesConcurrentProducers) {
  Table table = testutil::MakeEventTable(600, 22);
  QdTreeGenerator generator;
  auto engine =
      core::MakeEngine(&table, &generator, /*time_column=*/0, CheapOptions());
  core::BatchSubmitter submitter(engine.get());

  constexpr int kProducers = 8;
  constexpr int kBatchesPerProducer = 20;
  constexpr size_t kBatchSize = 4;
  std::atomic<size_t> steps_seen{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        QueryBatch batch;
        for (size_t i = 0; i < kBatchSize; ++i) {
          batch.queries.push_back(RangeQuery(p * 1000 + b * 10 + i, 0, 50));
        }
        core::OreoEngine::BatchResult result = submitter.Run(batch);
        EXPECT_EQ(result.steps.size(), kBatchSize);
        steps_seen += result.steps.size();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(steps_seen.load(),
            static_cast<size_t>(kProducers) * kBatchesPerProducer *
                kBatchSize);
}

}  // namespace
}  // namespace server
}  // namespace oreo
