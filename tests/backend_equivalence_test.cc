// The backend-equivalence wall for the StorageBackend / OreoEngine
// redesign. Pinned contracts, all through the MakeEngine factory:
//
//   1. For a fixed seed and workload, (posix, in-memory) backends × thread
//      counts {1, 8} × shard counts {1, 4} produce bit-identical costs,
//      switch decisions, decision traces, replay counters and
//      materialized-partition CRCs (read through each backend).
//   2. Live streaming (AttachPhysical + RunBatch + ExecuteBatchPhysical +
//      SyncPhysical with background rewrites) returns ground-truth matches
//      on every backend and thread count.
//   3. CachedBackend on/off is result-identical while measurably reducing
//      the bytes fetched from the base backend (read amplification).
//
// Runs under the TSan CI job (label `slow`).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "core/sharded_oreo.h"
#include "layout/qdtree_layout.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

constexpr uint64_t kSeed = 17;
constexpr size_t kRows = 3000;

OreoOptions BaseOpts(size_t num_threads, size_t num_shards,
                     std::shared_ptr<StorageBackend> backend) {
  OreoOptions opts;
  opts.seed = kSeed;
  opts.num_threads = num_threads;
  opts.num_shards = num_shards;
  opts.shard_routing = ShardRouting::kRange;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  opts.storage_backend = std::move(backend);
  return opts;
}

// Two workload phases so managers admit states and D-UMTS switches.
std::vector<Query> TwoPhaseStream() {
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, kRows, 150, 150, kSeed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, 150, kSeed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(i);
  }
  return stream;
}

std::shared_ptr<StorageBackend> MakeBackend(const std::string& kind) {
  return kind == "posix" ? MakePosixBackend() : MakeInMemoryBackend();
}

// Everything a (backend, threads, shards) combo produces that must not
// depend on the backend or the pool size.
struct ComboFingerprint {
  // Logical: per-shard decision traces and merged accounting.
  std::vector<std::vector<int>> serving_states;
  std::vector<std::vector<std::tuple<int64_t, int, int>>> switch_events;
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;
  // Physical replay counters.
  int64_t replay_switches = 0;
  uint64_t queries_executed = 0;
  uint64_t partitions_read = 0;
  uint64_t matches = 0;
  // Materialized partitions: dir-relative path -> CRC, in path order.
  std::vector<std::pair<std::string, uint32_t>> crcs;

  bool operator==(const ComboFingerprint& o) const {
    return serving_states == o.serving_states &&
           switch_events == o.switch_events && query_cost == o.query_cost &&
           reorg_cost == o.reorg_cost && num_switches == o.num_switches &&
           replay_switches == o.replay_switches &&
           queries_executed == o.queries_executed &&
           partitions_read == o.partitions_read && matches == o.matches &&
           crcs == o.crcs;
  }
};

ComboFingerprint RunCombo(const Table& t, const LayoutGenerator& gen,
                          const std::vector<Query>& stream,
                          const std::string& backend_kind, size_t threads,
                          size_t shards) {
  OreoOptions opts = BaseOpts(threads, shards, MakeBackend(backend_kind));
  std::unique_ptr<OreoEngine> engine =
      MakeEngine(&t, &gen, /*time_column=*/0, opts);
  EXPECT_EQ(engine->num_shards(), shards);

  ComboFingerprint fp;
  EngineSimResult sim = engine->RunTrace(stream, /*record_trace=*/true);
  EXPECT_EQ(sim.shards.size(), shards);
  for (const SimResult& shard : sim.shards) {
    fp.serving_states.push_back(shard.serving_state);
    fp.switch_events.push_back(shard.switch_events);
  }
  fp.query_cost = sim.query_cost;
  fp.reorg_cost = sim.reorg_cost;
  fp.num_switches = sim.num_switches;

  const std::string dir = testutil::ScratchDir(
      "backend_eq_" + backend_kind + "_t" + std::to_string(threads) + "_s" +
      std::to_string(shards));
  auto replay = engine->ReplayTrace(sim, /*stride=*/3, dir, threads,
                                    /*batch_size=*/4);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) {
    fp.replay_switches = replay->num_switches;
    fp.queries_executed = replay->queries_executed;
    fp.partitions_read = replay->partitions_read;
    fp.matches = replay->matches;
  }
  for (auto& [path, crc] : testutil::DirCrcs(*opts.storage_backend, dir)) {
    fp.crcs.emplace_back(path.substr(dir.size()), crc);
  }
  return fp;
}

TEST(BackendEquivalenceTest, PosixAndInMemoryAreBitIdentical) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();

  for (size_t shards : {size_t{1}, size_t{4}}) {
    ComboFingerprint baseline =
        RunCombo(t, gen, stream, "posix", /*threads=*/1, shards);
    ASSERT_FALSE(baseline.crcs.empty());
    ASSERT_GT(baseline.num_switches, 0) << "fixture too tame";
    for (const std::string backend_kind : {"posix", "inmem"}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        if (backend_kind == "posix" && threads == 1) continue;  // baseline
        ComboFingerprint combo =
            RunCombo(t, gen, stream, backend_kind, threads, shards);
        EXPECT_TRUE(combo == baseline)
            << "fingerprint diverged: backend=" << backend_kind
            << " threads=" << threads << " shards=" << shards;
      }
    }
  }
}

// Live streaming through the unified handle: logical decisions, physical
// batches against pinned snapshots, background rewrites reconciled at batch
// boundaries. Matches are ground truth at all times; costs/switches are
// backend- and thread-count-invariant.
TEST(BackendEquivalenceTest, StreamingMatchesGroundTruthOnEveryBackend) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();
  std::vector<uint64_t> expected;
  for (const Query& q : stream) expected.push_back(CountMatches(t, q));

  struct StreamingFingerprint {
    double query_cost = 0.0;
    double reorg_cost = 0.0;
    int64_t num_switches = 0;
  };
  for (size_t shards : {size_t{1}, size_t{4}}) {
    bool have_baseline = false;
    StreamingFingerprint baseline;
    for (const std::string backend_kind : {"posix", "inmem"}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        OreoOptions opts =
            BaseOpts(threads, shards, MakeBackend(backend_kind));
        std::unique_ptr<OreoEngine> engine =
            MakeEngine(&t, &gen, /*time_column=*/0, opts);
        std::string dir = testutil::ScratchDir(
            "backend_eq_stream_" + backend_kind + "_t" +
            std::to_string(threads) + "_s" + std::to_string(shards));
        ASSERT_TRUE(
            engine->AttachPhysical(dir, /*store_threads=*/2).ok());
        ASSERT_TRUE(engine->has_physical());

        size_t qi = 0;
        for (const QueryBatch& b : MakeBatches(stream, /*batch_size=*/32)) {
          engine->RunBatch(b);
          auto exec = engine->ExecuteBatchPhysical(b.queries);
          ASSERT_TRUE(exec.ok()) << exec.status().ToString();
          for (const auto& per_query : exec->per_query) {
            ASSERT_EQ(per_query.matches, expected[qi])
                << "backend=" << backend_kind << " threads=" << threads
                << " shards=" << shards << " query " << qi;
            ++qi;
          }
          engine->SyncPhysical();
        }
        engine->WaitForReorgs();

        StreamingFingerprint fp{engine->total_query_cost(),
                                engine->total_reorg_cost(),
                                engine->num_switches()};
        if (!have_baseline) {
          baseline = fp;
          have_baseline = true;
          EXPECT_GT(fp.num_switches, 0) << "fixture too tame";
        } else {
          EXPECT_EQ(fp.query_cost, baseline.query_cost)
              << "backend=" << backend_kind << " threads=" << threads;
          EXPECT_EQ(fp.reorg_cost, baseline.reorg_cost);
          EXPECT_EQ(fp.num_switches, baseline.num_switches);
        }
      }
    }
  }
}

// The cache read-amplification contract is measured on the fully
// deterministic replay path (streaming reorg timing could legally vary the
// number of rewrites, and with it the raw read totals).
TEST(BackendEquivalenceTest, CachedBackendCutsBaseReadsWithoutChangingResults) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();

  struct CacheRun {
    int64_t num_switches = 0;
    uint64_t queries_executed = 0;
    uint64_t partitions_read = 0;
    uint64_t matches = 0;
    std::vector<std::pair<std::string, uint32_t>> crcs;  // dir-relative
    uint64_t base_read_bytes = 0;
  };
  auto run = [&](std::shared_ptr<StorageBackend> backend,
                 StorageBackend* base, const std::string& tag) {
    CacheRun r;
    OreoOptions opts = BaseOpts(/*num_threads=*/8, /*num_shards=*/1,
                                std::move(backend));
    std::unique_ptr<OreoEngine> engine =
        MakeEngine(&t, &gen, /*time_column=*/0, opts);
    EngineSimResult sim = engine->RunTrace(stream, /*record_trace=*/true);
    std::string dir = testutil::ScratchDir("backend_eq_cache_" + tag);
    auto replay = engine->ReplayTrace(sim, /*stride=*/3, dir,
                                      /*num_threads=*/8, /*batch_size=*/8);
    EXPECT_TRUE(replay.ok()) << replay.status().ToString();
    if (replay.ok()) {
      r.num_switches = replay->num_switches;
      r.queries_executed = replay->queries_executed;
      r.partitions_read = replay->partitions_read;
      r.matches = replay->matches;
    }
    for (auto& [path, crc] :
         testutil::DirCrcs(*opts.storage_backend, dir)) {
      r.crcs.emplace_back(path.substr(dir.size()), crc);
    }
    r.base_read_bytes = base->stats().read_bytes;
    return r;
  };

  std::shared_ptr<StorageBackend> plain = MakeInMemoryBackend();
  CacheRun uncached = run(plain, plain.get(), "off");
  ASSERT_GT(uncached.num_switches, 0) << "fixture too tame";

  std::shared_ptr<CachedBackend> cached =
      MakeCachedBackend(MakeInMemoryBackend());
  CacheRun with_cache = run(cached, cached->base(), "on");

  // Result-identical: counters and the final partition bytes agree bit for
  // bit.
  EXPECT_EQ(uncached.num_switches, with_cache.num_switches);
  EXPECT_EQ(uncached.queries_executed, with_cache.queries_executed);
  EXPECT_EQ(uncached.partitions_read, with_cache.partitions_read);
  EXPECT_EQ(uncached.matches, with_cache.matches);
  EXPECT_EQ(uncached.crcs, with_cache.crcs);

  // And the cache actually absorbed reads: the base backend served
  // measurably fewer bytes than the uncached run's backend did for the
  // exact same (deterministic) operation sequence.
  CachedBackend::CacheStats stats = cached->cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LT(with_cache.base_read_bytes, uncached.base_read_bytes)
      << "the block cache never reduced base-backend read amplification";
  EXPECT_EQ(stats.hit_bytes,
            uncached.base_read_bytes - with_cache.base_read_bytes)
      << "every avoided base read must be accounted as hit bytes";
}

}  // namespace
}  // namespace core
}  // namespace oreo
