// StorageBackend unit wall: the interface contract (atomic publish, list,
// remove, stats) for the posix and in-memory implementations, the
// CachedBackend decorator (hit/miss determinism, LRU eviction, staleness
// after writes), and the PhysicalStore failure contract (a failed
// materialization or reorganization cleans up every object it wrote — no
// torn partition files) proved with a fault-injecting backend test double.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/physical.h"
#include "layout/sorted_layout.h"
#include "query/query.h"
#include "storage/backend.h"
#include "storage/block.h"
#include "storage/metadata_io.h"
#include "test_util.h"

namespace oreo {
namespace {

TEST(StorageBackendTest, RoundTripListRemove) {
  for (const char* kind : {"posix", "inmem"}) {
    std::shared_ptr<StorageBackend> backend =
        kind == std::string("posix") ? MakePosixBackend()
                                     : MakeInMemoryBackend();
    std::string dir = testutil::ScratchDir(std::string("backend_rt_") + kind);
    ASSERT_TRUE(backend->CreateDir(dir).ok()) << kind;

    ASSERT_TRUE(backend->AtomicWriteBlock(dir + "/b.blk", "bravo", false).ok());
    ASSERT_TRUE(backend->AtomicWriteBlock(dir + "/a.blk", "alpha", true).ok());

    auto read = backend->ReadBlock(dir + "/a.blk");
    ASSERT_TRUE(read.ok()) << kind;
    EXPECT_EQ(*read, "alpha");

    // Overwrite is a whole-object swap.
    ASSERT_TRUE(
        backend->AtomicWriteBlock(dir + "/a.blk", "alpha2", false).ok());
    read = backend->ReadBlock(dir + "/a.blk");
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, "alpha2");

    // List: sorted, complete, no stray temp objects from the atomic writes.
    auto listed = backend->List(dir);
    ASSERT_TRUE(listed.ok()) << kind;
    EXPECT_EQ(*listed,
              (std::vector<std::string>{dir + "/a.blk", dir + "/b.blk"}));

    EXPECT_TRUE(backend->Remove(dir + "/a.blk").ok());
    EXPECT_EQ(backend->Remove(dir + "/a.blk").code(), StatusCode::kNotFound);
    EXPECT_FALSE(backend->ReadBlock(dir + "/a.blk").ok());
    listed = backend->List(dir);
    ASSERT_TRUE(listed.ok());
    EXPECT_EQ(*listed, (std::vector<std::string>{dir + "/b.blk"}));

    EXPECT_TRUE(backend->List(dir + "_does_not_exist")->empty());
    EXPECT_TRUE(backend->Sync().ok());

    BackendStats stats = backend->stats();
    EXPECT_EQ(stats.writes, 3u);
    EXPECT_EQ(stats.removes, 1u);
    EXPECT_GE(stats.reads, 2u);
  }
}

TEST(StorageBackendTest, BlockAndMetadataBytesAreBackendInvariant) {
  Table t = testutil::MakeBlockTable(500, 7);
  LayoutInstance inst = testutil::MakeSortedInstance(t, 1, 4, "by_ts", 3);
  PartitionMetadata meta =
      MetadataFrom(t.schema(), inst.partitioning(), "by_ts");

  std::shared_ptr<StorageBackend> posix = MakePosixBackend();
  std::shared_ptr<StorageBackend> inmem = MakeInMemoryBackend();
  std::string dir = testutil::ScratchDir("backend_invariant");
  ASSERT_TRUE(posix->CreateDir(dir).ok());

  for (auto& backend : {posix, inmem}) {
    ASSERT_TRUE(
        WriteBlockTo(backend.get(), dir + "/t.blk", t, /*sync=*/true).ok());
    ASSERT_TRUE(WriteMetadataTo(backend.get(), dir + "/t.meta", meta).ok());
  }
  EXPECT_EQ(testutil::BackendCrc(*posix, dir + "/t.blk"),
            testutil::BackendCrc(*inmem, dir + "/t.blk"))
      << "posix and in-memory block bytes diverged";
  EXPECT_EQ(testutil::BackendCrc(*posix, dir + "/t.meta"),
            testutil::BackendCrc(*inmem, dir + "/t.meta"));

  // Both round-trip to the same table / metadata.
  for (auto& backend : {posix, inmem}) {
    Result<Table> back = ReadBlockFrom(backend.get(), dir + "/t.blk");
    ASSERT_TRUE(back.ok());
    testutil::ExpectTablesEqual(t, *back);
    Result<PartitionMetadata> m =
        ReadMetadataFrom(backend.get(), dir + "/t.meta");
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->total_rows, meta.total_rows);
    EXPECT_EQ(m->layout_name, "by_ts");
  }
}

// ------------------------------------------------------------ cached -----

TEST(CachedBackendTest, HitMissAndInvalidation) {
  auto cached = MakeCachedBackend(MakeInMemoryBackend());
  const std::string path = "cache_unit/a.blk";

  ASSERT_TRUE(cached->AtomicWriteBlock(path, "v1", false).ok());
  auto r1 = cached->ReadBlock(path);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, "v1");
  auto r2 = cached->ReadBlock(path);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "v1");
  CachedBackend::CacheStats stats = cached->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.hit_bytes, 2u);

  // A write invalidates: the next read must see the new bytes (a miss).
  ASSERT_TRUE(cached->AtomicWriteBlock(path, "v2!", false).ok());
  auto r3 = cached->ReadBlock(path);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, "v2!") << "cache served stale bytes after a write";
  stats = cached->cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.invalidations, 1u);

  // Remove invalidates too; the read then fails like the base would.
  ASSERT_TRUE(cached->Remove(path).ok());
  EXPECT_FALSE(cached->ReadBlock(path).ok());
}

TEST(CachedBackendTest, StrictLruEvictionNeverServesWrongBytes) {
  CachedBackendOptions opts;
  opts.capacity_bytes = 8;  // fits exactly two 4-byte objects
  auto cached = MakeCachedBackend(MakeInMemoryBackend(), opts);
  ASSERT_TRUE(cached->AtomicWriteBlock("ev/a", "aaaa", false).ok());
  ASSERT_TRUE(cached->AtomicWriteBlock("ev/b", "bbbb", false).ok());
  ASSERT_TRUE(cached->AtomicWriteBlock("ev/c", "cccc", false).ok());

  EXPECT_EQ(*cached->ReadBlock("ev/a"), "aaaa");  // miss, cache {a}
  EXPECT_EQ(*cached->ReadBlock("ev/b"), "bbbb");  // miss, cache {b, a}
  EXPECT_EQ(*cached->ReadBlock("ev/a"), "aaaa");  // hit, LRU order {a, b}
  EXPECT_EQ(*cached->ReadBlock("ev/c"), "cccc");  // miss, evicts b
  CachedBackend::CacheStats stats = cached->cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_objects, 2u);
  EXPECT_EQ(stats.resident_bytes, 8u);

  EXPECT_EQ(*cached->ReadBlock("ev/b"), "bbbb");  // miss again (was evicted)
  EXPECT_EQ(cached->cache_stats().misses, 4u);
  EXPECT_EQ(cached->cache_stats().hits, 1u);

  // An object larger than the whole cache is served but never cached.
  ASSERT_TRUE(
      cached->AtomicWriteBlock("ev/huge", "123456789", false).ok());
  EXPECT_EQ(*cached->ReadBlock("ev/huge"), "123456789");
  EXPECT_EQ(*cached->ReadBlock("ev/huge"), "123456789");
  EXPECT_EQ(cached->cache_stats().misses, 6u) << "oversized object cached";
  EXPECT_LE(cached->cache_stats().resident_bytes, 8u);
}

// Hit/miss accounting is thread-count invariant: one miss per distinct
// partition, everything else hits (coalesced or cached), regardless of how
// the pool interleaves the scan fan-out.
TEST(CachedBackendTest, HitMissAccountingIsThreadCountInvariant) {
  const uint64_t seed = 19;
  Table t = testutil::MakeEventTable(3000, seed);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 12, "by_ts", 3);
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(0, 3000, 400, 24, seed + 1);
  queries.push_back(Query{});  // full scan: touches every partition
  queries.push_back(Query{});

  struct Counts {
    uint64_t hits, misses, hit_bytes, miss_bytes;
  };
  std::vector<Counts> runs;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto cached = MakeCachedBackend(MakeInMemoryBackend());
    std::string dir =
        testutil::ScratchDir("cache_det_" + std::to_string(threads));
    core::PhysicalStore store(dir, threads, cached);
    ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());
    auto exec = store.ExecuteQueryBatch(queries);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    CachedBackend::CacheStats stats = cached->cache_stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    // One miss per distinct partition: the full scans touch every
    // partition, and the batch never fetches one from the base twice.
    EXPECT_EQ(stats.misses, store.GetSnapshot().files.size());
    runs.push_back(Counts{stats.hits, stats.misses, stats.hit_bytes,
                          stats.miss_bytes});
  }
  EXPECT_EQ(runs[0].hits, runs[1].hits) << "hit count depends on threads";
  EXPECT_EQ(runs[0].misses, runs[1].misses);
  EXPECT_EQ(runs[0].hit_bytes, runs[1].hit_bytes);
  EXPECT_EQ(runs[0].miss_bytes, runs[1].miss_bytes);
}

// Test double: forwards to a wrapped backend, but reads of `gated_path`
// fetch their bytes and then block until Open() — freezing an in-flight
// fetch at the point where it holds possibly-stale data.
class GatedReadBackend : public StorageBackend {
 public:
  GatedReadBackend(std::shared_ptr<StorageBackend> base,
                   std::string gated_path)
      : base_(std::move(base)), gated_path_(std::move(gated_path)) {}

  std::string name() const override { return "gated(" + base_->name() + ")"; }
  Result<std::string> ReadBlock(const std::string& path) override {
    Result<std::string> result = base_->ReadBlock(path);
    if (path == gated_path_) {
      std::unique_lock<std::mutex> lock(mu_);
      ++blocked_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    return result;
  }
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override {
    return base_->AtomicWriteBlock(path, data, sync);
  }
  Result<std::vector<std::string>> List(const std::string& dir) override {
    return base_->List(dir);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override { return base_->stats(); }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ > 0; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::shared_ptr<StorageBackend> base_;
  std::string gated_path_;
  std::mutex mu_;
  std::condition_variable cv_;
  int blocked_ = 0;
  bool open_ = false;
};

// A reader that coalesces onto a fetch doomed by a completed write must not
// be served the pre-write bytes (the fetcher itself may keep them: its read
// overlapped the write).
TEST(CachedBackendTest, CoalescedReadAfterWriteNeverSeesStaleBytes) {
  const std::string path = "gate/p.blk";
  auto gated =
      std::make_shared<GatedReadBackend>(MakeInMemoryBackend(), path);
  auto cached = MakeCachedBackend(gated);
  ASSERT_TRUE(cached->AtomicWriteBlock(path, "v1", false).ok());

  std::string first_read;
  std::thread fetcher([&] {
    auto r = cached->ReadBlock(path);
    ASSERT_TRUE(r.ok());
    first_read = *r;
  });
  gated->WaitUntilBlocked();  // the fetch holds "v1" and is in flight

  // The write completes while the fetch is frozen: it dooms the fetch.
  ASSERT_TRUE(cached->AtomicWriteBlock(path, "v2", false).ok());

  // A reader starting strictly after the write. Give it time to coalesce
  // onto the doomed fetch before the gate opens (if it arrives later it
  // reads fresh anyway — the assertion is valid either way).
  std::string second_read;
  std::thread late_reader([&] {
    auto r = cached->ReadBlock(path);
    ASSERT_TRUE(r.ok());
    second_read = *r;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gated->Open();
  fetcher.join();
  late_reader.join();

  EXPECT_EQ(first_read, "v1");  // overlapped the write: old bytes are legal
  EXPECT_EQ(second_read, "v2")
      << "a read that began after the write was served stale bytes";
  // And the doomed bytes were never cached.
  auto r = cached->ReadBlock(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "v2");
}

// A reorganization swaps every partition; the cache must serve the new
// layout's bytes afterwards (on/off runs agree query by query).
TEST(CachedBackendTest, CacheOnOffIsResultIdenticalAcrossReorganization) {
  const uint64_t seed = 23;
  Table t = testutil::MakeEventTable(2500, seed);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 10, "by_ts", 3);
  LayoutInstance by_qty = testutil::MakeSortedInstance(t, 1, 10, "by_qty", 3);
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 120, 20, seed + 1);
  queries.push_back(Query{});

  struct RunResult {
    std::vector<uint64_t> matches_before, matches_after;
    std::vector<uint32_t> crcs_after;
  };
  auto run = [&](std::shared_ptr<StorageBackend> backend,
                 const std::string& tag) {
    RunResult r;
    core::PhysicalStore store(testutil::ScratchDir(tag), /*num_threads=*/4,
                              std::move(backend));
    EXPECT_TRUE(store.MaterializeLayout(t, by_ts).ok());
    auto before = store.ExecuteQueryBatch(queries);
    EXPECT_TRUE(before.ok());
    for (const auto& exec : before->per_query) {
      r.matches_before.push_back(exec.matches);
    }
    EXPECT_TRUE(store.Reorganize(t, by_qty).ok());
    store.Vacuum();
    auto after = store.ExecuteQueryBatch(queries);
    EXPECT_TRUE(after.ok());
    for (const auto& exec : after->per_query) {
      r.matches_after.push_back(exec.matches);
    }
    r.crcs_after = testutil::PartitionCrcs(store);
    return r;
  };

  RunResult plain = run(MakeInMemoryBackend(), "cache_onoff_plain");
  auto cached = MakeCachedBackend(MakeInMemoryBackend());
  RunResult with_cache = run(cached, "cache_onoff_cached");

  EXPECT_EQ(plain.matches_before, with_cache.matches_before);
  EXPECT_EQ(plain.matches_after, with_cache.matches_after)
      << "cache served stale partitions across the reorganization";
  EXPECT_EQ(plain.crcs_after, with_cache.crcs_after);
  EXPECT_GT(cached->cache_stats().hits, 0u);
  EXPECT_GT(cached->cache_stats().invalidations, 0u)
      << "the reorganization never invalidated a cached partition";

  // The ground truth: every query's matches against the raw table.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(plain.matches_after[i], CountMatches(t, queries[i]))
        << "query " << i;
  }
}

// ----------------------------------------------- failure propagation -----

// Test double: forwards to a wrapped backend but fails the Nth write whose
// path contains `fail_substring`.
class FaultInjectionBackend : public StorageBackend {
 public:
  FaultInjectionBackend(std::shared_ptr<StorageBackend> base,
                        std::string fail_substring, int64_t fail_after)
      : base_(std::move(base)),
        fail_substring_(std::move(fail_substring)),
        remaining_(fail_after) {}

  std::string name() const override { return "fault(" + base_->name() + ")"; }
  Result<std::string> ReadBlock(const std::string& path) override {
    return base_->ReadBlock(path);
  }
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override {
    if (path.find(fail_substring_) != std::string::npos &&
        remaining_.fetch_sub(1) <= 0) {
      return Status::IoError("injected write failure: " + path);
    }
    return base_->AtomicWriteBlock(path, data, sync);
  }
  Result<std::vector<std::string>> List(const std::string& dir) override {
    return base_->List(dir);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override { return base_->stats(); }

 private:
  std::shared_ptr<StorageBackend> base_;
  std::string fail_substring_;
  std::atomic<int64_t> remaining_;
};

TEST(PhysicalStoreFaultTest, FailedMaterializationLeavesNoTornFiles) {
  Table t = testutil::MakeEventTable(2000, 41);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 8, "by_ts", 3);
  auto base = MakeInMemoryBackend();
  // Fail the 4th partition write: earlier siblings succeed and must be
  // cleaned up.
  auto faulty = std::make_shared<FaultInjectionBackend>(base, "part_", 3);
  std::string dir = testutil::ScratchDir("fault_mat");
  core::PhysicalStore store(dir, /*num_threads=*/4, faulty);

  auto mat = store.MaterializeLayout(t, by_ts);
  ASSERT_FALSE(mat.ok());
  EXPECT_EQ(mat.status().code(), StatusCode::kIoError);
  auto leftover = base->List(dir);
  ASSERT_TRUE(leftover.ok());
  EXPECT_TRUE(leftover->empty())
      << leftover->size() << " torn partition files left behind, first: "
      << leftover->front();
}

TEST(PhysicalStoreFaultTest, FailedReorganizationKeepsServingOldLayout) {
  const uint64_t seed = 43;
  Table t = testutil::MakeEventTable(2000, seed);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 8, "by_ts", 3);
  LayoutInstance by_qty = testutil::MakeSortedInstance(t, 1, 8, "by_qty", 3);
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 100, 10, seed + 1);

  struct Phase {
    const char* tag;
    const char* substring;  // which write class the fault hits
    int64_t fail_after;
  };
  for (const Phase phase : {Phase{"shuffle", "spill_", 2},
                            Phase{"merge", "part_e2", 1}}) {
    auto base = MakeInMemoryBackend();
    auto faulty = std::make_shared<FaultInjectionBackend>(
        base, phase.substring, phase.fail_after);
    std::string dir =
        testutil::ScratchDir(std::string("faultreorg_") + phase.tag);
    core::PhysicalStore store(dir, /*num_threads=*/4, faulty);
    ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());
    std::vector<std::string> old_files = store.GetSnapshot().files;

    auto reorg = store.Reorganize(t, by_qty);
    ASSERT_FALSE(reorg.ok()) << "fault " << phase.substring << " never fired";
    EXPECT_EQ(reorg.status().code(), StatusCode::kIoError);

    // No torn output: the directory holds exactly the old layout's files.
    auto listed = base->List(dir);
    ASSERT_TRUE(listed.ok());
    std::vector<std::string> expected = old_files;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(*listed, expected)
        << "orphaned spill or partition objects after a failed "
        << phase.substring << " write";

    // The store still serves the old layout, correctly.
    for (const Query& q : queries) {
      auto exec = store.ExecuteQuery(q);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_EQ(exec->matches, CountMatches(t, q));
    }
  }
}

}  // namespace
}  // namespace oreo
