// Tests for the on-disk block format: roundtrips and failure injection
// (bit flips, truncation, bad magic) — every corruption must be detected.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "storage/block.h"
#include "test_util.h"

namespace oreo {
namespace {

namespace fs = std::filesystem;

using testutil::ExpectTablesEqual;

Table MakeTable(size_t rows, uint64_t seed) {
  return testutil::MakeBlockTable(rows, seed);
}

TEST(BlockTest, SerializeDeserializeRoundTrip) {
  Table t = MakeTable(500, 1);
  std::string data = SerializeBlock(t);
  Result<Table> out = DeserializeBlock(data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectTablesEqual(t, *out);
}

TEST(BlockTest, EmptyTableRoundTrip) {
  Table t = MakeTable(0, 1);
  std::string data = SerializeBlock(t);
  Result<Table> out = DeserializeBlock(data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(BlockTest, SingleRowRoundTrip) {
  Table t = MakeTable(1, 2);
  Result<Table> out = DeserializeBlock(SerializeBlock(t));
  ASSERT_TRUE(out.ok());
  ExpectTablesEqual(t, *out);
}

TEST(BlockTest, FileRoundTrip) {
  Table t = MakeTable(300, 3);
  std::string path = fs::temp_directory_path() / "oreo_block_test.blk";
  ASSERT_TRUE(WriteBlockFile(path, t).ok());
  Result<Table> out = ReadBlockFile(path);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ExpectTablesEqual(t, *out);
  fs::remove(path);
}

TEST(BlockTest, ReadMissingFileIsIoError) {
  Result<Table> out = ReadBlockFile("/nonexistent/dir/nope.blk");
  EXPECT_EQ(out.status().code(), StatusCode::kIoError);
}

TEST(BlockTest, SerializedSizeMatches) {
  Table t = MakeTable(100, 4);
  EXPECT_EQ(SerializedBlockSize(t), SerializeBlock(t).size());
}

TEST(BlockTest, BadMagicDetected) {
  Table t = MakeTable(50, 5);
  std::string data = SerializeBlock(t);
  data[0] = 'X';
  EXPECT_EQ(DeserializeBlock(data).status().code(), StatusCode::kCorruption);
}

TEST(BlockTest, TruncationDetected) {
  Table t = MakeTable(50, 6);
  std::string data = SerializeBlock(t);
  for (size_t keep : {data.size() - 1, data.size() / 2, size_t{10}}) {
    std::string cut = data.substr(0, keep);
    EXPECT_EQ(DeserializeBlock(cut).status().code(), StatusCode::kCorruption)
        << "keep=" << keep;
  }
}

// Failure injection sweep: flipping any byte anywhere in the block must be
// detected by the CRC (parameterized over flip positions).
class BlockCorruptionTest : public ::testing::TestWithParam<double> {};

TEST_P(BlockCorruptionTest, BitFlipDetected) {
  Table t = MakeTable(200, 7);
  std::string data = SerializeBlock(t);
  size_t pos = static_cast<size_t>(GetParam() * static_cast<double>(data.size() - 1));
  std::string mut = data;
  mut[pos] = static_cast<char>(mut[pos] ^ 0x40);
  Result<Table> out = DeserializeBlock(mut);
  EXPECT_FALSE(out.ok()) << "flip at " << pos << " went undetected";
}

INSTANTIATE_TEST_SUITE_P(FlipPositions, BlockCorruptionTest,
                         ::testing::Values(0.0, 0.05, 0.15, 0.25, 0.35, 0.45,
                                           0.55, 0.65, 0.75, 0.85, 0.95, 1.0));

TEST(BlockTest, AllStringColumnTable) {
  Table t(Schema({{"a", DataType::kString}, {"b", DataType::kString}}));
  t.AppendRow({Value("x"), Value("y")});
  t.AppendRow({Value(""), Value("y")});
  Result<Table> out = DeserializeBlock(SerializeBlock(t));
  ASSERT_TRUE(out.ok());
  ExpectTablesEqual(t, *out);
}

TEST(BlockTest, WidTableManyColumns) {
  std::vector<Field> fields;
  for (int i = 0; i < 40; ++i) {
    fields.push_back({"c" + std::to_string(i), DataType::kInt64});
  }
  Table t((Schema(fields)));
  for (int r = 0; r < 20; ++r) {
    std::vector<Value> row;
    for (int i = 0; i < 40; ++i) row.emplace_back(static_cast<int64_t>(r * i));
    t.AppendRow(row);
  }
  Result<Table> out = DeserializeBlock(SerializeBlock(t));
  ASSERT_TRUE(out.ok());
  ExpectTablesEqual(t, *out);
}

TEST(BlockTest, ColumnProjectionDecodesSubset) {
  Table t = MakeTable(200, 9);
  std::string data = SerializeBlock(t);
  std::vector<std::string> wanted = {"score", "tag"};
  BlockReadOptions opts;
  opts.columns = &wanted;
  Result<Table> out = DeserializeBlock(data, opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Projection keeps block order: score (col 2) then tag (col 3).
  ASSERT_EQ(out->num_columns(), 2u);
  EXPECT_EQ(out->schema().field(0).name, "score");
  EXPECT_EQ(out->schema().field(1).name, "tag");
  ASSERT_EQ(out->num_rows(), 200u);
  for (uint32_t r = 0; r < 200; ++r) {
    EXPECT_DOUBLE_EQ(out->column(0).GetDouble(r), t.column(2).GetDouble(r));
    EXPECT_EQ(out->column(1).GetString(r), t.column(3).GetString(r));
  }
}

TEST(BlockTest, ProjectionIgnoresUnknownColumns) {
  Table t = MakeTable(10, 10);
  std::vector<std::string> wanted = {"id", "no_such_column"};
  BlockReadOptions opts;
  opts.columns = &wanted;
  Result<Table> out = DeserializeBlock(SerializeBlock(t), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_columns(), 1u);
  EXPECT_EQ(out->schema().field(0).name, "id");
}

TEST(BlockTest, ProjectionStillValidatesChecksum) {
  Table t = MakeTable(100, 11);
  std::string data = SerializeBlock(t);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 1);
  std::vector<std::string> wanted = {"id"};
  BlockReadOptions opts;
  opts.columns = &wanted;
  EXPECT_EQ(DeserializeBlock(data, opts).status().code(),
            StatusCode::kCorruption);
}

TEST(BlockTest, SyncedWriteRoundTrips) {
  Table t = MakeTable(50, 12);
  std::string path = fs::temp_directory_path() / "oreo_block_sync.blk";
  ASSERT_TRUE(WriteBlockFile(path, t, /*sync=*/true).ok());
  Result<Table> out = ReadBlockFile(path);
  ASSERT_TRUE(out.ok());
  ExpectTablesEqual(t, *out);
  fs::remove(path);
}

TEST(BlockTest, CompressionKicksInForSortedColumns) {
  // A sorted int column should serialize far smaller than 8 bytes/row.
  Table t(Schema({{"ts", DataType::kInt64}}));
  for (int64_t i = 0; i < 10000; ++i) t.AppendRow({Value(i)});
  EXPECT_LT(SerializedBlockSize(t), 10000u * 4);
}

}  // namespace
}  // namespace oreo
