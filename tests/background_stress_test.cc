// Concurrency stress for the background reorganizer: a worker thread keeps
// rewriting the store into alternating layouts while foreground threads
// hammer GetSnapshot / ExecuteQueryOnSnapshot / busy() / MaterializedBytes.
// Results must stay correct throughout — every snapshot query sees exactly
// the matches the table implies, no matter where the swap lands. Run under
// -DOREO_SANITIZE=thread this doubles as the race detector for the whole
// PhysicalStore + ThreadPool + BackgroundReorganizer stack (the TSan CI job
// does exactly that).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/background.h"
#include "core/physical.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

TEST(BackgroundStressTest, SnapshotQueriesStayCorrectAcrossRepeatedSwaps) {
  Table t = testutil::MakeEventTable(6000, 41);
  // Targets must outlive every in-flight reorganization.
  LayoutInstance by_ts =
      testutil::MakeSortedInstance(t, 0, 16, "by_ts", /*sample_seed=*/3);
  LayoutInstance by_qty =
      testutil::MakeSortedInstance(t, 1, 16, "by_qty", /*sample_seed=*/3);
  LayoutInstance coarse =
      testutil::MakeSortedInstance(t, 0, 8, "coarse", /*sample_seed=*/3);

  PhysicalStore store(testutil::ScratchDir("bg_stress"), /*num_threads=*/2);
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());

  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 120, 4, 42);
  std::vector<uint64_t> expected;
  for (const Query& q : queries) expected.push_back(CountMatches(t, q));

  BackgroundReorganizer bg(&store, &t);
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<uint64_t> reads{0};

  // Foreground readers: pin a snapshot, query it, spot-check the counters.
  // Outgoing files are only vacuumed after the readers join, so a snapshot
  // taken right before a swap must keep serving correct results.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        PhysicalStore::Snapshot snap = store.GetSnapshot();
        const Query& q = queries[i % queries.size()];
        auto exec = store.ExecuteQueryOnSnapshot(snap, q);
        if (!exec.ok() || exec->matches != expected[i % queries.size()]) {
          ++reader_errors;
        }
        (void)store.MaterializedBytes();
        (void)bg.busy();
        ++reads;
        ++i;
      }
    });
  }

  // Driver: six full swaps, alternating targets; Submit may bounce while a
  // rewrite is in flight (that is the documented single-process contract).
  const LayoutInstance* targets[] = {&by_qty, &coarse, &by_ts};
  int completed_rounds = 0;
  for (int round = 0; round < 6; ++round) {
    const LayoutInstance* target = targets[round % 3];
    while (!bg.Submit(target)) {
      std::this_thread::yield();
    }
    bg.Wait();
    ASSERT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
    ++completed_rounds;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  bg.Wait();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(bg.stats().completed, completed_rounds);
  // Readers are gone: now reclaiming outgoing files is safe, and fresh
  // queries serve the final layout correctly.
  store.Vacuum();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto exec = store.ExecuteQuery(queries[i]);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(exec->matches, expected[i]);
  }
}

TEST(BackgroundStressTest, ConcurrentSubmittersNeverDoubleBook) {
  Table t = testutil::MakeEventTable(3000, 43);
  LayoutInstance a =
      testutil::MakeSortedInstance(t, 0, 8, "a", /*sample_seed=*/3);
  LayoutInstance b =
      testutil::MakeSortedInstance(t, 1, 8, "b", /*sample_seed=*/3);
  LayoutInstance c =
      testutil::MakeSortedInstance(t, 0, 4, "c", /*sample_seed=*/3);

  PhysicalStore store(testutil::ScratchDir("bg_submit"), /*num_threads=*/2);
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());

  BackgroundReorganizer bg(&store, &t);
  std::atomic<int> accepted{0};

  // Two threads race Submit; every accepted submission must eventually be
  // one completed reorganization (single in-flight rewrite at a time).
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&, s] {
      const LayoutInstance* mine = (s == 0) ? &b : &c;
      for (int i = 0; i < 40; ++i) {
        if (bg.Submit(mine)) ++accepted;
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  bg.Wait();
  ASSERT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
  EXPECT_GE(accepted.load(), 1);
  EXPECT_EQ(bg.stats().completed, accepted.load());
  // The store still holds exactly one consistent layout with all rows.
  store.Vacuum();
  Query full;
  auto exec = store.ExecuteQuery(full);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->matches, t.num_rows());
}

// ---------------------------------------------------- ReorgPool tests ----

// Per-shard rewrites genuinely overlap: four shards submit together, and a
// start gate holds every worker until at least two reorganizations are
// running at once — then max_concurrent_observed() must prove the overlap.
TEST(BackgroundStressTest, PerShardReorganizationsRunConcurrently) {
  constexpr uint32_t kShards = 4;
  std::vector<Table> tables;
  std::vector<std::unique_ptr<PhysicalStore>> stores;
  std::vector<LayoutInstance> from;
  std::vector<LayoutInstance> to;
  for (uint32_t s = 0; s < kShards; ++s) {
    tables.push_back(testutil::MakeEventTable(1500, 50 + s));
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    from.push_back(
        testutil::MakeSortedInstance(tables[s], 0, 8, "from", /*seed=*/3));
    to.push_back(
        testutil::MakeSortedInstance(tables[s], 1, 8, "to", /*seed=*/3));
    stores.push_back(std::make_unique<PhysicalStore>(
        testutil::ScratchDir("reorg_pool_" + std::to_string(s)),
        /*num_threads=*/1));
    ASSERT_TRUE(stores[s]->MaterializeLayout(tables[s], from[s]).ok());
  }

  ReorgPool pool(kShards);
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  std::atomic<int> completions{0};
  for (uint32_t s = 0; s < kShards; ++s) {
    ReorgPool::Job job;
    job.shard = s;
    job.store = stores[s].get();
    job.table = &tables[s];
    job.target = &to[s];
    job.on_start = [&] {
      // Hold every rewrite until a second one has arrived, so >= 2 run
      // simultaneously no matter how the workers are scheduled.
      std::unique_lock<std::mutex> lock(mu);
      ++started;
      cv.notify_all();
      cv.wait(lock, [&] { return started >= 2; });
    };
    job.on_done = [&](const Status& st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      ++completions;
    };
    ASSERT_TRUE(pool.Submit(std::move(job))) << "shard " << s;
    // Within a shard, a second submission must bounce while one is queued
    // or running.
    ReorgPool::Job dup;
    dup.shard = s;
    dup.store = stores[s].get();
    dup.table = &tables[s];
    dup.target = &from[s];
    EXPECT_FALSE(pool.Submit(std::move(dup)));
  }
  pool.WaitAll();
  EXPECT_EQ(completions.load(), static_cast<int>(kShards));
  EXPECT_GE(pool.max_concurrent_observed(), 2u)
      << "per-shard reorganizations never overlapped";
  EXPECT_EQ(pool.stats().completed, static_cast<int64_t>(kShards));
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(pool.generation(s), 1u);
    EXPECT_TRUE(pool.last_status(s).ok());
    EXPECT_EQ(stores[s]->current_instance(), &to[s]);
    // Data survived the swap.
    stores[s]->Vacuum();
    auto exec = stores[s]->ExecuteQuery(Query{});
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(exec->matches, tables[s].num_rows());
  }
}

// Shutdown-ordering regression (latent use-after-free found reviewing the
// PR 3 callback Submit): a job still *queued* when the pool is destroyed
// must be discarded — its reorganization never runs and its completion
// callback never fires — because by the time the worker could run it, the
// owning engine's other members may already be mid-destruction. The running
// job's callback still fires before the destructor returns.
TEST(BackgroundStressTest, DestructionDiscardsQueuedJobsWithoutFiringThem) {
  Table t = testutil::MakeEventTable(1500, 61);
  LayoutInstance a = testutil::MakeSortedInstance(t, 0, 8, "a", 3);
  LayoutInstance b = testutil::MakeSortedInstance(t, 1, 8, "b", 3);
  PhysicalStore store_a(testutil::ScratchDir("reorg_shutdown_a"), 1);
  PhysicalStore store_b(testutil::ScratchDir("reorg_shutdown_b"), 1);
  ASSERT_TRUE(store_a.MaterializeLayout(t, a).ok());
  ASSERT_TRUE(store_b.MaterializeLayout(t, a).ok());

  std::atomic<bool> running_done{false};
  std::atomic<bool> queued_done{false};
  std::mutex mu;
  std::condition_variable cv;
  bool first_started = false;
  bool queued_job_destroyed = false;
  {
    // One worker: the first job runs, the second stays queued behind it.
    ReorgPool pool(1);
    ReorgPool::Job first;
    first.shard = 0;
    first.store = &store_a;
    first.table = &t;
    first.target = &b;
    first.on_start = [&] {
      // Hold the running job until the destructor has provably discarded
      // the queued one (its callback's sentinel has been destroyed), so the
      // discard-vs-pickup order is deterministic.
      std::unique_lock<std::mutex> lock(mu);
      first_started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return queued_job_destroyed; });
    };
    first.on_done = [&](const Status&) { running_done = true; };
    ASSERT_TRUE(pool.Submit(std::move(first)));
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return first_started; });
    }
    // The queued job's callback owns a sentinel; when the destructor
    // discards the job, the callback — and with it the sentinel — is
    // destroyed, which releases the gate above.
    auto sentinel = std::shared_ptr<int>(new int(0), [&](int* p) {
      delete p;
      std::lock_guard<std::mutex> lock(mu);
      queued_job_destroyed = true;
      cv.notify_all();
    });
    ReorgPool::Job queued;
    queued.shard = 1;
    queued.store = &store_b;
    queued.table = &t;
    queued.target = &b;
    queued.on_done = [&queued_done, sentinel](const Status&) {
      queued_done = true;
    };
    sentinel.reset();  // the job's callback now holds the only reference
    ASSERT_TRUE(pool.Submit(std::move(queued)));
    EXPECT_EQ(pool.stats().discarded, 0);
    // ~ReorgPool: discards `queued` (destroying its callback → sentinel →
    // gate opens), then joins the worker, whose on_done fires on the way
    // out. store_b is never rewritten.
  }
  EXPECT_TRUE(running_done.load())
      << "the running job's callback must fire before the destructor returns";
  EXPECT_FALSE(queued_done.load())
      << "a queued job's callback fired during/after destruction";
  EXPECT_EQ(store_a.current_instance(), &b);
  EXPECT_EQ(store_b.current_instance(), &a) << "a discarded job ran anyway";
}

// The legacy facade inherits the shutdown contract: destroying it right
// after an accepted Submit must be safe — the callback either fired on the
// worker before the join or was discarded unfired, and it can never touch
// freed state afterwards (ASan/TSan verify the "never after" half).
TEST(BackgroundStressTest, ReorganizerDestructionAfterSubmitIsSafe) {
  Table t = testutil::MakeEventTable(1500, 62);
  LayoutInstance a = testutil::MakeSortedInstance(t, 0, 8, "a", 3);
  LayoutInstance b = testutil::MakeSortedInstance(t, 1, 8, "b", 3);
  for (int round = 0; round < 8; ++round) {
    PhysicalStore store(testutil::ScratchDir("bg_dtor_race"), 1);
    ASSERT_TRUE(store.MaterializeLayout(t, a).ok());
    std::atomic<bool> fired{false};
    bool accepted = false;
    {
      BackgroundReorganizer bg(&store, &t);
      accepted = bg.Submit(&b, [&](const Status& st) {
        EXPECT_TRUE(st.ok()) << st.ToString();
        fired = true;
      });
      // Destructor races the worker's pickup of the queued job.
    }
    ASSERT_TRUE(accepted);
    // Exactly two legal outcomes: the rewrite completed (callback fired,
    // store swapped) or it was discarded unstarted (callback unfired,
    // store untouched).
    if (fired.load()) {
      EXPECT_EQ(store.current_instance(), &b);
    } else {
      EXPECT_EQ(store.current_instance(), &a);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace oreo
