// Concurrency stress for the background reorganizer: a worker thread keeps
// rewriting the store into alternating layouts while foreground threads
// hammer GetSnapshot / ExecuteQueryOnSnapshot / busy() / MaterializedBytes.
// Results must stay correct throughout — every snapshot query sees exactly
// the matches the table implies, no matter where the swap lands. Run under
// -DOREO_SANITIZE=thread this doubles as the race detector for the whole
// PhysicalStore + ThreadPool + BackgroundReorganizer stack (the TSan CI job
// does exactly that).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/background.h"
#include "core/physical.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

TEST(BackgroundStressTest, SnapshotQueriesStayCorrectAcrossRepeatedSwaps) {
  Table t = testutil::MakeEventTable(6000, 41);
  // Targets must outlive every in-flight reorganization.
  LayoutInstance by_ts =
      testutil::MakeSortedInstance(t, 0, 16, "by_ts", /*sample_seed=*/3);
  LayoutInstance by_qty =
      testutil::MakeSortedInstance(t, 1, 16, "by_qty", /*sample_seed=*/3);
  LayoutInstance coarse =
      testutil::MakeSortedInstance(t, 0, 8, "coarse", /*sample_seed=*/3);

  PhysicalStore store(testutil::ScratchDir("bg_stress"), /*num_threads=*/2);
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());

  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 120, 4, 42);
  std::vector<uint64_t> expected;
  for (const Query& q : queries) expected.push_back(CountMatches(t, q));

  BackgroundReorganizer bg(&store, &t);
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<uint64_t> reads{0};

  // Foreground readers: pin a snapshot, query it, spot-check the counters.
  // Outgoing files are only vacuumed after the readers join, so a snapshot
  // taken right before a swap must keep serving correct results.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        PhysicalStore::Snapshot snap = store.GetSnapshot();
        const Query& q = queries[i % queries.size()];
        auto exec = store.ExecuteQueryOnSnapshot(snap, q);
        if (!exec.ok() || exec->matches != expected[i % queries.size()]) {
          ++reader_errors;
        }
        (void)store.MaterializedBytes();
        (void)bg.busy();
        ++reads;
        ++i;
      }
    });
  }

  // Driver: six full swaps, alternating targets; Submit may bounce while a
  // rewrite is in flight (that is the documented single-process contract).
  const LayoutInstance* targets[] = {&by_qty, &coarse, &by_ts};
  int completed_rounds = 0;
  for (int round = 0; round < 6; ++round) {
    const LayoutInstance* target = targets[round % 3];
    while (!bg.Submit(target)) {
      std::this_thread::yield();
    }
    bg.Wait();
    ASSERT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
    ++completed_rounds;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  bg.Wait();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(bg.stats().completed, completed_rounds);
  // Readers are gone: now reclaiming outgoing files is safe, and fresh
  // queries serve the final layout correctly.
  store.Vacuum();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto exec = store.ExecuteQuery(queries[i]);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(exec->matches, expected[i]);
  }
}

TEST(BackgroundStressTest, ConcurrentSubmittersNeverDoubleBook) {
  Table t = testutil::MakeEventTable(3000, 43);
  LayoutInstance a =
      testutil::MakeSortedInstance(t, 0, 8, "a", /*sample_seed=*/3);
  LayoutInstance b =
      testutil::MakeSortedInstance(t, 1, 8, "b", /*sample_seed=*/3);
  LayoutInstance c =
      testutil::MakeSortedInstance(t, 0, 4, "c", /*sample_seed=*/3);

  PhysicalStore store(testutil::ScratchDir("bg_submit"), /*num_threads=*/2);
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());

  BackgroundReorganizer bg(&store, &t);
  std::atomic<int> accepted{0};

  // Two threads race Submit; every accepted submission must eventually be
  // one completed reorganization (single in-flight rewrite at a time).
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s) {
    submitters.emplace_back([&, s] {
      const LayoutInstance* mine = (s == 0) ? &b : &c;
      for (int i = 0; i < 40; ++i) {
        if (bg.Submit(mine)) ++accepted;
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  bg.Wait();
  ASSERT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
  EXPECT_GE(accepted.load(), 1);
  EXPECT_EQ(bg.stats().completed, accepted.load());
  // The store still holds exactly one consistent layout with all rows.
  store.Vacuum();
  Query full;
  auto exec = store.ExecuteQuery(full);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->matches, t.num_rows());
}

}  // namespace
}  // namespace core
}  // namespace oreo
