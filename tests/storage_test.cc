// Tests for src/storage: Column, Table, ZoneMap, Partitioning.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "query/query.h"
#include "storage/partitioning.h"
#include "storage/table.h"
#include "storage/zone_map.h"
#include "test_util.h"

namespace oreo {
namespace {

Schema TestSchema() { return testutil::IdScoreTagSchema(); }

Table SmallTable() { return testutil::SmallIdScoreTagTable(); }

// -------------------------------------------------------------- Column ----

TEST(ColumnTest, Int64AppendGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(10);
  c.AppendInt64(-3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt64(0), 10);
  EXPECT_EQ(c.GetInt64(1), -3);
  EXPECT_DOUBLE_EQ(c.GetNumeric(1), -3.0);
}

TEST(ColumnTest, StringDictionaryDedupes) {
  Column c(DataType::kString);
  c.AppendString("x");
  c.AppendString("y");
  c.AppendString("x");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_EQ(c.GetString(0), "x");
  EXPECT_EQ(c.GetString(2), "x");
  EXPECT_EQ(c.GetCode(0), c.GetCode(2));
  EXPECT_NE(c.GetCode(0), c.GetCode(1));
}

TEST(ColumnTest, FindCode) {
  Column c(DataType::kString);
  c.AppendString("hello");
  EXPECT_EQ(c.FindCode("hello"), 0);
  EXPECT_EQ(c.FindCode("world"), -1);
}

TEST(ColumnTest, GetValueRoundTrip) {
  Column c(DataType::kDouble);
  c.AppendDouble(3.25);
  EXPECT_TRUE(c.GetValue(0) == Value(3.25));
}

TEST(ColumnTest, TakeReordersAndRepeats) {
  Column c(DataType::kInt64);
  for (int64_t v : {10, 20, 30}) c.AppendInt64(v);
  Column t = c.Take({2, 0, 2});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.GetInt64(0), 30);
  EXPECT_EQ(t.GetInt64(1), 10);
  EXPECT_EQ(t.GetInt64(2), 30);
}

TEST(ColumnTest, TakeStringPreservesValues) {
  Column c(DataType::kString);
  for (const char* v : {"a", "b", "c"}) c.AppendString(v);
  Column t = c.Take({1, 2});
  EXPECT_EQ(t.GetString(0), "b");
  EXPECT_EQ(t.GetString(1), "c");
}

// --------------------------------------------------------------- Table ----

TEST(TableTest, AppendRowAndAccess) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column(0).GetInt64(1), 5);
  EXPECT_EQ(t.column(2).GetString(3), "c");
}

TEST(TableTest, TakeSubset) {
  Table t = SmallTable();
  Table sub = t.Take({3, 1});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.column(0).GetInt64(0), 9);
  EXPECT_EQ(sub.column(0).GetInt64(1), 5);
  EXPECT_TRUE(sub.schema().Equals(t.schema()));
}

TEST(TableTest, SampleRowsWithoutReplacement) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (int64_t i = 0; i < 100; ++i) t.AppendRow({Value(i)});
  Rng rng(3);
  std::vector<uint32_t> ids;
  Table s = t.SampleRows(30, &rng, &ids);
  EXPECT_EQ(s.num_rows(), 30u);
  std::set<uint32_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 30u);
  // Sample table rows must match the reported row ids.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(s.column(0).GetInt64(i), static_cast<int64_t>(ids[i]));
  }
}

TEST(TableTest, SampleMoreThanRowsReturnsAll) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (int64_t i = 0; i < 5; ++i) t.AppendRow({Value(i)});
  Rng rng(3);
  Table s = t.SampleRows(50, &rng);
  EXPECT_EQ(s.num_rows(), 5u);
}

TEST(TableTest, MemoryBytesPositive) {
  Table t = SmallTable();
  EXPECT_GT(t.MemoryBytes(), 0u);
}

TEST(TableTest, AppendConcatenatesRows) {
  Table a = SmallTable();
  Table b = SmallTable();
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 8u);
  // Second half mirrors the first.
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (uint32_t r = 0; r < 4; ++r) {
      EXPECT_TRUE(a.column(c).GetValue(r) == a.column(c).GetValue(r + 4));
    }
  }
}

TEST(TableTest, AppendRemapsStringDictionaries) {
  Table a(Schema({{"s", DataType::kString}}));
  a.AppendRow({Value("x")});
  Table b(Schema({{"s", DataType::kString}}));
  b.AppendRow({Value("y")});
  b.AppendRow({Value("x")});
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.column(0).GetString(0), "x");
  EXPECT_EQ(a.column(0).GetString(1), "y");
  EXPECT_EQ(a.column(0).GetString(2), "x");
  EXPECT_EQ(a.column(0).GetCode(0), a.column(0).GetCode(2));
}

TEST(TableTest, AppendEmptyIsNoop) {
  Table a = SmallTable();
  Table b(TestSchema());
  a.Append(b);
  EXPECT_EQ(a.num_rows(), 4u);
}

// ------------------------------------------------------------- ZoneMap ----

TEST(ZoneMapTest, NumericBounds) {
  Table t = SmallTable();
  ZoneMap zm = BuildZoneMap(t);
  EXPECT_EQ(zm.num_rows, 4u);
  EXPECT_EQ(zm.columns[0].int_min, 1);
  EXPECT_EQ(zm.columns[0].int_max, 9);
  EXPECT_DOUBLE_EQ(zm.columns[1].dbl_min, -2.0);
  EXPECT_DOUBLE_EQ(zm.columns[1].dbl_max, 1.5);
}

TEST(ZoneMapTest, StringBoundsAndDistinct) {
  Table t = SmallTable();
  ZoneMap zm = BuildZoneMap(t);
  const ColumnZone& z = zm.columns[2];
  EXPECT_EQ(z.str_min, "a");
  EXPECT_EQ(z.str_max, "c");
  EXPECT_FALSE(z.distinct_overflow);
  EXPECT_EQ(z.distinct.size(), 3u);
  EXPECT_TRUE(z.distinct.count("b"));
}

TEST(ZoneMapTest, DistinctOverflow) {
  Table t(Schema({{"s", DataType::kString}}));
  for (int i = 0; i < 200; ++i) {
    t.AppendRow({Value("val" + std::to_string(i))});
  }
  ZoneMap zm = BuildZoneMap(t);
  EXPECT_TRUE(zm.columns[0].distinct_overflow);
  EXPECT_TRUE(zm.columns[0].distinct.empty());
  EXPECT_FALSE(zm.columns[0].empty);
}

TEST(ZoneMapTest, SubsetOfRows) {
  Table t = SmallTable();
  ZoneMap zm = BuildZoneMap(t, {0, 2});
  EXPECT_EQ(zm.num_rows, 2u);
  EXPECT_EQ(zm.columns[0].int_min, 1);
  EXPECT_EQ(zm.columns[0].int_max, 3);
}

TEST(ZoneMapTest, EmptyZone) {
  Table t = SmallTable();
  ZoneMap zm = BuildZoneMap(t, {});
  EXPECT_EQ(zm.num_rows, 0u);
  EXPECT_TRUE(zm.columns[0].empty);
}

// -------------------------------------------------------- Partitioning ----

TEST(PartitioningTest, BuildsAndValidates) {
  Table t = SmallTable();
  std::vector<uint32_t> assignment = {0, 1, 0, 1};
  Partitioning p = BuildPartitioning(t, assignment, 2);
  EXPECT_EQ(p.num_partitions(), 2u);
  EXPECT_EQ(p.total_rows, 4u);
  EXPECT_TRUE(ValidatePartitioning(p, 4));
  EXPECT_EQ(p.zones[0].num_rows, 2u);
}

TEST(PartitioningTest, DropsEmptyPartitions) {
  Table t = SmallTable();
  std::vector<uint32_t> assignment = {3, 3, 3, 3};
  Partitioning p = BuildPartitioning(t, assignment, 5);
  EXPECT_EQ(p.num_partitions(), 1u);
  EXPECT_TRUE(ValidatePartitioning(p, 4));
}

TEST(PartitioningTest, ZonesMatchPartitionContents) {
  Table t = SmallTable();
  std::vector<uint32_t> assignment = {0, 1, 0, 1};
  Partitioning p = BuildPartitioning(t, assignment, 2);
  // Partition 0 holds rows {0, 2}: ids {1, 3}.
  EXPECT_EQ(p.zones[0].columns[0].int_min, 1);
  EXPECT_EQ(p.zones[0].columns[0].int_max, 3);
  // Partition 1 holds rows {1, 3}: ids {5, 9}.
  EXPECT_EQ(p.zones[1].columns[0].int_min, 5);
  EXPECT_EQ(p.zones[1].columns[0].int_max, 9);
}

TEST(PartitioningTest, ValidateCatchesMissingRow) {
  Partitioning p;
  p.partitions = {{0, 1}};  // row 2 missing
  p.zones.resize(1);
  p.zones[0].num_rows = 2;
  EXPECT_FALSE(ValidatePartitioning(p, 3));
}

TEST(PartitioningTest, ValidateCatchesDuplicateRow) {
  Partitioning p;
  p.partitions = {{0, 1}, {1, 2}};
  p.zones.resize(2);
  p.zones[0].num_rows = 2;
  p.zones[1].num_rows = 2;
  EXPECT_FALSE(ValidatePartitioning(p, 3));
}

// ------------------------------------- zone-map pruning soundness --------

// The load-bearing invariant of the cost model: CanSkipPartition may only
// claim a skip when the partition truly holds no matching row. Randomized
// partitions x randomized range/equality predicates over all three column
// types; any false negative is a correctness bug, not a quality regression.
TEST(ZoneMapPruningPropertyTest, NoFalseNegativesUnderRangePredicates) {
  Rng rng(1234);
  Table t = testutil::MakeSalesTable(1500, 9);
  const uint32_t kParts = 8;

  // Random (not value-correlated) assignment: zones get wide ranges, which
  // stresses the "must not skip" direction.
  std::vector<std::vector<uint32_t>> part_rows(kParts);
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    part_rows[rng.Uniform(kParts)].push_back(r);
  }
  std::vector<ZoneMap> zones;
  for (const auto& rows : part_rows) zones.push_back(BuildZoneMap(t, rows));

  const char* regions[] = {"asia", "europe", "america", "africa", "oceania",
                           "antarctica"};  // last one matches no row
  for (int trial = 0; trial < 400; ++trial) {
    Query q;
    switch (rng.Uniform(5)) {
      case 0: {  // int range
        int64_t lo = rng.UniformInt(0, 100);
        q.conjuncts = {Predicate::Between(
            0, Value(lo), Value(lo + rng.UniformInt(0, 20)))};
        break;
      }
      case 1: {  // int half-open comparisons
        q.conjuncts = {rng.Uniform(2) == 0
                           ? Predicate::Lt(0, Value(rng.UniformInt(0, 100)))
                           : Predicate::Ge(0, Value(rng.UniformInt(0, 100)))};
        break;
      }
      case 2: {  // double range
        double lo = rng.UniformDouble(0.0, 50.0);
        q.conjuncts = {Predicate::Between(1, Value(lo),
                                          Value(lo + rng.UniformDouble(0, 5)))};
        break;
      }
      case 3: {  // string equality (sometimes matching nothing)
        q.conjuncts = {Predicate::Eq(2, Value(regions[rng.Uniform(6)]))};
        break;
      }
      default: {  // conjunction across columns
        int64_t lo = rng.UniformInt(0, 90);
        q.conjuncts = {Predicate::Between(0, Value(lo), Value(lo + 10)),
                       Predicate::Eq(2, Value(regions[rng.Uniform(5)]))};
        break;
      }
    }
    for (uint32_t p = 0; p < kParts; ++p) {
      if (q.CanSkipPartition(zones[p])) {
        EXPECT_EQ(CountMatches(t, part_rows[p], q), 0u)
            << "false negative: skipped partition " << p
            << " containing matches for " << q.ToString(&t.schema());
      }
    }
  }
}

TEST(ZoneMapPruningPropertyTest, SkipsDisjointRangeAndKeepsOverlapping) {
  // Deterministic anchor next to the property test: a zone spanning
  // ids [1, 9] must not be skippable for [0, 5] but must be for [10, 20].
  Table t = SmallTable();
  ZoneMap zone = BuildZoneMap(t);
  Query hit;
  hit.conjuncts = {Predicate::Between(0, Value(int64_t{0}), Value(int64_t{5}))};
  EXPECT_FALSE(hit.CanSkipPartition(zone));
  Query miss;
  miss.conjuncts = {
      Predicate::Between(0, Value(int64_t{10}), Value(int64_t{20}))};
  EXPECT_TRUE(miss.CanSkipPartition(zone));
}

}  // namespace
}  // namespace oreo
