// End-to-end competitive-ratio property test (Theorem IV.1 at the system
// level): on randomized drifting query streams, the total cost of Oreo::Run
// stays within the paper's worst-case factor 2*H(|S_max|) (plus the alpha
// slack for the final unfinished phase) of the offline optimum over the same
// dynamic state space, computed exactly by mts::SolveOfflineUniformDynamic.
//
// The offline adversary is reconstructed faithfully: a first Oreo instance
// is driven query-by-query to record which states were live at every step;
// the cost matrix is then filled from the registry (removed states stay
// readable), and availability restricts the adversary to the states the
// online algorithm could actually have used — the oblivious adversary of
// paper SIII-A.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "mts/offline.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

using testutil::Harmonic;

OreoOptions PropOpts(uint64_t seed, double alpha) {
  OreoOptions o;
  o.alpha = alpha;
  o.window_size = 100;
  o.generate_every = 100;
  o.target_partitions = 16;
  o.dataset_sample_rows = 600;
  o.max_states = 6;
  o.seed = seed;
  return o;
}

// Three-segment drifting stream over the {ts, qty, cat} event table.
std::vector<Query> DriftingStream(size_t rows, size_t n, uint64_t seed) {
  const size_t third = n / 3;
  std::vector<Query> a = testutil::MakeRangeWorkload(
      /*column=*/1, /*domain=*/1000, /*width=*/50, third, seed);
  std::vector<Query> b = testutil::MakeRangeWorkload(
      /*column=*/0, /*domain=*/static_cast<int64_t>(rows), /*width=*/80,
      third, seed + 1);
  std::vector<Query> c = testutil::MakeRangeWorkload(
      /*column=*/1, /*domain=*/1000, /*width=*/200, n - 2 * third, seed + 2);
  std::vector<Query> out;
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  for (size_t i = 0; i < out.size(); ++i) out[i].id = static_cast<int64_t>(i);
  return out;
}

class CompetitiveRatioPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompetitiveRatioPropertyTest, RunCostWithinPaperBoundOfOffline) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const double alpha = 25.0;
  const size_t kRows = 3000;
  const size_t kQueries = 900;

  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = DriftingStream(kRows, kQueries, seed * 31 + 1);
  QdTreeGenerator gen;

  // Pass 1: drive Step() to record per-query state availability.
  Oreo recorder(&t, &gen, /*time_column=*/0, PropOpts(seed, alpha));
  std::vector<std::vector<int>> live_at;
  size_t max_live = 1;
  live_at.reserve(stream.size());
  for (const Query& q : stream) {
    recorder.Step(q);
    live_at.push_back(recorder.registry().live());
    max_live = std::max(max_live, live_at.back().size());
  }
  const double alg_cost =
      recorder.total_query_cost() + recorder.total_reorg_cost();

  // Pass 2: the batch API on a fresh instance must reproduce pass 1 (the
  // property below is therefore a statement about Oreo::Run).
  Oreo runner(&t, &gen, 0, PropOpts(seed, alpha));
  SimResult run = runner.Run(stream);
  ASSERT_NEAR(run.total_cost(), alg_cost, 1e-9);

  // Offline optimum over the same dynamic state space.
  const size_t num_states = recorder.registry().num_total();
  std::vector<std::vector<double>> costs(
      stream.size(), std::vector<double>(num_states, 0.0));
  std::vector<std::vector<bool>> avail(
      stream.size(), std::vector<bool>(num_states, false));
  for (size_t qi = 0; qi < stream.size(); ++qi) {
    for (size_t s = 0; s < num_states; ++s) {
      costs[qi][s] = recorder.registry().Cost(static_cast<int>(s), stream[qi]);
    }
    for (int s : live_at[qi]) avail[qi][static_cast<size_t>(s)] = true;
  }
  mts::OfflineResult opt =
      mts::SolveOfflineUniformDynamic(costs, avail, alpha);

  // The property must not hold vacuously: the drifting stream has to grow
  // the state space and trigger at least one reorganization.
  EXPECT_GT(max_live, 1u);
  EXPECT_GE(recorder.num_switches(), 1);

  // Online can never beat the exact offline optimum on its own trajectory...
  EXPECT_GE(alg_cost, opt.total_cost - 1e-9);
  // ...and must stay within the paper's worst-case factor of it.
  const double bound = 2.0 * Harmonic(max_live) * (opt.total_cost + alpha);
  EXPECT_LE(alg_cost, bound)
      << "seed=" << seed << " ALG=" << alg_cost << " OPT=" << opt.total_cost
      << " |S_max|=" << max_live << " switches=" << recorder.num_switches();
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, CompetitiveRatioPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------- the bound under live ingest -----------------------

// Theorem IV.1 while the data mutates: D-UMTS is 2*H(|S_max|)-competitive
// for ANY cost matrix in [0, 1], and under pending mutations the engine
// decides on — and charges — the live cost
//   c_live(s, q) = (c_base(s, q) * B + D(q)) / (B + Delta).
// The adversary must therefore be judged on the SAME time-varying matrix:
// cost rows are recorded at step time from the public accessors (base costs
// change at every compaction fold, when the registry rematerializes over the
// folded table, so a post-hoc reconstruction would judge the adversary on
// the wrong matrix). The schedule crosses fold_threshold at least once, so
// the bound is exercised across a fold, not just across delta growth.
TEST(CompetitiveRatioIngestTest, BoundHoldsWhileDataMutates) {
  const uint64_t seed = 17;
  const double alpha = 25.0;
  const size_t kRows = 3000;
  const size_t kQueries = 600;
  const size_t kIngestEvery = 60;
  const size_t kRowsPerBatch = 200;

  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = DriftingStream(kRows, kQueries, seed * 31 + 1);
  QdTreeGenerator gen;

  // The drifting feed: fresh ts values past the base domain.
  Table feed(testutil::EventSchema());
  {
    Rng rng(seed * 977 + 5);
    const char* cats[] = {"a", "b", "c", "d"};
    for (size_t i = 0; i < kQueries / kIngestEvery * kRowsPerBatch; ++i) {
      feed.AppendRow({Value(static_cast<int64_t>(4000 + i)),
                      Value(rng.UniformInt(0, 1000)),
                      Value(cats[rng.Uniform(4)])});
    }
  }

  Oreo recorder(&t, &gen, /*time_column=*/0, PropOpts(seed, alpha));
  std::vector<std::vector<int>> live_at;
  std::vector<std::vector<double>> live_costs;  // parallel to live_at
  size_t max_live = 1;
  size_t batches = 0;
  uint64_t rows_deleted = 0;
  for (size_t qi = 0; qi < stream.size(); ++qi) {
    if (qi > 0 && qi % kIngestEvery == 0) {
      ++batches;
      IngestBatch batch;
      std::vector<uint32_t> ids;
      for (size_t r = (batches - 1) * kRowsPerBatch;
           r < batches * kRowsPerBatch; ++r) {
        ids.push_back(static_cast<uint32_t>(r));
      }
      batch.rows = feed.Take(ids);
      if (batches % 3 == 0) {
        const int64_t lo = static_cast<int64_t>(batches) * 37 % 900;
        Query purge;
        purge.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 30))};
        batch.deletes.push_back(std::move(purge));
      }
      Result<IngestResult> applied = recorder.Ingest(std::move(batch));
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      rows_deleted += applied->rows_deleted;
    }
    // Record this step's cost row for every live state, at step time, from
    // the public pieces of the live-cost formula (delta == 0 reproduces the
    // base cost exactly, including pre-ingest steps).
    const std::vector<int> live = recorder.registry().live();
    const double b = static_cast<double>(recorder.live().base().num_rows());
    const double delta = static_cast<double>(recorder.live().delta_rows());
    const double d =
        delta > 0
            ? static_cast<double>(recorder.live().DeltaScanRows(stream[qi]))
            : 0.0;
    std::vector<double> row;
    row.reserve(live.size());
    for (int s : live) {
      const double base_cost = recorder.registry().Cost(s, stream[qi]);
      row.push_back(delta > 0 ? (base_cost * b + d) / (b + delta)
                              : base_cost);
    }
    live_at.push_back(live);
    live_costs.push_back(std::move(row));
    max_live = std::max(max_live, live_at.back().size());
    recorder.Step(stream[qi]);
  }
  const double alg_cost =
      recorder.total_query_cost() + recorder.total_reorg_cost();

  // The fixture must actually exercise mutation: a compaction fold happened,
  // rows were tombstoned, the state space grew, and D-UMTS switched.
  ASSERT_GE(recorder.folds(), 1u) << "schedule never crossed fold_threshold";
  EXPECT_GT(rows_deleted, 0u) << "the purge batches never matched a row";
  EXPECT_GT(max_live, 1u);
  EXPECT_GE(recorder.num_switches(), 1);

  // Offline optimum over the recorded time-varying live-cost matrix.
  const size_t num_states = recorder.registry().num_total();
  std::vector<std::vector<double>> costs(
      stream.size(), std::vector<double>(num_states, 1.0));
  std::vector<std::vector<bool>> avail(
      stream.size(), std::vector<bool>(num_states, false));
  for (size_t qi = 0; qi < stream.size(); ++qi) {
    for (size_t li = 0; li < live_at[qi].size(); ++li) {
      const size_t s = static_cast<size_t>(live_at[qi][li]);
      costs[qi][s] = live_costs[qi][li];
      avail[qi][s] = true;
      ASSERT_GE(costs[qi][s], 0.0);
      ASSERT_LE(costs[qi][s], 1.0) << "live cost left [0, 1] at query " << qi;
    }
  }
  mts::OfflineResult opt = mts::SolveOfflineUniformDynamic(costs, avail, alpha);

  EXPECT_GE(alg_cost, opt.total_cost - 1e-9);
  const double bound = 2.0 * Harmonic(max_live) * (opt.total_cost + alpha);
  EXPECT_LE(alg_cost, bound)
      << "ingest-interleaved bound broken: ALG=" << alg_cost
      << " OPT=" << opt.total_cost << " |S_max|=" << max_live
      << " folds=" << recorder.folds();
}

}  // namespace
}  // namespace core
}  // namespace oreo
