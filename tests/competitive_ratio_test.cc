// End-to-end competitive-ratio property test (Theorem IV.1 at the system
// level): on randomized drifting query streams, the total cost of Oreo::Run
// stays within the paper's worst-case factor 2*H(|S_max|) (plus the alpha
// slack for the final unfinished phase) of the offline optimum over the same
// dynamic state space, computed exactly by mts::SolveOfflineUniformDynamic.
//
// The offline adversary is reconstructed faithfully: a first Oreo instance
// is driven query-by-query to record which states were live at every step;
// the cost matrix is then filled from the registry (removed states stay
// readable), and availability restricts the adversary to the states the
// online algorithm could actually have used — the oblivious adversary of
// paper SIII-A.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "mts/offline.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

using testutil::Harmonic;

OreoOptions PropOpts(uint64_t seed, double alpha) {
  OreoOptions o;
  o.alpha = alpha;
  o.window_size = 100;
  o.generate_every = 100;
  o.target_partitions = 16;
  o.dataset_sample_rows = 600;
  o.max_states = 6;
  o.seed = seed;
  return o;
}

// Three-segment drifting stream over the {ts, qty, cat} event table.
std::vector<Query> DriftingStream(size_t rows, size_t n, uint64_t seed) {
  const size_t third = n / 3;
  std::vector<Query> a = testutil::MakeRangeWorkload(
      /*column=*/1, /*domain=*/1000, /*width=*/50, third, seed);
  std::vector<Query> b = testutil::MakeRangeWorkload(
      /*column=*/0, /*domain=*/static_cast<int64_t>(rows), /*width=*/80,
      third, seed + 1);
  std::vector<Query> c = testutil::MakeRangeWorkload(
      /*column=*/1, /*domain=*/1000, /*width=*/200, n - 2 * third, seed + 2);
  std::vector<Query> out;
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  for (size_t i = 0; i < out.size(); ++i) out[i].id = static_cast<int64_t>(i);
  return out;
}

class CompetitiveRatioPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompetitiveRatioPropertyTest, RunCostWithinPaperBoundOfOffline) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const double alpha = 25.0;
  const size_t kRows = 3000;
  const size_t kQueries = 900;

  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = DriftingStream(kRows, kQueries, seed * 31 + 1);
  QdTreeGenerator gen;

  // Pass 1: drive Step() to record per-query state availability.
  Oreo recorder(&t, &gen, /*time_column=*/0, PropOpts(seed, alpha));
  std::vector<std::vector<int>> live_at;
  size_t max_live = 1;
  live_at.reserve(stream.size());
  for (const Query& q : stream) {
    recorder.Step(q);
    live_at.push_back(recorder.registry().live());
    max_live = std::max(max_live, live_at.back().size());
  }
  const double alg_cost =
      recorder.total_query_cost() + recorder.total_reorg_cost();

  // Pass 2: the batch API on a fresh instance must reproduce pass 1 (the
  // property below is therefore a statement about Oreo::Run).
  Oreo runner(&t, &gen, 0, PropOpts(seed, alpha));
  SimResult run = runner.Run(stream);
  ASSERT_NEAR(run.total_cost(), alg_cost, 1e-9);

  // Offline optimum over the same dynamic state space.
  const size_t num_states = recorder.registry().num_total();
  std::vector<std::vector<double>> costs(
      stream.size(), std::vector<double>(num_states, 0.0));
  std::vector<std::vector<bool>> avail(
      stream.size(), std::vector<bool>(num_states, false));
  for (size_t qi = 0; qi < stream.size(); ++qi) {
    for (size_t s = 0; s < num_states; ++s) {
      costs[qi][s] = recorder.registry().Cost(static_cast<int>(s), stream[qi]);
    }
    for (int s : live_at[qi]) avail[qi][static_cast<size_t>(s)] = true;
  }
  mts::OfflineResult opt =
      mts::SolveOfflineUniformDynamic(costs, avail, alpha);

  // The property must not hold vacuously: the drifting stream has to grow
  // the state space and trigger at least one reorganization.
  EXPECT_GT(max_live, 1u);
  EXPECT_GE(recorder.num_switches(), 1);

  // Online can never beat the exact offline optimum on its own trajectory...
  EXPECT_GE(alg_cost, opt.total_cost - 1e-9);
  // ...and must stay within the paper's worst-case factor of it.
  const double bound = 2.0 * Harmonic(max_live) * (opt.total_cost + alpha);
  EXPECT_LE(alg_cost, bound)
      << "seed=" << seed << " ALG=" << alg_cost << " OPT=" << opt.total_cost
      << " |S_max|=" << max_live << " switches=" << recorder.num_switches();
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, CompetitiveRatioPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace core
}  // namespace oreo
