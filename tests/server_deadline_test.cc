// The deadline wall: per-request latency budgets expire at exactly three
// checkpoints — admission (rejected inline, nothing enqueued), batch
// formation (popped but answered without running) and reply time (expired
// *while the engine ran it*) — and the third never cancels: a query the
// engine started is always executed, keeping the executed audit stream
// bit-identical to a library replay even when every reply carries
// kDeadlineExceeded.
//
// All three checkpoints are pinned deterministically with an injected
// clock (ServerTestHooks::now_micros): an auto-advancing clock forces the
// admission check to see time pass, a manually-advanced clock plus the
// dispatcher gate isolates the formation check, and a clock advanced from
// inside on_batch_start (after formation, before the engine) isolates the
// reply-time check.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

core::OreoOptions CheapOptions() {
  core::OreoOptions opts;
  opts.seed = 41;
  opts.num_threads = 1;
  opts.window_size = 100;
  opts.generate_every = 100000;
  opts.target_partitions = 4;
  opts.dataset_sample_rows = 200;
  return opts;
}

// Same shape as the equivalence wall's fixture: small caps so the replay
// test actually admits, evicts and switches within 120 queries.
core::OreoOptions SwitchyOptions() {
  core::OreoOptions opts;
  opts.seed = 11;
  opts.num_threads = 2;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  return opts;
}

Query RangeQuery(int64_t id, int64_t lo, int64_t hi) {
  Query q;
  q.id = id;
  q.conjuncts = {Predicate::Between(0, Value(lo), Value(hi))};
  return q;
}

// A released-once gate for the dispatcher (same sentinel as the shutdown
// and robustness walls): on_batch_start blocks every batch until Release.
struct DispatcherGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  int entered = 0;

  ServerTestHooks hooks() {
    ServerTestHooks h;
    h.on_batch_start = [this](uint32_t, size_t) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
    return h;
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

constexpr uint32_t kTenant = 1;

class ServerDeadlineTest : public ::testing::Test {
 protected:
  void StartServer(ServerTestHooks hooks,
                   core::OreoOptions options = CheapOptions(),
                   size_t table_rows = 600, uint64_t table_seed = 41) {
    table_ = testutil::MakeEventTable(table_rows, table_seed);
    ServerOptions sopts;
    sopts.dispatchers = 1;  // serialized batches: checkpoints are ordered
    srv_ = std::make_unique<OreoServer>(sopts);
    TenantConfig cfg;
    cfg.name = "deadline";
    cfg.table = &table_;
    cfg.generator = &generator_;
    cfg.time_column = 0;
    cfg.options = options;
    cfg.batch.max_batch = 1;  // one query per batch: per-query checkpoints
    cfg.batch.max_delay_us = 0;
    ASSERT_TRUE(srv_->AddTenant(kTenant, cfg).ok());
    srv_->set_test_hooks(std::move(hooks));
    ASSERT_TRUE(srv_->Start().ok());
  }

  Table table_{testutil::EventSchema()};
  QdTreeGenerator generator_;
  std::unique_ptr<OreoServer> srv_;
};

// ------------------------------------------------ checkpoint: admission --

TEST_F(ServerDeadlineTest, ExpiredAtAdmissionRejectsInline) {
  // Every clock reading advances time by 10us, so a 5us budget is already
  // stale when the admission check re-reads the clock.
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  ServerTestHooks hooks;
  hooks.now_micros = [clock] { return clock->fetch_add(10) + 10; };
  StartServer(std::move(hooks));
  LoopbackClient client(srv_.get());

  Result<QueryReply> expired =
      client.Call(kTenant, RangeQuery(1, 0, 10), /*deadline_us=*/5);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->status, ReplyStatus::kDeadlineExceeded);
  EXPECT_FALSE(expired->executed) << "an admission-expired query never ran";
  EXPECT_NE(expired->message.find("admission"), std::string::npos)
      << expired->message;

  // deadline 0 = no deadline, and a generous budget survives the advancing
  // clock: both execute normally on the same connection.
  Result<QueryReply> no_deadline = client.Call(kTenant, RangeQuery(2, 0, 10));
  ASSERT_TRUE(no_deadline.ok());
  EXPECT_EQ(no_deadline->status, ReplyStatus::kOk);
  EXPECT_TRUE(no_deadline->executed);
  Result<QueryReply> generous = client.Call(kTenant, RangeQuery(3, 0, 10),
                                            /*deadline_us=*/1000000000ull);
  ASSERT_TRUE(generous.ok());
  EXPECT_EQ(generous->status, ReplyStatus::kOk);

  srv_->Shutdown();
  // Nothing of the expired request reached the engine or the audit log.
  EXPECT_EQ(srv_->ExecutedIds(kTenant), (std::vector<int64_t>{2, 3}));
  StatsSnapshot snap = srv_->stats_snapshot();
  EXPECT_EQ(snap.server.expired_admission, 1u);
  EXPECT_EQ(snap.server.expired_formation, 0u);
  EXPECT_EQ(snap.server.expired_reply, 0u);
  EXPECT_EQ(snap.server.executed, 2u);
  ASSERT_EQ(snap.tenants.size(), 1u);
  EXPECT_EQ(snap.tenants[0].expired_admission, 1u);
}

// ------------------------------------------ checkpoint: batch formation --

TEST_F(ServerDeadlineTest, ExpiredInQueueAnsweredAtFormation) {
  // Manual clock: time passes only when the test says so.
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  DispatcherGate gate;
  ServerTestHooks hooks = gate.hooks();
  hooks.now_micros = [clock] { return clock->load(); };
  StartServer(std::move(hooks));
  LoopbackClient client(srv_.get());

  // A fills the single dispatcher and blocks at the gate; B is admitted
  // with a 100us budget and waits in the queue behind it.
  const uint64_t id_a = client.Send(kTenant, RangeQuery(10, 0, 10));
  gate.WaitEntered(1);
  const uint64_t id_b =
      client.Send(kTenant, RangeQuery(11, 0, 10), /*deadline_us=*/100);

  // B's deadline passes while it is queued; when its batch forms it must be
  // answered without ever reaching the engine.
  clock->fetch_add(1000);
  gate.Release();

  Result<QueryReply> reply_a = client.Wait(id_a);
  ASSERT_TRUE(reply_a.ok());
  EXPECT_EQ(reply_a->status, ReplyStatus::kOk);
  EXPECT_TRUE(reply_a->executed);

  Result<QueryReply> reply_b = client.Wait(id_b);
  ASSERT_TRUE(reply_b.ok());
  EXPECT_EQ(reply_b->status, ReplyStatus::kDeadlineExceeded);
  EXPECT_FALSE(reply_b->executed) << "a formation-expired query never ran";
  EXPECT_NE(reply_b->message.find("before the batch formed"),
            std::string::npos)
      << reply_b->message;

  srv_->Shutdown();
  EXPECT_EQ(srv_->ExecutedIds(kTenant), (std::vector<int64_t>{10}));
  StatsSnapshot snap = srv_->stats_snapshot();
  EXPECT_EQ(snap.server.expired_admission, 0u);
  EXPECT_EQ(snap.server.expired_formation, 1u);
  EXPECT_EQ(snap.server.expired_reply, 0u);
  EXPECT_EQ(snap.server.executed, 1u);
}

// ----------------------------------------------- checkpoint: reply time --

TEST_F(ServerDeadlineTest, DeadlinePassingDuringExecutionNeverCancels) {
  // The clock jumps forward *inside* on_batch_start — after the formation
  // check passed, before the engine runs — modeling a slow batch.
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  ServerTestHooks hooks;
  hooks.now_micros = [clock] { return clock->load(); };
  hooks.on_batch_start = [clock](uint32_t, size_t) {
    clock->fetch_add(1000000);
  };
  StartServer(std::move(hooks));
  LoopbackClient client(srv_.get());

  Result<QueryReply> reply =
      client.Call(kTenant, RangeQuery(20, 0, 10), /*deadline_us=*/100);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kDeadlineExceeded);
  // The contract under test: the engine ran it anyway, and the reply
  // carries the real outcome next to the deadline status.
  EXPECT_TRUE(reply->executed);
  EXPECT_GE(reply->state, 0);
  EXPECT_NE(reply->message.find("during execution"), std::string::npos)
      << reply->message;

  srv_->Shutdown();
  // The query is in the audit log, and its cost bits match a fresh library
  // run of the same stream — late, but never cancelled and never diverged.
  EXPECT_EQ(srv_->ExecutedIds(kTenant), (std::vector<int64_t>{20}));
  auto replay = core::MakeEngine(&table_, &generator_, /*time_column=*/0,
                                 CheapOptions());
  QueryBatch batch;
  batch.queries = {RangeQuery(20, 0, 10)};
  core::OreoEngine::BatchResult result = replay->RunBatch(batch);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].state, reply->state);
  EXPECT_EQ(result.steps[0].query_cost, reply->query_cost);

  StatsSnapshot snap = srv_->stats_snapshot();
  EXPECT_EQ(snap.server.expired_reply, 1u);
  EXPECT_EQ(snap.server.executed, 1u);
}

// --------------------------------------------------- replay bit-identity --

TEST_F(ServerDeadlineTest, ExecutedStreamWithExpiriesReplaysBitIdentical) {
  // A mixed stream: every third query carries a budget that expires during
  // execution (the per-batch hook advances the clock past it), the rest
  // have no deadline. Reply statuses differ — the executed stream must not.
  const size_t kQueries = 320;
  auto clock = std::make_shared<std::atomic<uint64_t>>(1000);
  ServerTestHooks hooks;
  hooks.now_micros = [clock] { return clock->load(); };
  hooks.on_batch_start = [clock](uint32_t, size_t) { clock->fetch_add(50); };
  StartServer(std::move(hooks), SwitchyOptions(), /*table_rows=*/3000,
              /*table_seed=*/500);
  LoopbackClient client(srv_.get());

  // The exact two-phase workload the equivalence wall proves switching on
  // (its single-tenant anchor config), so the replay engine admits, evicts
  // and switches.
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, 3000, 150, kQueries / 2, 901);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, kQueries / 2, 902);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(i + 1);
  }

  std::vector<QueryReply> replies;
  size_t expired_count = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const bool with_deadline = (i % 3 == 2);
    Result<QueryReply> reply =
        client.Call(kTenant, stream[i], with_deadline ? 10 : 0);
    ASSERT_TRUE(reply.ok()) << "query " << i;
    // Synchronous stream + max_batch 1: the query was alone in its batch,
    // the formation check saw a fresh clock, the hook then expired it.
    if (with_deadline) {
      EXPECT_EQ(reply->status, ReplyStatus::kDeadlineExceeded) << i;
      ++expired_count;
    } else {
      EXPECT_EQ(reply->status, ReplyStatus::kOk) << i;
    }
    EXPECT_TRUE(reply->executed) << "query " << i << " was cancelled";
    replies.push_back(std::move(*reply));
  }
  srv_->Shutdown();

  // The audit log holds the full stream in order, expiries included.
  std::vector<int64_t> expected_order;
  for (const Query& q : stream) expected_order.push_back(q.id);
  EXPECT_EQ(srv_->ExecutedIds(kTenant), expected_order);

  // Replay through a fresh library engine with a batch size the server
  // never used; every reply — kOk and kDeadlineExceeded alike — must match
  // state, reorganization decision and raw cost bits.
  auto replay = core::MakeEngine(&table_, &generator_, /*time_column=*/0,
                                 SwitchyOptions());
  size_t pos = 0;
  for (const QueryBatch& b : MakeBatches(stream, 7)) {
    core::OreoEngine::BatchResult result = replay->RunBatch(b);
    ASSERT_EQ(result.steps.size(), b.size());
    for (const core::OreoEngine::StepResult& step : result.steps) {
      EXPECT_EQ(step.state, replies[pos].state) << "query #" << pos;
      EXPECT_EQ(step.reorganized, replies[pos].reorganized) << "#" << pos;
      EXPECT_EQ(step.query_cost, replies[pos].query_cost) << "#" << pos;
      ++pos;
    }
  }
  ASSERT_EQ(pos, stream.size());
  EXPECT_GT(replay->num_switches(), 0) << "fixture too tame to pin replay";

  StatsSnapshot snap = srv_->stats_snapshot();
  EXPECT_EQ(snap.server.executed, kQueries);
  EXPECT_EQ(snap.server.expired_reply, expired_count);
  EXPECT_EQ(snap.server.expired_formation, 0u);
  EXPECT_EQ(snap.server.expired_admission, 0u);
}

}  // namespace
}  // namespace server
}  // namespace oreo
