// Tests for src/workloads: dataset shapes and distributions, template
// validity (every instantiated query references real columns with matching
// types and selects a sane number of rows), and the workload state machine.
#include <gtest/gtest.h>

#include <set>

#include "query/query.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

namespace oreo {
namespace workloads {
namespace {

// ------------------------------------------------------------ datasets ----

class DatasetShapeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetShapeTest, RowCountAndSchema) {
  WorkloadDataset ds = MakeDataset(GetParam(), 2000, 1);
  EXPECT_EQ(ds.table.num_rows(), 2000u);
  EXPECT_GT(ds.table.num_columns(), 8u);
  EXPECT_EQ(ds.name, GetParam());
  ASSERT_GE(ds.time_column, 0);
  ASSERT_LT(static_cast<size_t>(ds.time_column), ds.table.num_columns());
  EXPECT_EQ(ds.table.schema().field(static_cast<size_t>(ds.time_column)).type,
            DataType::kInt64);
}

TEST_P(DatasetShapeTest, DeterministicForSeed) {
  WorkloadDataset a = MakeDataset(GetParam(), 500, 42);
  WorkloadDataset b = MakeDataset(GetParam(), 500, 42);
  for (size_t c = 0; c < a.table.num_columns(); ++c) {
    for (uint32_t r = 0; r < 500; r += 37) {
      EXPECT_TRUE(a.table.column(c).GetValue(r) ==
                  b.table.column(c).GetValue(r));
    }
  }
}

TEST_P(DatasetShapeTest, TemplatesProduceValidQueries) {
  WorkloadDataset ds = MakeDataset(GetParam(), 3000, 2);
  Rng rng(3);
  for (const QueryTemplate& tpl : ds.templates) {
    for (int i = 0; i < 5; ++i) {
      Query q = tpl.instantiate(&rng);
      ASSERT_FALSE(q.conjuncts.empty()) << tpl.name;
      for (const Predicate& p : q.conjuncts) {
        ASSERT_GE(p.column, 0) << tpl.name;
        ASSERT_LT(static_cast<size_t>(p.column), ds.table.num_columns())
            << tpl.name;
        // Type compatibility: evaluating on row 0 must not CHECK-fail.
        q.Matches(ds.table, 0);
      }
      // Every template must be satisfiable sometimes but never degenerate to
      // selecting everything in expectation.
      uint64_t matches = CountMatches(ds.table, q);
      EXPECT_LE(matches, ds.table.num_rows()) << tpl.name;
    }
  }
}

TEST_P(DatasetShapeTest, TemplatesAreSelectiveOnAverage) {
  WorkloadDataset ds = MakeDataset(GetParam(), 3000, 4);
  Rng rng(5);
  double total_sel = 0;
  int count = 0;
  for (const QueryTemplate& tpl : ds.templates) {
    for (int i = 0; i < 3; ++i) {
      Query q = tpl.instantiate(&rng);
      total_sel += EstimateSelectivity(ds.table, q);
      ++count;
    }
  }
  // Mean selectivity across templates should be well below a full scan.
  EXPECT_LT(total_sel / count, 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetShapeTest,
                         ::testing::Values("tpch", "tpcds", "telemetry"));

TEST(DatasetTest, TemplateFamiliesMatchPaper) {
  // 13 TPC-H templates, 17 TPC-DS templates (SVI-A2).
  EXPECT_EQ(MakeTpchLike(100, 1).templates.size(), 13u);
  EXPECT_EQ(MakeTpcdsLike(100, 1).templates.size(), 17u);
  EXPECT_GE(MakeTelemetry(100, 1).templates.size(), 8u);
}

TEST(DatasetTest, TelemetryArrivalTimeIsMonotoneInRowOrder) {
  WorkloadDataset ds = MakeTelemetry(2000, 6);
  const Column& at = ds.table.column(0);
  // Allow jitter, but the trend must be increasing.
  EXPECT_LT(at.GetInt64(0), at.GetInt64(1999));
  EXPECT_LT(at.GetInt64(100), at.GetInt64(1200));
}

TEST(DatasetTest, TpchRegionDerivedFromNation) {
  WorkloadDataset ds = MakeTpchLike(2000, 7);
  int nation_col = ds.table.schema().FieldIndex("c_nation");
  int region_col = ds.table.schema().FieldIndex("c_region");
  ASSERT_GE(nation_col, 0);
  ASSERT_GE(region_col, 0);
  // Same nation -> same region, checked across a few rows.
  std::map<std::string, std::string> seen;
  for (uint32_t r = 0; r < 2000; ++r) {
    const std::string& n =
        ds.table.column(static_cast<size_t>(nation_col)).GetString(r);
    const std::string& g =
        ds.table.column(static_cast<size_t>(region_col)).GetString(r);
    auto it = seen.find(n);
    if (it == seen.end()) {
      seen[n] = g;
    } else {
      EXPECT_EQ(it->second, g);
    }
  }
}

// ------------------------------------------------------- workload gen ----

TEST(WorkloadGenTest, ProducesRequestedShape) {
  WorkloadDataset ds = MakeTelemetry(500, 8);
  WorkloadOptions opts;
  opts.num_queries = 2000;
  opts.num_segments = 5;
  opts.seed = 9;
  Workload wl = GenerateWorkload(ds.templates, opts);
  EXPECT_EQ(wl.queries.size(), 2000u);
  EXPECT_EQ(wl.segment_starts.size(), 5u);
  EXPECT_EQ(wl.segment_templates.size(), 5u);
  EXPECT_EQ(wl.segment_starts.front(), 0u);
  // Query ids are positions.
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    EXPECT_EQ(wl.queries[i].id, static_cast<int64_t>(i));
  }
}

TEST(WorkloadGenTest, SegmentsUseDeclaredTemplates) {
  WorkloadDataset ds = MakeTpchLike(500, 10);
  WorkloadOptions opts;
  opts.num_queries = 1000;
  opts.num_segments = 4;
  opts.seed = 11;
  Workload wl = GenerateWorkload(ds.templates, opts);
  for (size_t seg = 0; seg < wl.segment_starts.size(); ++seg) {
    size_t end = (seg + 1 < wl.segment_starts.size())
                     ? wl.segment_starts[seg + 1]
                     : wl.queries.size();
    for (size_t i = wl.segment_starts[seg]; i < end; ++i) {
      EXPECT_EQ(wl.queries[i].template_id, wl.segment_templates[seg]);
    }
  }
}

TEST(WorkloadGenTest, ConsecutiveSegmentsDiffer) {
  WorkloadDataset ds = MakeTpcdsLike(500, 12);
  WorkloadOptions opts;
  opts.num_queries = 3000;
  opts.num_segments = 10;
  opts.seed = 13;
  Workload wl = GenerateWorkload(ds.templates, opts);
  for (size_t seg = 1; seg < wl.segment_templates.size(); ++seg) {
    EXPECT_NE(wl.segment_templates[seg], wl.segment_templates[seg - 1]);
  }
}

TEST(WorkloadGenTest, MinSegmentLengthHonored) {
  WorkloadDataset ds = MakeTelemetry(500, 14);
  WorkloadOptions opts;
  opts.num_queries = 1000;
  opts.num_segments = 8;
  opts.min_segment_length = 60;
  opts.seed = 15;
  Workload wl = GenerateWorkload(ds.templates, opts);
  for (size_t seg = 0; seg < wl.segment_starts.size(); ++seg) {
    size_t end = (seg + 1 < wl.segment_starts.size())
                     ? wl.segment_starts[seg + 1]
                     : wl.queries.size();
    EXPECT_GE(end - wl.segment_starts[seg], 60u);
  }
}

TEST(WorkloadGenTest, DeterministicForSeed) {
  WorkloadDataset ds = MakeTelemetry(500, 16);
  WorkloadOptions opts;
  opts.num_queries = 500;
  opts.num_segments = 3;
  opts.seed = 17;
  Workload a = GenerateWorkload(ds.templates, opts);
  Workload b = GenerateWorkload(ds.templates, opts);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].ToString(), b.queries[i].ToString());
  }
}

TEST(WorkloadGenTest, SegmentPoolLimitsDistinctQueries) {
  WorkloadDataset ds = MakeTpchLike(500, 20);
  WorkloadOptions opts;
  opts.num_queries = 1200;
  opts.num_segments = 4;
  opts.segment_pool_size = 5;
  opts.seed = 21;
  Workload wl = GenerateWorkload(ds.templates, opts);
  for (size_t seg = 0; seg < wl.segment_starts.size(); ++seg) {
    size_t end = (seg + 1 < wl.segment_starts.size())
                     ? wl.segment_starts[seg + 1]
                     : wl.queries.size();
    std::set<std::string> distinct;
    for (size_t i = wl.segment_starts[seg]; i < end; ++i) {
      distinct.insert(wl.queries[i].ToString());
    }
    EXPECT_LE(distinct.size(), 5u);
    EXPECT_GE(distinct.size(), 1u);
  }
}

TEST(WorkloadGenTest, ZeroPoolDrawsFreshParameters) {
  WorkloadDataset ds = MakeTelemetry(500, 22);
  WorkloadOptions opts;
  opts.num_queries = 400;
  opts.num_segments = 2;
  opts.segment_pool_size = 0;
  opts.seed = 23;
  Workload wl = GenerateWorkload(ds.templates, opts);
  std::set<std::string> distinct;
  for (const Query& q : wl.queries) distinct.insert(q.ToString());
  // Continuous random parameters: nearly every query is unique.
  EXPECT_GT(distinct.size(), wl.queries.size() / 2);
}

TEST(WorkloadGenTest, SingleTemplateWorkload) {
  WorkloadDataset ds = MakeTelemetry(500, 18);
  std::vector<QueryTemplate> one = {ds.templates[0]};
  WorkloadOptions opts;
  opts.num_queries = 300;
  opts.num_segments = 3;
  opts.min_segment_length = 10;
  Workload wl = GenerateWorkload(one, opts);
  for (const Query& q : wl.queries) EXPECT_EQ(q.template_id, 0);
}

}  // namespace
}  // namespace workloads
}  // namespace oreo
