// The live-ingest equivalence wall. Pinned contracts:
//
//   1. Ingest/query interleavings are deterministic: for shard counts
//      {1, 4}, runs at thread counts {1, 8} produce bit-identical serving
//      states, per-query costs, switch decisions, ingest outcomes
//      (versions, row counters, fold points), physical match counts, and
//      final partition-file CRCs. The thread-1 run IS the serial reference
//      — mutation batches commit at their interleaving position regardless
//      of how many workers evaluate costs or scan partitions.
//   2. Every physical match count equals the ground truth computed on an
//      independently maintained logical mirror of the mutation schedule —
//      at every interleaving point, including mid-delta and post-fold.
//   3. Rebuild-from-scratch equivalence: a fresh engine constructed over
//      the final logical table (BuildLogicalTable of every shard) answers
//      every probe query with the same match counts as the mutated engine —
//      the mutation path loses and invents nothing.
//
// Runs under the TSan CI job with the other slow walls (the interleaved
// runs overlap batched physical execution, concurrent background rewrites,
// and compaction folds).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "ingest/live_table.h"
#include "layout/qdtree_layout.h"
#include "storage/backend.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

namespace fs = std::filesystem;

constexpr size_t kThreadCounts[] = {1, 8};
constexpr size_t kShardCounts[] = {1, 4};
constexpr size_t kBatchSize = 20;     // physical batch size (queries)
constexpr size_t kIngestEvery = 40;   // one mutation batch per 40 queries
constexpr size_t kRowsPerBatch = 150;

OreoOptions WallOpts(uint64_t seed, size_t num_threads, size_t num_shards) {
  OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = num_threads;
  opts.num_shards = num_shards;
  opts.shard_routing = ShardRouting::kRange;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  return opts;
}

// Two workload phases (ts ranges, then qty ranges) so managers admit states
// and D-UMTS switches while the data underneath mutates.
std::vector<Query> TwoPhaseStream(size_t rows, uint64_t seed) {
  std::vector<Query> stream = testutil::MakeRangeWorkload(
      0, static_cast<int64_t>(rows), 150, 150, seed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, 150, seed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(i);
  }
  return stream;
}

// The drifting feed: event-schema rows whose ts values continue past the
// base domain, drawn from an unrelated seed so the appended distribution
// differs from what the initial layouts were fit to.
Table MakeFeedTable(size_t rows, uint64_t seed) {
  Table t(testutil::EventSchema());
  Rng rng(seed * 977 + 5);
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(static_cast<int64_t>(4000 + i)),
                 Value(rng.UniformInt(0, 1000)), Value(cats[rng.Uniform(4)])});
  }
  return t;
}

// The deterministic mutation schedule: batch b (1-based) appends feed rows
// [(b-1)*kRowsPerBatch, b*kRowsPerBatch) and every third batch also purges a
// qty band of the rows visible before it (hitting base and delta rows
// alike). The schedule is a pure function of b, so every configuration
// replays the identical interleaving.
IngestBatch ScheduledBatch(const Table& feed, size_t b) {
  IngestBatch batch;
  std::vector<uint32_t> ids;
  for (size_t r = (b - 1) * kRowsPerBatch; r < b * kRowsPerBatch; ++r) {
    ids.push_back(static_cast<uint32_t>(r % feed.num_rows()));
  }
  batch.rows = feed.Take(ids);
  if (b % 3 == 0) {
    const int64_t lo = static_cast<int64_t>(b) * 37 % 900;
    Query purge;
    purge.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 30))};
    batch.deletes.push_back(std::move(purge));
  }
  return batch;
}

struct RunFingerprint {
  // Per-query trace.
  std::vector<int> states;
  std::vector<double> costs;
  std::vector<bool> reorganized;
  std::vector<uint64_t> matches;
  // Per-ingest-batch outcome.
  std::vector<uint64_t> versions;
  std::vector<uint64_t> appended;
  std::vector<uint64_t> deleted;
  std::vector<uint64_t> visible;
  std::vector<bool> folded;
  // Totals and the final materialized bytes.
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;
  uint64_t folds = 0;
  std::vector<uint32_t> crcs;

  bool operator==(const RunFingerprint& o) const {
    return states == o.states && costs == o.costs &&
           reorganized == o.reorganized && matches == o.matches &&
           versions == o.versions && appended == o.appended &&
           deleted == o.deleted && visible == o.visible &&
           folded == o.folded && query_cost == o.query_cost &&
           reorg_cost == o.reorg_cost && num_switches == o.num_switches &&
           folds == o.folds && crcs == o.crcs;
  }
};

// Runs the interleaved ingest/query schedule through one engine
// configuration with a physical store attached, fingerprinting everything
// the determinism contract covers. When `expected_matches` is non-null,
// every physical match count is also checked against the ground truth.
RunFingerprint RunInterleaved(const Table& base, const Table& feed,
                              const LayoutGenerator& gen,
                              const OreoOptions& opts,
                              const std::vector<Query>& stream,
                              const std::string& dir_tag,
                              const std::vector<uint64_t>* expected_matches,
                              std::unique_ptr<OreoEngine>* out = nullptr) {
  OreoOptions run_opts = opts;
  std::shared_ptr<StorageBackend> backend = MakeInMemoryBackend();
  run_opts.storage_backend = backend;
  auto engine = MakeEngine(&base, &gen, /*time_column=*/0, run_opts);
  std::string dir = testutil::ScratchDir(dir_tag);
  EXPECT_TRUE(engine->AttachPhysical(dir).ok());

  RunFingerprint fp;
  size_t qi = 0;
  size_t next_batch = 1;
  for (const QueryBatch& b : MakeBatches(stream, kBatchSize)) {
    // Mutation batches land on kIngestEvery boundaries, between physical
    // batches — the Ingest call is the visibility boundary.
    if (qi > 0 && qi % kIngestEvery == 0) {
      Result<IngestResult> r = engine->Ingest(ScheduledBatch(feed, next_batch));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      ++next_batch;
      fp.versions.push_back(r->version);
      fp.appended.push_back(r->rows_appended);
      fp.deleted.push_back(r->rows_deleted);
      fp.visible.push_back(r->visible_rows);
      fp.folded.push_back(r->folded);
    }
    OreoEngine::BatchResult logical = engine->RunBatch(b);
    EXPECT_EQ(logical.steps.size(), b.size());
    for (const OreoEngine::StepResult& step : logical.steps) {
      fp.states.push_back(step.state);
      fp.costs.push_back(step.query_cost);
      fp.reorganized.push_back(step.reorganized);
    }
    auto exec = engine->ExecuteBatchPhysical(b.queries);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    for (const auto& per_query : exec->per_query) {
      fp.matches.push_back(per_query.matches);
      if (expected_matches != nullptr) {
        EXPECT_EQ(per_query.matches, (*expected_matches)[qi])
            << "physical matches diverged from the logical mirror at query "
            << qi << " (threads=" << opts.num_threads
            << " shards=" << opts.num_shards << ")";
      }
      ++qi;
    }
    engine->SyncPhysical();
  }
  engine->WaitForReorgs();
  engine->SyncPhysical();  // adopt the last background rewrite, if any

  fp.query_cost = engine->total_query_cost();
  fp.reorg_cost = engine->total_reorg_cost();
  fp.num_switches = engine->num_switches();
  for (size_t s = 0; s < engine->num_shards(); ++s) {
    fp.folds += engine->core(s).folds();
  }
  for (const auto& [path, crc] : testutil::DirCrcs(*backend, dir)) {
    fp.crcs.push_back(crc);
  }
  fs::remove_all(dir);
  if (out != nullptr) *out = std::move(engine);
  return fp;
}

// Ground truth: replay the identical mutation schedule on a bare LiveTable
// mirror and record CountMatches over the logical table at every query's
// interleaving position.
std::vector<uint64_t> MirrorExpectedMatches(const Table& base,
                                            const Table& feed,
                                            const std::vector<Query>& stream) {
  ingest::LiveTable mirror(&base);
  Table logical = mirror.BuildLogicalTable();
  std::vector<uint64_t> expected;
  size_t next_batch = 1;
  for (size_t qi = 0; qi < stream.size(); ++qi) {
    if (qi > 0 && qi % kIngestEvery == 0) {
      IngestBatch batch = ScheduledBatch(feed, next_batch);
      mirror.Apply(std::move(batch.rows), batch.deletes, next_batch);
      ++next_batch;
      logical = mirror.BuildLogicalTable();
    }
    expected.push_back(CountMatches(logical, stream[qi]));
  }
  return expected;
}

TEST(IngestEquivalenceTest, InterleavingsAreBitIdenticalAcrossThreadCounts) {
  const uint64_t seed = 13;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table base = testutil::MakeEventTable(kRows, seed);
  // The feed drifts: fresh ts values past the base domain, drawn from a
  // different seed.
  Table feed = MakeFeedTable(1200, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);
  std::vector<uint64_t> expected = MirrorExpectedMatches(base, feed, stream);

  for (size_t shards : kShardCounts) {
    RunFingerprint reference;  // the serial (threads=1) run
    bool have_reference = false;
    for (size_t threads : kThreadCounts) {
      OreoOptions opts = WallOpts(seed, threads, shards);
      RunFingerprint fp = RunInterleaved(
          base, feed, gen, opts, stream,
          "ingest_eq_s" + std::to_string(shards) + "_t" +
              std::to_string(threads),
          &expected);
      ASSERT_EQ(fp.versions.size(), stream.size() / kIngestEvery)
          << "every scheduled mutation batch must have committed";
      EXPECT_GT(fp.num_switches, 0) << "fixture too tame: no switch happened";
      EXPECT_GE(fp.folds, 1u)
          << "the schedule must cross fold_threshold at least once";
      // Versions are the facade-level commit sequence: strictly 1..N.
      for (size_t v = 0; v < fp.versions.size(); ++v) {
        EXPECT_EQ(fp.versions[v], v + 1);
      }
      if (!have_reference) {
        reference = fp;
        have_reference = true;
        ASSERT_FALSE(reference.crcs.empty());
        continue;
      }
      EXPECT_TRUE(fp == reference)
          << "interleaved run diverged from the serial reference at threads="
          << threads << " shards=" << shards;
    }
  }
}

TEST(IngestEquivalenceTest, RebuildFromScratchAnswersIdentically) {
  const uint64_t seed = 29;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table base = testutil::MakeEventTable(kRows, seed);
  Table feed = MakeFeedTable(1200, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);

  for (size_t shards : kShardCounts) {
    OreoOptions opts = WallOpts(seed, /*num_threads=*/2, shards);
    std::unique_ptr<OreoEngine> mutated;
    RunInterleaved(base, feed, gen, opts, stream,
                   "ingest_eq_rebuild_s" + std::to_string(shards),
                   /*expected_matches=*/nullptr, &mutated);

    // The final logical table: every shard's BuildLogicalTable, appended in
    // shard order. Row order is engine-internal; match counts are not.
    Table logical = mutated->core(0).live().BuildLogicalTable();
    uint64_t visible = mutated->core(0).visible_rows();
    for (size_t s = 1; s < mutated->num_shards(); ++s) {
      logical.Append(mutated->core(s).live().BuildLogicalTable());
      visible += mutated->core(s).visible_rows();
    }
    ASSERT_EQ(logical.num_rows(), visible);

    // A fresh engine over the final logical table, never mutated.
    OreoOptions rebuild_opts = WallOpts(seed, /*num_threads=*/2, shards);
    std::shared_ptr<StorageBackend> backend = MakeInMemoryBackend();
    rebuild_opts.storage_backend = backend;
    auto rebuilt = MakeEngine(&logical, &gen, /*time_column=*/0, rebuild_opts);
    std::string dir = testutil::ScratchDir("ingest_eq_rebuilt_s" +
                                           std::to_string(shards));
    ASSERT_TRUE(rebuilt->AttachPhysical(dir).ok());

    // Probe queries: the original stream plus a match-all query (counts the
    // whole visible row set) and band probes on both range columns.
    std::vector<Query> probes = stream;
    probes.push_back(Query{});
    for (int64_t lo = 0; lo < 1000; lo += 100) {
      Query q;
      q.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 99))};
      probes.push_back(std::move(q));
    }

    for (const QueryBatch& b : MakeBatches(probes, kBatchSize)) {
      auto mutated_exec = mutated->ExecuteBatchPhysical(b.queries);
      auto rebuilt_exec = rebuilt->ExecuteBatchPhysical(b.queries);
      ASSERT_TRUE(mutated_exec.ok()) << mutated_exec.status().ToString();
      ASSERT_TRUE(rebuilt_exec.ok()) << rebuilt_exec.status().ToString();
      ASSERT_EQ(mutated_exec->per_query.size(), rebuilt_exec->per_query.size());
      for (size_t i = 0; i < b.queries.size(); ++i) {
        const uint64_t truth = CountMatches(logical, b.queries[i]);
        EXPECT_EQ(mutated_exec->per_query[i].matches, truth)
            << "mutated engine diverged (shards=" << shards << ")";
        EXPECT_EQ(rebuilt_exec->per_query[i].matches, truth)
            << "rebuilt engine diverged (shards=" << shards << ")";
      }
    }
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace core
}  // namespace oreo
