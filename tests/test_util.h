// Shared test fixtures. The seed suites grew identical copies of
// TestSchema()/MakeTable() and friends; the canonical versions live here.
// The table-building helpers are seed-stable: identical (rows, seed) inputs
// must keep producing bit-identical tables, because many suites pin
// expectations to the data these generate.
#ifndef OREO_TESTS_TEST_UTIL_H_
#define OREO_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "core/physical.h"
#include "layout/layout.h"
#include "layout/sorted_layout.h"
#include "query/query.h"
#include "storage/backend.h"
#include "storage/table.h"

namespace oreo {
namespace testutil {

// {ts, qty, cat} — event stream used by the core / physical / integration
// style suites: ts is arrival order, qty uniform in [0, 1000], 4 categories.
inline Schema EventSchema() {
  return Schema({{"ts", DataType::kInt64},
                 {"qty", DataType::kInt64},
                 {"cat", DataType::kString}});
}

inline Table MakeEventTable(size_t rows, uint64_t seed) {
  Table t(EventSchema());
  Rng rng(seed);
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(static_cast<int64_t>(i)),
                 Value(rng.UniformInt(0, 1000)), Value(cats[rng.Uniform(4)])});
  }
  return t;
}

// {ts, qty, price, cat} — the wider variant the layout suite exercises
// (adds a double column and six categories).
inline Schema WideEventSchema() {
  return Schema({{"ts", DataType::kInt64},
                 {"qty", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"cat", DataType::kString}});
}

inline Table MakeWideEventTable(size_t rows, uint64_t seed) {
  Table t(WideEventSchema());
  Rng rng(seed);
  const char* cats[] = {"a", "b", "c", "d", "e", "f"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(static_cast<int64_t>(i)),  // ts: arrival order
                 Value(rng.UniformInt(0, 1000)),
                 Value(rng.UniformDouble(0, 100)),
                 Value(cats[rng.Uniform(6)])});
  }
  return t;
}

// {id, ts, score, tag} — block-format suite: ts is sorted so the serializer
// picks delta encoding, id spans negatives, tag has a tiny dictionary.
inline Schema BlockSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"ts", DataType::kInt64},
                 {"score", DataType::kDouble},
                 {"tag", DataType::kString}});
}

inline Table MakeBlockTable(size_t rows, uint64_t seed) {
  Table t(BlockSchema());
  Rng rng(seed);
  const char* tags[] = {"red", "green", "blue"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(static_cast<int64_t>(rng.UniformInt(-1000, 1000))),
                 Value(static_cast<int64_t>(i)),  // sorted -> delta encoding
                 Value(rng.UniformDouble(-1, 1)),
                 Value(tags[rng.Uniform(3)])});
  }
  return t;
}

// {qty, price, region} — query suite's sales-style table.
inline Schema SalesSchema() {
  return Schema({{"qty", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"region", DataType::kString}});
}

inline Table MakeSalesTable(size_t rows, uint64_t seed) {
  Table t(SalesSchema());
  Rng rng(seed);
  const char* regions[] = {"asia", "europe", "america", "africa", "oceania"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(rng.UniformInt(0, 100)),
                 Value(rng.UniformDouble(0.0, 50.0)),
                 Value(regions[rng.Uniform(5)])});
  }
  return t;
}

// {id, score, tag} — storage suite's hand-written 4-row table.
inline Schema IdScoreTagSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"score", DataType::kDouble},
                 {"tag", DataType::kString}});
}

inline Table SmallIdScoreTagTable() {
  Table t(IdScoreTagSchema());
  t.AppendRow({Value(int64_t{1}), Value(0.5), Value("a")});
  t.AppendRow({Value(int64_t{5}), Value(1.5), Value("b")});
  t.AppendRow({Value(int64_t{3}), Value(-2.0), Value("a")});
  t.AppendRow({Value(int64_t{9}), Value(0.0), Value("c")});
  return t;
}

// Materializes a single-column sort layout generated from a 300-row sample.
// `sample_seed` feeds the sampling Rng; suites pin different seeds, so it is
// part of the fixture contract.
inline LayoutInstance MakeSortedInstance(const Table& t, int column,
                                         uint32_t k, const std::string& name,
                                         uint64_t sample_seed) {
  Rng rng(sample_seed);
  Table sample = t.SampleRows(300, &rng);
  SortLayoutGenerator gen(column);
  return Materialize(
      name, std::shared_ptr<const Layout>(gen.Generate(sample, {}, k)), t);
}

// n BETWEEN-range queries of fixed `width` over [0, domain) on `column`.
// When `assign_ids` is set, query i gets id i (the core suite relies on it).
inline std::vector<Query> MakeRangeWorkload(int column, int64_t domain,
                                            int64_t width, size_t n,
                                            uint64_t seed,
                                            bool assign_ids = false) {
  Rng rng(seed);
  std::vector<Query> out;
  for (size_t i = 0; i < n; ++i) {
    Query q;
    if (assign_ids) q.id = static_cast<int64_t>(i);
    int64_t lo = rng.UniformInt(0, domain - width);
    q.conjuncts = {Predicate::Between(column, Value(lo), Value(lo + width))};
    out.push_back(std::move(q));
  }
  return out;
}

inline void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_TRUE(a.schema().Equals(b.schema()));
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (uint32_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_TRUE(a.column(c).GetValue(r) == b.column(c).GetValue(r))
          << "col " << c << " row " << r;
    }
  }
}

// Fresh scratch directory under the system temp dir; removes any leftover
// from a previous run so tests start clean.
inline std::string ScratchDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("oreo_" + tag)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Storage backend selected by the OREO_TEST_BACKEND environment variable
// ("posix" or "inmem"); `def` names the suite's default when the variable is
// unset. Storage-level suites default to "posix" (they test the real file
// path); the heavy equivalence walls default to "inmem" (bit-identical
// bytes, no disk). CI runs both sides of the matrix.
inline std::string TestBackendName(const std::string& def = "posix") {
  const char* env = std::getenv("OREO_TEST_BACKEND");
  return (env != nullptr && *env != '\0') ? std::string(env) : def;
}

inline std::shared_ptr<StorageBackend> TestBackend(
    const std::string& def = "posix") {
  const std::string name = TestBackendName(def);
  if (name == "inmem") return MakeInMemoryBackend();
  if (name == "posix") return MakePosixBackend();
  ADD_FAILURE() << "unknown OREO_TEST_BACKEND value: " << name;
  return MakePosixBackend();
}

// CRC-32C of one object read through `backend` (0 plus a test failure if the
// object cannot be read).
inline uint32_t BackendCrc(StorageBackend& backend, const std::string& path) {
  Result<std::string> data = backend.ReadBlock(path);
  EXPECT_TRUE(data.ok()) << "cannot read " << path << ": "
                         << data.status().ToString();
  if (!data.ok()) return 0;
  return Crc32c(data->data(), data->size());
}

// CRCs of the store's current partition files, in partition-id order, read
// through the store's own backend (works for posix and in-memory alike).
inline std::vector<uint32_t> PartitionCrcs(const core::PhysicalStore& store) {
  std::vector<uint32_t> crcs;
  for (const std::string& f : store.GetSnapshot().files) {
    crcs.push_back(BackendCrc(*store.backend(), f));
  }
  return crcs;
}

// CRCs of every object under `dir`, in sorted path order — the fingerprint
// of a replay's final materialized layout.
inline std::vector<std::pair<std::string, uint32_t>> DirCrcs(
    StorageBackend& backend, const std::string& dir) {
  std::vector<std::pair<std::string, uint32_t>> crcs;
  Result<std::vector<std::string>> paths = backend.List(dir);
  EXPECT_TRUE(paths.ok()) << paths.status().ToString();
  if (!paths.ok()) return crcs;
  for (const std::string& path : *paths) {
    crcs.emplace_back(path, BackendCrc(backend, path));
  }
  return crcs;
}

// Harmonic number H(n) — the paper's competitive bounds are stated as
// 2*H(|S_max|) (Theorem IV.1).
inline double Harmonic(size_t n) {
  double h = 0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace testutil
}  // namespace oreo

#endif  // OREO_TESTS_TEST_UTIL_H_
