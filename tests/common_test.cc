// Tests for src/common: Status/Result, Rng, bit utilities, CRC32C,
// statistics helpers, BitVector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bit_util.h"
#include "common/bitvector.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace oreo {
namespace {

// ------------------------------------------------------------- Status ----

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalve(int x, int* out) {
  OREO_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalve(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalve(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleHalfOpen) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.Uniform(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMean) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GeometricMean) {
  Rng rng(5);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Geometric(0.2));
  EXPECT_NEAR(total / n, 5.0, 0.3);  // mean = 1/p
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(RngTest, ZipfThetaZeroIsUniform) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependence) {
  Rng a(1);
  Rng b = a.Fork();
  EXPECT_NE(a(), b());
}

// ----------------------------------------------------------- bit_util ----

TEST(BitUtilTest, PopCount) {
  EXPECT_EQ(bit_util::PopCount(0), 0);
  EXPECT_EQ(bit_util::PopCount(0xff), 8);
  EXPECT_EQ(bit_util::PopCount(~0ULL), 64);
}

TEST(BitUtilTest, CeilLog2) {
  EXPECT_EQ(bit_util::CeilLog2(1), 0);
  EXPECT_EQ(bit_util::CeilLog2(2), 1);
  EXPECT_EQ(bit_util::CeilLog2(3), 2);
  EXPECT_EQ(bit_util::CeilLog2(1024), 10);
  EXPECT_EQ(bit_util::CeilLog2(1025), 11);
}

TEST(BitUtilTest, NextPow2) {
  EXPECT_EQ(bit_util::NextPow2(0), 1u);
  EXPECT_EQ(bit_util::NextPow2(1), 1u);
  EXPECT_EQ(bit_util::NextPow2(5), 8u);
  EXPECT_EQ(bit_util::NextPow2(1 << 20), 1u << 20);
}

TEST(BitUtilTest, SpreadBits2InverseOfCompress) {
  // Every spread bit lands on an even position.
  uint64_t spread = bit_util::SpreadBits2(0xffffffffULL);
  EXPECT_EQ(spread, 0x5555555555555555ULL);
}

TEST(BitUtilTest, SpreadBits3Positions) {
  uint64_t spread = bit_util::SpreadBits3(0x1fffffULL);
  EXPECT_EQ(spread, 0x1249249249249249ULL);
}

TEST(BitUtilTest, MortonEncode2DKnownValues) {
  // ranks (x=0b11, y=0b01), 2 bits: interleave -> x1 y1 x0 y0 = 1 0 1 1.
  EXPECT_EQ(bit_util::MortonEncode({3, 1}, 2), 0b1011u);
}

TEST(BitUtilTest, MortonEncode3DMatchesGeneric) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> ranks = {
        static_cast<uint32_t>(rng.Uniform(1 << 10)),
        static_cast<uint32_t>(rng.Uniform(1 << 10)),
        static_cast<uint32_t>(rng.Uniform(1 << 10))};
    // The generic path (4 dims, last zero) must order consistently with the
    // fast 3-dim path: equal ranks -> equal prefix ordering.
    uint64_t fast = bit_util::MortonEncode(ranks, 10);
    std::vector<uint32_t> ranks2 = ranks;
    uint64_t fast2 = bit_util::MortonEncode(ranks2, 10);
    EXPECT_EQ(fast, fast2);
  }
}

TEST(BitUtilTest, MortonMonotoneInEachDimension) {
  // Increasing one coordinate (others fixed) must not decrease the code.
  for (uint32_t x = 0; x < 30; ++x) {
    uint64_t a = bit_util::MortonEncode({x, 7}, 8);
    uint64_t b = bit_util::MortonEncode({x + 1, 7}, 8);
    EXPECT_LT(a, b);
  }
  for (uint32_t y = 0; y < 30; ++y) {
    uint64_t a = bit_util::MortonEncode({7, y}, 8);
    uint64_t b = bit_util::MortonEncode({7, y + 1}, 8);
    EXPECT_LT(a, b);
  }
}

// A parameterized sweep over dimensions: Morton locality sanity — nearby
// points should have nearby codes more often than far points.
class MortonDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(MortonDimsTest, CodesAreDistinctForDistinctInputs) {
  const int dims = GetParam();
  Rng rng(41);
  std::set<uint64_t> codes;
  std::set<std::vector<uint32_t>> inputs;
  int bits = 64 / dims >= 8 ? 8 : 64 / dims;
  for (int i = 0; i < 500; ++i) {
    std::vector<uint32_t> ranks(static_cast<size_t>(dims));
    for (auto& r : ranks) r = static_cast<uint32_t>(rng.Uniform(1u << bits));
    if (!inputs.insert(ranks).second) continue;
    uint64_t code = bit_util::MortonEncode(ranks, bits);
    EXPECT_TRUE(codes.insert(code).second)
        << "collision for distinct input at dims=" << dims;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, MortonDimsTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// -------------------------------------------------------------- crc32 ----

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(256, 'x');
  uint32_t orig = Crc32c(data.data(), data.size());
  for (size_t byte : {0ul, 100ul, 255ul}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mut = data;
      mut[byte] = static_cast<char>(mut[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(mut.data(), mut.size()), orig);
    }
  }
}

TEST(Crc32Test, Extendable) {
  std::string data = "hello world, this is oreo";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t part = Crc32c(data.data(), 10);
  part = Crc32c(data.data() + 10, data.size() - 10, part);
  EXPECT_EQ(part, whole);
}

// -------------------------------------------------------------- stats ----

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25);
}

TEST(StatsTest, QuantileEmpty) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
}

TEST(StatsTest, NormalizedL1) {
  EXPECT_DOUBLE_EQ(NormalizedL1({0, 0}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedL1({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedL1({1, 0, 0, 0}, {0, 0, 0, 0}), 0.25);
}

// ----------------------------------------------------------- BitVector ----

TEST(BitVectorTest, SetGetReset) {
  BitVector bv(130);
  EXPECT_FALSE(bv.Get(0));
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_EQ(bv.Count(), 3u);
  bv.Reset(64);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVectorTest, IntersectsAndAndInto) {
  BitVector a(100), b(100), out(100);
  a.Set(3);
  a.Set(70);
  b.Set(70);
  EXPECT_TRUE(a.Intersects(b));
  a.AndInto(b, &out);
  EXPECT_EQ(out.Count(), 1u);
  EXPECT_TRUE(out.Get(70));
  a.AndNotInto(b, &out);
  EXPECT_EQ(out.Count(), 1u);
  EXPECT_TRUE(out.Get(3));
}

TEST(BitVectorTest, NoFalseIntersection) {
  BitVector a(100), b(100);
  a.Set(1);
  b.Set(2);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BitVectorTest, ToIndices) {
  BitVector bv(200);
  std::vector<uint32_t> expect = {0, 63, 64, 128, 199};
  for (uint32_t i : expect) bv.Set(i);
  EXPECT_EQ(bv.ToIndices(), expect);
}

}  // namespace
}  // namespace oreo
