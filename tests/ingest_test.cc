// Tests for the live-ingest subsystem: LiveTable delta/tombstone semantics,
// MutationLog versioning, shard routing of mutation batches, the engine's
// Ingest surface (batch-boundary visibility, validation, folds), the
// drift-tracking refresh of the sampling layer (data-version histogram,
// cost-cache invalidation), and the kIngest wire path end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/engine.h"
#include "core/oreo.h"
#include "ingest/coordinator.h"
#include "ingest/live_table.h"
#include "ingest/mutation_log.h"
#include "layout/qdtree_layout.h"
#include "sampling/workload_stats.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/shard_router.h"
#include "test_util.h"

namespace oreo {
namespace {

using core::IngestBatch;
using core::IngestResult;

// Event-schema rows {ts, qty, cat} with ts starting at `ts_base` — appended
// chunks keep arrival order increasing past the seeded table.
Table MakeChunk(size_t rows, int64_t ts_base, uint64_t seed) {
  Table t(testutil::EventSchema());
  Rng rng(seed);
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({Value(ts_base + static_cast<int64_t>(i)),
                 Value(rng.UniformInt(0, 1000)), Value(cats[rng.Uniform(4)])});
  }
  return t;
}

Query DeleteWhere(Predicate p) {
  Query q;
  q.conjuncts = {std::move(p)};
  return q;
}

// ------------------------------------------------------------ LiveTable ----

TEST(LiveTableTest, AppendsPublishChunksAtomically) {
  Table base = testutil::MakeEventTable(1000, 7);
  ingest::LiveTable live(&base);
  EXPECT_EQ(live.visible_rows(), 1000u);
  EXPECT_FALSE(live.has_mutations());

  ingest::LiveTable::ApplyStats stats =
      live.Apply(MakeChunk(200, 1000, 11), {}, /*version=*/1);
  EXPECT_EQ(stats.rows_appended, 200u);
  EXPECT_EQ(stats.rows_deleted, 0u);
  EXPECT_EQ(live.visible_rows(), 1200u);
  ASSERT_EQ(live.deltas().size(), 1u);
  EXPECT_EQ(live.deltas()[0].version, 1u);
  EXPECT_EQ(live.deltas()[0].rows.num_rows(), 200u);
  EXPECT_TRUE(live.has_mutations());
}

TEST(LiveTableTest, DeletesApplyToPreBatchRowsOnly) {
  Table base = testutil::MakeEventTable(100, 7);
  ingest::LiveTable live(&base);

  // Batch 1: rows with ts in [100, 200).
  live.Apply(MakeChunk(100, 100, 1), {}, 1);
  // Batch 2 deletes ts >= 100 AND appends fresh rows with ts >= 100: the
  // delete tombstones batch 1's rows, but batch 2's own appends are exempt.
  ingest::LiveTable::ApplyStats stats = live.Apply(
      MakeChunk(50, 150, 2), {DeleteWhere(Predicate::Ge(0, Value(int64_t{100})))},
      2);
  EXPECT_EQ(stats.rows_deleted, 100u);
  EXPECT_EQ(stats.rows_appended, 50u);
  EXPECT_EQ(live.visible_rows(), 100u + 50u);
  EXPECT_EQ(live.delta_tombstones(), 100u);
  EXPECT_EQ(live.base_tombstones(), 0u);  // base ts < 100 everywhere
}

TEST(LiveTableTest, FullRangeDeleteClearsEverythingVisible) {
  Table base = testutil::MakeEventTable(50, 3);
  ingest::LiveTable live(&base);
  live.Apply(MakeChunk(25, 1000, 4), {}, 1);
  // ts >= 0 matches every row, base and delta alike.
  ingest::LiveTable::ApplyStats stats = live.Apply(
      Table(), {DeleteWhere(Predicate::Ge(0, Value(int64_t{0})))}, 2);
  EXPECT_EQ(stats.rows_deleted, 75u);
  EXPECT_EQ(live.visible_rows(), 0u);
}

TEST(LiveTableTest, FoldPreservesTheLogicalTable) {
  Table base = testutil::MakeEventTable(300, 9);
  ingest::LiveTable live(&base);
  live.Apply(MakeChunk(100, 300, 10),
             {DeleteWhere(Predicate::Lt(0, Value(int64_t{40})))}, 1);
  live.Apply(MakeChunk(60, 400, 11),
             {DeleteWhere(Predicate::Between(0, Value(int64_t{320}),
                                             Value(int64_t{329})))},
             2);

  const uint64_t visible = live.visible_rows();
  Table logical_before = live.BuildLogicalTable();
  ASSERT_EQ(logical_before.num_rows(), visible);

  live.Fold();
  EXPECT_TRUE(live.folded());
  EXPECT_EQ(live.visible_rows(), visible);
  EXPECT_TRUE(live.deltas().empty());
  EXPECT_FALSE(live.has_mutations());
  EXPECT_EQ(live.base().num_rows(), visible);
  testutil::ExpectTablesEqual(live.BuildLogicalTable(), logical_before);
  // The fold result IS the logical table (same canonical row order).
  testutil::ExpectTablesEqual(live.base(), logical_before);
}

TEST(LiveTableTest, MutationFractionCountsDeltasAndTombstones) {
  Table base = testutil::MakeEventTable(900, 5);
  ingest::LiveTable live(&base);
  EXPECT_DOUBLE_EQ(live.MutationFraction(), 0.0);
  live.Apply(MakeChunk(100, 900, 6), {}, 1);
  // 100 delta rows over 1000 physical rows.
  EXPECT_DOUBLE_EQ(live.MutationFraction(), 0.1);
}

TEST(LiveTableTest, DeltaScanRowsPrunesByZoneMap) {
  Table base = testutil::MakeEventTable(100, 5);
  ingest::LiveTable live(&base);
  live.Apply(MakeChunk(64, 1000, 6), {}, 1);  // ts in [1000, 1064)
  live.Apply(MakeChunk(32, 5000, 7), {}, 2);  // ts in [5000, 5032)

  Query hits_first = DeleteWhere(
      Predicate::Between(0, Value(int64_t{1000}), Value(int64_t{1010})));
  Query hits_none = DeleteWhere(
      Predicate::Between(0, Value(int64_t{9000}), Value(int64_t{9010})));
  EXPECT_EQ(live.DeltaScanRows(hits_first), 64u);  // whole surviving chunk
  EXPECT_EQ(live.DeltaScanRows(hits_none), 0u);
  EXPECT_EQ(live.CountDeltaMatches(hits_first), 11u);
}

// ---------------------------------------------------------- MutationLog ----

TEST(MutationLogTest, VersionsAreMonotonicAndAccountingIsGlobal) {
  ingest::MutationLog log;
  EXPECT_EQ(log.version(), 0u);
  ingest::MutationLog::BatchRecord a = log.Commit(100, 0);
  ingest::MutationLog::BatchRecord b = log.Commit(50, 20);
  EXPECT_EQ(a.version, 1u);
  EXPECT_EQ(b.version, 2u);
  EXPECT_EQ(log.version(), 2u);
  EXPECT_EQ(log.num_batches(), 2u);
  EXPECT_EQ(log.total_appended(), 150u);
  EXPECT_EQ(log.total_deleted(), 20u);
}

// ----------------------------------------------------------- SplitIngest ----

TEST(SplitIngestTest, RowsRouteExactlyLikeTheInitialLoad) {
  Table base = testutil::MakeEventTable(2000, 21);
  ShardRouterOptions ropts;
  ropts.num_shards = 4;
  ropts.column = 0;
  ropts.routing = ShardRouting::kRange;
  ShardRouter router = ShardRouter::Build(base, ropts);

  Table chunk = MakeChunk(500, 0, 22);  // ts overlapping the base domain
  std::vector<ingest::ShardIngest> split = ingest::SplitIngest(router, chunk, {});
  ASSERT_EQ(split.size(), 4u);
  size_t total = 0;
  for (size_t s = 0; s < split.size(); ++s) {
    total += split[s].rows.num_rows();
    for (uint32_t r = 0; r < split[s].rows.num_rows(); ++r) {
      EXPECT_EQ(router.ShardOfRow(split[s].rows, r), s)
          << "row routed to the wrong shard";
    }
  }
  EXPECT_EQ(total, 500u);  // routing is a partition: no loss, no duplication
}

TEST(SplitIngestTest, DeletesGoOnlyToShardsTheirPredicateCanTouch) {
  Table base = testutil::MakeEventTable(2000, 23);
  ShardRouterOptions ropts;
  ropts.num_shards = 4;
  ropts.column = 0;
  ropts.routing = ShardRouting::kRange;
  ShardRouter router = ShardRouter::Build(base, ropts);

  // A narrow ts point-delete prunes to exactly the shards ShardsForQuery
  // names; a non-routing-column delete must reach every shard.
  Query narrow = DeleteWhere(Predicate::Eq(0, Value(int64_t{10})));
  Query broad = DeleteWhere(Predicate::Eq(1, Value(int64_t{10})));
  std::vector<ingest::ShardIngest> split =
      ingest::SplitIngest(router, Table(), {narrow, broad});
  std::vector<uint32_t> narrow_shards = router.ShardsForQuery(narrow);
  for (size_t s = 0; s < split.size(); ++s) {
    const bool narrow_expected =
        std::find(narrow_shards.begin(), narrow_shards.end(),
                  static_cast<uint32_t>(s)) != narrow_shards.end();
    EXPECT_EQ(split[s].deletes.size(), narrow_expected ? 2u : 1u);
  }
}

// ----------------------------------------------------------- Oreo::Ingest ----

core::OreoOptions IngestOpts(double fold_threshold = 2.0) {
  core::OreoOptions opts;
  opts.seed = 17;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  opts.num_threads = 1;
  opts.fold_threshold = fold_threshold;
  return opts;
}

TEST(OreoIngestTest, BatchBoundaryVisibilityAndInvariant) {
  Table base = testutil::MakeEventTable(2000, 31);
  QdTreeGenerator gen;
  auto engine = core::MakeEngine(&base, &gen, 0, IngestOpts());

  uint64_t appended = 0, deleted = 0;
  for (int b = 0; b < 4; ++b) {
    IngestBatch batch;
    batch.rows = MakeChunk(100, 2000 + b * 100, 40 + static_cast<uint64_t>(b));
    if (b == 2) {
      batch.deletes.push_back(
          DeleteWhere(Predicate::Lt(0, Value(int64_t{50}))));
    }
    Result<IngestResult> r = engine->Ingest(std::move(batch));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->version, static_cast<uint64_t>(b + 1));
    appended += r->rows_appended;
    deleted += r->rows_deleted;
    // The invariant the mutation log owns: visible == base + appended - deleted.
    EXPECT_EQ(r->visible_rows, 2000u + appended - deleted);
    EXPECT_FALSE(r->folded);  // threshold 2.0 never folds
  }
  EXPECT_EQ(deleted, 50u);
  EXPECT_EQ(engine->core(0).data_version(), 4u);
  EXPECT_EQ(engine->core(0).visible_rows(), 2000u + appended - deleted);
}

TEST(OreoIngestTest, ValidationRejectsBadBatchesWithoutSideEffects) {
  Table base = testutil::MakeEventTable(500, 33);
  QdTreeGenerator gen;
  auto engine = core::MakeEngine(&base, &gen, 0, IngestOpts());

  IngestBatch wrong_schema;
  wrong_schema.rows = testutil::MakeSalesTable(10, 1);
  Result<IngestResult> r1 = engine->Ingest(std::move(wrong_schema));
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  IngestBatch bad_delete;
  bad_delete.deletes.push_back(DeleteWhere(Predicate::Eq(7, Value(int64_t{1}))));
  Result<IngestResult> r2 = engine->Ingest(std::move(bad_delete));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Nothing was committed: version still 0, all rows visible.
  EXPECT_EQ(engine->core(0).data_version(), 0u);
  EXPECT_EQ(engine->core(0).visible_rows(), 500u);
}

TEST(OreoIngestTest, CrossingTheFoldThresholdCompacts) {
  Table base = testutil::MakeEventTable(1000, 35);
  QdTreeGenerator gen;
  auto engine = core::MakeEngine(&base, &gen, 0, IngestOpts(/*fold=*/0.25));
  core::Oreo& oreo = engine->core(0);

  // 100 delta rows / 1100 physical = 9% debt: no fold yet.
  Result<IngestResult> r1 = engine->Ingest(
      IngestBatch{MakeChunk(100, 1000, 51), {}});
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->folded);
  EXPECT_EQ(oreo.folds(), 0u);

  // +250 more delta rows: (350 delta) / (1350 physical) = 26% >= 25%.
  Result<IngestResult> r2 = engine->Ingest(
      IngestBatch{MakeChunk(250, 1100, 52), {}});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->folded);
  EXPECT_EQ(oreo.folds(), 1u);
  EXPECT_EQ(r2->visible_rows, 1350u);
  // Post-fold the base IS the logical table and the deltas are gone.
  EXPECT_EQ(oreo.base_table().num_rows(), 1350u);
  EXPECT_FALSE(oreo.live().has_mutations());
  EXPECT_EQ(oreo.live_scan_view(), nullptr);

  // The engine keeps serving and ingesting after the fold.
  Result<IngestResult> r3 = engine->Ingest(
      IngestBatch{MakeChunk(10, 2000, 53), {}});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->version, 3u);
  EXPECT_EQ(r3->visible_rows, 1360u);
}

TEST(OreoIngestTest, QueriesChargeTheLiveCostWhileMutationsPend) {
  Table base = testutil::MakeEventTable(1000, 37);
  QdTreeGenerator gen;
  auto engine = core::MakeEngine(&base, &gen, 0, IngestOpts());
  core::Oreo& oreo = engine->core(0);

  Query q;
  q.id = 0;
  q.conjuncts = {
      Predicate::Between(0, Value(int64_t{0}), Value(int64_t{100}))};
  const double base_cost = oreo.registry().Cost(oreo.current_state(), q);

  // Append a chunk whose ts range does NOT overlap the query: the zone map
  // prunes it, so the live cost is the base fraction diluted by the larger
  // physical row count — strictly below the base cost.
  ASSERT_TRUE(engine->Ingest(IngestBatch{MakeChunk(200, 50000, 61), {}}).ok());
  core::OreoEngine::StepResult pruned = engine->Step(q);
  EXPECT_LT(pruned.query_cost, base_cost);
  EXPECT_NEAR(pruned.query_cost, base_cost * 1000.0 / 1200.0, 1e-12);

  // Append a chunk the query cannot prune: its rows are scanned in full, so
  // the live cost gains d/(b + delta) relative to the diluted base term.
  ASSERT_TRUE(engine->Ingest(IngestBatch{MakeChunk(200, 0, 62), {}}).ok());
  q.id = 1;
  core::OreoEngine::StepResult scanned = engine->Step(q);
  EXPECT_NEAR(scanned.query_cost,
              (base_cost * 1000.0 + 200.0) / 1400.0, 1e-12);
}

// ----------------------------------------- drift-tracking sample refresh ----

TEST(WorkloadStatsTest, DataVersionHistogramTracksIngestBoundaries) {
  WorkloadStatistics::Options wopts;
  wopts.sample_capacity = 16;
  wopts.chunk_size = 4;
  wopts.lambda = 0.2;  // strong recency bias: new arrivals displace old slots
  WorkloadStatistics stats(wopts, Rng(3));

  std::vector<Query> qs = testutil::MakeRangeWorkload(0, 1000, 50, 40, 5);
  for (size_t i = 0; i < 20; ++i) stats.Observe(qs[i]);
  std::map<uint64_t, size_t> before = stats.DataVersionHistogram();
  ASSERT_EQ(before.size(), 1u);
  EXPECT_EQ(before.count(0), 1u);  // everything sampled pre-ingest

  stats.NoteDataVersion(1);
  for (size_t i = 20; i < 40; ++i) stats.Observe(qs[i]);
  std::map<uint64_t, size_t> after = stats.DataVersionHistogram();
  ASSERT_TRUE(after.count(1));
  EXPECT_GT(after[1], 0u);  // post-ingest arrivals displaced stale slots
  size_t total = 0;
  for (const auto& [version, count] : after) total += count;
  EXPECT_EQ(total, stats.sample_size());
}

TEST(WorkloadStatsTest, ChunkVersionsBumpOnlyForTouchedSlots) {
  WorkloadStatistics::Options wopts;
  wopts.sample_capacity = 32;
  wopts.chunk_size = 8;
  WorkloadStatistics stats(wopts, Rng(7));

  std::vector<Query> qs = testutil::MakeRangeWorkload(0, 1000, 50, 200, 9);
  // Fill to capacity first.
  for (size_t i = 0; i < 32; ++i) stats.Observe(qs[i]);

  size_t steps_with_changes = 0;
  for (size_t i = 32; i < 200; ++i) {
    std::vector<WorkloadStatistics::ChunkView> before = stats.SampleChunks();
    stats.Observe(qs[i]);
    std::vector<WorkloadStatistics::ChunkView> after = stats.SampleChunks();
    ASSERT_EQ(before.size(), after.size());
    size_t changed = 0;
    for (size_t c = 0; c < after.size(); ++c) {
      if (after[c].version != before[c].version) ++changed;
    }
    // One arrival mutates at most one slot — so at most one chunk version
    // moves, and a cost cache keyed by chunk version re-evaluates exactly
    // the touched chunk.
    EXPECT_LE(changed, 1u);
    steps_with_changes += changed;
  }
  EXPECT_GT(steps_with_changes, 0u);  // evictions actually happened
}

TEST(OreoIngestTest, IngestRefreshesDriftTrackingWithoutDroppingTheCache) {
  Table base = testutil::MakeEventTable(2000, 41);
  QdTreeGenerator gen;
  core::OreoOptions opts = IngestOpts();
  auto engine = core::MakeEngine(&base, &gen, 0, opts);
  core::Oreo& oreo = engine->core(0);

  std::vector<Query> stream =
      testutil::MakeRangeWorkload(1, 1000, 50, 300, 43, /*assign_ids=*/true);
  // Two generation cadences warm the per-(state, chunk) cost cache.
  for (size_t i = 0; i < 120; ++i) engine->Step(stream[i]);
  const uint64_t reused_warm = oreo.manager().cost_evals_reused();
  EXPECT_GT(reused_warm, 0u);  // the cache is actually serving hits

  // Ingest without folding: the data version is stamped into the workload
  // sample and the dataset sample merges the chunk...
  ASSERT_TRUE(engine->Ingest(IngestBatch{MakeChunk(100, 2000, 44), {}}).ok());
  EXPECT_EQ(oreo.manager().workload_stats().data_version(), 1u);

  // ...while the cost cache survives (an un-folded ingest never changes the
  // base table the cached partitionings cover): the next cadences keep
  // reusing chunk costs.
  for (size_t i = 120; i < 240; ++i) engine->Step(stream[i]);
  EXPECT_GT(oreo.manager().cost_evals_reused(), reused_warm);

  // Post-ingest arrivals carry the new data version in the histogram.
  std::map<uint64_t, size_t> histogram =
      oreo.manager().workload_stats().DataVersionHistogram();
  ASSERT_TRUE(histogram.count(1));
  EXPECT_GT(histogram[1], 0u);
}

TEST(OreoIngestTest, FoldRedrawsTheSampleAndRecomputesCosts) {
  Table base = testutil::MakeEventTable(2000, 47);
  QdTreeGenerator gen;
  core::OreoOptions opts = IngestOpts(/*fold=*/0.10);
  auto engine = core::MakeEngine(&base, &gen, 0, opts);
  core::Oreo& oreo = engine->core(0);

  std::vector<Query> stream =
      testutil::MakeRangeWorkload(1, 1000, 50, 300, 49, /*assign_ids=*/true);
  for (size_t i = 0; i < 120; ++i) engine->Step(stream[i]);

  // 300 rows / 2300 physical = 13% >= 10%: folds immediately.
  Result<IngestResult> folded =
      engine->Ingest(IngestBatch{MakeChunk(300, 2000, 50), {}});
  ASSERT_TRUE(folded.ok());
  ASSERT_TRUE(folded->folded);

  const uint64_t computed_before = oreo.manager().cost_evals_computed();
  const size_t live_states = oreo.registry().num_live();
  const size_t sample_size =
      oreo.manager().workload_stats().sample_size();
  // One full cadence after the fold: the cache was dropped (the registry's
  // partitionings re-materialized over the folded table), so the live-state
  // cost matrix recomputes in full at least once.
  for (size_t i = 120; i < 180; ++i) engine->Step(stream[i]);
  EXPECT_GE(oreo.manager().cost_evals_computed() - computed_before,
            static_cast<uint64_t>(live_states) * sample_size);
}

// ------------------------------------------------------------- wire path ----

server::WireIngest MakeWireBatch(size_t rows, int64_t ts_base) {
  server::WireIngest ingest;
  const char* cats[] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    ingest.rows.push_back({Value(ts_base + static_cast<int64_t>(i)),
                           Value(static_cast<int64_t>(i % 1000)),
                           Value(cats[i % 4])});
  }
  return ingest;
}

TEST(IngestWireTest, IngestFrameRoundTripsExactly) {
  server::WireIngest ingest = MakeWireBatch(5, 100);
  ingest.deletes.push_back(DeleteWhere(Predicate::Lt(0, Value(int64_t{50}))));
  std::string frame = server::EncodeIngestFrame(7, 3, ingest, /*deadline=*/250);

  server::FrameHeader header;
  ASSERT_TRUE(server::DecodeHeader(frame, server::kDefaultMaxPayload, &header)
                  .ok());
  EXPECT_EQ(header.type, static_cast<uint16_t>(server::MsgType::kIngest));
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_EQ(header.tenant_id, 3u);

  server::WireIngest decoded;
  uint64_t deadline = 0;
  ASSERT_TRUE(server::DecodeIngestPayload(
                  std::string_view(frame).substr(server::kHeaderBytes),
                  &decoded, &deadline)
                  .ok());
  EXPECT_EQ(deadline, 250u);
  ASSERT_EQ(decoded.rows.size(), 5u);
  ASSERT_EQ(decoded.rows[0].size(), 3u);
  EXPECT_EQ(decoded.rows[4][0].AsInt64(), 104);
  EXPECT_EQ(decoded.rows[2][2].AsString(), "c");
  ASSERT_EQ(decoded.deletes.size(), 1u);
  EXPECT_EQ(decoded.deletes[0].conjuncts[0].column, 0);
}

TEST(IngestWireTest, IngestReplyRoundTripsExactly) {
  server::IngestReply reply;
  reply.status = server::ReplyStatus::kDeadlineExceeded;
  reply.message = "deadline expired during ingest";
  reply.version = 9;
  reply.rows_appended = 100;
  reply.rows_deleted = 3;
  reply.visible_rows = 4097;
  reply.folded = true;
  std::string frame = server::EncodeIngestReplyFrame(11, 2, reply);

  server::FrameHeader header;
  ASSERT_TRUE(server::DecodeHeader(frame, server::kDefaultMaxPayload, &header)
                  .ok());
  EXPECT_EQ(header.type,
            static_cast<uint16_t>(server::MsgType::kIngestReply));
  server::IngestReply decoded;
  ASSERT_TRUE(server::DecodeIngestReplyPayload(
                  std::string_view(frame).substr(server::kHeaderBytes),
                  &decoded)
                  .ok());
  EXPECT_EQ(decoded.status, reply.status);
  EXPECT_EQ(decoded.message, reply.message);
  EXPECT_EQ(decoded.version, 9u);
  EXPECT_EQ(decoded.rows_appended, 100u);
  EXPECT_EQ(decoded.rows_deleted, 3u);
  EXPECT_EQ(decoded.visible_rows, 4097u);
  EXPECT_TRUE(decoded.folded);
}

TEST(IngestWireTest, MalformedIngestPayloadsAreRejected) {
  server::WireIngest ok = MakeWireBatch(3, 0);
  std::string frame = server::EncodeIngestFrame(1, 1, ok);
  std::string payload = frame.substr(server::kHeaderBytes);

  server::WireIngest out;
  // Truncated payload.
  EXPECT_FALSE(server::DecodeIngestPayload(
                   std::string_view(payload).substr(0, payload.size() - 3),
                   &out)
                   .ok());
  // Trailing garbage after a well-formed payload.
  EXPECT_FALSE(server::DecodeIngestPayload(payload + "x", &out).ok());
  // Too many delete queries.
  server::WireIngest floody;
  for (size_t i = 0; i < server::kMaxIngestDeletes + 1; ++i) {
    floody.deletes.push_back(DeleteWhere(Predicate::Eq(0, Value(int64_t{1}))));
  }
  std::string flood_frame = server::EncodeIngestFrame(1, 1, floody);
  EXPECT_FALSE(server::DecodeIngestPayload(
                   std::string_view(flood_frame).substr(server::kHeaderBytes),
                   &out)
                   .ok());
}

class IngestServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = testutil::MakeEventTable(2000, 55);
    server::TenantConfig cfg;
    cfg.name = "events";
    cfg.table = &table_;
    cfg.generator = &generator_;
    cfg.time_column = 0;
    cfg.options = IngestOpts();
    OREO_CHECK_OK(server_.AddTenant(1, cfg));
    OREO_CHECK_OK(server_.Start());
  }

  Table table_;
  QdTreeGenerator generator_;
  server::OreoServer server_;
};

TEST_F(IngestServerTest, IngestRoundTripMutatesTheTenantEngine) {
  server::LoopbackClient client(&server_);
  Result<server::IngestReply> r1 =
      client.CallIngest(1, MakeWireBatch(100, 2000));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->status, server::ReplyStatus::kOk);
  EXPECT_EQ(r1->version, 1u);
  EXPECT_EQ(r1->rows_appended, 100u);
  EXPECT_EQ(r1->visible_rows, 2100u);

  server::WireIngest del;
  del.deletes.push_back(DeleteWhere(Predicate::Lt(0, Value(int64_t{100}))));
  Result<server::IngestReply> r2 = client.CallIngest(1, del);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->version, 2u);
  EXPECT_EQ(r2->rows_deleted, 100u);
  EXPECT_EQ(r2->visible_rows, 2000u);

  // Queries and ingests interleave on the same connection.
  Query q;
  q.id = 1;
  q.conjuncts = {
      Predicate::Between(0, Value(int64_t{0}), Value(int64_t{500}))};
  Result<server::QueryReply> qr = client.Call(1, q);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->status, server::ReplyStatus::kOk);

  server_.Shutdown();
  server::ServerStats stats = server_.stats();
  EXPECT_EQ(stats.ingest_batches, 2u);
  EXPECT_EQ(stats.ingest_rows, 100u);
  auto* engine = server_.engine(1);
  EXPECT_EQ(engine->core(0).visible_rows(), 2000u);
  EXPECT_EQ(engine->core(0).data_version(), 2u);
}

TEST_F(IngestServerTest, SchemaViolationsAnswerBadRequestInKind) {
  server::LoopbackClient client(&server_);

  // Ragged row (arity mismatch against the tenant schema).
  server::WireIngest ragged;
  ragged.rows.push_back({Value(int64_t{1}), Value(int64_t{2})});
  Result<server::IngestReply> r1 = client.CallIngest(1, ragged);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->status, server::ReplyStatus::kBadRequest);
  EXPECT_EQ(r1->version, 0u);  // nothing committed

  // Right arity, wrong type in column 0.
  server::WireIngest mistyped;
  mistyped.rows.push_back({Value(1.5), Value(int64_t{2}), Value("a")});
  Result<server::IngestReply> r2 = client.CallIngest(1, mistyped);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status, server::ReplyStatus::kBadRequest);

  // Delete predicate out of column range.
  server::WireIngest bad_delete;
  bad_delete.deletes.push_back(
      DeleteWhere(Predicate::Eq(9, Value(int64_t{1}))));
  Result<server::IngestReply> r3 = client.CallIngest(1, bad_delete);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->status, server::ReplyStatus::kBadRequest);

  // Unknown tenant.
  Result<server::IngestReply> r4 = client.CallIngest(42, MakeWireBatch(1, 0));
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->status, server::ReplyStatus::kUnknownTenant);

  // The engine never saw any of it.
  EXPECT_EQ(server_.engine(1)->core(0).data_version(), 0u);
  EXPECT_EQ(server_.engine(1)->core(0).visible_rows(), 2000u);
}

TEST_F(IngestServerTest, RetiredProtocolVersionsGetUpgradeHints) {
  server::LoopbackClient client(&server_);
  // A v3-encoded ingest frame with the version field rewritten to 2: framing
  // is identical across versions, so the server answers just this request
  // with an upgrade hint and the stream survives.
  std::string frame = server::EncodeIngestFrame(5, 1, MakeWireBatch(1, 0));
  frame[4] = 2;
  frame[5] = 0;
  client.session()->Feed(frame);
  Result<server::IngestReply> hint = client.WaitIngest(5);
  ASSERT_TRUE(hint.ok()) << hint.status().ToString();
  EXPECT_EQ(hint->status, server::ReplyStatus::kBadRequest);
  EXPECT_NE(hint->message.find("upgrade to version 3"), std::string::npos);
  EXPECT_NE(hint->message.find("version 2 retired"), std::string::npos);
  EXPECT_FALSE(client.session()->broken());

  // The same connection still serves current-version traffic.
  Result<server::IngestReply> ok = client.CallIngest(1, MakeWireBatch(1, 0));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, server::ReplyStatus::kOk);
}

}  // namespace
}  // namespace oreo
