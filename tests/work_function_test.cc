// Tests for the Work Function Algorithm and the two-state asymmetric MTS
// (Appendix C flavor): empirical competitive ratio <= 2n-1 (= 3 for n=2)
// against the exact offline optimum with asymmetric movement costs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mts/offline.h"
#include "mts/work_function.h"

namespace oreo {
namespace mts {
namespace {

TEST(WfaTest, StaysPutWhenCurrentIsFree) {
  WorkFunctionAlgorithm wfa({{0, 1}, {1, 0}}, 0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(wfa.OnQuery({0.0, 0.5}), 0);
  }
  EXPECT_EQ(wfa.num_switches(), 0);
}

TEST(WfaTest, EventuallyMovesOffExpensiveState) {
  WorkFunctionAlgorithm wfa({{0, 1}, {1, 0}}, 0);
  int state = 0;
  for (int i = 0; i < 20; ++i) state = wfa.OnQuery({1.0, 0.0});
  EXPECT_EQ(state, 1);
  EXPECT_EQ(wfa.num_switches(), 1);
}

TEST(WfaTest, DoesNotThrashUnderAlternatingCosts) {
  // Alternating cheap state with movement cost 1: WFA should not switch on
  // every query (that would be unbounded thrash).
  WorkFunctionAlgorithm wfa({{0, 1}, {1, 0}}, 0);
  int switches_before = wfa.num_switches();
  for (int i = 0; i < 100; ++i) {
    double c0 = (i % 2 == 0) ? 0.4 : 0.0;
    double c1 = (i % 2 == 0) ? 0.0 : 0.4;
    wfa.OnQuery({c0, c1});
  }
  EXPECT_LT(wfa.num_switches() - switches_before, 50);
}

TEST(TwoStateAsymmetricTest, RespectsAsymmetry) {
  // Moving 0->1 is cheap but returning costs 50. Committing to state 1 is
  // only safe (in the worst case) once ~d01 + d10 of regret has accumulated:
  // an adversary could flip the costs right after the move and force the
  // expensive return. So after 10 queries the algorithm must still hold at
  // state 0, and only commit once the accumulated loss covers the round trip.
  TwoStateAsymmetric alg(/*cost_01=*/1.0, /*cost_10=*/50.0, 0);
  for (int i = 0; i < 10; ++i) alg.OnQuery(1.0, 0.0);
  EXPECT_EQ(alg.current_state(), 0);
  for (int i = 0; i < 60; ++i) alg.OnQuery(1.0, 0.0);
  EXPECT_EQ(alg.current_state(), 1);
  int switches = alg.num_switches();
  // Mild pressure back toward 0 should not immediately trigger the expensive
  // return move.
  for (int i = 0; i < 20; ++i) alg.OnQuery(0.0, 1.0);
  EXPECT_LE(alg.num_switches() - switches, 0);
  // Sustained pressure eventually does.
  for (int i = 0; i < 80; ++i) alg.OnQuery(0.0, 1.0);
  EXPECT_EQ(alg.current_state(), 0);
}

// Empirical competitive ratio of WFA vs exact offline on random asymmetric
// two-state instances: must stay within 3 (+ small additive slack for the
// initial conditions).
class TwoStateRatioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoStateRatioTest, RatioAtMostThree) {
  Rng rng(GetParam());
  double d01 = rng.UniformDouble(0.5, 5.0);
  double d10 = rng.UniformDouble(0.5, 5.0);
  const size_t t_max = 500;
  std::vector<std::vector<double>> costs(t_max, std::vector<double>(2));
  // Piecewise-stationary costs: harder for online algorithms than iid noise.
  size_t t = 0;
  while (t < t_max) {
    size_t seg = 10 + rng.Uniform(80);
    int hot = static_cast<int>(rng.Uniform(2));
    for (size_t i = 0; i < seg && t < t_max; ++i, ++t) {
      costs[t][static_cast<size_t>(hot)] = rng.UniformDouble(0.5, 1.0);
      costs[t][static_cast<size_t>(1 - hot)] = rng.UniformDouble(0.0, 0.1);
    }
  }
  std::vector<std::vector<double>> dist = {{0.0, d01}, {d10, 0.0}};
  OfflineResult opt = SolveOfflineMetric(costs, dist);

  WorkFunctionAlgorithm wfa(dist, 0);
  double alg_cost = 0.0;
  int prev = 0;
  for (size_t i = 0; i < t_max; ++i) {
    int s = wfa.OnQuery(costs[i]);
    if (s != prev) {
      alg_cost += dist[static_cast<size_t>(prev)][static_cast<size_t>(s)];
      prev = s;
    }
    alg_cost += costs[i][static_cast<size_t>(s)];
  }
  double slack = d01 + d10;  // initial-state disadvantage
  EXPECT_LE(alg_cost, 3.0 * opt.total_cost + slack)
      << "d01=" << d01 << " d10=" << d10 << " ALG=" << alg_cost
      << " OPT=" << opt.total_cost;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoStateRatioTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

// WFA on more states: ratio <= 2n-1 against offline (uniform metric case).
class WfaRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(WfaRatioTest, WithinTwoNMinusOne) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 104729);
  const double alpha = 2.0;
  const size_t t_max = 400;
  std::vector<std::vector<double>> costs(t_max,
                                         std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : costs) {
    for (auto& c : row) c = rng.UniformDouble();
  }
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), alpha));
  for (int i = 0; i < n; ++i) dist[static_cast<size_t>(i)][static_cast<size_t>(i)] = 0.0;

  OfflineResult opt = SolveOfflineMetric(costs, dist);
  WorkFunctionAlgorithm wfa(dist, 0);
  double alg_cost = 0.0;
  int prev = 0;
  for (size_t t = 0; t < t_max; ++t) {
    int s = wfa.OnQuery(costs[t]);
    if (s != prev) {
      alg_cost += alpha;
      prev = s;
    }
    alg_cost += costs[t][static_cast<size_t>(s)];
  }
  EXPECT_LE(alg_cost, (2.0 * n - 1.0) * opt.total_cost + alpha);
}

INSTANTIATE_TEST_SUITE_P(StateCounts, WfaRatioTest,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace mts
}  // namespace oreo
