// Tests for src/sampling: sliding window semantics, reservoir uniformity,
// and the recency bias of the time-biased reservoir (the R-TBS stand-in
// behind Algorithm 5's admission sample).
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "sampling/reservoir.h"
#include "sampling/sliding_window.h"
#include "sampling/time_biased.h"

namespace oreo {
namespace {

// ------------------------------------------------------ SlidingWindow ----

TEST(SlidingWindowTest, FillsThenSlides) {
  SlidingWindow<int> w(3);
  EXPECT_EQ(w.size(), 0u);
  w.Add(1);
  w.Add(2);
  EXPECT_FALSE(w.full());
  w.Add(3);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.Items(), (std::vector<int>{1, 2, 3}));
  w.Add(4);
  EXPECT_EQ(w.Items(), (std::vector<int>{2, 3, 4}));
  w.Add(5);
  w.Add(6);
  EXPECT_EQ(w.Items(), (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(w.total_seen(), 6u);
}

TEST(SlidingWindowTest, CapacityOne) {
  SlidingWindow<int> w(1);
  w.Add(1);
  w.Add(2);
  EXPECT_EQ(w.Items(), std::vector<int>{2});
}

TEST(SlidingWindowTest, Clear) {
  SlidingWindow<int> w(4);
  w.Add(1);
  w.Add(2);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  w.Add(9);
  EXPECT_EQ(w.Items(), std::vector<int>{9});
}

TEST(SlidingWindowTest, OrderPreservedAcrossManyWraps) {
  SlidingWindow<int> w(5);
  for (int i = 0; i < 137; ++i) w.Add(i);
  EXPECT_EQ(w.Items(), (std::vector<int>{132, 133, 134, 135, 136}));
}

// --------------------------------------------------------- Reservoir ----

TEST(ReservoirTest, KeepsEverythingWhileUnderCapacity) {
  ReservoirSampler<int> r(10, Rng(1));
  for (int i = 0; i < 10; ++i) r.Add(i);
  EXPECT_EQ(r.size(), 10u);
  std::vector<int> items = r.Items();
  std::sort(items.begin(), items.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(items[static_cast<size_t>(i)], i);
}

TEST(ReservoirTest, SizeIsCapped) {
  ReservoirSampler<int> r(16, Rng(2));
  for (int i = 0; i < 1000; ++i) r.Add(i);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(ReservoirTest, InclusionIsApproximatelyUniform) {
  // Each of 100 items should appear in a size-10 reservoir ~10% of runs.
  const int kTrials = 3000;
  std::vector<int> hits(100, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> r(10, Rng(static_cast<uint64_t>(trial) + 17));
    for (int i = 0; i < 100; ++i) r.Add(i);
    for (int v : r.Items()) ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kTrials, 0.10, 0.03);
  }
}

// -------------------------------------------------- TimeBiasedReservoir ----

TEST(TimeBiasedTest, SizeIsCapped) {
  TimeBiasedReservoir<int> r(8, 0.1, Rng(3));
  for (int i = 0; i < 500; ++i) r.Add(i, static_cast<double>(i));
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.seen(), 500u);
}

TEST(TimeBiasedTest, RecentItemsDominate) {
  // With strong decay, the sample should contain mostly recent items.
  const int kTrials = 200;
  double recent_fraction = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    TimeBiasedReservoir<int> r(20, 0.05,
                               Rng(static_cast<uint64_t>(trial) + 5));
    for (int i = 0; i < 1000; ++i) r.Add(i, static_cast<double>(i));
    int recent = 0;
    for (int v : r.Items()) {
      if (v >= 800) ++recent;
    }
    recent_fraction += static_cast<double>(recent) / 20.0;
  }
  recent_fraction /= kTrials;
  // Uniform sampling would put only 20% in [800, 1000).
  EXPECT_GT(recent_fraction, 0.6);
}

TEST(TimeBiasedTest, ZeroLambdaIsApproximatelyUniform) {
  const int kTrials = 2000;
  std::vector<int> hits(100, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    TimeBiasedReservoir<int> r(10, 0.0, Rng(static_cast<uint64_t>(trial)));
    for (int i = 0; i < 100; ++i) r.Add(i, static_cast<double>(i));
    for (int v : r.Items()) ++hits[static_cast<size_t>(v)];
  }
  // First and last deciles should be retained at comparable rates.
  double first = std::accumulate(hits.begin(), hits.begin() + 10, 0.0);
  double last = std::accumulate(hits.end() - 10, hits.end(), 0.0);
  EXPECT_NEAR(first / last, 1.0, 0.25);
}

TEST(TimeBiasedTest, StrongerDecayMeansMoreRecency) {
  auto recency = [](double lambda) {
    double total = 0.0;
    for (int trial = 0; trial < 100; ++trial) {
      TimeBiasedReservoir<int> r(20, lambda,
                                 Rng(static_cast<uint64_t>(trial) + 31));
      for (int i = 0; i < 1000; ++i) r.Add(i, static_cast<double>(i));
      for (int v : r.Items()) total += v;
    }
    return total;
  };
  EXPECT_LT(recency(0.001), recency(0.1));
}

TEST(TimeBiasedTest, UnderCapacityKeepsAll) {
  TimeBiasedReservoir<int> r(50, 0.1, Rng(9));
  for (int i = 0; i < 20; ++i) r.Add(i, static_cast<double>(i));
  EXPECT_EQ(r.size(), 20u);
}

}  // namespace
}  // namespace oreo
