// The fairness wall: weighted deficit round-robin across tenants is a
// pinned contract, not an emergent property.
//
// The scheduler's pick order is deterministic given the queue contents, so
// the first test drives a fully pre-loaded FairScheduler with one
// dispatcher and compares the observed batch sequence against an
// independent reference simulation of the documented DRR algorithm.
// The remaining tests pin the statistical guarantees: executed throughput
// shares converge to the configured weights under saturation (within the
// 10% acceptance tolerance), one hostile tenant with an enormous backlog
// cannot starve an equal-weight peer, an idle tenant's unused share
// redistributes to the backlogged ones, and the kStats wire frame reports
// the per-tenant scheduler counters faithfully.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

// Cheap engines: fairness tests measure scheduling, not layout search.
core::OreoOptions CheapOptions(uint64_t seed) {
  core::OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = 1;
  opts.window_size = 100;
  opts.generate_every = 100000;
  opts.target_partitions = 4;
  opts.dataset_sample_rows = 200;
  return opts;
}

Query RangeQuery(int64_t id, int64_t lo, int64_t hi) {
  Query q;
  q.id = id;
  q.conjuncts = {Predicate::Between(0, Value(lo), Value(hi))};
  return q;
}

// Records every (tenant, batch_size) the dispatcher pool forms.
struct BatchRecorder {
  std::mutex mu;
  std::vector<std::pair<uint32_t, size_t>> order;

  ServerTestHooks hooks() {
    ServerTestHooks h;
    h.on_batch_start = [this](uint32_t tenant_id, size_t batch_size) {
      std::lock_guard<std::mutex> lock(mu);
      order.emplace_back(tenant_id, batch_size);
    };
    return h;
  }

  std::vector<std::pair<uint32_t, size_t>> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return order;
  }
};

// A scheduler over T tenants sharing one table, each queue pre-loaded
// before Start so pick order depends only on the DRR state machine.
class SchedulerHarness {
 public:
  SchedulerHarness(const std::vector<uint32_t>& weights,
                   const FairScheduler::Options& options,
                   const BatchPolicy& policy, const ServerTestHooks* hooks)
      : table_(testutil::MakeEventTable(600, 31)) {
    for (size_t t = 0; t < weights.size(); ++t) {
      engines_.push_back(core::MakeEngine(&table_, &generator_,
                                          /*time_column=*/0,
                                          CheapOptions(31 + t)));
    }
    scheduler_ = std::make_unique<FairScheduler>(options, hooks);
    for (size_t t = 0; t < weights.size(); ++t) {
      scheduler_->AddTenant(static_cast<uint32_t>(t + 1), weights[t],
                            engines_[t].get(), policy);
    }
  }

  // Enqueues `count` requests for a tenant (replies are counted, dropped).
  void Prefill(uint32_t tenant_id, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      PendingRequest req;
      req.request_id = next_id_;
      req.query = RangeQuery(static_cast<int64_t>(next_id_), 0, 50);
      ++next_id_;
      req.on_reply = [this](const QueryReply& reply) {
        if (reply.status == ReplyStatus::kOk) ++ok_replies_;
      };
      ASSERT_EQ(scheduler_->Submit(tenant_id, std::move(req)),
                AdmissionOutcome::kAdmitted);
    }
  }

  // Polls tenant counters until `target` queries executed in total.
  void WaitExecuted(uint64_t target) {
    while (TotalExecuted() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  uint64_t TotalExecuted() {
    uint64_t total = 0;
    for (const TenantStats& t : scheduler_->tenant_stats()) {
      total += t.executed;
    }
    return total;
  }

  TenantStats StatsOf(uint32_t tenant_id) {
    for (const TenantStats& t : scheduler_->tenant_stats()) {
      if (t.tenant_id == tenant_id) return t;
    }
    ADD_FAILURE() << "unknown tenant " << tenant_id;
    return {};
  }

  FairScheduler* scheduler() { return scheduler_.get(); }
  uint64_t ok_replies() const { return ok_replies_.load(); }

 private:
  Table table_;
  QdTreeGenerator generator_;
  std::vector<std::unique_ptr<core::OreoEngine>> engines_;
  std::unique_ptr<FairScheduler> scheduler_;
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> ok_replies_{0};
};

// Independent model of the documented DRR algorithm (scheduler.h): scan the
// id-ordered ring from the cursor for the first ready tenant with deficit
// >= 1; if none is funded but some are ready, grant weight x quantum to
// ready tenants and zero idle ones; charge the served count after the pick.
struct RefTenant {
  uint32_t id;
  uint32_t weight;
  size_t queued;
  int64_t deficit = 0;
};

std::vector<std::pair<uint32_t, size_t>> SimulateDrr(
    std::vector<RefTenant> tenants, size_t max_batch, uint32_t quantum) {
  std::vector<std::pair<uint32_t, size_t>> order;
  const size_t n = tenants.size();
  size_t cursor = 0;
  while (true) {
    size_t pick = n;
    bool any_ready = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = (cursor + i) % n;
      if (tenants[pos].queued == 0) continue;
      any_ready = true;
      if (tenants[pos].deficit >= 1) {
        pick = pos;
        break;
      }
    }
    if (pick != n) {
      RefTenant& t = tenants[pick];
      const size_t served = std::min(max_batch, t.queued);
      t.queued -= served;
      t.deficit -= static_cast<int64_t>(served);
      order.emplace_back(t.id, served);
      cursor = (pick + 1) % n;
      continue;
    }
    if (!any_ready) break;  // all drained
    for (RefTenant& t : tenants) {
      if (t.queued > 0) {
        t.deficit += static_cast<int64_t>(t.weight) * quantum;
      } else {
        t.deficit = 0;
      }
    }
  }
  return order;
}

// ------------------------------------------------- deterministic order ---

TEST(ServerFairnessTest, DrrPickOrderMatchesReferenceSimulation) {
  const std::vector<uint32_t> weights = {3, 2, 1};
  const size_t kPerTenant = 12;
  FairScheduler::Options options;
  options.dispatchers = 1;  // serialized picks: order is fully determined
  options.quantum = 2;      // small quantum: many refill rounds in 36 queries
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_us = 0;
  policy.max_queue = 64;

  BatchRecorder recorder;
  ServerTestHooks hooks = recorder.hooks();
  SchedulerHarness harness(weights, options, policy, &hooks);
  // Load every queue before the pool exists, so the first pick already sees
  // the full picture and the whole run is deterministic.
  for (uint32_t t = 1; t <= 3; ++t) harness.Prefill(t, kPerTenant);
  harness.scheduler()->Start();
  harness.WaitExecuted(3 * kPerTenant);
  harness.scheduler()->Drain();

  const auto expected = SimulateDrr({{1, 3, kPerTenant, 0},
                                     {2, 2, kPerTenant, 0},
                                     {3, 1, kPerTenant, 0}},
                                    policy.max_batch, options.quantum);
  EXPECT_EQ(recorder.snapshot(), expected)
      << "the scheduler diverged from the documented DRR algorithm";
  EXPECT_EQ(harness.ok_replies(), 3 * kPerTenant);
}

// ---------------------------------------------------- weighted shares ----

TEST(ServerFairnessTest, SaturatedSharesConvergeToWeights) {
  const std::vector<uint32_t> weights = {3, 1};
  const size_t kPrefill = 600;
  FairScheduler::Options options;
  // Weights bind under *contention*: with as many dispatchers as tenants
  // the work-conserving pool rightly gives every tenant a full worker, so
  // the weighted-share guarantee is pinned where tenants compete for one.
  options.dispatchers = 1;
  options.quantum = 4;
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_us = 0;
  policy.max_queue = 1024;

  BatchRecorder recorder;
  ServerTestHooks hooks = recorder.hooks();
  SchedulerHarness harness(weights, options, policy, &hooks);
  for (uint32_t t = 1; t <= 2; ++t) harness.Prefill(t, kPrefill);
  harness.scheduler()->Start();
  harness.WaitExecuted(2 * kPrefill);
  harness.scheduler()->Drain();

  // The saturation window is carved out of the recorded batch sequence, not
  // out of wall-clock samples: both tenants are backlogged by construction
  // from the first batch until the heavy tenant's last query — it drains
  // ~3x faster, so the light tenant still holds most of its backlog there.
  const auto order = recorder.snapshot();
  uint64_t heavy_exec = 0, light_exec = 0;
  for (const auto& batch : order) {
    (batch.first == 1 ? heavy_exec : light_exec) += batch.second;
    if (heavy_exec == kPrefill) break;  // heavy tenant just ran dry
  }
  ASSERT_EQ(heavy_exec, kPrefill);
  ASSERT_LT(light_exec, kPrefill) << "light tenant drained first";

  const double total =
      static_cast<double>(heavy_exec) + static_cast<double>(light_exec);
  const double heavy_share = static_cast<double>(heavy_exec) / total;
  // Weight share 3/4 = 0.75; the acceptance tolerance is 10%.
  EXPECT_NEAR(heavy_share, 0.75, 0.075)
      << "heavy executed " << heavy_exec << ", light executed " << light_exec
      << " within the saturated window";
  // Everything runs to completion regardless of weights.
  EXPECT_EQ(harness.ok_replies(), 2 * kPrefill);
}

// ------------------------------------------------- starvation freedom ----

TEST(ServerFairnessTest, HostileBacklogCannotStarveEqualPeer) {
  const std::vector<uint32_t> weights = {1, 1};
  constexpr uint32_t kHostile = 1;
  constexpr uint32_t kVictim = 2;
  const size_t kHostileBacklog = 800;
  const size_t kVictimQueries = 20;
  FairScheduler::Options options;
  options.dispatchers = 2;
  options.quantum = 4;
  BatchPolicy policy;
  policy.max_batch = 8;
  policy.max_delay_us = 0;
  policy.max_queue = 1024;

  SchedulerHarness harness(weights, options, policy, nullptr);
  harness.Prefill(kHostile, kHostileBacklog);
  harness.scheduler()->Start();

  // The victim runs a synchronous closed loop — one query at a time, each
  // submitted only after the previous reply — the worst case for a tenant
  // competing against a saturating backlog. Starvation would hang the test.
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < kVictimQueries; ++i) {
    bool done = false;
    ReplyStatus status = ReplyStatus::kInternal;
    PendingRequest req;
    req.request_id = 900000 + i;
    req.query = RangeQuery(static_cast<int64_t>(900000 + i), 0, 50);
    req.on_reply = [&](const QueryReply& reply) {
      std::lock_guard<std::mutex> lock(mu);
      status = reply.status;
      done = true;
      cv.notify_one();
    };
    ASSERT_EQ(harness.scheduler()->Submit(kVictim, std::move(req)),
              AdmissionOutcome::kAdmitted);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    EXPECT_EQ(status, ReplyStatus::kOk) << "victim query " << i;
  }
  harness.scheduler()->Drain();

  EXPECT_EQ(harness.StatsOf(kVictim).executed, kVictimQueries);
  EXPECT_GT(harness.StatsOf(kHostile).executed, 0u);
}

// ------------------------------------------------ idle redistribution ----

TEST(ServerFairnessTest, IdleTenantShareRedistributesToBacklogged) {
  const std::vector<uint32_t> weights = {3, 1};
  const size_t kHeavyPrefill = 24;   // heavy tenant idles early
  const size_t kLightPrefill = 240;  // light tenant stays backlogged
  FairScheduler::Options options;
  options.dispatchers = 1;
  options.quantum = 2;
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_delay_us = 0;
  policy.max_queue = 1024;

  BatchRecorder recorder;
  ServerTestHooks hooks = recorder.hooks();
  SchedulerHarness harness(weights, options, policy, &hooks);
  harness.Prefill(1, kHeavyPrefill);
  harness.Prefill(2, kLightPrefill);
  harness.scheduler()->Start();
  // Completion of the whole light backlog IS the redistribution property:
  // after the weight-3 tenant idles, the weight-1 tenant must absorb the
  // entire pool instead of pacing at its configured quarter share.
  harness.WaitExecuted(kHeavyPrefill + kLightPrefill);
  harness.scheduler()->Drain();

  const auto order = recorder.snapshot();
  // While both were backlogged the heavy tenant dominated 3:1...
  size_t last_heavy = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i].first == 1) last_heavy = i;
  }
  uint64_t heavy_before = 0, light_before = 0;
  for (size_t i = 0; i <= last_heavy; ++i) {
    (order[i].first == 1 ? heavy_before : light_before) += order[i].second;
  }
  EXPECT_EQ(heavy_before, kHeavyPrefill);
  EXPECT_GE(static_cast<double>(heavy_before),
            2.0 * static_cast<double>(light_before))
      << "heavy tenant did not get its weighted share while backlogged";
  // ... and once it idled, every remaining batch went to the light tenant,
  // back to back — no slot was reserved for the idle tenant's unused share.
  uint64_t light_after = 0;
  for (size_t i = last_heavy + 1; i < order.size(); ++i) {
    ASSERT_EQ(order[i].first, 2u) << "batch " << i << " after heavy idled";
    light_after += order[i].second;
  }
  EXPECT_EQ(light_before + light_after, kLightPrefill);
}

// ------------------------------------------------------- stats frame -----

TEST(ServerFairnessTest, StatsFrameReportsSchedulerCounters) {
  Table table = testutil::MakeEventTable(600, 33);
  QdTreeGenerator generator;
  ServerOptions sopts;
  sopts.dispatchers = 2;
  OreoServer srv(sopts);
  const uint32_t kWeights[] = {3, 1};
  for (uint32_t t = 0; t < 2; ++t) {
    TenantConfig cfg;
    cfg.name = "t" + std::to_string(t);
    cfg.table = &table;
    cfg.generator = &generator;
    cfg.time_column = 0;
    cfg.options = CheapOptions(33 + t);
    cfg.weight = kWeights[t];
    cfg.batch.max_delay_us = 0;
    ASSERT_TRUE(srv.AddTenant(t + 1, cfg).ok());
  }
  ASSERT_TRUE(srv.Start().ok());

  LoopbackClient client(&srv);
  const size_t kPerTenant = 40;
  for (uint32_t t = 1; t <= 2; ++t) {
    for (size_t i = 0; i < kPerTenant; ++i) {
      Result<QueryReply> reply =
          client.Call(t, RangeQuery(static_cast<int64_t>(t * 1000 + i), 0, 50));
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
      EXPECT_TRUE(reply->executed);
    }
  }

  // The snapshot crosses the wire as a kStats round trip on the same
  // connection the queries used.
  Result<StatsSnapshot> snap = client.FetchStats();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->tenants.size(), 2u);
  for (uint32_t t = 0; t < 2; ++t) {
    const TenantStats& ts = snap->tenants[t];
    EXPECT_EQ(ts.tenant_id, t + 1);
    EXPECT_EQ(ts.weight, kWeights[t]);
    EXPECT_EQ(ts.admitted, kPerTenant);
    EXPECT_EQ(ts.executed, kPerTenant);
    EXPECT_GT(ts.batches, 0u);
    EXPECT_EQ(ts.expired_admission + ts.expired_formation + ts.expired_reply,
              0u);
  }
  EXPECT_EQ(snap->server.executed, 2 * kPerTenant);
  EXPECT_EQ(snap->server.admitted, 2 * kPerTenant);
  EXPECT_EQ(snap->server.sessions_opened, 1u);

  srv.Shutdown();
  // After the drain the in-process accessor and the wire snapshot agree.
  StatsSnapshot final_snap = srv.stats_snapshot();
  EXPECT_EQ(final_snap.server.executed, 2 * kPerTenant);
  ASSERT_EQ(final_snap.tenants.size(), 2u);
  EXPECT_EQ(final_snap.tenants[0].weight, 3u);
}

}  // namespace
}  // namespace server
}  // namespace oreo
