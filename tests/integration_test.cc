// End-to-end integration tests: the full OREO loop (layout manager +
// D-UMTS reorganizer + simulator) on the paper's workload shapes, at reduced
// scale. Verifies the headline qualitative results: OREO adapts to drift,
// beats the static layout on drifting workloads, stays between Greedy and
// Regret in reorganization aggressiveness, and physical replay agrees with
// the logical trace.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/oreo.h"
#include "core/background.h"
#include "core/physical.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "layout/qdtree_layout.h"
#include "test_util.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

namespace oreo {
namespace core {
namespace {

struct Fixture {
  workloads::WorkloadDataset ds;
  workloads::Workload wl;
};

Fixture MakeFixture(const std::string& dataset, size_t rows, size_t queries,
                    size_t segments, uint64_t seed) {
  Fixture f{workloads::MakeDataset(dataset, rows, seed), {}};
  workloads::WorkloadOptions wopts;
  wopts.num_queries = queries;
  wopts.num_segments = segments;
  wopts.seed = seed + 1;
  f.wl = workloads::GenerateWorkload(f.ds.templates, wopts);
  return f;
}

OreoOptions SmallOpts(double alpha = 40.0) {
  OreoOptions o;
  o.alpha = alpha;
  o.window_size = 100;
  o.generate_every = 100;
  o.target_partitions = 16;
  o.dataset_sample_rows = 800;
  o.max_states = 8;
  o.seed = 5;
  return o;
}

SimResult RunStatic(const Fixture& f, const LayoutGenerator& gen,
                    const OreoOptions& opts) {
  StateRegistry reg;
  Rng rng(17);
  Table sample = f.ds.table.SampleRows(opts.dataset_sample_rows, &rng);
  std::vector<Query> wl_sample;
  for (size_t i = 0; i < f.wl.queries.size(); i += 10) {
    wl_sample.push_back(f.wl.queries[i]);
  }
  auto layout = gen.Generate(sample, wl_sample, opts.target_partitions);
  int id = reg.Add(Materialize(
      "static", std::shared_ptr<const Layout>(std::move(layout)), f.ds.table));
  StaticStrategy strategy(id);
  SimOptions sim;
  sim.alpha = opts.alpha;
  return RunSimulation(&strategy, nullptr, &reg, f.wl.queries, sim);
}

TEST(IntegrationTest, OreoBeatsStaticOnDriftingTpch) {
  // Segment lengths relative to alpha mirror the paper's regime (30k queries
  // over 21 segments at alpha=80): switches must have room to amortize.
  Fixture f = MakeFixture("tpch", 20000, 6000, 10, 11);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts();

  Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);
  SimResult oreo_result = oreo.Run(f.wl.queries);
  SimResult static_result = RunStatic(f, gen, opts);

  EXPECT_LT(oreo_result.total_cost(), static_result.total_cost());
  EXPECT_GE(oreo_result.num_switches, 1);
}

TEST(IntegrationTest, OreoAdaptsOnTelemetry) {
  Fixture f = MakeFixture("telemetry", 20000, 3000, 6, 13);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts();
  Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);
  SimResult r = oreo.Run(f.wl.queries);
  // Sanity: costs are positive and bounded by a full scan per query.
  EXPECT_GT(r.query_cost, 0.0);
  EXPECT_LT(r.query_cost, static_cast<double>(f.wl.queries.size()));
}

TEST(IntegrationTest, GreedySwitchesAtLeastAsOftenAsOreoWhichBeatsRegret) {
  // Paper SVI-B: Greedy is the most aggressive reorganizer, Regret the most
  // conservative, OREO in between.
  Fixture f = MakeFixture("tpch", 15000, 2500, 5, 17);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts(60.0);

  auto run_with_manager = [&](auto make_strategy) {
    StateRegistry reg;
    LayoutManagerOptions mopts;
    mopts.window_size = opts.window_size;
    mopts.generate_every = opts.generate_every;
    mopts.epsilon = opts.epsilon;
    mopts.max_states = opts.max_states;
    mopts.target_partitions = opts.target_partitions;
    mopts.dataset_sample_rows = opts.dataset_sample_rows;
    mopts.seed = opts.seed;
    LayoutManager mgr(&f.ds.table, &gen, &reg, mopts);
    int def = mgr.InitDefaultState(f.ds.time_column);
    auto strategy = make_strategy(&reg, &mgr, def);
    SimOptions sim;
    sim.alpha = opts.alpha;
    return RunSimulation(strategy.get(), &mgr, &reg, f.wl.queries, sim);
  };

  SimResult greedy = run_with_manager(
      [&](StateRegistry* reg, LayoutManager* mgr, int def) {
        return std::make_unique<GreedyStrategy>(reg, mgr, def);
      });
  SimResult regret = run_with_manager(
      [&](StateRegistry* reg, LayoutManager* /*mgr*/, int def) {
        return std::make_unique<RegretStrategy>(reg, opts.alpha, def);
      });
  Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);
  SimResult oreo_result = oreo.Run(f.wl.queries);

  EXPECT_GE(greedy.num_switches, oreo_result.num_switches);
  EXPECT_LE(regret.query_cost, regret.total_cost());
  // Greedy pays the least query cost among strategies sharing candidates.
  EXPECT_LE(greedy.query_cost, regret.query_cost * 1.2);
}

TEST(IntegrationTest, MtsOptimalAndOfflineOptimalOrdering) {
  // Offline Optimal (full workload knowledge, instant switches) lower-bounds
  // the query cost of MTS-Optimal over the same per-template state space.
  Fixture f = MakeFixture("tpch", 15000, 2000, 5, 19);
  QdTreeGenerator gen;
  Rng rng(23);
  Table sample = f.ds.table.SampleRows(800, &rng);

  StateRegistry reg;
  std::vector<int> tpl_states = BuildPerTemplateStates(
      f.ds.table, sample, f.ds.templates, gen, 16, 100, 29, &reg);

  SimOptions sim;
  sim.alpha = 40.0;

  OfflineOptimalStrategy offline(tpl_states, &f.wl);
  SimResult off = RunSimulation(&offline, nullptr, &reg, f.wl.queries, sim);

  mts::DumtsOptions dopts;
  dopts.alpha = sim.alpha;
  dopts.gamma = 1.0;
  dopts.seed = 31;
  MtsOptimalStrategy mts_opt(&reg, tpl_states,
                             tpl_states[static_cast<size_t>(
                                 f.wl.queries.front().template_id)],
                             dopts);
  SimResult mts_result =
      RunSimulation(&mts_opt, nullptr, &reg, f.wl.queries, sim);

  EXPECT_LE(off.query_cost, mts_result.query_cost * 1.05);
  // Offline switches exactly at template changes: segments - 1.
  EXPECT_EQ(off.num_switches,
            static_cast<int64_t>(f.wl.segment_starts.size()) - 1);
}

TEST(IntegrationTest, PhysicalReplayAgreesWithLogicalTrace) {
  namespace fs = std::filesystem;
  Fixture f = MakeFixture("telemetry", 8000, 1200, 4, 37);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts();
  opts.max_states = 6;
  Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);
  SimResult sim = oreo.Run(f.wl.queries, /*record_trace=*/true);

  std::string dir = testutil::ScratchDir("integration_replay");
  auto replay = ReplayPhysical(f.ds.table, oreo.registry(), sim, f.wl.queries,
                               /*stride=*/50, dir);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->num_switches, sim.num_switches);
  EXPECT_GT(replay->query_seconds, 0.0);
  fs::remove_all(dir);
}

TEST(IntegrationTest, StreamingWithBackgroundPhysicalReorganization) {
  // The full production loop: OREO makes decisions online; a background
  // worker rewrites the table into each adopted layout while queries keep
  // being served (correctly) from a snapshot of whatever is on disk.
  namespace fs = std::filesystem;
  Fixture f = MakeFixture("telemetry", 6000, 900, 3, 47);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts();
  opts.max_states = 6;
  Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);

  std::string dir = testutil::ScratchDir("integration_bg");
  PhysicalStore store(dir);
  ASSERT_TRUE(store
                  .MaterializeLayout(f.ds.table,
                                     oreo.registry().Get(oreo.default_state()))
                  .ok());
  BackgroundReorganizer bg(&store, &f.ds.table);

  int64_t reorgs_submitted = 0;
  for (const Query& q : f.wl.queries) {
    Oreo::StepResult step = oreo.Step(q);
    if (step.reorganized) {
      // One background rewrite at a time: drain the previous one first.
      bg.Wait();
      store.Vacuum();
      ASSERT_TRUE(bg.Submit(&oreo.registry().Get(step.state)));
      ++reorgs_submitted;
    }
    if (q.id % 60 == 0) {
      // Queries are served from the current on-disk snapshot, which may lag
      // the logical decision — results must be exact either way.
      PhysicalStore::Snapshot snap = store.GetSnapshot();
      auto exec = store.ExecuteQueryOnSnapshot(snap, q);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_EQ(exec->matches, CountMatches(f.ds.table, q));
    }
  }
  bg.Wait();
  store.Vacuum();
  EXPECT_TRUE(bg.last_status().ok() || reorgs_submitted == 0);
  EXPECT_EQ(bg.stats().completed, reorgs_submitted);
  fs::remove_all(dir);
}

TEST(IntegrationTest, HigherAlphaNeverIncreasesSwitchCount) {
  // Figure 5's monotone trend: more expensive reorganization -> fewer (or
  // equal) layout changes.
  Fixture f = MakeFixture("tpch", 12000, 2000, 5, 41);
  QdTreeGenerator gen;
  auto switches_at = [&](double alpha) {
    OreoOptions opts = SmallOpts(alpha);
    Oreo oreo(&f.ds.table, &gen, f.ds.time_column, opts);
    return oreo.Run(f.wl.queries).num_switches;
  };
  int64_t low = switches_at(10.0);
  int64_t high = switches_at(400.0);
  EXPECT_GE(low, high);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  Fixture f = MakeFixture("tpcds", 10000, 1500, 4, 43);
  QdTreeGenerator gen;
  OreoOptions opts = SmallOpts();
  Oreo a(&f.ds.table, &gen, f.ds.time_column, opts);
  Oreo b(&f.ds.table, &gen, f.ds.time_column, opts);
  SimResult ra = a.Run(f.wl.queries);
  SimResult rb = b.Run(f.wl.queries);
  EXPECT_DOUBLE_EQ(ra.query_cost, rb.query_cost);
  EXPECT_EQ(ra.num_switches, rb.num_switches);
}

}  // namespace
}  // namespace core
}  // namespace oreo
