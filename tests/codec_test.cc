// Tests for src/storage/codec: varint/zigzag primitives and the column
// encodings, including parameterized roundtrips across data distributions.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/rng.h"
#include "storage/codec.h"

namespace oreo {
namespace {

// ---------------------------------------------------------- primitives ----

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     (1ULL << 32), ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
}

TEST(ZigZagTest, RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(ZigZagTest, SmallMagnitudesStaySmall) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
}

// ------------------------------------------------- int64 column codecs ----

struct Int64CodecCase {
  const char* name;
  Encoding encoding;
  // Data shape: 0=random, 1=sorted, 2=few-runs, 3=constant, 4=empty
  int shape;
};

class Int64CodecTest : public ::testing::TestWithParam<Int64CodecCase> {
 protected:
  std::vector<int64_t> MakeData(int shape) {
    Rng rng(17);
    std::vector<int64_t> data;
    switch (shape) {
      case 0:
        for (int i = 0; i < 1000; ++i) data.push_back(rng.UniformInt(-1000000, 1000000));
        break;
      case 1:
        for (int i = 0; i < 1000; ++i) data.push_back(i * 3 + static_cast<int64_t>(rng.Uniform(3)));
        break;
      case 2:
        for (int run = 0; run < 10; ++run) {
          int64_t v = rng.UniformInt(-50, 50);
          for (int i = 0; i < 100; ++i) data.push_back(v);
        }
        break;
      case 3:
        data.assign(500, 42);
        break;
      case 4:
        break;
    }
    return data;
  }
};

TEST_P(Int64CodecTest, RoundTrip) {
  const Int64CodecCase& c = GetParam();
  std::vector<int64_t> data = MakeData(c.shape);
  std::string buf;
  EncodeInt64(data, c.encoding, &buf);
  std::vector<int64_t> out;
  Status st = DecodeInt64(buf, c.encoding, data.size(), &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Int64CodecTest,
    ::testing::Values(
        Int64CodecCase{"plain_random", Encoding::kPlain, 0},
        Int64CodecCase{"plain_sorted", Encoding::kPlain, 1},
        Int64CodecCase{"plain_empty", Encoding::kPlain, 4},
        Int64CodecCase{"rle_runs", Encoding::kRle, 2},
        Int64CodecCase{"rle_constant", Encoding::kRle, 3},
        Int64CodecCase{"rle_random", Encoding::kRle, 0},
        Int64CodecCase{"delta_sorted", Encoding::kDeltaVarint, 1},
        Int64CodecCase{"delta_random", Encoding::kDeltaVarint, 0},
        Int64CodecCase{"delta_constant", Encoding::kDeltaVarint, 3}),
    [](const ::testing::TestParamInfo<Int64CodecCase>& info) {
      return info.param.name;
    });

TEST(Int64CodecTest2, RleCompressesRuns) {
  std::vector<int64_t> data(10000, 7);
  std::string buf;
  EncodeInt64(data, Encoding::kRle, &buf);
  EXPECT_LT(buf.size(), 16u);  // one (run, value) pair
}

TEST(Int64CodecTest2, DeltaCompressesSorted) {
  std::vector<int64_t> data;
  for (int64_t i = 0; i < 10000; ++i) data.push_back(1000000 + i);
  std::string buf;
  EncodeInt64(data, Encoding::kDeltaVarint, &buf);
  EXPECT_LT(buf.size(), data.size() * 2);  // ~1 byte per delta + first value
}

TEST(Int64CodecTest2, ChooseEncodingHeuristics) {
  std::vector<int64_t> constant(1000, 5);
  EXPECT_EQ(ChooseInt64Encoding(constant), Encoding::kRle);

  std::vector<int64_t> sorted;
  for (int64_t i = 0; i < 1000; ++i) sorted.push_back(i * 7);
  EXPECT_EQ(ChooseInt64Encoding(sorted), Encoding::kDeltaVarint);

  Rng rng(3);
  std::vector<int64_t> random;
  for (int i = 0; i < 1000; ++i) random.push_back(rng.UniformInt(-1e9, 1e9));
  EXPECT_EQ(ChooseInt64Encoding(random), Encoding::kPlain);

  EXPECT_EQ(ChooseInt64Encoding({}), Encoding::kPlain);
}

TEST(Int64CodecTest2, DecodeDetectsSizeMismatch) {
  std::vector<int64_t> data = {1, 2, 3};
  std::string buf;
  EncodeInt64(data, Encoding::kPlain, &buf);
  std::vector<int64_t> out;
  EXPECT_EQ(DecodeInt64(buf, Encoding::kPlain, 4, &out).code(),
            StatusCode::kCorruption);
}

TEST(Int64CodecTest2, DecodeDetectsTruncatedRle) {
  std::vector<int64_t> data(100, 9);
  std::string buf;
  EncodeInt64(data, Encoding::kRle, &buf);
  buf.resize(buf.size() - 1);
  std::vector<int64_t> out;
  EXPECT_EQ(DecodeInt64(buf, Encoding::kRle, 100, &out).code(),
            StatusCode::kCorruption);
}

TEST(Int64CodecTest2, DecodeDetectsRleOverflow) {
  // A run longer than the declared row count must be rejected.
  std::string buf;
  PutVarint64(&buf, 50);  // run of 50
  PutVarint64(&buf, ZigZagEncode(1));
  std::vector<int64_t> out;
  EXPECT_EQ(DecodeInt64(buf, Encoding::kRle, 10, &out).code(),
            StatusCode::kCorruption);
}

TEST(Int64CodecTest2, DecodeDetectsTrailingBytes) {
  std::vector<int64_t> data = {1, 2, 3};
  std::string buf;
  EncodeInt64(data, Encoding::kDeltaVarint, &buf);
  buf.push_back('\0');
  std::vector<int64_t> out;
  EXPECT_EQ(DecodeInt64(buf, Encoding::kDeltaVarint, 3, &out).code(),
            StatusCode::kCorruption);
}

// ----------------------------------------------------- double / string ----

TEST(DoubleCodecTest, RoundTrip) {
  std::vector<double> data = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  std::string buf;
  EncodeDouble(data, &buf);
  std::vector<double> out;
  ASSERT_TRUE(DecodeDouble(buf, data.size(), &out).ok());
  EXPECT_EQ(out, data);
}

TEST(DoubleCodecTest, SizeMismatch) {
  std::string buf(17, 'x');
  std::vector<double> out;
  EXPECT_EQ(DecodeDouble(buf, 2, &out).code(), StatusCode::kCorruption);
}

TEST(StringDictCodecTest, RoundTrip) {
  std::vector<std::string> dict = {"apple", "", "banana"};
  std::vector<uint32_t> codes = {0, 2, 2, 1, 0};
  std::string buf;
  EncodeStringDict(codes, dict, &buf);
  std::vector<uint32_t> out_codes;
  std::vector<std::string> out_dict;
  ASSERT_TRUE(
      DecodeStringDict(buf, codes.size(), &out_codes, &out_dict).ok());
  EXPECT_EQ(out_codes, codes);
  EXPECT_EQ(out_dict, dict);
}

TEST(StringDictCodecTest, DetectsOutOfRangeCode) {
  std::vector<std::string> dict = {"a"};
  std::vector<uint32_t> codes = {0, 0};
  std::string buf;
  EncodeStringDict(codes, dict, &buf);
  // Corrupt the last 4 bytes (second code) to a huge value.
  buf[buf.size() - 1] = '\x7f';
  std::vector<uint32_t> out_codes;
  std::vector<std::string> out_dict;
  EXPECT_EQ(DecodeStringDict(buf, 2, &out_codes, &out_dict).code(),
            StatusCode::kCorruption);
}

TEST(StringDictCodecTest, DetectsTruncation) {
  std::vector<std::string> dict = {"hello"};
  std::vector<uint32_t> codes = {0};
  std::string buf;
  EncodeStringDict(codes, dict, &buf);
  buf.resize(buf.size() / 2);
  std::vector<uint32_t> out_codes;
  std::vector<std::string> out_dict;
  EXPECT_FALSE(DecodeStringDict(buf, 1, &out_codes, &out_dict).ok());
}

TEST(StringDictCodecTest, EmptyColumn) {
  std::string buf;
  EncodeStringDict({}, {}, &buf);
  std::vector<uint32_t> out_codes;
  std::vector<std::string> out_dict;
  ASSERT_TRUE(DecodeStringDict(buf, 0, &out_codes, &out_dict).ok());
  EXPECT_TRUE(out_codes.empty());
  EXPECT_TRUE(out_dict.empty());
}

// ------------------------------------------------------- edge values ------

// Every int64 encoding must round-trip the numeric extremes, including
// adjacent INT64_MIN/INT64_MAX pairs whose deltas only fit with wrapping
// two's-complement arithmetic.
TEST(Int64CodecEdgeTest, ExtremeValuesRoundTripAllEncodings) {
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const std::vector<int64_t> edge = {0,    -1,       1,        kMin,
                                     kMax, kMin + 1, kMax - 1, kMin,
                                     kMin, kMax,     0,        kMax};
  for (Encoding enc :
       {Encoding::kPlain, Encoding::kRle, Encoding::kDeltaVarint}) {
    std::string buf;
    EncodeInt64(edge, enc, &buf);
    std::vector<int64_t> out;
    ASSERT_TRUE(DecodeInt64(buf, enc, edge.size(), &out).ok())
        << EncodingName(enc);
    EXPECT_EQ(out, edge) << EncodingName(enc);
  }
}

TEST(Int64CodecEdgeTest, ChosenEncodingHandlesExtremeSortedRuns) {
  // ChooseInt64Encoding must never pick an encoding that corrupts the data
  // it was chosen for, even at the extremes of the domain.
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  for (const std::vector<int64_t>& values :
       {std::vector<int64_t>{kMin, kMin, kMin, kMax, kMax, kMax},
        std::vector<int64_t>{kMin, -1, 0, 1, kMax},
        std::vector<int64_t>{kMax, kMin, kMax, kMin}}) {
    Encoding enc = ChooseInt64Encoding(values);
    std::string buf;
    EncodeInt64(values, enc, &buf);
    std::vector<int64_t> out;
    ASSERT_TRUE(DecodeInt64(buf, enc, values.size(), &out).ok())
        << EncodingName(enc);
    EXPECT_EQ(out, values) << EncodingName(enc);
  }
}

TEST(DoubleCodecEdgeTest, NonFiniteAndDenormalRoundTripBitExactly) {
  const std::vector<double> edge = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon()};
  std::string buf;
  EncodeDouble(edge, &buf);
  std::vector<double> out;
  ASSERT_TRUE(DecodeDouble(buf, edge.size(), &out).ok());
  ASSERT_EQ(out.size(), edge.size());
  for (size_t i = 0; i < edge.size(); ++i) {
    // Bit-exact comparison: distinguishes -0.0 from 0.0 and keeps NaN
    // comparable.
    uint64_t a, b;
    std::memcpy(&a, &edge[i], sizeof(a));
    std::memcpy(&b, &out[i], sizeof(b));
    EXPECT_EQ(a, b) << "index " << i;
  }
}

TEST(StringDictCodecEdgeTest, EmptyLongAndBinaryStringsRoundTrip) {
  std::vector<std::string> dict = {
      "",                            // empty string
      std::string(1 << 16, 'x'),     // 64 KiB value
      std::string("nul\0middle", 10),  // embedded NUL
      "\xff\xfe\x80 utf-8 caf\xc3\xa9"};
  std::vector<uint32_t> codes = {0, 1, 2, 3, 3, 2, 1, 0, 0};
  std::string buf;
  EncodeStringDict(codes, dict, &buf);
  std::vector<uint32_t> out_codes;
  std::vector<std::string> out_dict;
  ASSERT_TRUE(DecodeStringDict(buf, codes.size(), &out_codes, &out_dict).ok());
  EXPECT_EQ(out_codes, codes);
  EXPECT_EQ(out_dict, dict);
}

}  // namespace
}  // namespace oreo
