// Graceful-drain contract of the serving tier, mirrored from the ReorgPool
// shutdown-discard contract (and its deterministic sentinel-gated test):
//
//   - the in-flight batch completes and its replies are delivered;
//   - requests still queued never reach the engine and are answered with a
//     shutdown status;
//   - every reply callback fires, and is destroyed, before Shutdown
//     returns — no callback outlives the server.
//
// Determinism: a test hook gates the dispatcher inside batch #1 while the
// test fills the queue and starts Shutdown on another thread; the gate opens
// only once admission is provably closed (a probe request bounces with an
// inline shutdown reply), so the executed-vs-drained split is exact, not a
// race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

constexpr uint32_t kTenant = 1;

core::OreoOptions CheapOptions() {
  core::OreoOptions opts;
  opts.seed = 23;
  opts.num_threads = 1;
  opts.window_size = 100;
  opts.generate_every = 100000;
  opts.target_partitions = 4;
  opts.dataset_sample_rows = 200;
  return opts;
}

struct DispatcherGate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  int entered = 0;

  ServerTestHooks hooks() {
    ServerTestHooks h;
    h.on_batch_start = [this](uint32_t, size_t) {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this] { return released; });
    };
    return h;
  }

  void WaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

Query RangeQuery(int64_t id, int64_t lo, int64_t hi) {
  Query q;
  q.id = id;
  q.conjuncts = {Predicate::Between(0, Value(lo), Value(hi))};
  return q;
}

class ServerShutdownTest : public ::testing::Test {
 protected:
  void StartServer(ServerTestHooks hooks = {}) {
    table_ = testutil::MakeEventTable(600, 23);
    srv_ = std::make_unique<OreoServer>();
    TenantConfig cfg;
    cfg.name = "t";
    cfg.table = &table_;
    cfg.generator = &generator_;
    cfg.time_column = 0;
    cfg.options = CheapOptions();
    cfg.batch.max_batch = 1;
    cfg.batch.max_delay_us = 0;
    cfg.batch.max_queue = 16;
    ASSERT_TRUE(srv_->AddTenant(kTenant, cfg).ok());
    srv_->set_test_hooks(std::move(hooks));
    ASSERT_TRUE(srv_->Start().ok());
  }

  Table table_{testutil::EventSchema()};
  QdTreeGenerator generator_;
  std::unique_ptr<OreoServer> srv_;
};

TEST_F(ServerShutdownTest, DrainCompletesInflightBatchAndAnswersQueued) {
  DispatcherGate gate;
  StartServer(gate.hooks());
  LoopbackClient client(srv_.get());

  // Batch #1 (request A) is in flight, held at the gate; B and C queue
  // behind it with the dispatcher provably busy.
  uint64_t id_a = client.Send(kTenant, RangeQuery(1, 0, 10));
  gate.WaitEntered(1);
  uint64_t id_b = client.Send(kTenant, RangeQuery(2, 0, 10));
  uint64_t id_c = client.Send(kTenant, RangeQuery(3, 0, 10));

  // A queued request whose callback owns a sentinel: "no callback outlives
  // the server" becomes observable as the sentinel dying before Shutdown
  // returns.
  std::atomic<bool> shutdown_returned{false};
  std::atomic<int> sentinel_status{-1};
  auto sentinel = std::make_shared<int>(0);
  std::weak_ptr<int> sentinel_alive = sentinel;
  srv_->Submit(kTenant, RangeQuery(4, 0, 10), /*request_id=*/99,
               [sentinel, &sentinel_status,
                &shutdown_returned](const QueryReply& reply) {
                 // Every reply is delivered before Shutdown returns.
                 EXPECT_FALSE(shutdown_returned.load());
                 sentinel_status = static_cast<int>(reply.status);
               });
  sentinel.reset();
  EXPECT_FALSE(sentinel_alive.expired()) << "callback should hold it queued";

  std::thread down([&] {
    srv_->Shutdown();
    shutdown_returned = true;
  });

  // Open the gate only once Shutdown has provably closed admission: a probe
  // bouncing with an *inline* shutdown reply is the proof. (Probes admitted
  // before the close are drained later like any queued request.)
  while (true) {
    auto probe_status = std::make_shared<std::atomic<int>>(-1);
    srv_->Submit(kTenant, RangeQuery(1000, 0, 10), /*request_id=*/1000,
                 [probe_status](const QueryReply& reply) {
                   *probe_status = static_cast<int>(reply.status);
                 });
    if (*probe_status == static_cast<int>(ReplyStatus::kShutdown)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  down.join();
  EXPECT_TRUE(shutdown_returned.load());

  // The in-flight batch completed and answered OK.
  Result<QueryReply> reply_a = client.Wait(id_a);
  ASSERT_TRUE(reply_a.ok());
  EXPECT_EQ(reply_a->status, ReplyStatus::kOk) << reply_a->message;

  // Queued requests were answered with the drain status, on the Shutdown
  // caller's thread, before Shutdown returned.
  for (uint64_t queued_id : {id_b, id_c}) {
    Result<QueryReply> reply = client.Wait(queued_id);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, ReplyStatus::kShutdown) << reply->message;
  }
  EXPECT_EQ(sentinel_status.load(),
            static_cast<int>(ReplyStatus::kShutdown));
  EXPECT_TRUE(sentinel_alive.expired())
      << "a queued request's callback outlived Shutdown";

  // Exactly one request reached the engine.
  std::vector<int64_t> expected = {1};
  EXPECT_EQ(srv_->ExecutedIds(kTenant), expected);
  EXPECT_EQ(srv_->stats().executed, 1u);
  EXPECT_GE(srv_->stats().rejected_shutdown, 3u);  // B, C, sentinel, probes
}

TEST_F(ServerShutdownTest, RequestsAfterShutdownAreRejectedInline) {
  StartServer();
  LoopbackClient client(srv_.get());
  srv_->Shutdown();
  Result<QueryReply> reply = client.Call(kTenant, RangeQuery(1, 0, 10));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kShutdown);
  EXPECT_EQ(ToStatus(reply->status, reply->message).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(srv_->stats().executed, 0u);
  EXPECT_GE(srv_->stats().rejected_shutdown, 1u);
}

TEST_F(ServerShutdownTest, ShutdownIsIdempotentAndConcurrencySafe) {
  StartServer();
  LoopbackClient client(srv_.get());
  Result<QueryReply> reply = client.Call(kTenant, RangeQuery(1, 0, 10));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, ReplyStatus::kOk);

  // Concurrent shutdowns must all block until the drain is complete, then
  // repeat calls no-op.
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] { srv_->Shutdown(); });
  }
  for (std::thread& t : callers) t.join();
  srv_->Shutdown();
  EXPECT_EQ(srv_->stats().executed, 1u);
}

TEST_F(ServerShutdownTest, DestructionWithoutExplicitShutdownIsSafe) {
  // The destructor drains; in-flight work completes or is answered with a
  // shutdown status, and ASan verifies nothing leaks or is touched late.
  StartServer();
  LoopbackClient client(srv_.get());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(client.Send(kTenant, RangeQuery(i, 0, 10)));
  }
  // Destroy the client (closing the outbox) and then the server, with
  // requests potentially still queued or in flight.
}

}  // namespace
}  // namespace server
}  // namespace oreo
