// Tests for the D-UMTS reorganizer (paper Algorithms 1-4) and the offline
// solvers. Includes the headline property test: the randomized algorithm's
// expected cost respects the 2*H(|S_max|) competitive bound (Theorem IV.1)
// against the exact offline optimum on randomized instances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mts/dumts.h"
#include "mts/offline.h"
#include "test_util.h"

namespace oreo {
namespace mts {
namespace {

using testutil::Harmonic;

// ----------------------------------------------------------- offline -----

TEST(OfflineTest, SingleStateIsSumOfCosts) {
  std::vector<std::vector<double>> costs = {{0.5}, {0.2}, {0.9}};
  OfflineResult r = SolveOfflineUniform(costs, 10.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 1.6);
  EXPECT_EQ(r.num_switches, 0);
  EXPECT_EQ(r.schedule, (std::vector<int>{0, 0, 0}));
}

TEST(OfflineTest, SwitchesWhenWorthIt) {
  // State 0 cheap first half, state 1 cheap second half; alpha small.
  std::vector<std::vector<double>> costs;
  for (int t = 0; t < 10; ++t) costs.push_back({0.0, 1.0});
  for (int t = 0; t < 10; ++t) costs.push_back({1.0, 0.0});
  OfflineResult r = SolveOfflineUniform(costs, 2.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
  EXPECT_EQ(r.num_switches, 1);
}

TEST(OfflineTest, StaysWhenAlphaTooHigh) {
  std::vector<std::vector<double>> costs;
  for (int t = 0; t < 10; ++t) costs.push_back({0.0, 1.0});
  for (int t = 0; t < 10; ++t) costs.push_back({1.0, 0.0});
  OfflineResult r = SolveOfflineUniform(costs, 100.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 10.0);
  EXPECT_EQ(r.num_switches, 0);
}

TEST(OfflineTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.Uniform(2);   // 2-3 states
    size_t t_max = 3 + rng.Uniform(5);  // 3-7 queries
    double alpha = rng.UniformDouble(0.5, 3.0);
    std::vector<std::vector<double>> costs(t_max, std::vector<double>(n));
    for (auto& row : costs) {
      for (auto& c : row) c = rng.UniformDouble();
    }
    OfflineResult dp = SolveOfflineUniform(costs, alpha);
    OfflineResult bf = BruteForceOffline(costs, alpha);
    EXPECT_NEAR(dp.total_cost, bf.total_cost, 1e-9);
  }
}

TEST(OfflineTest, DynamicAvailabilityBlocksStates) {
  // State 1 only becomes available at t=2; it is free but can't be used
  // earlier.
  std::vector<std::vector<double>> costs = {
      {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
  std::vector<std::vector<bool>> avail = {
      {true, false}, {true, false}, {true, true}, {true, true}};
  OfflineResult r = SolveOfflineUniformDynamic(costs, avail, 0.5);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0 + 0.5);  // two forced 1.0s, then switch
  EXPECT_EQ(r.schedule, (std::vector<int>{0, 0, 1, 1}));
}

TEST(OfflineTest, MetricVariantHandlesAsymmetry) {
  // Moving 0->1 is cheap, 1->0 expensive.
  std::vector<std::vector<double>> dist = {{0.0, 0.1}, {5.0, 0.0}};
  std::vector<std::vector<double>> costs = {
      {0.0, 1.0}, {1.0, 0.0}, {0.0, 1.0}};
  OfflineResult r = SolveOfflineMetric(costs, dist);
  // Staying at 0 costs 1.0; hopping 0->1->0 costs 0.1+5.0; best is stay.
  EXPECT_DOUBLE_EQ(r.total_cost, 1.0);
}

TEST(OfflineTest, ScheduleCostAgreesWithSolver) {
  Rng rng(5);
  std::vector<std::vector<double>> costs(20, std::vector<double>(3));
  for (auto& row : costs) {
    for (auto& c : row) c = rng.UniformDouble();
  }
  OfflineResult r = SolveOfflineUniform(costs, 1.5);
  EXPECT_NEAR(ScheduleCost(costs, r.schedule, 1.5), r.total_cost, 1e-9);
}

// ------------------------------------------------------ DynamicUmts ------

DumtsOptions Opts(double alpha, uint64_t seed = 42, double gamma = 0.0) {
  DumtsOptions o;
  o.alpha = alpha;
  o.seed = seed;
  o.gamma = gamma;
  return o;
}

TEST(DumtsTest, StartsAtGivenInitialState) {
  DynamicUmts alg(Opts(5.0), {0, 1, 2}, 1);
  EXPECT_EQ(alg.current_state(), 1);
  EXPECT_EQ(alg.ActiveStates(), (std::vector<StateId>{0, 1, 2}));
}

TEST(DumtsTest, CountersAccumulateServiceCosts) {
  DynamicUmts alg(Opts(10.0), {0, 1}, 0);
  alg.OnQuery([](StateId s) { return s == 0 ? 0.5 : 0.25; });
  EXPECT_DOUBLE_EQ(alg.Counter(0), 0.5);
  EXPECT_DOUBLE_EQ(alg.Counter(1), 0.25);
}

TEST(DumtsTest, SwitchesWhenCurrentCounterFull) {
  DynamicUmts alg(Opts(1.0), {0, 1}, 0);
  // State 0 costs 0.6 per query; state 1 free.
  auto costs = [](StateId s) { return s == 0 ? 0.6 : 0.0; };
  DumtsDecision d1 = alg.OnQuery(costs);
  EXPECT_FALSE(d1.switched);
  EXPECT_EQ(d1.serve_state, 0);
  DumtsDecision d2 = alg.OnQuery(costs);  // counter 1.2 >= 1.0 -> switch
  EXPECT_TRUE(d2.switched);
  EXPECT_EQ(d2.serve_state, 1);
  EXPECT_EQ(alg.stats().num_switches, 1);
}

TEST(DumtsTest, PhaseResetsWhenAllCountersFull) {
  DynamicUmts alg(Opts(1.0), {0, 1}, 0);
  auto costs = [](StateId) { return 0.6; };
  alg.OnQuery(costs);  // counters 0.6/0.6
  DumtsDecision d = alg.OnQuery(costs);  // 1.2/1.2 -> everyone full -> reset
  EXPECT_TRUE(d.phase_reset);
  EXPECT_EQ(alg.stats().num_phases, 2);
  // stay_at_phase_start: no movement charged at the reset.
  EXPECT_FALSE(d.switched);
  EXPECT_EQ(d.serve_state, 0);
  // counters were reset
  EXPECT_DOUBLE_EQ(alg.Counter(0), 0.0);
}

TEST(DumtsTest, WithoutStayOptimizationResetMayMove) {
  DumtsOptions o = Opts(1.0, /*seed=*/3);
  o.stay_at_phase_start = false;
  int moved = 0;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    o.seed = seed;
    DynamicUmts alg(o, {0, 1, 2, 3}, 0);
    auto costs = [](StateId) { return 1.0; };
    DumtsDecision d = alg.OnQuery(costs);  // everyone full instantly
    EXPECT_TRUE(d.phase_reset);
    if (d.switched) ++moved;
  }
  // Uniform over 4 states: moves ~3/4 of the time.
  EXPECT_GT(moved, 30);
  EXPECT_LT(moved, 62);
}

TEST(DumtsTest, NeverSwitchesToFullState) {
  Rng rng(9);
  DynamicUmts alg(Opts(2.0, 7), {0, 1, 2, 3}, 0);
  for (int i = 0; i < 500; ++i) {
    DumtsDecision d = alg.OnQuery(
        [&rng](StateId) { return rng.UniformDouble(); });
    if (d.switched && !d.phase_reset) {
      // The destination must have been active (counter < alpha) after the
      // update step that triggered the move.
      EXPECT_TRUE(alg.IsActive(d.serve_state) ||
                  alg.Counter(d.serve_state) < 2.0);
    }
  }
}

TEST(DumtsTest, AddedStateDeferredToNextPhase) {
  DynamicUmts alg(Opts(1.0), {0, 1}, 0);
  alg.AddState(2);
  EXPECT_FALSE(alg.Contains(2));  // pending, not in S yet
  EXPECT_FALSE(alg.IsActive(2));
  auto costs = [](StateId) { return 0.6; };
  alg.OnQuery(costs);
  alg.OnQuery(costs);  // reset -> pending admitted
  EXPECT_TRUE(alg.Contains(2));
  EXPECT_TRUE(alg.IsActive(2));
}

TEST(DumtsTest, MedianCounterAdmissionIsImmediate) {
  DumtsOptions o = Opts(10.0);
  o.mid_phase_admission = MidPhaseAdmission::kMedianCounter;
  DynamicUmts alg(o, {0, 1}, 0);
  alg.OnQuery([](StateId s) { return s == 0 ? 0.4 : 0.8; });
  alg.AddState(2);
  EXPECT_TRUE(alg.Contains(2));
  EXPECT_TRUE(alg.IsActive(2));
  EXPECT_DOUBLE_EQ(alg.Counter(2), 0.6);  // median of {0.4, 0.8}
}

TEST(DumtsTest, AddStateWithCounterJoinsCurrentPhase) {
  DynamicUmts alg(Opts(10.0), {0, 1}, 0);
  alg.OnQuery([](StateId s) { return s == 0 ? 0.5 : 0.8; });
  alg.AddStateWithCounter(2, 3.25);
  EXPECT_TRUE(alg.Contains(2));
  EXPECT_TRUE(alg.IsActive(2));
  EXPECT_DOUBLE_EQ(alg.Counter(2), 3.25);
  // A replayed counter at/above alpha starts the state out full.
  alg.AddStateWithCounter(3, 10.0);
  EXPECT_TRUE(alg.Contains(3));
  EXPECT_FALSE(alg.IsActive(3));
}

TEST(DumtsTest, RemoveInactiveStateIsQuiet) {
  DynamicUmts alg(Opts(5.0), {0, 1, 2}, 0);
  auto decision = alg.RemoveState(2);
  EXPECT_FALSE(decision.has_value());
  EXPECT_FALSE(alg.Contains(2));
  EXPECT_EQ(alg.current_state(), 0);
}

TEST(DumtsTest, RemoveCurrentStateForcesSwitch) {
  DynamicUmts alg(Opts(5.0, 11), {0, 1, 2}, 0);
  auto decision = alg.RemoveState(0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->switched);
  EXPECT_NE(alg.current_state(), 0);
  EXPECT_EQ(alg.stats().num_switches, 1);
}

TEST(DumtsTest, RemovePendingStateIsQuiet) {
  DynamicUmts alg(Opts(5.0), {0}, 0);
  alg.AddState(1);
  EXPECT_FALSE(alg.RemoveState(1).has_value());
  EXPECT_FALSE(alg.Contains(1));
}

TEST(DumtsTest, RemovingLastActiveStartsNewPhase) {
  DynamicUmts alg(Opts(1.0, 13), {0, 1}, 0);
  // Fill state 1's counter only.
  alg.OnQuery([](StateId s) { return s == 1 ? 1.0 : 0.0; });
  EXPECT_FALSE(alg.IsActive(1));
  // Removing state 0 (the only active) forces a reset; current was removed,
  // so a switch to 1 must follow.
  auto decision = alg.RemoveState(0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->phase_reset);
  EXPECT_TRUE(decision->switched);
  EXPECT_EQ(alg.current_state(), 1);
}

TEST(DumtsTest, MaxStateSpaceTracksPeak) {
  DynamicUmts alg(Opts(1.0), {0, 1}, 0);
  alg.AddState(2);
  alg.AddState(3);
  EXPECT_EQ(alg.stats().max_state_space, 4u);
  alg.RemoveState(3);
  EXPECT_EQ(alg.stats().max_state_space, 4u);
}

TEST(DumtsTest, DeterministicForSeed) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    std::vector<std::vector<double>> costs(300, std::vector<double>(4));
    Rng rng(99);
    for (auto& row : costs) {
      for (auto& c : row) c = rng.UniformDouble();
    }
    DumtsOptions o = Opts(3.0, seed);
    std::vector<int> a = ProcessQueries(costs, o);
    std::vector<int> b = ProcessQueries(costs, o);
    EXPECT_EQ(a, b);
  }
}

// ------------------------------------------- predictor-biased moves ------

// Drives one full phase in which state 1 performs well (cost 0.55/q) and
// state 2 terribly (0.95/q), all counters filling on the same query so the
// phase ends with the algorithm still in state 0. The next query fills only
// state 0's counter, forcing a sampled transition to state 1 or 2.
int TransitionTargetAfterBiasedPhase(double gamma, uint64_t seed) {
  DynamicUmts alg(Opts(1.0, seed, gamma), {0, 1, 2}, 0);
  auto phase1 = [](StateId s) {
    if (s == 0) return 0.5;
    if (s == 1) return 0.55;
    return 0.95;
  };
  alg.OnQuery(phase1);                         // counters 0.5 / 0.55 / 0.95
  DumtsDecision reset = alg.OnQuery(phase1);   // 1.0 / 1.1 / 1.9 -> reset
  EXPECT_TRUE(reset.phase_reset);
  EXPECT_EQ(reset.serve_state, 0);  // stay-at-phase-start keeps state 0
  // Phase-1 weights: w1 = 1 - 1.1/2 = 0.45, w2 = 1 - 1.9/2 = 0.05.
  DumtsDecision d =
      alg.OnQuery([](StateId s) { return s == 0 ? 1.0 : 0.0; });
  EXPECT_TRUE(d.switched);
  return d.serve_state;
}

TEST(DumtsTest, GammaBiasPrefersBetterStates) {
  int to_better = 0, to_worse = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    int target = TransitionTargetAfterBiasedPhase(/*gamma=*/4.0, seed);
    if (target == 1) ++to_better;
    if (target == 2) ++to_worse;
  }
  // w^gamma ratio is (0.45/0.05)^4 = 6561: state 2 should almost never win.
  EXPECT_GT(to_better, 380);
  EXPECT_LT(to_worse, 20);
}

TEST(DumtsTest, GammaZeroIsUnbiased) {
  int to_1 = 0, to_2 = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    int target = TransitionTargetAfterBiasedPhase(/*gamma=*/0.0, seed);
    if (target == 1) ++to_1;
    if (target == 2) ++to_2;
  }
  // Roughly even split under the uniform distribution.
  EXPECT_EQ(to_1 + to_2, 400);
  EXPECT_LT(std::abs(to_1 - to_2), 80);
}

// --------------------------------------- competitive ratio property ------

// The headline guarantee (Theorem IV.1): expected total cost over the
// randomized algorithm is at most 2*H(n) * (OPT + alpha) per phase. We
// check the aggregate form E[ALG] <= 2*H(n) * (OPT + alpha) on random cost
// matrices (the +alpha slack covers the final, unfinished phase).
class CompetitiveRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(CompetitiveRatioTest, ExpectedCostWithinBound) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919);
  const size_t t_max = 400;
  const double alpha = 4.0;
  std::vector<std::vector<double>> costs(t_max,
                                         std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : costs) {
    for (auto& c : row) c = rng.UniformDouble();
  }
  OfflineResult opt = SolveOfflineUniform(costs, alpha);
  double total = 0.0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    DumtsOptions o = Opts(alpha, static_cast<uint64_t>(run) + 1);
    std::vector<int> schedule = ProcessQueries(costs, o);
    total += ScheduleCost(costs, schedule, alpha);
  }
  double mean_alg = total / kRuns;
  double bound = 2.0 * Harmonic(static_cast<size_t>(n)) *
                 (opt.total_cost + alpha);
  EXPECT_LE(mean_alg, bound)
      << "n=" << n << " ALG=" << mean_alg << " OPT=" << opt.total_cost;
}

INSTANTIATE_TEST_SUITE_P(StateCounts, CompetitiveRatioTest,
                         ::testing::Values(2, 3, 4, 6, 8));

// Adversarial-ish instance: cost 1 on the algorithm's favourite, 0 elsewhere
// cannot be constructed by an oblivious adversary, but a rotating "hot"
// state is a classic hard input — the bound must still hold.
TEST(CompetitiveRatioTest2, RotatingHotState) {
  const size_t n = 4, t_max = 600;
  const double alpha = 3.0;
  std::vector<std::vector<double>> costs(t_max, std::vector<double>(n, 0.0));
  for (size_t t = 0; t < t_max; ++t) {
    costs[t][(t / 7) % n] = 1.0;  // hot state rotates every 7 queries
  }
  OfflineResult opt = SolveOfflineUniform(costs, alpha);
  double total = 0.0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    std::vector<int> schedule =
        ProcessQueries(costs, Opts(alpha, static_cast<uint64_t>(run) + 1));
    total += ScheduleCost(costs, schedule, alpha);
  }
  double bound = 2.0 * Harmonic(n) * (opt.total_cost + alpha);
  EXPECT_LE(total / kRuns, bound);
}

// Dynamic variant: adding and removing states mid-stream must still beat the
// bound measured against the dynamic-availability offline optimum.
TEST(CompetitiveRatioTest2, DynamicStateSpaceWithinBound) {
  const double alpha = 3.0;
  const size_t t_max = 300;
  Rng crng(123);
  // 5 potential states; state 3 added at t=100, state 4 at t=200;
  // state 0 removed at t=150.
  std::vector<std::vector<double>> costs(t_max, std::vector<double>(5));
  for (auto& row : costs) {
    for (auto& c : row) c = crng.UniformDouble();
  }
  std::vector<std::vector<bool>> avail(t_max, std::vector<bool>(5, false));
  for (size_t t = 0; t < t_max; ++t) {
    avail[t][0] = t < 150;
    avail[t][1] = avail[t][2] = true;
    avail[t][3] = t >= 100;
    avail[t][4] = t >= 200;
  }
  OfflineResult opt = SolveOfflineUniformDynamic(costs, avail, alpha);

  double total = 0.0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    DynamicUmts alg(Opts(alpha, static_cast<uint64_t>(run) + 1), {0, 1, 2}, 0);
    double cost = 0.0;
    for (size_t t = 0; t < t_max; ++t) {
      if (t == 100) alg.AddState(3);
      if (t == 200) alg.AddState(4);
      if (t == 150) {
        auto d = alg.RemoveState(0);
        if (d.has_value() && d->switched) cost += alpha;
      }
      DumtsDecision d = alg.OnQuery([&](StateId s) {
        return costs[t][static_cast<size_t>(s)];
      });
      if (d.switched) cost += alpha;
      cost += costs[t][static_cast<size_t>(d.serve_state)];
    }
    total += cost;
  }
  // |S_max| = 5 (0..4 all coexist in S between t=100 and t=150 via pending).
  double bound = 2.0 * Harmonic(5) * (opt.total_cost + 2 * alpha);
  EXPECT_LE(total / kRuns, bound);
}

// Sanity: when one state is always free, the algorithm converges to it and
// achieves near-optimal cost.
TEST(DumtsBehaviorTest, ConvergesToFreeState) {
  const double alpha = 2.0;
  DynamicUmts alg(Opts(alpha, 17), {0, 1, 2, 3}, 0);
  auto costs = [](StateId s) { return s == 2 ? 0.0 : 0.5; };
  double total = 0.0;
  for (int t = 0; t < 200; ++t) {
    DumtsDecision d = alg.OnQuery(costs);
    total += costs(d.serve_state) + (d.switched ? alpha : 0.0);
  }
  // Must end up in state 2 and stay: all other counters fill, state 2 never
  // does, so phases stop rolling.
  EXPECT_EQ(alg.current_state(), 2);
  EXPECT_LT(total, 40.0);  // a constant, not O(t_max/2)
}

}  // namespace
}  // namespace mts
}  // namespace oreo
