// The sharded==unsharded equivalence wall for PR 4's ShardedOreo refactor.
// Pinned contracts:
//
//   1. A 1-shard ShardedOreo is bit-identical to a bare Oreo: per-query
//      serving states, costs, switch decisions, run traces, and the
//      partition files a physical replay leaves behind (CRCs).
//   2. N-shard runs are bit-identical across thread counts {1, 8} — logical
//      fingerprints and per-shard replayed partition-file CRCs.
//   3. The router never drops a matching row: for random tables and random
//      conjunctive queries of every operator shape, the matches found on
//      the routed shards equal the matches on the whole table (property
//      test, hash and range routing).
//   4. Theorem IV.1 survives sharding shard-by-shard: every shard engine's
//      total cost stays within 2*H(|S_max|) of its own offline optimum
//      (the competitive_ratio_test machinery applied per shard).
//
// Runs under the TSan CI job (the physical streaming test overlaps batched
// execution with concurrent per-shard background rewrites).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/oreo.h"
#include "core/sharded_oreo.h"
#include "layout/qdtree_layout.h"
#include "mts/offline.h"
#include "storage/shard_router.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

namespace fs = std::filesystem;

constexpr size_t kThreadCounts[] = {1, 8};

// CRCs of every object under `dir`, in path order, read through the
// backend (paths stripped so different scratch dirs fingerprint alike).
// The wall runs on the in-memory backend by default; OREO_TEST_BACKEND=posix
// pins the file path.
std::vector<uint32_t> DirCrcs(StorageBackend& backend,
                              const std::string& dir) {
  std::vector<uint32_t> crcs;
  for (const auto& [path, crc] : testutil::DirCrcs(backend, dir)) {
    crcs.push_back(crc);
  }
  return crcs;
}

OreoOptions ShardedOpts(uint64_t seed, size_t num_threads, size_t num_shards,
                        ShardRouting routing = ShardRouting::kRange) {
  OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = num_threads;
  opts.num_shards = num_shards;
  opts.shard_routing = routing;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  return opts;
}

// Two workload phases (ts ranges, then qty ranges) so managers admit states
// and D-UMTS switches; the ts phase exercises range-shard pruning.
std::vector<Query> TwoPhaseStream(size_t rows, uint64_t seed) {
  std::vector<Query> stream = testutil::MakeRangeWorkload(
      0, static_cast<int64_t>(rows), 150, 150, seed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, 150, seed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(i);
  }
  return stream;
}

struct ShardedFingerprint {
  std::vector<int> states;        // serving state per (query, touched shard)
  std::vector<uint32_t> shards;   // the touched shard of each entry
  std::vector<double> costs;      // merged per-query costs
  std::vector<bool> reorganized;  // merged per-query switch flags
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;

  bool operator==(const ShardedFingerprint& o) const {
    return states == o.states && shards == o.shards && costs == o.costs &&
           reorganized == o.reorganized && query_cost == o.query_cost &&
           reorg_cost == o.reorg_cost && num_switches == o.num_switches;
  }
};

ShardedFingerprint RunSharded(const Table& t, const LayoutGenerator& gen,
                              const OreoOptions& opts,
                              const std::vector<Query>& stream,
                              size_t batch_size) {
  ShardedOreo sharded(&t, &gen, /*time_column=*/0, opts);
  ShardedFingerprint fp;
  for (const QueryBatch& b : MakeBatches(stream, batch_size)) {
    ShardedOreo::ShardedBatchResult result = sharded.RunBatchSharded(b);
    EXPECT_EQ(result.steps.size(), b.size());
    for (const ShardedOreo::ShardedStepResult& step : result.steps) {
      for (const ShardedOreo::ShardStep& ss : step.shard_steps) {
        fp.states.push_back(ss.step.state);
        fp.shards.push_back(ss.shard);
      }
      fp.costs.push_back(step.query_cost);
      fp.reorganized.push_back(step.reorganized);
    }
  }
  fp.query_cost = sharded.total_query_cost();
  fp.reorg_cost = sharded.total_reorg_cost();
  fp.num_switches = sharded.num_switches();
  return fp;
}

// ----------------------------- 1-shard == legacy Oreo (logical) ----------

TEST(ShardedEquivalenceTest, OneShardMatchesLegacyOreoStepByStep) {
  const uint64_t seed = 5;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);

  for (size_t threads : kThreadCounts) {
    OreoOptions opts = ShardedOpts(seed, threads, /*num_shards=*/1);

    // Legacy fingerprint through Step.
    std::vector<int> legacy_states;
    std::vector<double> legacy_costs;
    std::vector<bool> legacy_reorg;
    Oreo legacy(&t, &gen, /*time_column=*/0, opts);
    for (const Query& q : stream) {
      Oreo::StepResult step = legacy.Step(q);
      legacy_states.push_back(step.state);
      legacy_costs.push_back(step.query_cost);
      legacy_reorg.push_back(step.reorganized);
    }
    ASSERT_GT(legacy.num_switches(), 0) << "fixture too tame";

    for (size_t batch_size : {size_t{1}, size_t{16}}) {
      ShardedFingerprint sharded = RunSharded(t, gen, opts, stream, batch_size);
      ASSERT_EQ(sharded.states.size(), stream.size())
          << "a 1-shard router must route every query to shard 0";
      EXPECT_EQ(sharded.states, legacy_states)
          << "threads=" << threads << " batch_size=" << batch_size;
      EXPECT_EQ(sharded.costs, legacy_costs);
      EXPECT_EQ(sharded.reorganized, legacy_reorg);
      EXPECT_TRUE(std::all_of(sharded.shards.begin(), sharded.shards.end(),
                              [](uint32_t s) { return s == 0; }));
      EXPECT_EQ(sharded.query_cost, legacy.total_query_cost());
      EXPECT_EQ(sharded.reorg_cost, legacy.total_reorg_cost());
      EXPECT_EQ(sharded.num_switches, legacy.num_switches());
    }

    // Run() traces must agree too (serving states, switch events, totals).
    Oreo legacy_runner(&t, &gen, 0, opts);
    SimResult legacy_sim = legacy_runner.Run(stream, /*record_trace=*/true);
    ShardedOreo sharded_runner(&t, &gen, 0, opts);
    ShardedSimResult sharded_sim =
        sharded_runner.Run(stream, /*record_trace=*/true);
    ASSERT_EQ(sharded_sim.shards.size(), 1u);
    EXPECT_EQ(sharded_sim.shards[0].query_cost, legacy_sim.query_cost);
    EXPECT_EQ(sharded_sim.shards[0].reorg_cost, legacy_sim.reorg_cost);
    EXPECT_EQ(sharded_sim.shards[0].serving_state, legacy_sim.serving_state);
    EXPECT_EQ(sharded_sim.shards[0].switch_events, legacy_sim.switch_events);
    EXPECT_EQ(sharded_sim.shards[0].cumulative, legacy_sim.cumulative);
    EXPECT_EQ(sharded_sim.query_cost, legacy_sim.query_cost);
    EXPECT_EQ(sharded_sim.reorg_cost, legacy_sim.reorg_cost);
    EXPECT_EQ(sharded_sim.num_switches, legacy_sim.num_switches);
  }
}

// ----------------------------- 1-shard == legacy replay (physical) -------

TEST(ShardedEquivalenceTest, OneShardReplayLeavesIdenticalPartitionFiles) {
  const uint64_t seed = 9;
  const size_t kRows = 2000;
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);
  OreoOptions opts = ShardedOpts(seed, /*num_threads=*/2, /*num_shards=*/1);

  std::shared_ptr<StorageBackend> backend = testutil::TestBackend("inmem");
  Oreo legacy(&t, &gen, 0, opts);
  SimResult legacy_sim = legacy.Run(stream, /*record_trace=*/true);
  ASSERT_GT(legacy_sim.num_switches, 0);
  std::string legacy_dir = testutil::ScratchDir("sharded_eq_legacy");
  auto legacy_replay =
      ReplayPhysical(t, legacy.registry(), legacy_sim, stream, /*stride=*/3,
                     legacy_dir, /*num_threads=*/2, /*batch_size=*/4, backend);
  ASSERT_TRUE(legacy_replay.ok()) << legacy_replay.status().ToString();

  ShardedOreo sharded(&t, &gen, 0, opts);
  ShardedSimResult sharded_sim = sharded.Run(stream, /*record_trace=*/true);
  std::string sharded_dir = testutil::ScratchDir("sharded_eq_one");
  auto sharded_replay =
      ShardedReplayPhysical(sharded, sharded_sim, /*stride=*/3, sharded_dir,
                            /*num_threads=*/2, /*batch_size=*/4, backend);
  ASSERT_TRUE(sharded_replay.ok()) << sharded_replay.status().ToString();

  EXPECT_EQ(legacy_replay->num_switches, sharded_replay->num_switches);
  EXPECT_EQ(legacy_replay->queries_executed, sharded_replay->queries_executed);
  EXPECT_EQ(legacy_replay->partitions_read, sharded_replay->partitions_read);
  EXPECT_EQ(legacy_replay->matches, sharded_replay->matches);
  std::vector<uint32_t> legacy_crcs = DirCrcs(*backend, legacy_dir);
  ASSERT_FALSE(legacy_crcs.empty());
  EXPECT_EQ(legacy_crcs, DirCrcs(*backend, ShardDirName(sharded_dir, 0)))
      << "1-shard replay must leave bit-identical partition files";
  fs::remove_all(legacy_dir);
  fs::remove_all(sharded_dir);
}

// ----------------------------- N shards: thread-count invariance ---------

TEST(ShardedEquivalenceTest, NShardRunsAreThreadCountInvariant) {
  const uint64_t seed = 11;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);

  for (ShardRouting routing : {ShardRouting::kRange, ShardRouting::kHash}) {
    ShardedFingerprint baseline;
    bool have_baseline = false;
    for (size_t threads : kThreadCounts) {
      OreoOptions opts = ShardedOpts(seed, threads, /*num_shards=*/4, routing);
      ShardedFingerprint fp = RunSharded(t, gen, opts, stream, /*batch=*/16);
      EXPECT_GT(fp.num_switches, 0) << "no shard ever switched";
      if (!have_baseline) {
        baseline = fp;
        have_baseline = true;
        if (routing == ShardRouting::kRange) {
          // Range routing must actually prune: fewer (query, shard) steps
          // than queries × shards.
          EXPECT_LT(fp.states.size(), stream.size() * 4)
              << "range routing never pruned a shard";
        }
        continue;
      }
      EXPECT_TRUE(fp == baseline)
          << "N-shard fingerprint diverged at threads=" << threads
          << " routing=" << ShardRoutingName(routing);
    }
  }

  // Physical replay: per-shard partition files are bit-identical across
  // thread counts.
  std::shared_ptr<StorageBackend> backend = testutil::TestBackend("inmem");
  std::vector<std::vector<uint32_t>> baseline_crcs;
  for (size_t threads : kThreadCounts) {
    OreoOptions opts = ShardedOpts(seed, threads, /*num_shards=*/4);
    ShardedOreo sharded(&t, &gen, 0, opts);
    ShardedSimResult sim = sharded.Run(stream, /*record_trace=*/true);
    std::string dir = testutil::ScratchDir("sharded_eq_threads_" +
                                           std::to_string(threads));
    auto replay = ShardedReplayPhysical(sharded, sim, /*stride=*/3, dir,
                                        threads, /*batch_size=*/4, backend);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    std::vector<std::vector<uint32_t>> crcs;
    for (uint32_t s = 0; s < 4; ++s) {
      crcs.push_back(DirCrcs(*backend, ShardDirName(dir, s)));
      ASSERT_FALSE(crcs.back().empty());
    }
    if (baseline_crcs.empty()) {
      baseline_crcs = std::move(crcs);
    } else {
      EXPECT_EQ(baseline_crcs, crcs)
          << "partition files diverged at threads=" << threads;
    }
    fs::remove_all(dir);
  }
}

// ----------------------------- router: completeness property -------------

// Random conjunctive queries of every operator shape over every column,
// with literals matching each column's type.
Query RandomQuery(Rng* rng, const Schema& schema, size_t rows) {
  Query q;
  const size_t num_conjuncts = 1 + rng->Uniform(2);
  const char* cats[] = {"a", "b", "c", "d", "e", "f"};
  auto random_literal = [&](DataType type) {
    switch (type) {
      case DataType::kInt64:
        return rng->Uniform(2) == 0
                   ? Value(rng->UniformInt(0, static_cast<int64_t>(rows)))
                   : Value(rng->UniformInt(0, 1000));
      case DataType::kDouble:
        return Value(rng->UniformDouble(0, 100));
      case DataType::kString:
        return Value(cats[rng->Uniform(6)]);
    }
    return Value();
  };
  for (size_t c = 0; c < num_conjuncts; ++c) {
    const int column = static_cast<int>(rng->Uniform(schema.num_fields()));
    const DataType type = schema.field(static_cast<size_t>(column)).type;
    Value v = random_literal(type);
    switch (rng->Uniform(7)) {
      case 0:
        q.conjuncts.push_back(Predicate::Eq(column, v));
        break;
      case 1:
        q.conjuncts.push_back(Predicate::Lt(column, v));
        break;
      case 2:
        q.conjuncts.push_back(Predicate::Le(column, v));
        break;
      case 3:
        q.conjuncts.push_back(Predicate::Gt(column, v));
        break;
      case 4:
        q.conjuncts.push_back(Predicate::Ge(column, v));
        break;
      case 5: {
        Value hi = type == DataType::kInt64 ? Value(v.AsInt64() + 200)
                   : type == DataType::kDouble ? Value(v.AsDouble() + 20.0)
                                               : random_literal(type);
        if (hi < v) std::swap(v, hi);
        q.conjuncts.push_back(Predicate::Between(column, v, hi));
        break;
      }
      default: {
        std::vector<Value> in_list = {v, random_literal(type)};
        q.conjuncts.push_back(Predicate::In(column, std::move(in_list)));
        break;
      }
    }
  }
  return q;
}

TEST(ShardedEquivalenceTest, RouterNeverDropsMatchingRows) {
  const size_t kRows = 2500;
  for (uint64_t seed : {3u, 4u}) {
    Table t = testutil::MakeEventTable(kRows, seed);
    for (ShardRouting routing : {ShardRouting::kHash, ShardRouting::kRange}) {
      // Route on every column type: int64 ts, int64 qty (duplicate-heavy),
      // string cat (hash only — 4 distinct values cannot fill range shards).
      for (int column : {0, 1, 2}) {
        if (column == 2 && routing == ShardRouting::kRange) continue;
        const size_t shards = column == 2 ? 2 : 4;
        ShardRouterOptions opts;
        opts.num_shards = shards;
        opts.column = column;
        opts.routing = routing;
        ShardRouter router = ShardRouter::Build(t, opts);
        std::vector<Table> shard_tables = router.SplitTable(t);

        // The split covers every row exactly once.
        size_t total_rows = 0;
        for (const Table& st : shard_tables) total_rows += st.num_rows();
        ASSERT_EQ(total_rows, t.num_rows());

        Rng rng(seed * 101 + static_cast<uint64_t>(column));
        for (int i = 0; i < 120; ++i) {
          Query q = RandomQuery(&rng, t.schema(), kRows);
          std::vector<uint32_t> routed = router.ShardsForQuery(q);
          uint64_t routed_matches = 0;
          for (uint32_t s : routed) {
            routed_matches += CountMatches(shard_tables[s], q);
          }
          EXPECT_EQ(routed_matches, CountMatches(t, q))
              << "router dropped matching rows: routing="
              << ShardRoutingName(routing) << " column=" << column
              << " query=" << q.ToString();
        }
      }
    }
  }
}

// Degenerate predicates that provably match nothing (empty IN list on the
// routing column) may prune every shard of an N-shard router — no rows can
// match, so zero routed shards is consistent — but a 1-shard router must
// still route to its only shard, or the 1-shard facade would diverge from
// an unsharded engine (which admits every query to its window and cadence).
TEST(ShardedEquivalenceTest, EmptyInListKeepsSingleShardButMayPruneMany) {
  Table t = testutil::MakeEventTable(500, 19);
  Query empty_in;
  empty_in.conjuncts = {Predicate::In(0, {})};
  ASSERT_EQ(CountMatches(t, empty_in), 0u);
  for (ShardRouting routing : {ShardRouting::kHash, ShardRouting::kRange}) {
    ShardRouterOptions opts;
    opts.column = 0;
    opts.routing = routing;
    opts.num_shards = 1;
    EXPECT_EQ(ShardRouter::Build(t, opts).ShardsForQuery(empty_in),
              std::vector<uint32_t>{0});
    opts.num_shards = 4;
    EXPECT_TRUE(ShardRouter::Build(t, opts).ShardsForQuery(empty_in).empty());
  }
}

// ----------------------------- router: serialization ---------------------

TEST(ShardedEquivalenceTest, RouterSerializationRoundTrips) {
  Table t = testutil::MakeWideEventTable(1200, 17);
  // Routing columns of all three value types (string uses hash).
  struct Case {
    int column;
    ShardRouting routing;
    size_t shards;
  };
  for (const Case& c : {Case{0, ShardRouting::kRange, 4},
                        Case{2, ShardRouting::kRange, 3},
                        Case{1, ShardRouting::kHash, 5},
                        Case{3, ShardRouting::kHash, 2}}) {
    ShardRouterOptions opts;
    opts.num_shards = c.shards;
    opts.column = c.column;
    opts.routing = c.routing;
    ShardRouter router = ShardRouter::Build(t, opts);
    Result<ShardRouter> parsed = ShardRouter::Deserialize(router.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                             << " text=" << router.Serialize();
    EXPECT_EQ(parsed->Serialize(), router.Serialize());
    // The parsed router is the same routing function.
    for (uint32_t r = 0; r < t.num_rows(); r += 7) {
      ASSERT_EQ(parsed->ShardOfRow(t, r), router.ShardOfRow(t, r));
    }
    Rng rng(23);
    for (int i = 0; i < 40; ++i) {
      Query q = RandomQuery(&rng, t.schema(), 1200);
      ASSERT_EQ(parsed->ShardsForQuery(q), router.ShardsForQuery(q));
    }
  }
  // Malformed inputs are rejected, not crashed on.
  for (const char* bad :
       {"", "shards=0 column=1 routing=hash bounds=[]",
        "shards=2 column=-5 routing=hash bounds=[]",
        "shards=2 column=1 routing=zorder bounds=[]",
        "shards=3 column=1 routing=range bounds=[i:1]",
        "shards=2 column=1 routing=range bounds=[i:1",
        "shards=2 column=1 routing=range bounds=[x:1]",
        "shards=2 column=1 routing=range bounds=[i:1]garbage",
        "shards=-1 column=0 routing=hash bounds=[]",
        "shards=3 column=0 routing=range bounds=[i:20,i:10]",
        "shards=3 column=0 routing=range bounds=[i:20,i:20]",
        "shards=3 column=0 routing=range bounds=[i:20,s:1:a]",
        "shards=2 column=1 routing=hash bounds=[i:1]"}) {
    EXPECT_FALSE(ShardRouter::Deserialize(bad).ok()) << bad;
  }
}

// A skewed (duplicate-heavy) routing column must not produce structurally
// empty range shards: boundaries snap to distinct values, so any column
// with >= num_shards distinct values fills every shard.
TEST(ShardedEquivalenceTest, SkewedRangeColumnFillsEveryShard) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (int64_t v : {1, 1, 1, 1, 1, 2, 3, 4}) t.AppendRow({Value(v)});
  ShardRouterOptions opts;
  opts.num_shards = 4;
  opts.column = 0;
  opts.routing = ShardRouting::kRange;
  ShardRouter router = ShardRouter::Build(t, opts);
  std::vector<Table> shards = router.SplitTable(t);
  size_t total = 0;
  for (const Table& shard : shards) {
    EXPECT_GT(shard.num_rows(), 0u) << "structurally empty shard";
    total += shard.num_rows();
  }
  EXPECT_EQ(total, t.num_rows());
  // Completeness still holds on the skewed split.
  for (int64_t v : {0, 1, 2, 3, 4, 5}) {
    Query q;
    q.conjuncts = {Predicate::Eq(0, Value(v))};
    uint64_t routed = 0;
    for (uint32_t s : router.ShardsForQuery(q)) {
      routed += CountMatches(shards[s], q);
    }
    EXPECT_EQ(routed, CountMatches(t, q)) << "v=" << v;
  }
}

// Pruning must agree with routing *exactly*: int64 routing values above
// 2^53 are not representable in double, so a lossy numeric comparison
// would prune the shard that exactly-routed rows live in.
TEST(ShardedEquivalenceTest, RangePruningIsExactBeyondDoublePrecision) {
  const int64_t big = int64_t{1} << 53;
  Table t(Schema({{"ts", DataType::kInt64}}));
  // Quantile boundary lands exactly on 2^53; odd neighbors above it are not
  // representable in double.
  for (int64_t v : {big - 3, big - 2, big - 1, big, big + 1, big + 2}) {
    t.AppendRow({Value(v)});
  }
  ShardRouterOptions opts;
  opts.num_shards = 2;
  opts.column = 0;
  opts.routing = ShardRouting::kRange;
  ShardRouter router = ShardRouter::Build(t, opts);
  std::vector<Table> shards = router.SplitTable(t);
  for (int64_t v : {big - 3, big - 2, big - 1, big, big + 1, big + 2}) {
    for (const Predicate& pred :
         {Predicate::Eq(0, Value(v)), Predicate::Le(0, Value(v)),
          Predicate::Gt(0, Value(v)),
          Predicate::Between(0, Value(v), Value(v + 1)),
          Predicate::In(0, {Value(v)})}) {
      Query q;
      q.conjuncts = {pred};
      uint64_t routed = 0;
      for (uint32_t s : router.ShardsForQuery(q)) {
        routed += CountMatches(shards[s], q);
      }
      EXPECT_EQ(routed, CountMatches(t, q))
          << "lossy pruning dropped rows for " << q.ToString();
    }
  }
}

// ----------------------------- per-shard competitive ratio ---------------

TEST(ShardedEquivalenceTest, EveryShardStaysWithinPaperBoundOfItsOptimum) {
  const uint64_t seed = 7;
  const double alpha = 25.0;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);

  OreoOptions opts = ShardedOpts(seed, /*num_threads=*/2, /*num_shards=*/2);
  opts.alpha = alpha;
  opts.max_states = 6;
  ShardedOreo sharded(&t, &gen, /*time_column=*/0, opts);

  // Drive Step() to record each shard's per-query state availability (the
  // oblivious-adversary reconstruction of competitive_ratio_test, per
  // shard).
  const size_t n = sharded.num_shards();
  std::vector<std::vector<std::vector<int>>> live_at(n);
  std::vector<std::vector<Query>> shard_streams(n);
  for (const Query& q : stream) {
    ShardedOreo::ShardedStepResult step = sharded.StepSharded(q);
    for (const ShardedOreo::ShardStep& ss : step.shard_steps) {
      live_at[ss.shard].push_back(
          sharded.engine(ss.shard).oreo().registry().live());
      shard_streams[ss.shard].push_back(q);
    }
  }

  for (size_t s = 0; s < n; ++s) {
    const Oreo& engine = sharded.engine(s).oreo();
    ASSERT_FALSE(shard_streams[s].empty());
    const double alg_cost =
        engine.total_query_cost() + engine.total_reorg_cost();
    const size_t num_states = engine.registry().num_total();
    size_t max_live = 1;
    std::vector<std::vector<double>> costs(
        shard_streams[s].size(), std::vector<double>(num_states, 0.0));
    std::vector<std::vector<bool>> avail(
        shard_streams[s].size(), std::vector<bool>(num_states, false));
    for (size_t qi = 0; qi < shard_streams[s].size(); ++qi) {
      for (size_t st = 0; st < num_states; ++st) {
        costs[qi][st] =
            engine.registry().Cost(static_cast<int>(st), shard_streams[s][qi]);
      }
      for (int st : live_at[s][qi]) avail[qi][static_cast<size_t>(st)] = true;
      max_live = std::max(max_live, live_at[s][qi].size());
    }
    mts::OfflineResult opt =
        mts::SolveOfflineUniformDynamic(costs, avail, alpha);
    EXPECT_GE(alg_cost, opt.total_cost - 1e-9) << "shard " << s;
    const double bound =
        2.0 * testutil::Harmonic(max_live) * (opt.total_cost + alpha);
    EXPECT_LE(alg_cost, bound)
        << "shard " << s << " broke the per-shard bound: ALG=" << alg_cost
        << " OPT=" << opt.total_cost << " |S_max|=" << max_live;
  }
}

// ----------------------------- physical streaming end-to-end -------------

// Batches stream through the logical facade while per-shard background
// rewrites overlap; every batch's physical matches must equal the
// whole-table ground truth at all times (snapshot isolation per shard).
TEST(ShardedEquivalenceTest, PhysicalStreamingStaysCorrectAcrossShardReorgs) {
  const uint64_t seed = 21;
  const size_t kRows = 3000;
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, seed);
  std::vector<Query> stream = TwoPhaseStream(kRows, seed);

  OreoOptions opts = ShardedOpts(seed, /*num_threads=*/4, /*num_shards=*/4);
  opts.storage_backend = testutil::TestBackend("inmem");
  ShardedOreo sharded(&t, &gen, /*time_column=*/0, opts);
  std::string dir = testutil::ScratchDir("sharded_eq_stream");
  ASSERT_TRUE(sharded.AttachPhysical(dir).ok());

  std::vector<uint64_t> expected;
  for (const Query& q : stream) expected.push_back(CountMatches(t, q));

  size_t total_submitted = 0;
  size_t qi = 0;
  for (const QueryBatch& b : MakeBatches(stream, /*batch_size=*/32)) {
    sharded.RunBatch(b);
    auto exec = sharded.ExecuteBatchPhysical(b.queries);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    for (const auto& per_query : exec->per_query) {
      EXPECT_EQ(per_query.matches, expected[qi]) << "query " << qi;
      ++qi;
    }
    total_submitted += sharded.SyncPhysical();
  }
  sharded.WaitForReorgs();
  EXPECT_GT(total_submitted, 0u) << "no background rewrite ever started";

  // Quiescent: every shard's store serves the final layout correctly.
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_FALSE(sharded.reorg_pool()->busy(static_cast<uint32_t>(s)));
    EXPECT_EQ(sharded.engine(s).materialized_state(),
              sharded.engine(s).oreo().physical_state());
  }
  auto final_exec = sharded.ExecuteBatchPhysical({stream[0], Query{}});
  ASSERT_TRUE(final_exec.ok());
  EXPECT_EQ(final_exec->per_query[0].matches, expected[0]);
  EXPECT_EQ(final_exec->per_query[1].matches, t.num_rows());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace core
}  // namespace oreo
