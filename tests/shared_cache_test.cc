// SharedBlockCache contracts: the cross-shard tiered cache behind both
// CachedBackend (single-tenant view) and the per-shard SharedCacheBackend
// views.
//
//   1. The doomed-fetch window is closed: a fetch that STARTS while a
//      mutation of the same path is active (Remove/AtomicWriteBlock still
//      inside the base backend) serves its bytes to the overlapping reader
//      but never repopulates the cache, so a read issued after the mutation
//      returns always observes the new bytes.
//   2. One global budget, per-shard accounting: per-shard resident sums
//      equal the global residency, never exceed capacity, and evictions are
//      charged to the victim's owner shard.
//   3. Single-flight dedup spans shards: concurrent readers of one path
//      through different shard views share one base fetch.
//   4. Async prefetch is advisory and invisible to correctness: it warms the
//      cache (demand reads become hits), failures never surface to later
//      demand reads, and PhysicalStore feeds it the zone-map survivors of
//      the *next* queries in a batch.
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/physical.h"
#include "storage/backend.h"
#include "storage/shared_cache.h"
#include "test_util.h"

namespace oreo {
namespace {

// Blocks one class of ops against `gated_path` so tests can hold a base
// operation open while racing another. Reads gate AFTER the base read (the
// stale bytes are already in hand); writes/removes gate BEFORE the base op
// (the mutation has begun — the cache bracket is open — but the new bytes
// have not landed).
class GatedOpBackend : public StorageBackend {
 public:
  enum class Gate { kRead, kWrite, kRemove };

  GatedOpBackend(std::shared_ptr<StorageBackend> base, Gate gate,
                 std::string gated_path)
      : base_(std::move(base)), gate_(gate),
        gated_path_(std::move(gated_path)) {}

  std::string name() const override { return "gated(" + base_->name() + ")"; }
  Result<std::string> ReadBlock(const std::string& path) override {
    Result<std::string> result = base_->ReadBlock(path);
    if (gate_ == Gate::kRead && path == gated_path_) Park();
    return result;
  }
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override {
    if (gate_ == Gate::kWrite && path == gated_path_) Park();
    return base_->AtomicWriteBlock(path, data, sync);
  }
  Result<std::vector<std::string>> List(const std::string& dir) override {
    return base_->List(dir);
  }
  Status Remove(const std::string& path) override {
    if (gate_ == Gate::kRemove && path == gated_path_) Park();
    return base_->Remove(path);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override { return base_->stats(); }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_ > 0; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  void Park() {
    std::unique_lock<std::mutex> lock(mu_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }

  std::shared_ptr<StorageBackend> base_;
  Gate gate_;
  std::string gated_path_;
  std::mutex mu_;
  std::condition_variable cv_;
  int blocked_ = 0;
  bool open_ = false;
};

// The doomed-fetch window, write flavor. Timeline forced by the gate:
//   writer:  BeginMutation ──── base write (parked) ──────── lands ── End
//   reader:              miss ── base read (OLD bytes) ── done
// The reader's fetch starts after BeginMutation dropped the entry and
// finishes while the write is still parked, so it holds the PRE-write
// bytes. Serving them to that reader is legal (its read overlapped the
// write); caching them is the bug: a read issued after the write returns
// would then hit stale bytes forever.
template <typename MakeBackend>
void RunWriteRaceRegression(MakeBackend make_backend) {
  const std::string path = "race/w.blk";
  auto base = MakeInMemoryBackend();
  auto gated = std::make_shared<GatedOpBackend>(
      base, GatedOpBackend::Gate::kWrite, path);
  std::shared_ptr<StorageBackend> backend = make_backend(gated);
  ASSERT_TRUE(base->AtomicWriteBlock(path, "old", false).ok());

  std::thread writer([&] {
    EXPECT_TRUE(backend->AtomicWriteBlock(path, "new", false).ok());
  });
  gated->WaitUntilBlocked();

  // Overlapping reader: legitimately sees the old bytes...
  Result<std::string> overlapped = backend->ReadBlock(path);
  ASSERT_TRUE(overlapped.ok());
  EXPECT_EQ(*overlapped, "old");

  gated->Open();
  writer.join();

  // ...but its fetch was born doomed, so the post-write read goes back to
  // the base and sees the new bytes.
  Result<std::string> after = backend->ReadBlock(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "new")
      << "a fetch overlapping the write repopulated the cache with stale "
         "bytes";
}

// Remove flavor of the same window: the doomed fetch must not resurrect a
// deleted object.
template <typename MakeBackend>
void RunRemoveRaceRegression(MakeBackend make_backend) {
  const std::string path = "race/d.blk";
  auto base = MakeInMemoryBackend();
  auto gated = std::make_shared<GatedOpBackend>(
      base, GatedOpBackend::Gate::kRemove, path);
  std::shared_ptr<StorageBackend> backend = make_backend(gated);
  ASSERT_TRUE(base->AtomicWriteBlock(path, "doomed", false).ok());

  std::thread remover(
      [&] { EXPECT_TRUE(backend->Remove(path).ok()); });
  gated->WaitUntilBlocked();

  Result<std::string> overlapped = backend->ReadBlock(path);
  ASSERT_TRUE(overlapped.ok());
  EXPECT_EQ(*overlapped, "doomed");

  gated->Open();
  remover.join();

  Result<std::string> after = backend->ReadBlock(path);
  EXPECT_FALSE(after.ok())
      << "a fetch overlapping the remove resurrected the deleted object";
}

TEST(SharedCacheRaceTest, CachedBackendWriteRaceNeverCachesStaleBytes) {
  RunWriteRaceRegression([](std::shared_ptr<StorageBackend> gated) {
    return MakeCachedBackend(std::move(gated));
  });
}

TEST(SharedCacheRaceTest, CachedBackendRemoveRaceNeverResurrectsObject) {
  RunRemoveRaceRegression([](std::shared_ptr<StorageBackend> gated) {
    return MakeCachedBackend(std::move(gated));
  });
}

TEST(SharedCacheRaceTest, SharedViewWriteRaceNeverCachesStaleBytes) {
  RunWriteRaceRegression([](std::shared_ptr<StorageBackend> gated) {
    return MakeSharedCacheBackend(MakeSharedBlockCache(), std::move(gated),
                                  /*shard=*/3);
  });
}

TEST(SharedCacheRaceTest, SharedViewRemoveRaceNeverResurrectsObject) {
  RunRemoveRaceRegression([](std::shared_ptr<StorageBackend> gated) {
    return MakeSharedCacheBackend(MakeSharedBlockCache(), std::move(gated),
                                  /*shard=*/3);
  });
}

TEST(SharedBlockCacheTest, SingleFlightDedupSpansShards) {
  const std::string path = "dedup/p.blk";
  auto base = MakeInMemoryBackend();
  ASSERT_TRUE(base->AtomicWriteBlock(path, "payload", false).ok());
  auto gated = std::make_shared<GatedOpBackend>(
      base, GatedOpBackend::Gate::kRead, path);
  auto cache = MakeSharedBlockCache();
  auto view0 = MakeSharedCacheBackend(cache, gated, /*shard=*/0);
  auto view1 = MakeSharedCacheBackend(cache, gated, /*shard=*/1);

  // Shard 0's fetch parks inside the base; shard 1's read arrives while it
  // is in flight (or, at worst, just after insertion — either way the base
  // serves exactly one read).
  std::thread fetcher([&] {
    Result<std::string> r = view0->ReadBlock(path);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(*r, "payload");
    }
  });
  gated->WaitUntilBlocked();
  std::thread rider([&] {
    Result<std::string> r = view1->ReadBlock(path);
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(*r, "payload");
    }
  });
  gated->Open();
  fetcher.join();
  rider.join();

  EXPECT_EQ(base->stats().reads, 1u)
      << "concurrent cross-shard readers did not share one base fetch";
  SharedCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache->shard_stats(0).misses, 1u);
  EXPECT_EQ(cache->shard_stats(1).hits, 1u);
}

TEST(SharedBlockCacheTest, GlobalBudgetWithPerShardAccounting) {
  auto base = MakeInMemoryBackend();
  for (const char* p : {"a", "b", "c"}) {
    ASSERT_TRUE(base->AtomicWriteBlock(p, std::string(8, p[0]), false).ok());
  }
  SharedBlockCacheOptions options;
  options.capacity_bytes = 16;  // room for exactly two 8-byte objects
  auto cache = MakeSharedBlockCache(options);
  auto view0 = MakeSharedCacheBackend(cache, base, /*shard=*/0);
  auto view1 = MakeSharedCacheBackend(cache, base, /*shard=*/1);

  ASSERT_TRUE(view0->ReadBlock("a").ok());  // owner: shard 0
  ASSERT_TRUE(view1->ReadBlock("b").ok());  // owner: shard 1
  SharedCacheStats stats = cache->stats();
  EXPECT_EQ(stats.resident_bytes, 16u);
  EXPECT_EQ(stats.resident_objects, 2u);
  EXPECT_EQ(cache->shard_stats(0).resident_bytes, 8u);
  EXPECT_EQ(cache->shard_stats(1).resident_bytes, 8u);

  // Third insert evicts the LRU victim "a" — charged to shard 0, its
  // OWNER, even though shard 1 drove the insertion.
  ASSERT_TRUE(view1->ReadBlock("c").ok());
  stats = cache->stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache->shard_stats(0).evictions_charged, 1u);
  EXPECT_EQ(cache->shard_stats(1).evictions_charged, 0u);
  EXPECT_EQ(cache->shard_stats(0).resident_bytes, 0u);
  EXPECT_EQ(cache->shard_stats(1).resident_bytes, 16u);
  EXPECT_EQ(cache->shard_stats(1).resident_objects, 2u);

  // Invalidation is charged to the owner of the dropped object.
  ASSERT_TRUE(view0->AtomicWriteBlock("b", "bbbbbbbb", false).ok());
  EXPECT_EQ(cache->shard_stats(1).invalidations, 1u);
  EXPECT_EQ(cache->shard_stats(0).invalidations, 0u);

  // Oversized objects are served but never cached.
  ASSERT_TRUE(
      base->AtomicWriteBlock("huge", std::string(64, 'h'), false).ok());
  Result<std::string> huge = view0->ReadBlock("huge");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->size(), 64u);

  // Invariants under churn: the budget is never exceeded, and the global
  // residency always equals the sum of the per-shard slices.
  for (int round = 0; round < 3; ++round) {
    for (const char* p : {"a", "b", "c", "huge"}) {
      ASSERT_TRUE((round % 2 == 0 ? view0 : view1)->ReadBlock(p).ok());
      stats = cache->stats();
      EXPECT_LE(stats.resident_bytes, options.capacity_bytes);
      uint64_t shard_bytes = 0, shard_objects = 0;
      for (const auto& [shard, s] : cache->all_shard_stats()) {
        (void)shard;
        shard_bytes += s.resident_bytes;
        shard_objects += s.resident_objects;
      }
      EXPECT_EQ(shard_bytes, stats.resident_bytes);
      EXPECT_EQ(shard_objects, stats.resident_objects);
    }
  }
}

TEST(SharedBlockCacheTest, PrefetchWarmsTheCache) {
  auto base = MakeInMemoryBackend();
  ASSERT_TRUE(base->AtomicWriteBlock("p1", "11111", false).ok());
  ASSERT_TRUE(base->AtomicWriteBlock("p2", "222", false).ok());
  SharedBlockCacheOptions options;
  options.prefetch_threads = 2;
  auto cache = MakeSharedBlockCache(options);

  cache->RequestPrefetch(0, base, "p1");
  cache->RequestPrefetch(1, base, "p2");
  cache->DrainPrefetches();

  SharedCacheStats stats = cache->stats();
  EXPECT_EQ(stats.prefetch_requests, 2u);
  EXPECT_EQ(stats.prefetch_fetches, 2u);
  EXPECT_EQ(stats.prefetch_bytes, 8u);
  EXPECT_EQ(cache->shard_stats(0).prefetch_fetches, 1u);
  EXPECT_EQ(cache->shard_stats(1).prefetch_fetches, 1u);
  const uint64_t base_reads_after_warmup = base->stats().reads;

  // Demand reads are now hits: no further base traffic.
  Result<std::string> r = cache->Read(0, base.get(), "p1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "11111");
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(base->stats().reads, base_reads_after_warmup);

  // Prefetching an already-cached object is a counted no-op.
  cache->RequestPrefetch(0, base, "p1");
  cache->DrainPrefetches();
  EXPECT_GE(cache->stats().prefetch_noops, 1u);
}

TEST(SharedBlockCacheTest, PrefetchWithoutWorkersIsDropped) {
  auto base = MakeInMemoryBackend();
  ASSERT_TRUE(base->AtomicWriteBlock("p", "x", false).ok());
  auto cache = MakeSharedBlockCache();  // prefetch_threads = 0
  cache->RequestPrefetch(0, base, "p");
  cache->DrainPrefetches();
  SharedCacheStats stats = cache->stats();
  EXPECT_EQ(stats.prefetch_dropped, 1u);
  EXPECT_EQ(stats.prefetch_fetches, 0u);
  // Demand reads are unaffected.
  Result<std::string> r = cache->Read(0, base.get(), "p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "x");
}

TEST(SharedBlockCacheTest, FailedPrefetchIsInvisibleToDemandReads) {
  auto base = MakeInMemoryBackend();
  SharedBlockCacheOptions options;
  options.prefetch_threads = 1;
  auto cache = MakeSharedBlockCache(options);

  cache->RequestPrefetch(0, base, "late");  // does not exist yet
  cache->DrainPrefetches();

  ASSERT_TRUE(base->AtomicWriteBlock("late", "now it does", false).ok());
  Result<std::string> r = cache->Read(0, base.get(), "late");
  ASSERT_TRUE(r.ok()) << "a failed prefetch leaked its error into a later "
                         "demand read: "
                      << r.status().ToString();
  EXPECT_EQ(*r, "now it does");
}

// End-to-end plumbing: PhysicalStore discovers the BlockPrefetcher interface
// on its backend and warms the zone-map survivors of upcoming queries;
// results stay ground truth.
TEST(SharedBlockCacheTest, PhysicalStorePrefetchesUpcomingQueries) {
  const uint64_t seed = 7;
  Table t = testutil::MakeEventTable(2000, seed);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 8, "by_ts", 3);
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(0, 2000, 400, 6, seed + 1);

  auto base = MakeInMemoryBackend();
  SharedBlockCacheOptions options;
  options.prefetch_threads = 2;
  auto cache = MakeSharedBlockCache(options);
  auto backend = MakeSharedCacheBackend(cache, base, /*shard=*/0);
  std::string dir = testutil::ScratchDir("shared_prefetch");
  core::PhysicalStore store(dir, /*num_threads=*/2, backend);
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());

  // Explicit warm-up for the whole batch, drained for determinism.
  store.PrefetchForQueries(store.GetSnapshot(), queries);
  cache->DrainPrefetches();
  EXPECT_GT(cache->stats().prefetch_requests, 0u)
      << "PhysicalStore never fed the prefetcher";

  auto exec = store.ExecuteQueryBatch(queries);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->per_query.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(exec->per_query[i].matches, CountMatches(t, queries[i]))
        << "query " << i;
  }
  EXPECT_GT(cache->stats().hits, 0u)
      << "the warmed cache served nothing to the batch";
}

}  // namespace
}  // namespace oreo
