// Tests for the physical execution substrate: materialization, query
// execution with pruning, full reorganization (row preservation), and the
// replay harness used by the Figure 3 benchmark.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/background.h"
#include "core/physical.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "layout/sorted_layout.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

namespace fs = std::filesystem;

Table MakeTable(size_t rows, uint64_t seed) {
  return testutil::MakeEventTable(rows, seed);
}

LayoutInstance SortedInstance(const Table& t, int col, uint32_t k,
                              const std::string& name) {
  return testutil::MakeSortedInstance(t, col, k, name, /*sample_seed=*/3);
}

std::string TempDir(const std::string& tag) {
  return testutil::ScratchDir("phys_" + tag);
}

TEST(PhysicalStoreTest, MaterializeWritesAllPartitions) {
  Table t = MakeTable(2000, 1);
  LayoutInstance inst = SortedInstance(t, 0, 8, "by_ts");
  PhysicalStore store(TempDir("mat"));
  auto timing = store.MaterializeLayout(t, inst);
  ASSERT_TRUE(timing.ok()) << timing.status().ToString();
  EXPECT_EQ(timing->partitions, inst.partitioning().num_partitions());
  EXPECT_GT(timing->bytes, 0u);
  EXPECT_EQ(store.MaterializedBytes(), timing->bytes);
}

TEST(PhysicalStoreTest, FullScanReadsEverything) {
  Table t = MakeTable(2000, 2);
  LayoutInstance inst = SortedInstance(t, 0, 8, "by_ts");
  PhysicalStore store(TempDir("scan"));
  ASSERT_TRUE(store.MaterializeLayout(t, inst).ok());
  Query q;  // full scan
  auto exec = store.ExecuteQuery(q);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->rows_scanned, 2000u);
  EXPECT_EQ(exec->matches, 2000u);
  EXPECT_EQ(exec->partitions_read, inst.partitioning().num_partitions());
}

TEST(PhysicalStoreTest, PruningSkipsPartitionsAndMatchesLogicalCount) {
  Table t = MakeTable(4000, 3);
  LayoutInstance inst = SortedInstance(t, 0, 16, "by_ts");
  PhysicalStore store(TempDir("prune"));
  ASSERT_TRUE(store.MaterializeLayout(t, inst).ok());
  Query q;
  q.conjuncts = {Predicate::Between(0, Value(int64_t{100}), Value(int64_t{300}))};
  auto exec = store.ExecuteQuery(q);
  ASSERT_TRUE(exec.ok());
  // Physical matches == logical matches.
  EXPECT_EQ(exec->matches, CountMatches(t, q));
  // Narrow ts range on the ts-sorted layout: most partitions skipped.
  EXPECT_LT(exec->partitions_read, 5u);
  EXPECT_LT(exec->rows_scanned, 4000u);
}

TEST(PhysicalStoreTest, ReorganizePreservesRowsExactly) {
  Table t = MakeTable(3000, 4);
  LayoutInstance a = SortedInstance(t, 0, 8, "by_ts");
  LayoutInstance b = SortedInstance(t, 1, 8, "by_qty");
  PhysicalStore store(TempDir("reorg"));
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());
  auto timing = store.Reorganize(t, b);
  ASSERT_TRUE(timing.ok()) << timing.status().ToString();
  EXPECT_GT(timing->seconds, 0.0);
  // After reorg, any query must see the same matches as before.
  for (int64_t lo : {0, 250, 500, 750}) {
    Query q;
    q.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 100))};
    auto exec = store.ExecuteQuery(q);
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(exec->matches, CountMatches(t, q));
  }
  EXPECT_EQ(store.current_instance(), &b);
}

TEST(PhysicalStoreTest, ReorganizeImprovesSkippingForNewWorkload) {
  Table t = MakeTable(4000, 5);
  LayoutInstance by_ts = SortedInstance(t, 0, 16, "by_ts");
  LayoutInstance by_qty = SortedInstance(t, 1, 16, "by_qty");
  PhysicalStore store(TempDir("improve"));
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());
  Query q;
  q.conjuncts = {Predicate::Between(1, Value(int64_t{400}), Value(int64_t{450}))};
  auto before = store.ExecuteQuery(q);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(store.Reorganize(t, by_qty).ok());
  auto after = store.ExecuteQuery(q);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->partitions_read, before->partitions_read);
  EXPECT_EQ(after->matches, before->matches);
}

TEST(ReplayPhysicalTest, FollowsDecisionTrace) {
  Table t = MakeTable(3000, 6);
  StateRegistry reg;
  int s0 = reg.Add(SortedInstance(t, 0, 8, "s0"));
  int s1 = reg.Add(SortedInstance(t, 1, 8, "s1"));
  (void)s0;
  // Build a fake simulation trace: switch to s1 at query 10.
  std::vector<Query> queries;
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    Query q;
    q.id = i;
    int64_t lo = rng.UniformInt(0, 900);
    q.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 100))};
    queries.push_back(q);
  }
  SimResult sim;
  sim.serving_state.assign(30, s0);
  for (size_t i = 10; i < 30; ++i) sim.serving_state[i] = s1;

  auto result = ReplayPhysical(t, reg, sim, queries, /*stride=*/3,
                               TempDir("replay"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_switches, 1);
  EXPECT_GT(result->reorg_seconds, 0.0);
  EXPECT_EQ(result->queries_executed, 10u);
  EXPECT_GT(result->query_seconds, 0.0);
}

TEST(BackgroundReorganizerTest, CompletesAndSwaps) {
  Table t = MakeTable(5000, 10);
  LayoutInstance a = SortedInstance(t, 0, 8, "a");
  LayoutInstance b = SortedInstance(t, 1, 8, "b");
  PhysicalStore store(TempDir("bg_swap"));
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());
  {
    BackgroundReorganizer bg(&store, &t);
    EXPECT_FALSE(bg.busy());
    ASSERT_TRUE(bg.Submit(&b));
    bg.Wait();
    EXPECT_FALSE(bg.busy());
    EXPECT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
    EXPECT_EQ(bg.stats().completed, 1);
    EXPECT_GT(bg.stats().total_seconds, 0.0);
  }
  // The store now serves the new layout with all rows intact.
  EXPECT_EQ(store.current_instance(), &b);
  Query q;
  auto exec = store.ExecuteQuery(q);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->matches, 5000u);
  store.Vacuum();
}

TEST(BackgroundReorganizerTest, SnapshotServesDuringReorganization) {
  Table t = MakeTable(20000, 11);
  LayoutInstance a = SortedInstance(t, 0, 16, "a");
  LayoutInstance b = SortedInstance(t, 1, 16, "b");
  PhysicalStore store(TempDir("bg_snap"));
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());

  PhysicalStore::Snapshot snap = store.GetSnapshot();
  Query q;
  q.conjuncts = {Predicate::Between(1, Value(int64_t{100}), Value(int64_t{300}))};
  uint64_t expected = CountMatches(t, q);

  BackgroundReorganizer bg(&store, &t);
  ASSERT_TRUE(bg.Submit(&b));
  // Keep querying the old snapshot while the rewrite runs; results must be
  // correct throughout (outgoing files stay on disk until Vacuum).
  int during = 0;
  do {
    auto exec = store.ExecuteQueryOnSnapshot(snap, q);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(exec->matches, expected);
    ++during;
  } while (bg.busy());
  EXPECT_GE(during, 1);
  bg.Wait();
  ASSERT_TRUE(bg.last_status().ok());
  // And the snapshot still works after the swap, until Vacuum.
  auto exec = store.ExecuteQueryOnSnapshot(snap, q);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->matches, expected);
  // After Vacuum, fresh snapshots serve the new layout correctly.
  store.Vacuum();
  auto fresh = store.ExecuteQuery(q);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->matches, expected);
}

TEST(BackgroundReorganizerTest, RejectsConcurrentSubmit) {
  Table t = MakeTable(30000, 12);
  LayoutInstance a = SortedInstance(t, 0, 16, "a");
  LayoutInstance b = SortedInstance(t, 1, 16, "b");
  LayoutInstance c = SortedInstance(t, 0, 8, "c");
  PhysicalStore store(TempDir("bg_reject"));
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());
  BackgroundReorganizer bg(&store, &t);
  ASSERT_TRUE(bg.Submit(&b));
  // While busy, further submissions bounce (single background process).
  bool rejected = false;
  while (bg.busy()) {
    if (!bg.Submit(&c)) {
      rejected = true;
      break;
    }
  }
  bg.Wait();
  EXPECT_TRUE(rejected || bg.stats().completed >= 1);
}

TEST(PhysicalStoreTest, VacuumReclaimsOutgoingFiles) {
  namespace fs2 = std::filesystem;
  Table t = MakeTable(2000, 13);
  LayoutInstance a = SortedInstance(t, 0, 8, "a");
  LayoutInstance b = SortedInstance(t, 1, 8, "b");
  std::string dir = TempDir("vacuum");
  PhysicalStore store(dir);
  ASSERT_TRUE(store.MaterializeLayout(t, a).ok());
  ASSERT_TRUE(store.Reorganize(t, b).ok());
  size_t before = std::distance(fs2::directory_iterator(dir),
                                fs2::directory_iterator{});
  store.Vacuum();
  size_t after = std::distance(fs2::directory_iterator(dir),
                               fs2::directory_iterator{});
  EXPECT_LT(after, before);
  EXPECT_EQ(after, b.partitioning().num_partitions());
}

TEST(PhysicalStoreTest, EmptyPartitionListHandled) {
  // A table where one layout partition ends up empty after routing must not
  // break materialization (BuildPartitioning drops empties).
  Table t = MakeTable(100, 8);
  LayoutInstance inst = SortedInstance(t, 0, 64, "tiny");
  PhysicalStore store(TempDir("tiny"));
  auto timing = store.MaterializeLayout(t, inst);
  ASSERT_TRUE(timing.ok());
  Query q;
  auto exec = store.ExecuteQuery(q);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->matches, 100u);
}

}  // namespace
}  // namespace core
}  // namespace oreo
