// Tests for src/query: predicate evaluation, zone-map pruning soundness
// (the load-bearing invariant: a skipped partition contains no matching row),
// selectivity estimation and the fraction-accessed cost model.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "query/aggregate.h"
#include "query/query.h"
#include "storage/metadata_io.h"
#include "storage/partitioning.h"
#include "test_util.h"

namespace oreo {
namespace {

Schema TestSchema() { return testutil::SalesSchema(); }

Table MakeRandomTable(size_t rows, uint64_t seed) {
  return testutil::MakeSalesTable(rows, seed);
}

// ------------------------------------------------- predicate matching ----

TEST(PredicateTest, IntComparisons) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{10}), Value(1.0), Value("asia")});
  EXPECT_TRUE(Predicate::Eq(0, Value(int64_t{10})).Matches(t, 0));
  EXPECT_FALSE(Predicate::Eq(0, Value(int64_t{11})).Matches(t, 0));
  EXPECT_TRUE(Predicate::Lt(0, Value(int64_t{11})).Matches(t, 0));
  EXPECT_FALSE(Predicate::Lt(0, Value(int64_t{10})).Matches(t, 0));
  EXPECT_TRUE(Predicate::Le(0, Value(int64_t{10})).Matches(t, 0));
  EXPECT_TRUE(Predicate::Gt(0, Value(int64_t{9})).Matches(t, 0));
  EXPECT_TRUE(Predicate::Ge(0, Value(int64_t{10})).Matches(t, 0));
  EXPECT_FALSE(Predicate::Ge(0, Value(int64_t{11})).Matches(t, 0));
}

TEST(PredicateTest, BetweenInclusive) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{10}), Value(1.0), Value("asia")});
  EXPECT_TRUE(
      Predicate::Between(0, Value(int64_t{10}), Value(int64_t{20})).Matches(t, 0));
  EXPECT_TRUE(
      Predicate::Between(0, Value(int64_t{0}), Value(int64_t{10})).Matches(t, 0));
  EXPECT_FALSE(
      Predicate::Between(0, Value(int64_t{11}), Value(int64_t{20})).Matches(t, 0));
}

TEST(PredicateTest, InList) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{1}), Value(1.0), Value("asia")});
  EXPECT_TRUE(Predicate::In(2, {Value("europe"), Value("asia")}).Matches(t, 0));
  EXPECT_FALSE(Predicate::In(2, {Value("europe"), Value("africa")}).Matches(t, 0));
  EXPECT_FALSE(Predicate::In(2, {}).Matches(t, 0));
}

TEST(PredicateTest, StringComparisons) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{1}), Value(1.0), Value("europe")});
  EXPECT_TRUE(Predicate::Ge(2, Value("asia")).Matches(t, 0));
  EXPECT_TRUE(Predicate::Lt(2, Value("zzz")).Matches(t, 0));
  EXPECT_FALSE(Predicate::Lt(2, Value("europe")).Matches(t, 0));
}

TEST(PredicateTest, ToStringWithSchema) {
  Schema s = TestSchema();
  EXPECT_EQ(Predicate::Eq(0, Value(int64_t{5})).ToString(&s), "qty = 5");
  EXPECT_EQ(Predicate::Between(0, Value(int64_t{1}), Value(int64_t{2})).ToString(&s),
            "qty BETWEEN 1 AND 2");
  EXPECT_EQ(Predicate::In(2, {Value("a"), Value("b")}).ToString(&s),
            "region IN ('a', 'b')");
}

// ------------------------------------------------------ query matching ----

TEST(QueryTest, ConjunctionSemantics) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{10}), Value(5.0), Value("asia")});
  Query q;
  q.conjuncts = {Predicate::Ge(0, Value(int64_t{5})),
                 Predicate::Eq(2, Value("asia"))};
  EXPECT_TRUE(q.Matches(t, 0));
  q.conjuncts.push_back(Predicate::Lt(1, Value(2.0)));
  EXPECT_FALSE(q.Matches(t, 0));
}

TEST(QueryTest, EmptyConjunctsIsFullScan) {
  Table t = MakeRandomTable(10, 1);
  Query q;
  EXPECT_EQ(CountMatches(t, q), 10u);
  ZoneMap zm = BuildZoneMap(t);
  EXPECT_FALSE(q.CanSkipPartition(zm));
}

TEST(QueryTest, CountMatchesSubset) {
  Table t(TestSchema());
  for (int64_t i = 0; i < 10; ++i) {
    t.AppendRow({Value(i), Value(0.0), Value("x")});
  }
  Query q;
  q.conjuncts = {Predicate::Lt(0, Value(int64_t{5}))};
  EXPECT_EQ(CountMatches(t, q), 5u);
  EXPECT_EQ(CountMatches(t, {0, 7, 3}, q), 2u);
}

TEST(QueryTest, EstimateSelectivity) {
  Table t(TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    t.AppendRow({Value(i), Value(0.0), Value("x")});
  }
  Query q;
  q.conjuncts = {Predicate::Lt(0, Value(int64_t{25}))};
  EXPECT_DOUBLE_EQ(EstimateSelectivity(t, q), 0.25);
}

// ------------------------------------------------------ zone pruning -----

TEST(PruningTest, EqOutsideBounds) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{10}), Value(1.0), Value("b")});
  t.AppendRow({Value(int64_t{20}), Value(2.0), Value("c")});
  ZoneMap zm = BuildZoneMap(t);
  Query q;
  q.conjuncts = {Predicate::Eq(0, Value(int64_t{30}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Eq(0, Value(int64_t{15}))};
  EXPECT_FALSE(q.CanSkipPartition(zm));  // inside range: cannot prove empty
}

TEST(PruningTest, StringDistinctSetProvesAbsence) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{1}), Value(1.0), Value("alpha")});
  t.AppendRow({Value(int64_t{2}), Value(2.0), Value("gamma")});
  ZoneMap zm = BuildZoneMap(t);
  Query q;
  // "beta" is within [alpha, gamma] lexicographically, but the distinct set
  // proves it absent.
  q.conjuncts = {Predicate::Eq(2, Value("beta"))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Eq(2, Value("gamma"))};
  EXPECT_FALSE(q.CanSkipPartition(zm));
}

TEST(PruningTest, InListPruning) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{1}), Value(1.0), Value("aa")});
  t.AppendRow({Value(int64_t{5}), Value(2.0), Value("bb")});
  ZoneMap zm = BuildZoneMap(t);
  Query q;
  q.conjuncts = {Predicate::In(0, {Value(int64_t{7}), Value(int64_t{9})})};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::In(0, {Value(int64_t{7}), Value(int64_t{3})})};
  EXPECT_FALSE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::In(2, {Value("cc"), Value("dd")})};
  EXPECT_TRUE(q.CanSkipPartition(zm));
}

TEST(PruningTest, RangePruning) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{10}), Value(1.0), Value("a")});
  t.AppendRow({Value(int64_t{20}), Value(2.0), Value("a")});
  ZoneMap zm = BuildZoneMap(t);
  Query q;
  q.conjuncts = {Predicate::Lt(0, Value(int64_t{10}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Le(0, Value(int64_t{10}))};
  EXPECT_FALSE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Gt(0, Value(int64_t{20}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Between(0, Value(int64_t{21}), Value(int64_t{30}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
  q.conjuncts = {Predicate::Between(0, Value(int64_t{0}), Value(int64_t{9}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
}

TEST(PruningTest, EmptyPartitionAlwaysSkippable) {
  Table t = MakeRandomTable(5, 2);
  ZoneMap zm = BuildZoneMap(t, {});
  Query q;
  q.conjuncts = {Predicate::Eq(0, Value(int64_t{1}))};
  EXPECT_TRUE(q.CanSkipPartition(zm));
}

// Soundness property: whenever CanSkipPartition says a partition can be
// skipped, no row in that partition may match the query. Sweeps random
// queries over random partitionings (parameterized by seed).
class PruningSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

Query RandomQuery(Rng* rng) {
  const char* regions[] = {"asia", "europe", "america", "africa", "oceania"};
  Query q;
  int n_preds = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < n_preds; ++i) {
    switch (rng->Uniform(6)) {
      case 0:
        q.conjuncts.push_back(Predicate::Eq(0, Value(rng->UniformInt(0, 100))));
        break;
      case 1: {
        int64_t lo = rng->UniformInt(0, 90);
        q.conjuncts.push_back(
            Predicate::Between(0, Value(lo), Value(lo + 10)));
        break;
      }
      case 2:
        q.conjuncts.push_back(Predicate::Lt(1, Value(rng->UniformDouble(0, 50))));
        break;
      case 3:
        q.conjuncts.push_back(Predicate::Ge(1, Value(rng->UniformDouble(0, 50))));
        break;
      case 4:
        q.conjuncts.push_back(Predicate::Eq(2, Value(regions[rng->Uniform(5)])));
        break;
      case 5:
        q.conjuncts.push_back(Predicate::In(
            2, {Value(regions[rng->Uniform(5)]), Value(regions[rng->Uniform(5)])}));
        break;
    }
  }
  return q;
}

TEST_P(PruningSoundnessTest, SkippedPartitionsHaveNoMatches) {
  Rng rng(GetParam());
  Table t = MakeRandomTable(500, GetParam() * 31 + 7);
  // Random partitioning into 8 parts.
  std::vector<uint32_t> assignment(t.num_rows());
  for (auto& a : assignment) a = static_cast<uint32_t>(rng.Uniform(8));
  Partitioning p = BuildPartitioning(t, assignment, 8);
  ASSERT_TRUE(ValidatePartitioning(p, t.num_rows()));

  for (int qi = 0; qi < 50; ++qi) {
    Query q = RandomQuery(&rng);
    for (size_t pid = 0; pid < p.num_partitions(); ++pid) {
      if (q.CanSkipPartition(p.zones[pid])) {
        EXPECT_EQ(CountMatches(t, p.partitions[pid], q), 0u)
            << "unsound skip: " << q.ToString(&t.schema());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningSoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------- fraction accessed ----

TEST(FractionAccessedTest, FullScanIsOne) {
  Table t = MakeRandomTable(100, 3);
  std::vector<uint32_t> assignment(t.num_rows());
  for (size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<uint32_t>(i % 4);
  }
  Partitioning p = BuildPartitioning(t, assignment, 4);
  Query q;  // no conjuncts
  EXPECT_DOUBLE_EQ(FractionAccessed(p, q), 1.0);
  EXPECT_EQ(PartitionsToRead(p, q).size(), 4u);
}

TEST(FractionAccessedTest, PerfectClusteringSkips) {
  // Rows partitioned exactly by qty range: a point query touches 1/4.
  Table t(TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    t.AppendRow({Value(i), Value(0.0), Value("x")});
  }
  std::vector<uint32_t> assignment(100);
  for (size_t i = 0; i < 100; ++i) assignment[i] = static_cast<uint32_t>(i / 25);
  Partitioning p = BuildPartitioning(t, assignment, 4);
  Query q;
  q.conjuncts = {Predicate::Eq(0, Value(int64_t{10}))};
  EXPECT_DOUBLE_EQ(FractionAccessed(p, q), 0.25);
  EXPECT_EQ(PartitionsToRead(p, q), std::vector<uint32_t>{0});
}

TEST(FractionAccessedTest, CostInUnitInterval) {
  Rng rng(5);
  Table t = MakeRandomTable(200, 5);
  std::vector<uint32_t> assignment(t.num_rows());
  for (auto& a : assignment) a = static_cast<uint32_t>(rng.Uniform(6));
  Partitioning p = BuildPartitioning(t, assignment, 6);
  for (int i = 0; i < 30; ++i) {
    Query q = RandomQuery(&rng);
    double c = FractionAccessed(p, q);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

// ----------------------------------------------------------- aggregates ----

TEST(AggregateTest, CountSumMinMaxAvg) {
  Table t(TestSchema());
  for (int64_t i = 1; i <= 10; ++i) {
    t.AppendRow({Value(i), Value(static_cast<double>(i) * 2.0), Value("x")});
  }
  Query q;
  q.conjuncts = {Predicate::Le(0, Value(int64_t{5}))};  // qty in 1..5
  std::vector<AggResult> r = RunAggregates(
      t, q,
      {{AggOp::kCount, -1}, {AggOp::kSum, 1}, {AggOp::kMin, 1},
       {AggOp::kMax, 1}, {AggOp::kAvg, 0}});
  EXPECT_EQ(r[0].count, 5);
  EXPECT_DOUBLE_EQ(r[1].value, 2.0 + 4 + 6 + 8 + 10);
  EXPECT_DOUBLE_EQ(r[2].value, 2.0);
  EXPECT_DOUBLE_EQ(r[3].value, 10.0);
  EXPECT_DOUBLE_EQ(r[4].value, 3.0);
  for (const AggResult& a : r) EXPECT_TRUE(a.valid);
}

TEST(AggregateTest, EmptyInputSemantics) {
  Table t(TestSchema());
  t.AppendRow({Value(int64_t{1}), Value(1.0), Value("x")});
  Query q;
  q.conjuncts = {Predicate::Gt(0, Value(int64_t{100}))};  // matches nothing
  std::vector<AggResult> r = RunAggregates(
      t, q, {{AggOp::kCount, -1}, {AggOp::kSum, 1}, {AggOp::kMin, 1},
             {AggOp::kAvg, 1}});
  EXPECT_EQ(r[0].count, 0);
  EXPECT_TRUE(r[0].valid);
  EXPECT_DOUBLE_EQ(r[1].value, 0.0);  // SUM of nothing = 0
  EXPECT_FALSE(r[2].valid);           // MIN of nothing = NULL
  EXPECT_FALSE(r[3].valid);           // AVG of nothing = NULL
}

TEST(AggregateTest, StreamingAcrossPartitionsMatchesOneShot) {
  Table t = MakeRandomTable(300, 21);
  Query q;
  q.conjuncts = {Predicate::Ge(1, Value(10.0))};
  std::vector<AggSpec> specs = {{AggOp::kSum, 0}, {AggOp::kAvg, 1},
                                {AggOp::kCount, -1}};
  std::vector<AggResult> oneshot = RunAggregates(t, q, specs);

  // Same data split across three "partitions".
  Aggregator agg(specs);
  std::vector<uint32_t> p1, p2, p3;
  for (uint32_t r = 0; r < 300; ++r) {
    (r % 3 == 0 ? p1 : r % 3 == 1 ? p2 : p3).push_back(r);
  }
  for (const auto* part : {&p1, &p2, &p3}) {
    Table sub = t.Take(*part);
    agg.Consume(sub, q);
  }
  std::vector<AggResult> streamed = agg.Finish();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(streamed[i].count, oneshot[i].count);
    EXPECT_NEAR(streamed[i].value, oneshot[i].value, 1e-9);
  }
}

TEST(AggregateTest, ConsumeRowsUnconditional) {
  Table t = MakeRandomTable(50, 22);
  Aggregator agg({{AggOp::kCount, -1}});
  agg.ConsumeRows(t, {0, 5, 7});
  EXPECT_EQ(agg.Finish()[0].count, 3);
  EXPECT_EQ(agg.rows_seen(), 3);
}

// ----------------------------------------------- metadata persistence ----

TEST(MetadataTest, RoundTripPreservesPruningBehavior) {
  Rng rng(23);
  Table t = MakeRandomTable(400, 23);
  std::vector<uint32_t> assignment(t.num_rows());
  for (auto& a : assignment) a = static_cast<uint32_t>(rng.Uniform(8));
  Partitioning p = BuildPartitioning(t, assignment, 8);
  PartitionMetadata meta = MetadataFrom(t.schema(), p, "test-layout");

  std::string data = SerializePartitionMetadata(meta);
  Result<PartitionMetadata> back = DeserializePartitionMetadata(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->layout_name, "test-layout");
  EXPECT_EQ(back->total_rows, t.num_rows());
  EXPECT_TRUE(back->schema.Equals(t.schema()));
  ASSERT_EQ(back->zones.size(), p.zones.size());

  // Cost estimation from persisted metadata must be bit-identical.
  for (int i = 0; i < 40; ++i) {
    Query q = RandomQuery(&rng);
    EXPECT_DOUBLE_EQ(FractionAccessedFromMetadata(*back, q),
                     FractionAccessed(p, q));
  }
}

TEST(MetadataTest, FileRoundTripAndCorruption) {
  namespace fs = std::filesystem;
  Rng rng(29);
  Table t = MakeRandomTable(100, 29);
  std::vector<uint32_t> assignment(t.num_rows(), 0);
  Partitioning p = BuildPartitioning(t, assignment, 1);
  PartitionMetadata meta = MetadataFrom(t.schema(), p, "single");
  std::string path = testutil::ScratchDir("meta_test.bin");
  ASSERT_TRUE(WriteMetadataFile(path, meta).ok());
  Result<PartitionMetadata> back = ReadMetadataFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->zones.size(), 1u);

  // Flip a byte: must be detected.
  std::string data = SerializePartitionMetadata(meta);
  data[data.size() / 3] = static_cast<char>(data[data.size() / 3] ^ 0x10);
  EXPECT_EQ(DeserializePartitionMetadata(data).status().code(),
            StatusCode::kCorruption);
  // Truncation: must be detected.
  EXPECT_EQ(DeserializePartitionMetadata(data.substr(0, data.size() / 2))
                .status()
                .code(),
            StatusCode::kCorruption);
  fs::remove(path);
}

TEST(FractionAccessedTest, LowerBoundsTrueSelectivity) {
  // Pruning is conservative: the fraction accessed can never be below the
  // true fraction of matching rows.
  Rng rng(11);
  Table t = MakeRandomTable(400, 11);
  std::vector<uint32_t> assignment(t.num_rows());
  for (auto& a : assignment) a = static_cast<uint32_t>(rng.Uniform(8));
  Partitioning p = BuildPartitioning(t, assignment, 8);
  for (int i = 0; i < 40; ++i) {
    Query q = RandomQuery(&rng);
    double accessed = FractionAccessed(p, q);
    double truth = static_cast<double>(CountMatches(t, q)) /
                   static_cast<double>(t.num_rows());
    EXPECT_GE(accessed + 1e-12, truth);
  }
}

}  // namespace
}  // namespace oreo
