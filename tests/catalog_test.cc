// Tests for src/catalog: DataType, Value, Schema.
#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/types.h"
#include "catalog/value.h"

namespace oreo {
namespace {

TEST(TypesTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
}

TEST(TypesTest, Widths) {
  EXPECT_EQ(DataTypeWidth(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeWidth(DataType::kDouble), 8u);
  EXPECT_EQ(DataTypeWidth(DataType::kString), 4u);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int64_t{1}).type(), DataType::kInt64);
  EXPECT_EQ(Value(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).AsNumeric(), 7.5);
}

TEST(ValueTest, IntComparisons) {
  Value a(int64_t{1}), b(int64_t{2});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == Value(int64_t{1}));
}

TEST(ValueTest, StringComparisonsAreLexicographic) {
  EXPECT_TRUE(Value("apple") < Value("banana"));
  EXPECT_TRUE(Value("b") > Value("apple"));
  EXPECT_TRUE(Value("x") == Value("x"));
}

TEST(ValueTest, DoubleComparisons) {
  EXPECT_TRUE(Value(1.0) < Value(1.5));
  EXPECT_FALSE(Value(2.0) < Value(1.5));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"a", DataType::kInt64},
            {"b", DataType::kDouble},
            {"c", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.FieldIndex("a"), 0);
  EXPECT_EQ(s.FieldIndex("c"), 2);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
  EXPECT_EQ(s.field(1).name, "b");
  EXPECT_EQ(s.field(1).type, DataType::kDouble);
}

TEST(SchemaTest, Equals) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kDouble}});
  Schema d({{"y", DataType::kInt64}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_FALSE(a.Equals(d));
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "{a:int64, b:string}");
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_fields(), 0u);
  EXPECT_EQ(s.FieldIndex("a"), -1);
}

}  // namespace
}  // namespace oreo
