// Tests for the multi-copy D-UMTS variant (Appendix D reconstruction):
// serving cost = min over kept copies, materialization costs alpha,
// eviction is free, m = 1 degenerates to single-copy behaviour.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mts/multi_copy.h"

namespace oreo {
namespace mts {
namespace {

MultiCopyOptions Opts(double alpha, size_t m, uint64_t seed = 42) {
  MultiCopyOptions o;
  o.alpha = alpha;
  o.max_copies = m;
  o.seed = seed;
  return o;
}

TEST(MultiCopyTest, StartsWithInitialCopyOnly) {
  MultiCopyUmts alg(Opts(5.0, 2), {0, 1, 2}, 1);
  EXPECT_EQ(alg.kept(), (std::set<int>{1}));
}

TEST(MultiCopyTest, ServesFromCheapestKeptCopy) {
  MultiCopyUmts alg(Opts(100.0, 2), {0, 1}, 0);
  MultiCopyDecision d = alg.OnQuery([](int s) { return s == 0 ? 0.9 : 0.1; });
  // Only state 0 is kept, so it must serve despite being pricier.
  EXPECT_EQ(d.serve_state, 0);
}

TEST(MultiCopyTest, MaterializesWhenKeptSetExhausted) {
  MultiCopyUmts alg(Opts(1.0, 2, 3), {0, 1, 2}, 0);
  // State 0 expensive, others free: counter fills after 2 queries.
  auto costs = [](int s) { return s == 0 ? 0.6 : 0.0; };
  MultiCopyDecision d1 = alg.OnQuery(costs);
  EXPECT_FALSE(d1.materialized.has_value());
  MultiCopyDecision d2 = alg.OnQuery(costs);
  ASSERT_TRUE(d2.materialized.has_value());
  EXPECT_NE(*d2.materialized, 0);
  EXPECT_EQ(alg.kept().size(), 2u);
  // With a free copy in the kept set, serving cost drops to 0.
  EXPECT_EQ(costs(d2.serve_state), 0.0);
}

TEST(MultiCopyTest, EvictsWorstWhenOverCapacity) {
  MultiCopyUmts alg(Opts(1.0, 1, 5), {0, 1, 2}, 0);
  auto costs = [](int s) { return s == 0 ? 0.6 : 0.0; };
  alg.OnQuery(costs);
  MultiCopyDecision d = alg.OnQuery(costs);
  ASSERT_TRUE(d.materialized.has_value());
  ASSERT_TRUE(d.evicted.has_value());
  EXPECT_EQ(*d.evicted, 0);  // the full-counter copy goes
  EXPECT_EQ(alg.kept().size(), 1u);
}

TEST(MultiCopyTest, PhaseResetWhenAllCountersFull) {
  MultiCopyUmts alg(Opts(1.0, 2, 7), {0, 1}, 0);
  auto costs = [](int) { return 0.6; };
  alg.OnQuery(costs);
  MultiCopyDecision d = alg.OnQuery(costs);  // both counters 1.2 -> reset
  EXPECT_TRUE(d.phase_reset);
  EXPECT_EQ(alg.num_phases(), 2);
}

TEST(MultiCopyTest, MoreCopiesNeverHurtServingCost) {
  // With the same seed and workload, total serving cost with m=3 should be
  // <= m=1 (materializations aside): min over a superset can't be worse.
  Rng wrng(11);
  std::vector<std::vector<double>> costs(400, std::vector<double>(4));
  for (auto& row : costs) {
    for (auto& c : row) c = wrng.UniformDouble();
  }
  auto run = [&](size_t m) {
    MultiCopyUmts alg(Opts(3.0, m, 13), {0, 1, 2, 3}, 0);
    double serve = 0.0;
    for (const auto& row : costs) {
      MultiCopyDecision d =
          alg.OnQuery([&](int s) { return row[static_cast<size_t>(s)]; });
      serve += row[static_cast<size_t>(d.serve_state)];
    }
    return serve;
  };
  EXPECT_LE(run(3), run(1) * 1.05);
}

TEST(MultiCopyTest, CapacityBoundNeverExceeded) {
  Rng wrng(17);
  MultiCopyUmts alg(Opts(1.5, 2, 19), {0, 1, 2, 3, 4}, 0);
  for (int t = 0; t < 500; ++t) {
    alg.OnQuery([&](int) { return wrng.UniformDouble(); });
    EXPECT_LE(alg.kept().size(), 2u);
    EXPECT_GE(alg.kept().size(), 1u);
  }
}

}  // namespace
}  // namespace mts
}  // namespace oreo
