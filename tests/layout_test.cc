// Tests for src/layout: sorted / Z-order / Qd-tree layouts and generators.
// Core invariants: assignments cover every row exactly once within bounds;
// zone maps of materialized instances contain their rows; workload-aware
// layouts actually skip data for their target workloads.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "layout/qdtree_layout.h"
#include "layout/sorted_layout.h"
#include "layout/zorder_layout.h"
#include "test_util.h"

namespace oreo {
namespace {

Schema TestSchema() { return testutil::WideEventSchema(); }

Table MakeTable(size_t rows, uint64_t seed) {
  return testutil::MakeWideEventTable(rows, seed);
}

std::vector<Query> RangeWorkload(int column, int64_t domain, int64_t width,
                                 size_t n, uint64_t seed) {
  return testutil::MakeRangeWorkload(column, domain, width, n, seed);
}

void CheckAssignmentBounds(const std::vector<uint32_t>& assignment,
                           uint32_t bound, size_t rows) {
  ASSERT_EQ(assignment.size(), rows);
  for (uint32_t a : assignment) EXPECT_LT(a, bound);
}

// Each row must fall inside its partition's zone map.
void CheckZoneContainment(const Table& t, const LayoutInstance& inst) {
  const Partitioning& p = inst.partitioning();
  ASSERT_TRUE(ValidatePartitioning(p, t.num_rows()));
  for (size_t pid = 0; pid < p.num_partitions(); ++pid) {
    const ZoneMap& zm = p.zones[pid];
    for (uint32_t r : p.partitions[pid]) {
      for (size_t c = 0; c < t.num_columns(); ++c) {
        const Column& col = t.column(c);
        const ColumnZone& z = zm.columns[c];
        switch (col.type()) {
          case DataType::kInt64:
            EXPECT_GE(col.GetInt64(r), z.int_min);
            EXPECT_LE(col.GetInt64(r), z.int_max);
            break;
          case DataType::kDouble:
            EXPECT_GE(col.GetDouble(r), z.dbl_min);
            EXPECT_LE(col.GetDouble(r), z.dbl_max);
            break;
          case DataType::kString:
            EXPECT_GE(col.GetString(r), z.str_min);
            EXPECT_LE(col.GetString(r), z.str_max);
            break;
        }
      }
    }
  }
}

// ------------------------------------------------------- SortedLayout ----

TEST(SortedLayoutTest, AssignRespectsBoundaries) {
  SortedLayout layout(0, "ts", {10.0, 20.0});
  Table t(TestSchema());
  for (int64_t v : {5, 10, 15, 20, 25}) {
    t.AppendRow({Value(v), Value(int64_t{0}), Value(0.0), Value("a")});
  }
  std::vector<uint32_t> a = layout.Assign(t);
  // lower_bound semantics: value <= boundary goes left of it.
  EXPECT_EQ(a, (std::vector<uint32_t>{0, 0, 1, 1, 2}));
  EXPECT_EQ(layout.NumPartitionsUpperBound(), 3u);
}

TEST(SortedLayoutTest, GeneratorMakesBalancedPartitions) {
  Table t = MakeTable(5000, 1);
  Rng rng(2);
  Table sample = t.SampleRows(500, &rng);
  SortLayoutGenerator gen(0);
  auto layout = gen.Generate(sample, {}, 8);
  auto inst = Materialize("sorted", std::shared_ptr<const Layout>(std::move(layout)), t);
  const Partitioning& p = inst.partitioning();
  EXPECT_GE(p.num_partitions(), 6u);
  EXPECT_LE(p.num_partitions(), 8u);
  for (const auto& part : p.partitions) {
    EXPECT_GT(part.size(), 5000u / 16);
    EXPECT_LT(part.size(), 5000u / 4);
  }
  CheckZoneContainment(t, inst);
}

TEST(SortedLayoutTest, SkipsRangeQueriesOnSortColumn) {
  Table t = MakeTable(4000, 3);
  Rng rng(4);
  Table sample = t.SampleRows(400, &rng);
  SortLayoutGenerator gen(0);
  auto inst = Materialize(
      "sorted", std::shared_ptr<const Layout>(gen.Generate(sample, {}, 16)), t);
  // A narrow ts range should touch ~1-2 of 16 partitions.
  Query q;
  q.conjuncts = {Predicate::Between(0, Value(int64_t{100}), Value(int64_t{200}))};
  EXPECT_LT(inst.QueryCost(q), 0.2);
}

TEST(SortedLayoutTest, QuantileBoundariesDeduplicated) {
  // Constant column -> no usable boundaries -> single partition.
  Table t(TestSchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({Value(int64_t{7}), Value(int64_t{0}), Value(0.0), Value("a")});
  }
  std::vector<double> b = QuantileBoundaries(t, 0, 8);
  EXPECT_LE(b.size(), 1u);
}

// ------------------------------------------------------- ZOrderLayout ----

TEST(ZOrderLayoutTest, MostQueriedColumnsRanking) {
  std::vector<Query> wl;
  for (int i = 0; i < 10; ++i) {
    Query q;
    q.conjuncts = {Predicate::Eq(2, Value(1.0))};
    if (i < 5) q.conjuncts.push_back(Predicate::Eq(1, Value(int64_t{3})));
    wl.push_back(q);
  }
  std::vector<int> ranked = MostQueriedColumns(wl, 4);
  EXPECT_EQ(ranked[0], 2);
  EXPECT_EQ(ranked[1], 1);
}

TEST(ZOrderLayoutTest, AssignCoversAllPartitionsInBounds) {
  Table t = MakeTable(3000, 5);
  Rng rng(6);
  Table sample = t.SampleRows(300, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 50, 40, 7);
  ZOrderGenerator gen(2, 10);
  auto layout = gen.Generate(sample, wl, 12);
  CheckAssignmentBounds(layout->Assign(t), layout->NumPartitionsUpperBound(),
                        t.num_rows());
}

TEST(ZOrderLayoutTest, ZoneContainmentHolds) {
  Table t = MakeTable(2000, 8);
  Rng rng(9);
  Table sample = t.SampleRows(400, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 100, 30, 10);
  ZOrderGenerator gen(3, 10);
  auto inst = Materialize(
      "zorder", std::shared_ptr<const Layout>(gen.Generate(sample, wl, 10)), t);
  CheckZoneContainment(t, inst);
}

TEST(ZOrderLayoutTest, ImprovesSkippingOnInterleavedColumns) {
  Table t = MakeTable(6000, 11);
  Rng rng(12);
  Table sample = t.SampleRows(600, &rng);
  // Workload filters qty and price; z-order on those two beats sort-by-ts.
  Rng qrng(13);
  std::vector<Query> wl;
  for (int i = 0; i < 60; ++i) {
    Query q;
    int64_t qlo = qrng.UniformInt(0, 900);
    double plo = qrng.UniformDouble(0, 80);
    q.conjuncts = {Predicate::Between(1, Value(qlo), Value(qlo + 100)),
                   Predicate::Between(2, Value(plo), Value(plo + 20.0))};
    wl.push_back(q);
  }
  ZOrderGenerator zgen(2, 12);
  auto z = Materialize(
      "zorder", std::shared_ptr<const Layout>(zgen.Generate(sample, wl, 16)), t);
  SortLayoutGenerator sgen(0);
  auto s = Materialize(
      "sorted", std::shared_ptr<const Layout>(sgen.Generate(sample, wl, 16)), t);
  double z_cost = 0, s_cost = 0;
  for (const Query& q : wl) {
    z_cost += z.QueryCost(q);
    s_cost += s.QueryCost(q);
  }
  EXPECT_LT(z_cost, s_cost * 0.8);
}

TEST(ZOrderLayoutTest, StringDimRoutingStableAcrossReencoding) {
  // Regression: z-order ranks string dimensions by value, so routing must be
  // identical after rows pass through a partition rewrite that rebuilds the
  // dictionary in a different insertion order.
  Table t = MakeTable(3000, 60);
  Rng rng(61);
  Table sample = t.SampleRows(500, &rng);
  // Workload hammering the categorical column so it becomes a z-order dim.
  std::vector<Query> wl;
  Rng qrng(62);
  const char* cats[] = {"a", "b", "c", "d", "e", "f"};
  for (int i = 0; i < 40; ++i) {
    Query q;
    q.conjuncts = {Predicate::Eq(3, Value(cats[qrng.Uniform(6)])),
                   Predicate::Between(1, Value(qrng.UniformInt(0, 500)),
                                      Value(qrng.UniformInt(501, 999)))};
    wl.push_back(q);
  }
  ZOrderGenerator gen(2, 10);
  auto layout = gen.Generate(sample, wl, 8);
  std::vector<uint32_t> canonical = layout->Assign(t);

  // Rebuild the table with a scrambled dictionary insertion order: append
  // rows back-to-front so first-appearance codes differ.
  std::vector<uint32_t> reversed(t.num_rows());
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    reversed[r] = static_cast<uint32_t>(t.num_rows()) - 1 - r;
  }
  Table scrambled(t.schema());
  scrambled.Append(t.Take(reversed));
  std::vector<uint32_t> assigned = layout->Assign(scrambled);
  for (uint32_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_EQ(assigned[r], canonical[reversed[r]]) << "row " << r;
  }
}

TEST(ZOrderLayoutTest, DescribeNamesColumns) {
  Table t = MakeTable(500, 14);
  Rng rng(15);
  Table sample = t.SampleRows(200, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 50, 10, 16);
  ZOrderGenerator gen(1, 8);
  auto layout = gen.Generate(sample, wl, 4);
  EXPECT_NE(layout->Describe().find("qty"), std::string::npos);
}

// ------------------------------------------------------- QdTreeLayout ----

TEST(QdTreeTest, HarvestCutsDedupes) {
  Query q1, q2;
  q1.conjuncts = {Predicate::Eq(3, Value("a"))};
  q2.conjuncts = {Predicate::Eq(3, Value("a")),
                  Predicate::Between(1, Value(int64_t{10}), Value(int64_t{20}))};
  std::vector<Predicate> cuts = HarvestCuts({q1, q2}, 100);
  // eq(a) once + two half-planes from the between.
  EXPECT_EQ(cuts.size(), 3u);
  // The duplicated Eq cut is the most frequent, so it sorts first.
  EXPECT_EQ(cuts[0].op, CompareOp::kEq);
}

TEST(QdTreeTest, HarvestCutsRespectsCap) {
  std::vector<Query> wl;
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    Query q;
    q.conjuncts = {Predicate::Eq(1, Value(rng.UniformInt(0, 1000000)))};
    wl.push_back(q);
  }
  EXPECT_LE(HarvestCuts(wl, 32).size(), 32u);
}

TEST(QdTreeTest, EmptyWorkloadYieldsSingleLeaf) {
  Table t = MakeTable(500, 18);
  QdTreeGenerator gen;
  auto layout = gen.Generate(t, {}, 8);
  EXPECT_EQ(layout->NumPartitionsUpperBound(), 1u);
  std::vector<uint32_t> a = layout->Assign(t);
  for (uint32_t x : a) EXPECT_EQ(x, 0u);
}

TEST(QdTreeTest, RespectsTargetLeafCount) {
  Table t = MakeTable(4000, 19);
  Rng rng(20);
  Table sample = t.SampleRows(800, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 60, 50, 21);
  QdTreeGenerator gen;
  auto layout = gen.Generate(sample, wl, 16);
  EXPECT_LE(layout->NumPartitionsUpperBound(), 16u);
  EXPECT_GT(layout->NumPartitionsUpperBound(), 2u);
}

TEST(QdTreeTest, AssignmentCompleteAndZonesContain) {
  Table t = MakeTable(3000, 22);
  Rng rng(23);
  Table sample = t.SampleRows(600, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 80, 40, 24);
  QdTreeGenerator gen;
  auto inst = Materialize(
      "qdtree", std::shared_ptr<const Layout>(gen.Generate(sample, wl, 12)), t);
  CheckZoneContainment(t, inst);
}

TEST(QdTreeTest, SkipsTargetWorkload) {
  Table t = MakeTable(6000, 25);
  Rng rng(26);
  Table sample = t.SampleRows(800, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 50, 60, 27);
  QdTreeGenerator gen;
  auto inst = Materialize(
      "qdtree", std::shared_ptr<const Layout>(gen.Generate(sample, wl, 16)), t);
  // Fresh queries from the same distribution should skip most data.
  std::vector<Query> test = RangeWorkload(1, 1000, 50, 40, 28);
  double mean = 0;
  for (const Query& q : test) mean += inst.QueryCost(q);
  mean /= static_cast<double>(test.size());
  EXPECT_LT(mean, 0.45);  // narrow ranges on a 16-leaf tree
}

TEST(QdTreeTest, BeatsDefaultSortOnItsWorkload) {
  Table t = MakeTable(6000, 29);
  Rng rng(30);
  Table sample = t.SampleRows(800, &rng);
  // Workload over the categorical column: sort-by-ts cannot skip it.
  Rng qrng(31);
  std::vector<Query> wl;
  const char* cats[] = {"a", "b", "c", "d", "e", "f"};
  for (int i = 0; i < 50; ++i) {
    Query q;
    q.conjuncts = {Predicate::Eq(3, Value(cats[qrng.Uniform(6)]))};
    wl.push_back(q);
  }
  QdTreeGenerator gen;
  auto qd = Materialize(
      "qdtree", std::shared_ptr<const Layout>(gen.Generate(sample, wl, 12)), t);
  SortLayoutGenerator sgen(0);
  auto srt = Materialize(
      "sorted", std::shared_ptr<const Layout>(sgen.Generate(sample, wl, 12)), t);
  double qd_cost = 0, s_cost = 0;
  for (const Query& q : wl) {
    qd_cost += qd.QueryCost(q);
    s_cost += srt.QueryCost(q);
  }
  EXPECT_LT(qd_cost, s_cost * 0.6);
}

TEST(QdTreeTest, MinLeafSizeHonored) {
  Table t = MakeTable(2000, 32);
  Rng rng(33);
  Table sample = t.SampleRows(1000, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 30, 60, 34);
  QdTreeOptions opts;
  opts.min_leaf_rows = 100;
  QdTreeGenerator gen(opts);
  auto layout = gen.Generate(sample, wl, 32);
  // With 1000 sample rows and min 100/leaf, at most 10 leaves are possible.
  EXPECT_LE(layout->NumPartitionsUpperBound(), 10u);
}

TEST(QdTreeTest, DepthIsReported) {
  Table t = MakeTable(2000, 35);
  Rng rng(36);
  Table sample = t.SampleRows(500, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 60, 40, 37);
  QdTreeGenerator gen;
  auto layout = gen.Generate(sample, wl, 8);
  auto* qd = dynamic_cast<QdTreeLayout*>(layout.get());
  ASSERT_NE(qd, nullptr);
  if (qd->num_leaves() > 1) {
    EXPECT_GE(qd->Depth(), 1);
    EXPECT_LT(qd->Depth(), 20);
  }
}

// LayoutInstance cost vectors.
TEST(LayoutInstanceTest, CostVectorAndAvgSkipped) {
  Table t = MakeTable(1000, 38);
  Rng rng(39);
  Table sample = t.SampleRows(300, &rng);
  SortLayoutGenerator gen(0);
  auto inst = Materialize(
      "sorted", std::shared_ptr<const Layout>(gen.Generate(sample, {}, 8)), t);
  std::vector<Query> wl = RangeWorkload(0, 1000, 100, 10, 40);
  std::vector<double> cv = inst.CostVector(wl);
  ASSERT_EQ(cv.size(), wl.size());
  double mean = 0;
  for (double c : cv) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    mean += c;
  }
  mean /= static_cast<double>(cv.size());
  EXPECT_NEAR(inst.AvgSkipped(wl), 1.0 - mean, 1e-12);
}

// Generator sweep: every generator must produce complete, in-bounds
// assignments for a variety of partition targets.
struct GenCase {
  const char* name;
  int which;  // 0=sort, 1=zorder, 2=qdtree
  uint32_t k;
};

class GeneratorSweepTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorSweepTest, CompleteAssignment) {
  const GenCase& gc = GetParam();
  Table t = MakeTable(2500, 41);
  Rng rng(42);
  Table sample = t.SampleRows(500, &rng);
  std::vector<Query> wl = RangeWorkload(1, 1000, 70, 30, 43);
  std::unique_ptr<Layout> layout;
  switch (gc.which) {
    case 0:
      layout = SortLayoutGenerator(0).Generate(sample, wl, gc.k);
      break;
    case 1:
      layout = ZOrderGenerator(3, 10).Generate(sample, wl, gc.k);
      break;
    case 2:
      layout = QdTreeGenerator().Generate(sample, wl, gc.k);
      break;
  }
  auto inst =
      Materialize(gc.name, std::shared_ptr<const Layout>(std::move(layout)), t);
  EXPECT_TRUE(ValidatePartitioning(inst.partitioning(), t.num_rows()));
  EXPECT_LE(inst.partitioning().num_partitions(), gc.k);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorSweepTest,
    ::testing::Values(GenCase{"sort_k2", 0, 2}, GenCase{"sort_k8", 0, 8},
                      GenCase{"sort_k64", 0, 64}, GenCase{"zorder_k2", 1, 2},
                      GenCase{"zorder_k8", 1, 8}, GenCase{"zorder_k64", 1, 64},
                      GenCase{"qdtree_k2", 2, 2}, GenCase{"qdtree_k8", 2, 8},
                      GenCase{"qdtree_k64", 2, 64}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace oreo
