// RemoteBackend contracts: the simulated remote object store that injects
// latency and seeded-deterministic transient faults, and absorbs them with
// exponential-backoff retries.
//
//   1. The fault schedule is a pure function of (seed, opcode, path): two
//      backends with the same options inject the identical faults and spend
//      the identical backoff budget for the identical op sequence.
//   2. Retries absorb every injected fault (results match a fault-free
//      run); non-transient errors are surfaced immediately, never retried.
//   3. A faulted write/remove never reaches the base, so retries are
//      idempotent re-publishes, and retry exhaustion surfaces Unavailable
//      with the base untouched.
//   4. stats() / remote_stats() snapshots are torn-read-free under
//      concurrent writers (the TSan job runs this suite).
//   5. Failure-path hardening (PhysicalStore): when a materialization or
//      reorganization write fails AND the best-effort cleanup's Remove also
//      fails (NotFound or IoError), the ORIGINAL write error surfaces —
//      cleanup noise never masks it — and the store stays consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/physical.h"
#include "storage/backend.h"
#include "storage/remote_backend.h"
#include "test_util.h"

namespace oreo {
namespace {

RemoteBackendOptions FastFaultOptions(double fault_rate) {
  RemoteBackendOptions o;
  o.fault_rate = fault_rate;
  o.sleep_for_real = false;  // account the sleeps, skip the wall time
  return o;
}

TEST(RemoteBackendTest, RoundTripContractWithoutFaults) {
  auto remote = MakeRemoteBackend(MakeInMemoryBackend(), FastFaultOptions(0));
  ASSERT_TRUE(remote->CreateDir("d").ok());
  ASSERT_TRUE(remote->AtomicWriteBlock("d/b", "beta", true).ok());
  ASSERT_TRUE(remote->AtomicWriteBlock("d/a", "alpha", false).ok());

  Result<std::string> read = remote->ReadBlock("d/a");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "alpha");
  EXPECT_EQ(remote->ReadBlock("d/missing").status().code(),
            StatusCode::kIoError);

  Result<std::vector<std::string>> listed = remote->List("d");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"d/a", "d/b"}));

  ASSERT_TRUE(remote->Remove("d/a").ok());
  EXPECT_EQ(remote->Remove("d/a").code(), StatusCode::kNotFound);
  EXPECT_TRUE(remote->Sync().ok());

  BackendStats stats = remote->stats();
  EXPECT_EQ(stats.reads, 1u);  // successful reads only, like the base
  EXPECT_EQ(stats.read_bytes, 5u);
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.write_bytes, 9u);
  EXPECT_EQ(stats.removes, 2u);

  RemoteBackendStats rstats = remote->remote_stats();
  EXPECT_EQ(rstats.injected_faults, 0u);
  EXPECT_EQ(rstats.retries, 0u);
  EXPECT_EQ(rstats.ops, rstats.attempts);
}

// Two backends, same seed, same op sequence: identical per-op outcomes and
// identical fault/retry/backoff accounting. max_retries=0 keeps the faults
// visible (every afflicted op surfaces Unavailable on its first attempt).
TEST(RemoteBackendTest, FaultScheduleIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    RemoteBackendOptions o = FastFaultOptions(0.5);
    o.fault_seed = seed;
    o.max_retries = 0;
    auto remote = MakeRemoteBackend(MakeInMemoryBackend(), o);
    std::vector<StatusCode> outcomes;
    for (int i = 0; i < 24; ++i) {
      const std::string path = "det/p" + std::to_string(i);
      outcomes.push_back(
          remote->AtomicWriteBlock(path, "payload", false).code());
      outcomes.push_back(remote->ReadBlock(path).status().code());
      if (i % 3 == 0) outcomes.push_back(remote->Remove(path).code());
    }
    return std::make_pair(outcomes, remote->remote_stats());
  };

  auto [outcomes_a, stats_a] = run(/*seed=*/7);
  auto [outcomes_b, stats_b] = run(/*seed=*/7);
  EXPECT_EQ(outcomes_a, outcomes_b);
  EXPECT_EQ(stats_a.ops, stats_b.ops);
  EXPECT_EQ(stats_a.attempts, stats_b.attempts);
  EXPECT_EQ(stats_a.injected_faults, stats_b.injected_faults);
  EXPECT_EQ(stats_a.exhausted, stats_b.exhausted);
  EXPECT_EQ(stats_a.backoff_sleep_us, stats_b.backoff_sleep_us);
  EXPECT_GT(stats_a.injected_faults, 0u) << "fault_rate=0.5 never fired";
  // With max_retries=0 some op outcomes must actually be Unavailable.
  EXPECT_TRUE(std::count(outcomes_a.begin(), outcomes_a.end(),
                         StatusCode::kUnavailable) > 0);

  // A different seed yields a different schedule (sanity that the seed is
  // actually part of the key).
  auto [outcomes_c, stats_c] = run(/*seed=*/8);
  (void)stats_c;
  EXPECT_NE(outcomes_a, outcomes_c);
}

TEST(RemoteBackendTest, RetriesAbsorbEveryInjectedFault) {
  RemoteBackendOptions o = FastFaultOptions(1.0);  // every key afflicted
  o.max_faults_per_key = 2;
  o.max_retries = 5;
  auto remote = MakeRemoteBackend(MakeInMemoryBackend(), o);
  auto plain = MakeInMemoryBackend();

  for (int i = 0; i < 10; ++i) {
    const std::string path = "abs/p" + std::to_string(i);
    const std::string payload(1 + static_cast<size_t>(i) * 3, 'x');
    ASSERT_TRUE(remote->AtomicWriteBlock(path, payload, false).ok());
    ASSERT_TRUE(plain->AtomicWriteBlock(path, payload, false).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const std::string path = "abs/p" + std::to_string(i);
    Result<std::string> via_remote = remote->ReadBlock(path);
    Result<std::string> via_plain = plain->ReadBlock(path);
    ASSERT_TRUE(via_remote.ok()) << via_remote.status().ToString();
    EXPECT_EQ(*via_remote, *via_plain);
  }
  Result<std::vector<std::string>> listed = remote->List("abs");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 10u);

  RemoteBackendStats stats = remote->remote_stats();
  EXPECT_GT(stats.injected_faults, 0u);
  EXPECT_EQ(stats.exhausted, 0u) << "a transient fault escaped the retries";
  // Every injected fault was answered by exactly one retry.
  EXPECT_EQ(stats.retries, stats.injected_faults);
  EXPECT_EQ(stats.attempts, stats.ops + stats.retries);
}

TEST(RemoteBackendTest, ExhaustionSurfacesUnavailableAndBaseIsUntouched) {
  RemoteBackendOptions o = FastFaultOptions(1.0);
  o.max_faults_per_key = 1;  // fail_count is exactly 1 for every key
  o.max_retries = 0;         // ...and no retry is allowed
  auto base = MakeInMemoryBackend();
  auto remote = MakeRemoteBackend(base, o);

  Status write = remote->AtomicWriteBlock("ex/p", "data", false);
  EXPECT_EQ(write.code(), StatusCode::kUnavailable);
  EXPECT_EQ(remote->remote_stats().exhausted, 1u);
  // The faulted write never reached the base.
  EXPECT_FALSE(base->ReadBlock("ex/p").ok());

  // The key has spent its fault budget: the caller-level retry succeeds and
  // publishes the full payload (idempotent re-publish).
  ASSERT_TRUE(remote->AtomicWriteBlock("ex/p", "data", false).ok());
  Result<std::string> read_back = base->ReadBlock("ex/p");
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, "data");
}

TEST(RemoteBackendTest, NonTransientErrorsAreNotRetried) {
  auto remote = MakeRemoteBackend(MakeInMemoryBackend(), FastFaultOptions(0));
  EXPECT_EQ(remote->ReadBlock("nope").status().code(), StatusCode::kIoError);
  RemoteBackendStats stats = remote->remote_stats();
  EXPECT_EQ(stats.ops, 1u);
  EXPECT_EQ(stats.attempts, 1u) << "a non-transient error was retried";
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.backoff_sleep_us, 0u);
}

// The backoff schedule is exact: k injected faults cost
// sum_{i=0..k-1} min(initial * multiplier^i, max_backoff).
TEST(RemoteBackendTest, BackoffScheduleIsExactAndFullyAccounted) {
  RemoteBackendOptions o = FastFaultOptions(1.0);
  o.max_faults_per_key = 4;
  o.max_retries = 8;
  o.initial_backoff_us = 100;
  o.backoff_multiplier = 2.0;
  o.max_backoff_us = 20'000;
  auto base = MakeInMemoryBackend();
  ASSERT_TRUE(base->AtomicWriteBlock("bo/p", "payload", false).ok());
  auto remote = MakeRemoteBackend(base, o);

  Result<std::string> read = remote->ReadBlock("bo/p");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "payload");

  RemoteBackendStats stats = remote->remote_stats();
  const uint64_t k = stats.injected_faults;  // seed-derived, 1..4
  ASSERT_GE(k, 1u);
  ASSERT_LE(k, 4u);
  EXPECT_EQ(stats.retries, k);
  EXPECT_EQ(stats.attempts, k + 1);
  uint64_t expected = 0, step = o.initial_backoff_us;
  for (uint64_t i = 0; i < k; ++i) {
    expected += step;
    step = std::min<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(step) *
                              o.backoff_multiplier),
        o.max_backoff_us);
  }
  EXPECT_EQ(stats.backoff_sleep_us, expected);
  EXPECT_EQ(stats.latency_sleep_us, 0u);
}

TEST(RemoteBackendTest, LatencyAndBandwidthAreAccountedNotChanged) {
  RemoteBackendOptions o;
  o.read_latency_us = 1000;
  o.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s => 1 us per byte
  o.sleep_for_real = false;
  auto base = MakeInMemoryBackend();
  ASSERT_TRUE(base->AtomicWriteBlock("lat/p", std::string(500, 'z'), false)
                  .ok());
  auto remote = MakeRemoteBackend(base, o);

  Result<std::string> read = remote->ReadBlock("lat/p");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 500u);
  EXPECT_EQ(remote->remote_stats().latency_sleep_us, 1500u)
      << "1000 us round trip + 500 bytes at 1 us/byte";
}

// Concurrent writers against one RemoteBackend while readers snapshot
// stats() and remote_stats() in a loop: snapshots must be torn-read-free
// (this suite runs under the TSan CI job) and the totals must reconcile.
TEST(RemoteBackendTest, StatsSnapshotsAreTornFreeUnderConcurrency) {
  RemoteBackendOptions o = FastFaultOptions(0.3);
  o.max_retries = 5;
  auto remote = MakeRemoteBackend(MakeInMemoryBackend(), o);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 200;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string path =
            "hammer/w" + std::to_string(w) + "_" + std::to_string(i);
        EXPECT_TRUE(remote->AtomicWriteBlock(path, "payload", false).ok());
        Result<std::string> r = remote->ReadBlock(path);
        EXPECT_TRUE(r.ok());
        if (i % 4 == 0) {
          EXPECT_TRUE(remote->Remove(path).ok());
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      // Each counter individually must never tear; cross-counter relations
      // are only guaranteed at quiescence (asserted below), because the
      // relaxed increments of different counters are not one transaction.
      while (!done.load(std::memory_order_relaxed)) {
        BackendStats stats = remote->stats();
        EXPECT_LE(stats.reads, uint64_t{kWriters} * kOpsPerWriter);
        RemoteBackendStats rstats = remote->remote_stats();
        EXPECT_LE(rstats.ops,
                  uint64_t{3} * kWriters * kOpsPerWriter);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  BackendStats stats = remote->stats();
  EXPECT_EQ(stats.writes, uint64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(stats.reads, uint64_t{kWriters} * kOpsPerWriter);
  RemoteBackendStats rstats = remote->remote_stats();
  EXPECT_EQ(rstats.exhausted, 0u);
  EXPECT_EQ(rstats.attempts, rstats.ops + rstats.retries);
  EXPECT_EQ(rstats.retries, rstats.injected_faults);
}

// ---------------------------------------------------------------------------
// Failure-path hardening: cleanup errors never mask the original failure.
// ---------------------------------------------------------------------------

// Fails a configurable class of writes (FaultInjectionBackend idiom) AND
// fails or misreports every Remove — the hostile remote where the
// best-effort cleanup after a failed write cannot make progress either.
class HostileCleanupBackend : public StorageBackend {
 public:
  HostileCleanupBackend(std::shared_ptr<StorageBackend> base,
                        std::string fail_substring, int64_t fail_after,
                        StatusCode remove_code)
      : base_(std::move(base)), fail_substring_(std::move(fail_substring)),
        remaining_(fail_after), remove_code_(remove_code) {}

  std::string name() const override {
    return "hostile(" + base_->name() + ")";
  }
  Result<std::string> ReadBlock(const std::string& path) override {
    return base_->ReadBlock(path);
  }
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override {
    if (path.find(fail_substring_) != std::string::npos &&
        remaining_.fetch_sub(1) <= 0) {
      return Status::IoError("injected write failure: " + path);
    }
    return base_->AtomicWriteBlock(path, data, sync);
  }
  Result<std::vector<std::string>> List(const std::string& dir) override {
    return base_->List(dir);
  }
  Status Remove(const std::string& path) override {
    ++removes_attempted_;
    if (remove_code_ == StatusCode::kNotFound) {
      base_->Remove(path).ok();  // delete for real, then misreport
      return Status::NotFound("remote claims it never existed: " + path);
    }
    return Status::IoError("injected cleanup failure: " + path);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override { return base_->stats(); }

  int removes_attempted() const { return removes_attempted_.load(); }

 private:
  std::shared_ptr<StorageBackend> base_;
  std::string fail_substring_;
  std::atomic<int64_t> remaining_;
  StatusCode remove_code_;
  std::atomic<int> removes_attempted_{0};
};

TEST(PhysicalStoreFailurePathTest,
     MaterializationWriteErrorIsNeverMaskedByCleanupFailure) {
  Table t = testutil::MakeEventTable(2000, 41);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 8, "by_ts", 3);
  for (StatusCode remove_code :
       {StatusCode::kNotFound, StatusCode::kIoError}) {
    auto base = MakeInMemoryBackend();
    auto hostile = std::make_shared<HostileCleanupBackend>(
        base, "part_", /*fail_after=*/3, remove_code);
    std::string dir = testutil::ScratchDir(
        std::string("hostile_mat_") + StatusCodeName(remove_code));
    core::PhysicalStore store(dir, /*num_threads=*/4, hostile);

    auto mat = store.MaterializeLayout(t, by_ts);
    ASSERT_FALSE(mat.ok());
    EXPECT_EQ(mat.status().code(), StatusCode::kIoError);
    EXPECT_NE(mat.status().ToString().find("injected write failure"),
              std::string::npos)
        << "cleanup noise masked the original write error: "
        << mat.status().ToString();
    EXPECT_GT(hostile->removes_attempted(), 0)
        << "the failure path never even attempted cleanup";
  }
}

TEST(PhysicalStoreFailurePathTest,
     ReorganizationWriteErrorSurvivesCleanupFailureAndOldLayoutServes) {
  const uint64_t seed = 43;
  Table t = testutil::MakeEventTable(2000, seed);
  LayoutInstance by_ts = testutil::MakeSortedInstance(t, 0, 8, "by_ts", 3);
  LayoutInstance by_qty = testutil::MakeSortedInstance(t, 1, 8, "by_qty", 3);
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 100, 10, seed + 1);

  auto base = MakeInMemoryBackend();
  auto hostile = std::make_shared<HostileCleanupBackend>(
      base, "part_e2", /*fail_after=*/1, StatusCode::kIoError);
  std::string dir = testutil::ScratchDir("hostile_reorg");
  core::PhysicalStore store(dir, /*num_threads=*/4, hostile);
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());

  auto reorg = store.Reorganize(t, by_qty);
  ASSERT_FALSE(reorg.ok());
  EXPECT_EQ(reorg.status().code(), StatusCode::kIoError);
  EXPECT_NE(reorg.status().ToString().find("injected write failure"),
            std::string::npos)
      << "cleanup noise masked the original write error: "
      << reorg.status().ToString();

  // The store still serves the old layout, correctly, even though nothing
  // could be cleaned up.
  for (const Query& q : queries) {
    auto exec = store.ExecuteQuery(q);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(exec->matches, CountMatches(t, q));
  }
}

}  // namespace
}  // namespace oreo
