// The parallel==serial equivalence wall. The engine's determinism contract
// (see common/thread_pool.h) promises that every parallel hot path —
// physical scans, materialization, reorganization, and candidate cost
// evaluation — produces bit-identical costs, switch sequences, counters and
// on-disk bytes versus the serial (num_threads=1) baseline, for any thread
// count. These tests pin that contract for seeds × thread counts {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/oreo.h"
#include "core/physical.h"
#include "layout/qdtree_layout.h"
#include "layout/sorted_layout.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

// The wall runs on the in-memory backend by default (no disk, same bytes);
// OREO_TEST_BACKEND=posix pins the file path — partition CRCs are read
// through the backend either way and must not change.

// Everything a physical run produces that must not depend on the pool size.
struct PhysicalFingerprint {
  uint64_t mat_bytes = 0;
  uint64_t mat_partitions = 0;
  std::vector<uint32_t> mat_crcs;
  std::vector<uint64_t> scan_counters;  // per query: parts, rows, matches, bytes
  uint64_t reorg_bytes = 0;
  uint64_t reorg_partitions = 0;
  std::vector<uint32_t> reorg_crcs;
  std::vector<uint64_t> post_reorg_matches;

  bool operator==(const PhysicalFingerprint& o) const {
    return mat_bytes == o.mat_bytes && mat_partitions == o.mat_partitions &&
           mat_crcs == o.mat_crcs && scan_counters == o.scan_counters &&
           reorg_bytes == o.reorg_bytes &&
           reorg_partitions == o.reorg_partitions &&
           reorg_crcs == o.reorg_crcs &&
           post_reorg_matches == o.post_reorg_matches;
  }
};

PhysicalFingerprint RunPhysical(uint64_t seed, size_t num_threads) {
  Table t = testutil::MakeEventTable(4000, seed);
  LayoutInstance by_ts =
      testutil::MakeSortedInstance(t, 0, 16, "by_ts", /*sample_seed=*/3);
  LayoutInstance by_qty =
      testutil::MakeSortedInstance(t, 1, 16, "by_qty", /*sample_seed=*/3);
  std::string dir = testutil::ScratchDir(
      "par_eq_" + std::to_string(seed) + "_" + std::to_string(num_threads));
  PhysicalStore store(dir, num_threads, testutil::TestBackend("inmem"));

  PhysicalFingerprint fp;
  auto mat = store.MaterializeLayout(t, by_ts);
  EXPECT_TRUE(mat.ok()) << mat.status().ToString();
  fp.mat_bytes = mat->bytes;
  fp.mat_partitions = mat->partitions;
  fp.mat_crcs = testutil::PartitionCrcs(store);

  std::vector<Query> queries =
      testutil::MakeRangeWorkload(0, 4000, 300, 8, seed + 1);
  {
    Query full;  // conjunct-free full scan exercises the widest fan-out
    queries.push_back(full);
  }
  for (const Query& q : queries) {
    auto exec = store.ExecuteQuery(q);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    fp.scan_counters.push_back(exec->partitions_read);
    fp.scan_counters.push_back(exec->rows_scanned);
    fp.scan_counters.push_back(exec->matches);
    fp.scan_counters.push_back(exec->bytes_read);
  }

  auto reorg = store.Reorganize(t, by_qty);
  EXPECT_TRUE(reorg.ok()) << reorg.status().ToString();
  store.Vacuum();
  fp.reorg_bytes = reorg->bytes;
  fp.reorg_partitions = reorg->partitions;
  fp.reorg_crcs = testutil::PartitionCrcs(store);

  std::vector<Query> after =
      testutil::MakeRangeWorkload(1, 1000, 80, 8, seed + 2);
  for (const Query& q : after) {
    auto exec = store.ExecuteQuery(q);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    fp.post_reorg_matches.push_back(exec->matches);
  }
  return fp;
}

TEST(ParallelEquivalenceTest, PhysicalStoreBitIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    PhysicalFingerprint serial = RunPhysical(seed, /*num_threads=*/1);
    ASSERT_FALSE(serial.mat_crcs.empty());
    for (size_t threads : {2u, 8u}) {
      PhysicalFingerprint parallel = RunPhysical(seed, threads);
      EXPECT_TRUE(serial == parallel)
          << "physical fingerprint diverged at seed " << seed << ", "
          << threads << " threads";
    }
  }
}

// Full framework run: the Layout Manager's parallel candidate cost
// evaluation must not change a single admission, eviction, switch decision
// or cost account.
SimResult RunOreo(uint64_t seed, size_t num_threads, const Table& t,
                  const std::vector<Query>& stream,
                  const LayoutGenerator& gen) {
  OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = num_threads;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;  // small cap: exercise eviction + pruning paths
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  Oreo oreo(&t, &gen, /*time_column=*/0, opts);
  return oreo.Run(stream, /*record_trace=*/true);
}

TEST(ParallelEquivalenceTest, OreoRunBitIdenticalAcrossThreadCounts) {
  QdTreeGenerator gen;
  for (uint64_t seed : {5u, 6u}) {
    Table t = testutil::MakeEventTable(3000, seed);
    // Two workload phases so the manager admits states and D-UMTS switches.
    std::vector<Query> stream =
        testutil::MakeRangeWorkload(0, 3000, 150, 150, seed + 1);
    std::vector<Query> phase2 =
        testutil::MakeRangeWorkload(1, 1000, 50, 150, seed + 2);
    stream.insert(stream.end(), phase2.begin(), phase2.end());

    SimResult serial = RunOreo(seed, 1, t, stream, gen);
    EXPECT_GT(serial.num_switches, 0) << "fixture too tame to test switches";
    for (size_t threads : {2u, 8u}) {
      SimResult parallel = RunOreo(seed, threads, t, stream, gen);
      // Bit-identical: exact double equality is intentional.
      EXPECT_EQ(serial.query_cost, parallel.query_cost);
      EXPECT_EQ(serial.reorg_cost, parallel.reorg_cost);
      EXPECT_EQ(serial.num_switches, parallel.num_switches);
      EXPECT_EQ(serial.serving_state, parallel.serving_state);
      EXPECT_EQ(serial.switch_events, parallel.switch_events);
      EXPECT_EQ(serial.cumulative, parallel.cumulative);
      EXPECT_EQ(serial.final_live_states, parallel.final_live_states);
    }
  }
}

// The kernel-mode dimension of the wall: the vectorized scan kernels
// (query/kernels.h), codec fast paths and Eytzinger lookups must reproduce
// the scalar reference implementations bit-for-bit — same partition CRCs,
// same scan counters, same costs and switch decisions — at any thread count.
TEST(ParallelEquivalenceTest, KernelModesBitIdentical) {
  struct ScopedMode {
    explicit ScopedMode(simd::KernelMode m) { simd::SetGlobalKernelMode(m); }
    ~ScopedMode() { simd::SetGlobalKernelMode(simd::KernelMode::kAuto); }
  };
  for (uint64_t seed : {21u, 22u}) {
    PhysicalFingerprint scalar_fp, vector_fp;
    {
      ScopedMode mode(simd::KernelMode::kScalar);
      scalar_fp = RunPhysical(seed, /*num_threads=*/4);
    }
    {
      ScopedMode mode(simd::KernelMode::kVector);
      vector_fp = RunPhysical(seed, /*num_threads=*/4);
    }
    ASSERT_FALSE(scalar_fp.mat_crcs.empty());
    EXPECT_TRUE(scalar_fp == vector_fp)
        << "physical fingerprint diverged between kernel modes at seed "
        << seed;
  }
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(3000, 5);
  std::vector<Query> stream = testutil::MakeRangeWorkload(0, 3000, 150, 150, 6);
  SimResult scalar_sim, vector_sim;
  {
    ScopedMode mode(simd::KernelMode::kScalar);
    scalar_sim = RunOreo(5, 4, t, stream, gen);
  }
  {
    ScopedMode mode(simd::KernelMode::kVector);
    vector_sim = RunOreo(5, 4, t, stream, gen);
  }
  EXPECT_EQ(scalar_sim.query_cost, vector_sim.query_cost);
  EXPECT_EQ(scalar_sim.reorg_cost, vector_sim.reorg_cost);
  EXPECT_EQ(scalar_sim.num_switches, vector_sim.num_switches);
  EXPECT_EQ(scalar_sim.serving_state, vector_sim.serving_state);
  EXPECT_EQ(scalar_sim.switch_events, vector_sim.switch_events);
  EXPECT_EQ(scalar_sim.cumulative, vector_sim.cumulative);
}

// ReplayPhysical ties the two layers together: same trace, same files, same
// counters at any pool size (only wall-clock seconds may differ).
TEST(ParallelEquivalenceTest, ReplayPhysicalCountersMatch) {
  Table t = testutil::MakeEventTable(2000, 31);
  StateRegistry reg;
  int s0 = reg.Add(testutil::MakeSortedInstance(t, 0, 8, "s0", 3));
  int s1 = reg.Add(testutil::MakeSortedInstance(t, 1, 8, "s1", 3));
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 100, 24, 32);
  SimResult sim;
  sim.serving_state.assign(queries.size(), s0);
  for (size_t i = 12; i < queries.size(); ++i) sim.serving_state[i] = s1;

  auto baseline = ReplayPhysical(t, reg, sim, queries, /*stride=*/2,
                                 testutil::ScratchDir("par_eq_replay_1"),
                                 /*num_threads=*/1, /*batch_size=*/1,
                                 testutil::TestBackend("inmem"));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {2u, 8u}) {
    auto parallel = ReplayPhysical(
        t, reg, sim, queries, /*stride=*/2,
        testutil::ScratchDir("par_eq_replay_" + std::to_string(threads)),
        threads, /*batch_size=*/1, testutil::TestBackend("inmem"));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(baseline->num_switches, parallel->num_switches);
    EXPECT_EQ(baseline->queries_executed, parallel->queries_executed);
    EXPECT_EQ(baseline->partitions_read, parallel->partitions_read);
    EXPECT_EQ(baseline->matches, parallel->matches);
  }
}

// The pool itself: dynamic index claiming must still run every index exactly
// once, and inline (1-thread) pools must behave identically.
TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i;
    }
    pool.ParallelFor(0, [&](size_t) { FAIL() << "n=0 must not run tasks"; });
  }
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
}

TEST(ThreadPoolTest, ManySmallBatchesFromOnePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::vector<size_t> out(7, 0);
    pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
  }
}

}  // namespace
}  // namespace core
}  // namespace oreo
