// Determinism regression tests: the whole pipeline is seeded through
// common/rng, so two runs with the same OreoOptions::seed must agree on
// every observable — costs, switch counts, and the chosen states. This pins
// the Rng's stream semantics: any change to common/rng (or to the order in
// which components draw from it) shows up here as a trace divergence.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

OreoOptions SmallOpts(uint64_t seed) {
  OreoOptions o;
  o.alpha = 30.0;
  o.window_size = 100;
  o.generate_every = 100;
  o.target_partitions = 16;
  o.dataset_sample_rows = 600;
  o.max_states = 6;
  o.seed = seed;
  return o;
}

// A drifting stream: range queries alternating between the qty and ts
// columns so the layout manager keeps generating fresh candidates.
std::vector<Query> DriftingStream(size_t rows, size_t n, uint64_t seed) {
  std::vector<Query> qty = testutil::MakeRangeWorkload(
      /*column=*/1, /*domain=*/1000, /*width=*/60, n / 2, seed);
  std::vector<Query> ts = testutil::MakeRangeWorkload(
      /*column=*/0, /*domain=*/static_cast<int64_t>(rows), /*width=*/100,
      n - n / 2, seed + 1);
  std::vector<Query> out;
  for (size_t i = 0; i < n; ++i) {
    // First half qty-heavy, second half ts-heavy, to force drift.
    if (i < n / 2) {
      out.push_back(qty[i]);
    } else {
      out.push_back(ts[i - n / 2]);
    }
    out.back().id = static_cast<int64_t>(i);
  }
  return out;
}

TEST(DeterminismTest, SameSeedSameCostsSwitchesAndStates) {
  const size_t kRows = 3000;
  Table t = testutil::MakeEventTable(kRows, 7);
  std::vector<Query> stream = DriftingStream(kRows, 800, 21);
  QdTreeGenerator gen;

  Oreo a(&t, &gen, /*time_column=*/0, SmallOpts(99));
  SimResult ra = a.Run(stream, /*record_trace=*/true);
  Oreo b(&t, &gen, /*time_column=*/0, SmallOpts(99));
  SimResult rb = b.Run(stream, /*record_trace=*/true);

  EXPECT_DOUBLE_EQ(ra.query_cost, rb.query_cost);
  EXPECT_DOUBLE_EQ(ra.reorg_cost, rb.reorg_cost);
  EXPECT_EQ(ra.num_switches, rb.num_switches);
  EXPECT_EQ(ra.serving_state, rb.serving_state);
  EXPECT_EQ(ra.switch_events, rb.switch_events);
  EXPECT_EQ(ra.final_live_states, rb.final_live_states);
  EXPECT_EQ(a.registry().num_total(), b.registry().num_total());
  EXPECT_EQ(a.current_state(), b.current_state());
}

TEST(DeterminismTest, CumulativeTraceIsReproducible) {
  Table t = testutil::MakeEventTable(2000, 3);
  std::vector<Query> stream = DriftingStream(2000, 500, 5);
  QdTreeGenerator gen;

  Oreo a(&t, &gen, 0, SmallOpts(4));
  Oreo b(&t, &gen, 0, SmallOpts(4));
  SimResult ra = a.Run(stream, true);
  SimResult rb = b.Run(stream, true);
  ASSERT_EQ(ra.cumulative.size(), stream.size());
  EXPECT_EQ(ra.cumulative, rb.cumulative);
}

TEST(DeterminismTest, StepLoopAgreesWithBatchRun) {
  // The streaming and batch APIs must account identically; this also makes
  // Step-based harnesses interchangeable with Run-based ones in tests.
  const size_t kRows = 2000;
  Table t = testutil::MakeEventTable(kRows, 11);
  std::vector<Query> stream = DriftingStream(kRows, 600, 13);
  QdTreeGenerator gen;

  Oreo stepper(&t, &gen, 0, SmallOpts(17));
  std::vector<int> served;
  for (const Query& q : stream) served.push_back(stepper.Step(q).state);

  Oreo batch(&t, &gen, 0, SmallOpts(17));
  SimResult r = batch.Run(stream, true);

  EXPECT_DOUBLE_EQ(stepper.total_query_cost(), r.query_cost);
  EXPECT_DOUBLE_EQ(stepper.total_reorg_cost(), r.reorg_cost);
  EXPECT_EQ(stepper.num_switches(), r.num_switches);
  ASSERT_EQ(r.serving_state.size(), served.size());
  EXPECT_EQ(r.serving_state, std::vector<int>(served.begin(), served.end()));
}

}  // namespace
}  // namespace core
}  // namespace oreo
