// The serving-tier equivalence wall: concurrent loopback clients hammering
// the multi-tenant server through the full wire path must leave every
// tenant's engine in a state bit-identical to the library path.
//
// With many concurrent connections the *arrival order* at a tenant is
// nondeterministic, so bit-identity is defined against the server's
// executed order: the fair scheduler logs the query-id stream it actually
// ran (FairScheduler::executed_ids), and this wall replays exactly that
// stream through a fresh library engine via RunBatch — valid because
// batching is decision-invariant (pinned by batch_equivalence_test) — and
// compares per-query serving states, reorganization decisions and costs
// (doubles compared exactly: the wire transports raw IEEE-754 bits) plus
// the engines' total accounting.
//
// With a single synchronous connection per tenant the executed order equals
// the natural stream order, anchoring the wall to the canonical library run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"

namespace oreo {
namespace server {
namespace {

// Small caps so the manager admits, evicts and switches within a short
// stream (same shape as the RunBatch wall's fixture).
core::OreoOptions ServerEngineOptions(uint64_t seed) {
  core::OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = 2;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  return opts;
}

// Two workload phases (range scans on ts, then on qty) so layouts are
// generated and D-UMTS switches. Query ids are globally unique per client:
// the executed-order audit log identifies queries by id.
std::vector<Query> ClientStream(int client_index, size_t n, uint64_t seed) {
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, 3000, 150, n / 2, seed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, n - n / 2, seed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(client_index + 1) * 1000000 +
                   static_cast<int64_t>(i);
  }
  return stream;
}

struct ReplyRecord {
  int32_t state = 0;
  bool reorganized = false;
  double query_cost = 0.0;
};

TEST(ServerEquivalenceTest, LoopbackWireStreamMatchesLibraryRunBatch) {
  const size_t kClientsPerTenant[] = {1, 8, 32};
  const size_t kTenantCounts[] = {1, 4};
  const size_t kQueriesPerTenant = 320;

  QdTreeGenerator generator;
  std::vector<Table> tables;
  for (int t = 0; t < 4; ++t) {
    tables.push_back(testutil::MakeEventTable(3000, 500 + t));
  }

  for (size_t tenants : kTenantCounts) {
    for (size_t clients_per_tenant : kClientsPerTenant) {
      SCOPED_TRACE("tenants=" + std::to_string(tenants) + " clients/tenant=" +
                   std::to_string(clients_per_tenant));
      const size_t per_client = kQueriesPerTenant / clients_per_tenant;

      // A multi-dispatcher pool: the wall must hold while several worker
      // threads pick batches from the shared scheduler concurrently.
      ServerOptions sopts;
      sopts.dispatchers = 4;
      OreoServer srv(sopts);
      for (uint32_t t = 0; t < tenants; ++t) {
        TenantConfig cfg;
        cfg.name = "tenant_" + std::to_string(t);
        cfg.table = &tables[t];
        cfg.generator = &generator;
        cfg.time_column = 0;
        cfg.options = ServerEngineOptions(11 + t);
        // One sharded tenant in the multi-tenant configs: the wall must hold
        // through ShardedOreo's RunBatchSharded fan-out too.
        if (tenants == 4 && t == 3) cfg.options.num_shards = 2;
        cfg.batch.max_batch = 16;
        cfg.batch.max_delay_us = 100;
        cfg.batch.max_queue = 1u << 16;  // generous: nothing may be rejected
        ASSERT_TRUE(srv.AddTenant(t + 1, cfg).ok());
      }
      ASSERT_TRUE(srv.Start().ok());

      // tenant id -> query id -> (sent query | server reply), merged from
      // every client thread after the hammer phase.
      std::mutex mu;
      std::map<uint32_t, std::map<int64_t, Query>> sent;
      std::map<uint32_t, std::map<int64_t, ReplyRecord>> replies;

      std::vector<std::thread> workers;
      int client_index = 0;
      for (uint32_t t = 1; t <= tenants; ++t) {
        for (size_t c = 0; c < clients_per_tenant; ++c, ++client_index) {
          workers.emplace_back([&srv, &mu, &sent, &replies, t, client_index,
                                per_client] {
            std::vector<Query> stream = ClientStream(
                client_index, per_client, 900 + client_index);
            LoopbackClient client(&srv);
            std::map<int64_t, Query> my_sent;
            std::map<int64_t, ReplyRecord> my_replies;
            for (const Query& q : stream) {
              Result<QueryReply> reply = client.Call(t, q);
              if (!reply.ok()) {
                ADD_FAILURE() << "transport failure: "
                              << reply.status().ToString();
                break;
              }
              EXPECT_EQ(reply->status, ReplyStatus::kOk) << reply->message;
              my_sent.emplace(q.id, q);
              my_replies.emplace(
                  q.id, ReplyRecord{reply->state, reply->reorganized,
                                    reply->query_cost});
            }
            std::lock_guard<std::mutex> lock(mu);
            sent[t].insert(my_sent.begin(), my_sent.end());
            replies[t].insert(my_replies.begin(), my_replies.end());
          });
        }
      }
      for (std::thread& w : workers) w.join();
      srv.Shutdown();  // quiesces the dispatchers: engine reads are exact now

      ServerStats stats = srv.stats();
      EXPECT_EQ(stats.executed, tenants * kQueriesPerTenant);
      EXPECT_EQ(stats.rejected_backpressure, 0u);
      EXPECT_EQ(stats.rejected_shutdown, 0u);
      EXPECT_EQ(stats.rejected_malformed, 0u);

      for (uint32_t t = 1; t <= tenants; ++t) {
        SCOPED_TRACE("tenant=" + std::to_string(t));
        const std::vector<int64_t> order = srv.ExecutedIds(t);
        const std::map<int64_t, Query>& tenant_sent = sent[t];
        const std::map<int64_t, ReplyRecord>& tenant_replies = replies[t];
        ASSERT_EQ(order.size(), kQueriesPerTenant);
        ASSERT_EQ(tenant_sent.size(), kQueriesPerTenant);
        ASSERT_EQ(tenant_replies.size(), kQueriesPerTenant);

        if (clients_per_tenant == 1) {
          // One synchronous connection: executed order must equal the
          // natural stream order (ids ascend within a client).
          EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
              << "single-connection stream was reordered";
        }

        // Replay the executed stream through a fresh library engine, with a
        // batch size the server never used — batching must not matter.
        std::vector<Query> executed_stream;
        executed_stream.reserve(order.size());
        for (int64_t id : order) {
          auto it = tenant_sent.find(id);
          ASSERT_NE(it, tenant_sent.end()) << "executed unknown id " << id;
          executed_stream.push_back(it->second);
        }
        core::OreoOptions replay_opts = ServerEngineOptions(11 + (t - 1));
        if (tenants == 4 && t == 4) replay_opts.num_shards = 2;
        auto replay = core::MakeEngine(&tables[t - 1], &generator,
                                       /*time_column=*/0, replay_opts);
        size_t pos = 0;
        for (const QueryBatch& b : MakeBatches(executed_stream, 7)) {
          core::OreoEngine::BatchResult result = replay->RunBatch(b);
          ASSERT_EQ(result.steps.size(), b.size());
          for (const core::OreoEngine::StepResult& step : result.steps) {
            const ReplyRecord& wire = tenant_replies.at(order[pos]);
            EXPECT_EQ(step.state, wire.state) << "query #" << pos;
            EXPECT_EQ(step.reorganized, wire.reorganized) << "query #" << pos;
            // Exact double equality: the cost crossed the wire as raw bits.
            EXPECT_EQ(step.query_cost, wire.query_cost) << "query #" << pos;
            ++pos;
          }
        }
        ASSERT_EQ(pos, order.size());

        core::OreoEngine* served = srv.engine(t);
        ASSERT_NE(served, nullptr);
        EXPECT_EQ(served->total_query_cost(), replay->total_query_cost());
        EXPECT_EQ(served->total_reorg_cost(), replay->total_reorg_cost());
        EXPECT_EQ(served->num_switches(), replay->num_switches());

        if (tenants == 1 && clients_per_tenant == 1) {
          // Anchor config must actually exercise switching, or the whole
          // wall is vacuous.
          EXPECT_GT(replay->num_switches(), 0)
              << "fixture too tame to test switches";
        }
      }
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace oreo
