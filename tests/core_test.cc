// Tests for src/core: StateRegistry, LayoutManager (Algorithm 5 admission,
// eviction, generation cadence), strategies, and simulator accounting
// (including reorganization-delay semantics).
#include <gtest/gtest.h>

#include "core/layout_manager.h"
#include "core/oreo.h"
#include "core/simulator.h"
#include "core/state_registry.h"
#include "core/strategy.h"
#include "layout/qdtree_layout.h"
#include "layout/sorted_layout.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

Table MakeTable(size_t rows, uint64_t seed) {
  return testutil::MakeEventTable(rows, seed);
}

LayoutInstance MakeSortedInstance(const Table& t, int column, uint32_t k,
                                  const std::string& name) {
  return testutil::MakeSortedInstance(t, column, k, name, /*sample_seed=*/5);
}

std::vector<Query> QtyRangeQueries(size_t n, int64_t width, uint64_t seed) {
  return testutil::MakeRangeWorkload(/*column=*/1, /*domain=*/1000, width, n,
                                     seed, /*assign_ids=*/true);
}

// ------------------------------------------------------ StateRegistry ----

TEST(StateRegistryTest, AddGetRemove) {
  Table t = MakeTable(500, 1);
  StateRegistry reg;
  int a = reg.Add(MakeSortedInstance(t, 0, 4, "a"));
  int b = reg.Add(MakeSortedInstance(t, 1, 4, "b"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reg.num_live(), 2u);
  EXPECT_EQ(reg.Get(a).name(), "a");
  reg.Remove(a);
  EXPECT_FALSE(reg.IsLive(a));
  EXPECT_TRUE(reg.IsLive(b));
  EXPECT_EQ(reg.Get(a).name(), "a");  // still readable
  EXPECT_EQ(reg.live(), std::vector<int>{b});
}

TEST(StateRegistryTest, CostDelegates) {
  Table t = MakeTable(500, 2);
  StateRegistry reg;
  int a = reg.Add(MakeSortedInstance(t, 1, 8, "by_qty"));
  Query q;
  q.conjuncts = {Predicate::Between(1, Value(int64_t{0}), Value(int64_t{100}))};
  double c = reg.Cost(a, q);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 0.5);  // narrow range on the sort column
  EXPECT_NEAR(reg.MeanCost(a, {q, q}), c, 1e-12);
}

// ------------------------------------------------------ LayoutManager ----

LayoutManagerOptions ManagerOpts(size_t gen_every = 50, double epsilon = 0.05,
                                 size_t max_states = 4) {
  LayoutManagerOptions o;
  o.window_size = 50;
  o.generate_every = gen_every;
  o.epsilon = epsilon;
  o.max_states = max_states;
  o.target_partitions = 8;
  o.dataset_sample_rows = 400;
  o.admission_sample_size = 30;
  return o;
}

TEST(LayoutManagerTest, InitCreatesDefaultState) {
  Table t = MakeTable(2000, 3);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts());
  int def = mgr.InitDefaultState(0);
  EXPECT_EQ(def, 0);
  EXPECT_EQ(reg.num_live(), 1u);
  EXPECT_NE(reg.Get(def).name().find("default"), std::string::npos);
}

TEST(LayoutManagerTest, GeneratesAtCadence) {
  Table t = MakeTable(2000, 4);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts(/*gen_every=*/50));
  int def = mgr.InitDefaultState(0);
  std::vector<Query> queries = QtyRangeQueries(120, 50, 5);
  size_t events_seen = 0;
  for (const Query& q : queries) {
    events_seen += mgr.Observe(q, def).size();
  }
  // Generation fires at query 50 and 100.
  EXPECT_EQ(mgr.generations_attempted(), 2u);
  EXPECT_GT(events_seen, 0u);  // the qty layout differs from the default
}

TEST(LayoutManagerTest, EpsilonOneRejectsEverything) {
  Table t = MakeTable(2000, 6);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManagerOptions opts = ManagerOpts(50, /*epsilon=*/1.0);
  LayoutManager mgr(&t, &gen, &reg, opts);
  int def = mgr.InitDefaultState(0);
  for (const Query& q : QtyRangeQueries(200, 50, 7)) mgr.Observe(q, def);
  EXPECT_GT(mgr.generations_attempted(), 0u);
  EXPECT_EQ(mgr.candidates_admitted(), 0u);
  EXPECT_EQ(reg.num_live(), 1u);
}

TEST(LayoutManagerTest, DuplicateCandidatesRejected) {
  // A stable workload generates near-identical candidates; after the first
  // admission the rest should be rejected by the distance test.
  Table t = MakeTable(2000, 8);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts(50, 0.05));
  int def = mgr.InitDefaultState(0);
  for (const Query& q : QtyRangeQueries(500, 50, 9)) mgr.Observe(q, def);
  EXPECT_GE(mgr.candidates_admitted(), 1u);
  EXPECT_GE(mgr.candidates_rejected(), 3u);
  EXPECT_EQ(mgr.candidates_admitted() + mgr.candidates_rejected(),
            mgr.generations_attempted());
}

TEST(LayoutManagerTest, MaxStatesEnforced) {
  Table t = MakeTable(2000, 10);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManagerOptions opts = ManagerOpts(40, 0.01, /*max_states=*/2);
  opts.window_size = 40;
  LayoutManager mgr(&t, &gen, &reg, opts);
  int def = mgr.InitDefaultState(0);
  // Alternate between two very different workloads to force admissions.
  Rng rng(11);
  const char* cats[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 600; ++i) {
    Query q;
    q.id = i;
    if ((i / 80) % 2 == 0) {
      int64_t lo = rng.UniformInt(0, 950);
      q.conjuncts = {Predicate::Between(1, Value(lo), Value(lo + 50))};
    } else {
      q.conjuncts = {Predicate::Eq(2, Value(cats[rng.Uniform(4)]))};
    }
    mgr.Observe(q, def);
    EXPECT_LE(reg.num_live(), 2u);
  }
}

TEST(LayoutManagerTest, CurrentStateNeverEvicted) {
  Table t = MakeTable(2000, 12);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManagerOptions opts = ManagerOpts(40, 0.01, /*max_states=*/1);
  LayoutManager mgr(&t, &gen, &reg, opts);
  int def = mgr.InitDefaultState(0);
  for (const Query& q : QtyRangeQueries(400, 40, 13)) {
    for (const ManagerEvent& e : mgr.Observe(q, def)) {
      EXPECT_FALSE(e.kind == ManagerEvent::Kind::kRemoved && e.state == def);
    }
    EXPECT_TRUE(reg.IsLive(def));
  }
}

TEST(LayoutManagerTest, AdmitStateHonorsEpsilonBoundary) {
  Table t = MakeTable(1000, 14);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts(50, 0.5));
  mgr.InitDefaultState(0);
  // A candidate identical to the default has distance 0 -> rejected.
  LayoutInstance dup = MakeSortedInstance(t, 0, 8, "dup");
  std::vector<Query> sample = QtyRangeQueries(20, 100, 15);
  EXPECT_FALSE(mgr.AdmitState(dup, sample));
  // Empty sample: nothing to compare on -> rejected (conservative).
  EXPECT_FALSE(mgr.AdmitState(dup, {}));
}

// ---------------------------------------------------------- Simulator ----

TEST(SimulatorTest, StaticAccountingIsExact) {
  Table t = MakeTable(1000, 16);
  StateRegistry reg;
  int s = reg.Add(MakeSortedInstance(t, 1, 8, "by_qty"));
  StaticStrategy strategy(s);
  std::vector<Query> queries = QtyRangeQueries(50, 100, 17);
  SimOptions opts;
  opts.alpha = 80;
  opts.record_trace = true;
  SimResult r = RunSimulation(&strategy, nullptr, &reg, queries, opts);
  EXPECT_EQ(r.num_switches, 0);
  EXPECT_DOUBLE_EQ(r.reorg_cost, 0.0);
  double manual = 0;
  for (const Query& q : queries) manual += reg.Cost(s, q);
  EXPECT_NEAR(r.query_cost, manual, 1e-9);
  ASSERT_EQ(r.cumulative.size(), queries.size());
  EXPECT_NEAR(r.cumulative.back(), r.total_cost(), 1e-9);
  for (int st : r.serving_state) EXPECT_EQ(st, s);
}

// A scripted strategy for testing the simulator's switch/delay handling.
class ScriptedStrategy : public Strategy {
 public:
  ScriptedStrategy(std::vector<std::pair<int64_t, int>> switches, int initial)
      : switches_(std::move(switches)), current_(initial) {}
  std::string name() const override { return "scripted"; }
  int OnQuery(const Query& q, bool* switched) override {
    *switched = false;
    for (const auto& [at, to] : switches_) {
      if (at == q.id) {
        current_ = to;
        *switched = true;
      }
    }
    return current_;
  }
  int current_state() const override { return current_; }

 private:
  std::vector<std::pair<int64_t, int>> switches_;
  int current_;
};

TEST(SimulatorTest, SwitchChargesAlphaImmediately) {
  Table t = MakeTable(1000, 18);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 8, "s0"));
  int s1 = reg.Add(MakeSortedInstance(t, 1, 8, "s1"));
  (void)s0;
  ScriptedStrategy strategy({{10, s1}}, s0);
  std::vector<Query> queries = QtyRangeQueries(30, 100, 19);
  SimOptions opts;
  opts.alpha = 7.5;
  opts.record_trace = true;
  SimResult r = RunSimulation(&strategy, nullptr, &reg, queries, opts);
  EXPECT_EQ(r.num_switches, 1);
  EXPECT_DOUBLE_EQ(r.reorg_cost, 7.5);
  // Delta = 0: the switch takes effect for the deciding query itself.
  EXPECT_EQ(r.serving_state[9], s0);
  EXPECT_EQ(r.serving_state[10], s1);
}

TEST(SimulatorTest, DelayPostponesServingSwitchButNotCharge) {
  Table t = MakeTable(1000, 20);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 8, "s0"));
  int s1 = reg.Add(MakeSortedInstance(t, 1, 8, "s1"));
  ScriptedStrategy strategy({{10, s1}}, s0);
  std::vector<Query> queries = QtyRangeQueries(30, 100, 21);
  SimOptions opts;
  opts.alpha = 5.0;
  opts.reorg_delay = 8;
  opts.record_trace = true;
  SimResult r = RunSimulation(&strategy, nullptr, &reg, queries, opts);
  EXPECT_DOUBLE_EQ(r.reorg_cost, 5.0);  // charged at decision time
  // Old layout serves through the delay window.
  for (int tq = 10; tq < 18; ++tq) EXPECT_EQ(r.serving_state[static_cast<size_t>(tq)], s0);
  EXPECT_EQ(r.serving_state[18], s1);
}

TEST(SimulatorTest, DelayIncreasesQueryCostWhenNewLayoutBetter) {
  // The paper's Delta ablation: with the same decisions, larger Delta must
  // produce >= query cost (savings arrive later).
  Table t = MakeTable(4000, 22);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 16, "s0"));
  int s1 = reg.Add(MakeSortedInstance(t, 1, 16, "s1"));
  std::vector<Query> queries = QtyRangeQueries(200, 60, 23);
  auto run = [&](size_t delay) {
    ScriptedStrategy strategy({{20, s1}}, s0);
    SimOptions opts;
    opts.alpha = 80;
    opts.reorg_delay = delay;
    return RunSimulation(&strategy, nullptr, &reg, queries, opts);
  };
  SimResult d0 = run(0);
  SimResult d40 = run(40);
  SimResult d80 = run(80);
  EXPECT_LE(d0.query_cost, d40.query_cost + 1e-9);
  EXPECT_LE(d40.query_cost, d80.query_cost + 1e-9);
  EXPECT_DOUBLE_EQ(d0.reorg_cost, d80.reorg_cost);
}

// ---------------------------------------------------------- Strategies ----

TEST(StrategyTest, GreedySwitchesToBetterCandidateIgnoringAlpha) {
  Table t = MakeTable(3000, 24);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManagerOptions mopts = ManagerOpts(50, 0.02, 8);
  LayoutManager mgr(&t, &gen, &reg, mopts);
  int def = mgr.InitDefaultState(0);
  GreedyStrategy strategy(&reg, &mgr, def);
  SimOptions opts;
  opts.alpha = 1e6;  // Greedy must ignore this
  SimResult r =
      RunSimulation(&strategy, &mgr, &reg, QtyRangeQueries(300, 50, 25), opts);
  EXPECT_GE(r.num_switches, 1);
}

TEST(StrategyTest, RegretWaitsForAlphaWorthOfSavings) {
  Table t = MakeTable(3000, 26);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts(50, 0.02, 8));
  mgr.InitDefaultState(0);

  auto run = [&](double alpha) {
    StateRegistry reg2;
    LayoutManager mgr2(&t, &gen, &reg2, ManagerOpts(50, 0.02, 8));
    int d2 = mgr2.InitDefaultState(0);
    RegretStrategy strategy(&reg2, alpha, d2);
    SimOptions opts;
    opts.alpha = alpha;
    return RunSimulation(&strategy, &mgr2, &reg2, QtyRangeQueries(400, 50, 27),
                         opts);
  };
  SimResult cheap = run(1.0);
  SimResult pricey = run(1e6);
  EXPECT_GE(cheap.num_switches, 1);
  EXPECT_EQ(pricey.num_switches, 0);
}

TEST(StrategyTest, OreoSwitchesUnderDriftAndRespectsRegistry) {
  Table t = MakeTable(3000, 28);
  StateRegistry reg;
  QdTreeGenerator gen;
  LayoutManager mgr(&t, &gen, &reg, ManagerOpts(40, 0.02, 8));
  int def = mgr.InitDefaultState(0);
  mts::DumtsOptions dopts;
  dopts.alpha = 3.0;
  dopts.seed = 3;
  OreoStrategy strategy(&reg, def, dopts);
  SimOptions opts;
  opts.alpha = 3.0;
  opts.record_trace = true;
  SimResult r =
      RunSimulation(&strategy, &mgr, &reg, QtyRangeQueries(400, 50, 29), opts);
  EXPECT_GE(r.num_switches, 1);
  // Serving states must always be registered.
  for (int s : r.serving_state) {
    EXPECT_NO_FATAL_FAILURE(reg.Get(s));
  }
}

TEST(StrategyTest, OfflineOptimalSwitchesExactlyAtTemplateChanges) {
  // Two fake templates served by two states.
  Table t = MakeTable(1000, 30);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 8, "s0"));
  int s1 = reg.Add(MakeSortedInstance(t, 1, 8, "s1"));
  workloads::Workload wl;
  for (int i = 0; i < 40; ++i) {
    Query q;
    q.id = i;
    q.template_id = (i < 20) ? 0 : 1;
    q.conjuncts = {Predicate::Between(1, Value(int64_t{0}), Value(int64_t{100}))};
    wl.queries.push_back(q);
  }
  wl.segment_starts = {0, 20};
  wl.segment_templates = {0, 1};
  OfflineOptimalStrategy strategy({s0, s1}, &wl);
  SimOptions opts;
  opts.alpha = 10;
  SimResult r = RunSimulation(&strategy, nullptr, &reg, wl.queries, opts);
  EXPECT_EQ(r.num_switches, 1);
  EXPECT_DOUBLE_EQ(r.reorg_cost, 10.0);
}

// --------------------------------------------------------- Oreo facade ----

TEST(OreoFacadeTest, StepMatchesBatchRun) {
  Table t = MakeTable(2000, 31);
  QdTreeGenerator gen;
  OreoOptions opts;
  opts.alpha = 5.0;
  opts.generate_every = 50;
  opts.window_size = 50;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  opts.seed = 7;
  std::vector<Query> queries = QtyRangeQueries(300, 50, 32);

  core::Oreo streaming(&t, &gen, 0, opts);
  double step_query_cost = 0;
  for (const Query& q : queries) {
    step_query_cost += streaming.Step(q).query_cost;
  }
  EXPECT_NEAR(streaming.total_query_cost(), step_query_cost, 1e-9);

  core::Oreo batch(&t, &gen, 0, opts);
  SimResult r = batch.Run(queries);
  EXPECT_NEAR(r.query_cost, streaming.total_query_cost(), 1e-9);
  EXPECT_EQ(r.num_switches, streaming.num_switches());
}

TEST(StrategyTest, ReplayAdmissionFillsCountersFromPhaseHistory) {
  // With kReplay, a newly admitted state's counter equals the sum of its
  // costs over the queries processed so far in the current phase.
  Table t = MakeTable(2000, 50);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 8, "s0"));
  mts::DumtsOptions dopts;
  dopts.alpha = 1e6;  // no phase ends during the test
  OreoStrategy strategy(&reg, s0, dopts, MidPhasePolicy::kReplay);

  std::vector<Query> history = QtyRangeQueries(25, 80, 51);
  bool switched;
  for (const Query& q : history) strategy.OnQuery(q, &switched);
  EXPECT_EQ(strategy.phase_history_size(), history.size());

  int s1 = reg.Add(MakeSortedInstance(t, 1, 8, "s1"));
  strategy.ApplyEvents({ManagerEvent{ManagerEvent::Kind::kAdded, s1}});
  double expected = 0.0;
  for (const Query& q : history) expected += reg.Cost(s1, q);
  EXPECT_NEAR(strategy.dumts().Counter(s1), expected, 1e-9);
  EXPECT_TRUE(strategy.dumts().IsActive(s1));
}

TEST(StrategyTest, ReplayHistoryClearsOnPhaseReset) {
  Table t = MakeTable(2000, 52);
  StateRegistry reg;
  int s0 = reg.Add(MakeSortedInstance(t, 0, 4, "s0"));
  mts::DumtsOptions dopts;
  dopts.alpha = 0.5;  // tiny: every query ends the phase
  OreoStrategy strategy(&reg, s0, dopts, MidPhasePolicy::kReplay);
  bool switched;
  for (const Query& q : QtyRangeQueries(20, 500, 53)) {
    strategy.OnQuery(q, &switched);
    // Wide queries cost ~1.0 > alpha, so each query resets the phase and the
    // history never accumulates.
    EXPECT_LE(strategy.phase_history_size(), 1u);
  }
}

TEST(OreoFacadeTest, PruningCanBeDisabled) {
  Table t = MakeTable(2000, 54);
  QdTreeGenerator gen;
  OreoOptions opts;
  opts.generate_every = 40;
  opts.window_size = 40;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  opts.epsilon = 0.01;
  opts.prune_similar_states = false;
  core::Oreo oreo(&t, &gen, 0, opts);
  for (const Query& q : QtyRangeQueries(400, 50, 55)) oreo.Step(q);
  // Without pruning, only the max_states cap bounds the space.
  EXPECT_LE(oreo.registry().num_live(), opts.max_states);
}

TEST(OreoFacadeTest, ReorganizedFlagConsistentWithCosts) {
  Table t = MakeTable(2000, 33);
  QdTreeGenerator gen;
  OreoOptions opts;
  opts.alpha = 2.0;
  opts.generate_every = 40;
  opts.window_size = 40;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  core::Oreo oreo(&t, &gen, 0, opts);
  int64_t reorgs = 0;
  for (const Query& q : QtyRangeQueries(300, 50, 34)) {
    if (oreo.Step(q).reorganized) ++reorgs;
  }
  EXPECT_EQ(reorgs, oreo.num_switches());
  EXPECT_NEAR(oreo.total_reorg_cost(), 2.0 * static_cast<double>(reorgs), 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace oreo
