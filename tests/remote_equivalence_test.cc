// The remote-tier equivalence wall. The engine's determinism contract —
// bit-identical costs, switch decisions, decision traces, replay counters
// and partition CRCs for a fixed seed — must survive the storage moving to
// a slow, failure-prone remote tier, with and without the cross-shard
// SharedBlockCache (async prefetch on) in front of it:
//
//   remote(inmem) × {shared cache off, on} × {faults off, on}
//                 × threads {1, 8} × shards {1, 4}
//
// all equal the plain in-memory baseline. Injected transient faults are
// absorbed by the retry policy without touching any observable output, and
// the fault/retry accounting itself is run-invariant (the schedule is a
// pure function of the seed, not of thread timing).
//
// Runs under the TSan CI job (label `slow`).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "core/sharded_oreo.h"
#include "layout/qdtree_layout.h"
#include "storage/remote_backend.h"
#include "storage/shared_cache.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

constexpr uint64_t kSeed = 17;
constexpr size_t kRows = 3000;

OreoOptions BaseOpts(size_t num_threads, size_t num_shards,
                     std::shared_ptr<StorageBackend> backend) {
  OreoOptions opts;
  opts.seed = kSeed;
  opts.num_threads = num_threads;
  opts.num_shards = num_shards;
  opts.shard_routing = ShardRouting::kRange;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  opts.storage_backend = std::move(backend);
  return opts;
}

// Two workload phases so managers admit states and D-UMTS switches.
std::vector<Query> TwoPhaseStream() {
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, kRows, 150, 150, kSeed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, 150, kSeed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<int64_t>(i);
  }
  return stream;
}

struct RemoteConfig {
  bool remote = false;        // wrap the in-memory base in RemoteBackend
  bool faults = false;        // inject seeded transient faults
  bool shared_cache = false;  // cross-shard cache + async prefetch
};

std::shared_ptr<RemoteBackend> MakeFaultyRemote(bool faults) {
  RemoteBackendOptions ro;
  ro.sleep_for_real = false;  // deterministic accounting, fast wall
  if (faults) {
    ro.fault_rate = 0.25;
    ro.max_faults_per_key = 2;
    ro.max_retries = 5;
    ro.fault_seed = kSeed;
  }
  return MakeRemoteBackend(MakeInMemoryBackend(), ro);
}

// Everything a combo produces that must not depend on the storage tier,
// the cache, injected faults, or the pool size.
struct ComboFingerprint {
  std::vector<std::vector<int>> serving_states;
  std::vector<std::vector<std::tuple<int64_t, int, int>>> switch_events;
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;
  int64_t replay_switches = 0;
  uint64_t queries_executed = 0;
  uint64_t partitions_read = 0;
  uint64_t matches = 0;
  std::vector<std::pair<std::string, uint32_t>> crcs;  // dir-relative

  bool operator==(const ComboFingerprint& o) const {
    return serving_states == o.serving_states &&
           switch_events == o.switch_events && query_cost == o.query_cost &&
           reorg_cost == o.reorg_cost && num_switches == o.num_switches &&
           replay_switches == o.replay_switches &&
           queries_executed == o.queries_executed &&
           partitions_read == o.partitions_read && matches == o.matches &&
           crcs == o.crcs;
  }
};

ComboFingerprint RunCombo(const Table& t, const LayoutGenerator& gen,
                          const std::vector<Query>& stream,
                          const RemoteConfig& cfg, size_t threads,
                          size_t shards, const std::string& tag,
                          RemoteBackendStats* out_remote_stats = nullptr) {
  std::shared_ptr<RemoteBackend> remote;
  std::shared_ptr<StorageBackend> backend;
  if (cfg.remote) {
    remote = MakeFaultyRemote(cfg.faults);
    backend = remote;
  } else {
    backend = MakeInMemoryBackend();
  }
  OreoOptions opts = BaseOpts(threads, shards, backend);
  if (cfg.shared_cache) {
    SharedBlockCacheOptions cache_opts;
    cache_opts.prefetch_threads = 2;
    opts.shared_cache = MakeSharedBlockCache(cache_opts);
  }
  std::unique_ptr<OreoEngine> engine =
      MakeEngine(&t, &gen, /*time_column=*/0, opts);
  EXPECT_EQ(engine->num_shards(), shards);

  ComboFingerprint fp;
  EngineSimResult sim = engine->RunTrace(stream, /*record_trace=*/true);
  EXPECT_EQ(sim.shards.size(), shards);
  for (const SimResult& shard : sim.shards) {
    fp.serving_states.push_back(shard.serving_state);
    fp.switch_events.push_back(shard.switch_events);
  }
  fp.query_cost = sim.query_cost;
  fp.reorg_cost = sim.reorg_cost;
  fp.num_switches = sim.num_switches;

  const std::string dir = testutil::ScratchDir("remote_eq_" + tag);
  auto replay = engine->ReplayTrace(sim, /*stride=*/3, dir, threads,
                                    /*batch_size=*/4);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) {
    fp.replay_switches = replay->num_switches;
    fp.queries_executed = replay->queries_executed;
    fp.partitions_read = replay->partitions_read;
    fp.matches = replay->matches;
  }
  // CRCs read back through the remote tier itself: retries must also absorb
  // faults on this verification path.
  for (auto& [path, crc] : testutil::DirCrcs(*opts.storage_backend, dir)) {
    fp.crcs.emplace_back(path.substr(dir.size()), crc);
  }
  if (out_remote_stats != nullptr && remote != nullptr) {
    *out_remote_stats = remote->remote_stats();
  }
  if (cfg.shared_cache) {
    // The tier was actually exercised, not bypassed.
    EXPECT_GT(opts.shared_cache->stats().hits, 0u)
        << "shared cache saw no traffic: " << tag;
  }
  return fp;
}

TEST(RemoteEquivalenceTest, RemoteTierIsBitIdenticalToLocalUnderFaults) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();

  for (size_t shards : {size_t{1}, size_t{4}}) {
    ComboFingerprint baseline =
        RunCombo(t, gen, stream, RemoteConfig{}, /*threads=*/1, shards,
                 "base_s" + std::to_string(shards));
    ASSERT_FALSE(baseline.crcs.empty());
    ASSERT_GT(baseline.num_switches, 0) << "fixture too tame";

    for (bool shared_cache : {false, true}) {
      for (bool faults : {false, true}) {
        for (size_t threads : {size_t{1}, size_t{8}}) {
          RemoteConfig cfg;
          cfg.remote = true;
          cfg.faults = faults;
          cfg.shared_cache = shared_cache;
          const std::string tag =
              std::string("remote_c") + (shared_cache ? "1" : "0") + "_f" +
              (faults ? "1" : "0") + "_t" + std::to_string(threads) + "_s" +
              std::to_string(shards);
          RemoteBackendStats remote_stats;
          ComboFingerprint combo = RunCombo(t, gen, stream, cfg, threads,
                                            shards, tag, &remote_stats);
          EXPECT_TRUE(combo == baseline)
              << "fingerprint diverged from the local baseline: " << tag;
          if (faults) {
            EXPECT_GT(remote_stats.injected_faults, 0u)
                << "fault injection never fired: " << tag;
            EXPECT_EQ(remote_stats.exhausted, 0u)
                << "a transient fault leaked through the retries: " << tag;
          } else {
            EXPECT_EQ(remote_stats.injected_faults, 0u);
          }
        }
      }
    }
  }
}

// The fault/retry accounting itself is deterministic on the synchronous
// replay path: same seed, same config => the same number of injected
// faults, retries and backoff microseconds, run after run.
TEST(RemoteEquivalenceTest, FaultAccountingIsRunInvariant) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();

  RemoteConfig cfg;
  cfg.remote = true;
  cfg.faults = true;
  // Same tag on purpose: the fault schedule is keyed on (seed, op, path)
  // and the replay paths embed the directory, so run invariance is defined
  // over identical directories (fresh backends each run).
  RemoteBackendStats first, second;
  ComboFingerprint fp_a = RunCombo(t, gen, stream, cfg, /*threads=*/1,
                                   /*shards=*/1, "acct", &first);
  ComboFingerprint fp_b = RunCombo(t, gen, stream, cfg, /*threads=*/1,
                                   /*shards=*/1, "acct", &second);
  EXPECT_TRUE(fp_a == fp_b);
  EXPECT_GT(first.injected_faults, 0u);
  EXPECT_EQ(first.ops, second.ops);
  EXPECT_EQ(first.attempts, second.attempts);
  EXPECT_EQ(first.injected_faults, second.injected_faults);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.exhausted, second.exhausted);
  EXPECT_EQ(first.backoff_sleep_us, second.backoff_sleep_us);
}

// Live streaming on the full remote stack (remote tier + shared cache +
// async prefetch + injected faults): matches are ground truth at all times
// and the logical accounting equals the local baseline's.
TEST(RemoteEquivalenceTest, StreamingOnRemoteStackMatchesGroundTruth) {
  QdTreeGenerator gen;
  Table t = testutil::MakeEventTable(kRows, kSeed);
  std::vector<Query> stream = TwoPhaseStream();
  std::vector<uint64_t> expected;
  for (const Query& q : stream) expected.push_back(CountMatches(t, q));

  struct StreamingFingerprint {
    double query_cost = 0.0;
    double reorg_cost = 0.0;
    int64_t num_switches = 0;
  };
  StreamingFingerprint baseline;
  bool have_baseline = false;
  for (bool remote_stack : {false, true}) {
    OreoOptions opts = BaseOpts(/*num_threads=*/8, /*num_shards=*/4,
                                remote_stack
                                    ? MakeFaultyRemote(/*faults=*/true)
                                    : MakeInMemoryBackend());
    if (remote_stack) {
      SharedBlockCacheOptions cache_opts;
      cache_opts.prefetch_threads = 2;
      opts.shared_cache = MakeSharedBlockCache(cache_opts);
    }
    std::unique_ptr<OreoEngine> engine =
        MakeEngine(&t, &gen, /*time_column=*/0, opts);
    std::string dir = testutil::ScratchDir(
        remote_stack ? "remote_eq_stream_remote" : "remote_eq_stream_local");
    ASSERT_TRUE(engine->AttachPhysical(dir, /*store_threads=*/2).ok());

    size_t qi = 0;
    for (const QueryBatch& b : MakeBatches(stream, /*batch_size=*/32)) {
      engine->RunBatch(b);
      auto exec = engine->ExecuteBatchPhysical(b.queries);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      for (const auto& per_query : exec->per_query) {
        ASSERT_EQ(per_query.matches, expected[qi])
            << "remote_stack=" << remote_stack << " query " << qi;
        ++qi;
      }
      engine->SyncPhysical();
    }
    engine->WaitForReorgs();

    StreamingFingerprint fp{engine->total_query_cost(),
                            engine->total_reorg_cost(),
                            engine->num_switches()};
    if (!have_baseline) {
      baseline = fp;
      have_baseline = true;
      EXPECT_GT(fp.num_switches, 0) << "fixture too tame";
    } else {
      EXPECT_EQ(fp.query_cost, baseline.query_cost);
      EXPECT_EQ(fp.reorg_cost, baseline.reorg_cost);
      EXPECT_EQ(fp.num_switches, baseline.num_switches);
      EXPECT_GT(opts.shared_cache->stats().hits, 0u)
          << "the shared cache never served the streaming scans";
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace oreo
