// The batched==serial equivalence wall for PR 3's batching + incremental
// statistics work. Three contracts are pinned here, for batch sizes
// {1, 7, 64} × thread counts {1, 8}:
//
//   1. Oreo::RunBatch produces bit-identical costs, switch decisions and
//      serving-state traces to feeding the same stream through Step one
//      query at a time.
//   2. PhysicalStore::ExecuteQueryBatch produces bit-identical per-query
//      counters to per-query ExecuteQuery, and a batched ReplayPhysical
//      leaves bit-identical partition files (CRCs) behind.
//   3. The Layout Manager's incremental per-(state, chunk) cost cache
//      changes no admission, eviction, pruning or switch decision versus
//      from-scratch re-evaluation — while measurably reducing the number of
//      cost evaluations actually executed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/background.h"
#include "core/oreo.h"
#include "core/physical.h"
#include "layout/qdtree_layout.h"
#include "layout/sorted_layout.h"
#include "sampling/workload_stats.h"
#include "test_util.h"

namespace oreo {
namespace core {
namespace {

namespace fs = std::filesystem;

constexpr size_t kBatchSizes[] = {1, 7, 64};
constexpr size_t kThreadCounts[] = {1, 8};

// CRCs of every remaining object in `dir`, in path order, read through the
// backend (after a replay the remaining .blk objects are exactly the final
// layout's partitions). Paths are stripped: replays into different scratch
// dirs must still fingerprint identically.
std::vector<uint32_t> DirCrcs(StorageBackend& backend,
                              const std::string& dir) {
  std::vector<uint32_t> crcs;
  for (const auto& [path, crc] : testutil::DirCrcs(backend, dir)) {
    crcs.push_back(crc);
  }
  return crcs;
}

// ------------------------------------------------- Oreo::RunBatch wall ----

OreoOptions SmallOreoOptions(uint64_t seed, size_t num_threads) {
  OreoOptions opts;
  opts.seed = seed;
  opts.num_threads = num_threads;
  opts.window_size = 60;
  opts.generate_every = 60;
  opts.max_states = 4;  // small cap: exercise eviction + pruning paths
  opts.target_partitions = 8;
  opts.dataset_sample_rows = 400;
  return opts;
}

// Two workload phases so the manager admits states and D-UMTS switches.
std::vector<Query> TwoPhaseStream(uint64_t seed) {
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, 3000, 150, 150, seed + 1);
  std::vector<Query> phase2 =
      testutil::MakeRangeWorkload(1, 1000, 50, 150, seed + 2);
  stream.insert(stream.end(), phase2.begin(), phase2.end());
  return stream;
}

struct LogicalFingerprint {
  std::vector<int> states;
  std::vector<double> costs;
  std::vector<bool> reorganized;
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;
  size_t num_total_states = 0;

  bool operator==(const LogicalFingerprint& o) const {
    return states == o.states && costs == o.costs &&
           reorganized == o.reorganized && query_cost == o.query_cost &&
           reorg_cost == o.reorg_cost && num_switches == o.num_switches &&
           num_total_states == o.num_total_states;
  }
};

void RecordStep(const Oreo::StepResult& step, LogicalFingerprint* fp) {
  fp->states.push_back(step.state);
  fp->costs.push_back(step.query_cost);
  fp->reorganized.push_back(step.reorganized);
}

void FinishFingerprint(const Oreo& oreo, LogicalFingerprint* fp) {
  fp->query_cost = oreo.total_query_cost();
  fp->reorg_cost = oreo.total_reorg_cost();
  fp->num_switches = oreo.num_switches();
  fp->num_total_states = oreo.registry().num_total();
}

TEST(BatchEquivalenceTest, RunBatchMatchesStepAtEveryBatchSizeAndThreadCount) {
  QdTreeGenerator gen;
  const uint64_t seed = 5;
  Table t = testutil::MakeEventTable(3000, seed);
  std::vector<Query> stream = TwoPhaseStream(seed);

  for (size_t threads : kThreadCounts) {
    LogicalFingerprint serial;
    {
      Oreo oreo(&t, &gen, /*time_column=*/0,
                SmallOreoOptions(seed, threads));
      for (const Query& q : stream) RecordStep(oreo.Step(q), &serial);
      FinishFingerprint(oreo, &serial);
    }
    ASSERT_GT(serial.num_switches, 0) << "fixture too tame to test switches";

    for (size_t batch_size : kBatchSizes) {
      LogicalFingerprint batched;
      Oreo oreo(&t, &gen, /*time_column=*/0, SmallOreoOptions(seed, threads));
      double batch_cost_total = 0.0;
      for (const QueryBatch& b : MakeBatches(stream, batch_size)) {
        Oreo::BatchResult result = oreo.RunBatch(b);
        ASSERT_EQ(result.steps.size(), b.size());
        batch_cost_total += result.query_cost;
        for (const Oreo::StepResult& step : result.steps) {
          RecordStep(step, &batched);
        }
      }
      FinishFingerprint(oreo, &batched);
      EXPECT_TRUE(serial == batched)
          << "logical fingerprint diverged at batch_size=" << batch_size
          << " threads=" << threads;
      // The per-batch accounting must add up to the global accounting.
      EXPECT_DOUBLE_EQ(batch_cost_total, oreo.total_query_cost());
    }
  }
}

// ------------------------------------- physical batched-execution wall ----

TEST(BatchEquivalenceTest, ExecuteQueryBatchMatchesPerQueryExecution) {
  const uint64_t seed = 77;
  Table t = testutil::MakeEventTable(4000, seed);
  LayoutInstance by_ts =
      testutil::MakeSortedInstance(t, 0, 16, "by_ts", /*sample_seed=*/3);

  // Mixed selectivity plus a full scan: batches must interleave wide and
  // narrow fan-outs without perturbing any per-query counter.
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(0, 4000, 300, 40, seed + 1);
  std::vector<Query> narrow =
      testutil::MakeRangeWorkload(1, 1000, 30, 23, seed + 2);
  queries.insert(queries.end(), narrow.begin(), narrow.end());
  queries.push_back(Query{});  // conjunct-free full scan

  for (size_t threads : kThreadCounts) {
    std::string dir = testutil::ScratchDir("batch_eq_exec_" +
                                           std::to_string(threads));
    PhysicalStore store(dir, threads, testutil::TestBackend("inmem"));
    auto mat = store.MaterializeLayout(t, by_ts);
    ASSERT_TRUE(mat.ok()) << mat.status().ToString();

    std::vector<PhysicalStore::QueryExec> serial;
    for (const Query& q : queries) {
      auto exec = store.ExecuteQuery(q);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      serial.push_back(*exec);
    }

    for (size_t batch_size : kBatchSizes) {
      std::vector<PhysicalStore::QueryExec> batched;
      for (const QueryBatch& b : MakeBatches(queries, batch_size)) {
        auto result = store.ExecuteQueryBatch(b.queries);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ASSERT_EQ(result->per_query.size(), b.size());
        for (const auto& exec : result->per_query) batched.push_back(exec);
      }
      ASSERT_EQ(batched.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].partitions_read, batched[i].partitions_read)
            << "query " << i << " batch_size " << batch_size;
        EXPECT_EQ(serial[i].rows_scanned, batched[i].rows_scanned);
        EXPECT_EQ(serial[i].matches, batched[i].matches);
        EXPECT_EQ(serial[i].bytes_read, batched[i].bytes_read);
      }
    }
    fs::remove_all(dir);
  }
}

TEST(BatchEquivalenceTest, BatchedReplayMatchesCountersAndFileCrcs) {
  Table t = testutil::MakeEventTable(2000, 31);
  StateRegistry reg;
  int s0 = reg.Add(testutil::MakeSortedInstance(t, 0, 8, "s0", 3));
  int s1 = reg.Add(testutil::MakeSortedInstance(t, 1, 8, "s1", 3));
  std::vector<Query> queries =
      testutil::MakeRangeWorkload(1, 1000, 100, 60, 32);
  SimResult sim;
  sim.serving_state.assign(queries.size(), s0);
  for (size_t i = 20; i < queries.size(); ++i) sim.serving_state[i] = s1;
  for (size_t i = 44; i < queries.size(); ++i) sim.serving_state[i] = s0;

  std::shared_ptr<StorageBackend> backend = testutil::TestBackend("inmem");
  std::string base_dir = testutil::ScratchDir("batch_eq_replay_base");
  auto baseline = ReplayPhysical(t, reg, sim, queries, /*stride=*/2, base_dir,
                                 /*num_threads=*/1, /*batch_size=*/1, backend);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::vector<uint32_t> base_crcs = DirCrcs(*backend, base_dir);
  ASSERT_FALSE(base_crcs.empty());

  for (size_t threads : kThreadCounts) {
    for (size_t batch_size : kBatchSizes) {
      std::string dir = testutil::ScratchDir(
          "batch_eq_replay_" + std::to_string(threads) + "_" +
          std::to_string(batch_size));
      auto replay = ReplayPhysical(t, reg, sim, queries, /*stride=*/2, dir,
                                   threads, batch_size, backend);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      EXPECT_EQ(baseline->num_switches, replay->num_switches);
      EXPECT_EQ(baseline->queries_executed, replay->queries_executed);
      EXPECT_EQ(baseline->partitions_read, replay->partitions_read);
      EXPECT_EQ(baseline->matches, replay->matches);
      EXPECT_EQ(base_crcs, DirCrcs(*backend, dir))
          << "partition files diverged at threads=" << threads
          << " batch_size=" << batch_size;
      fs::remove_all(dir);
    }
  }
  fs::remove_all(base_dir);
}

// -------------------------------- incremental layout-generation wall ----

TEST(BatchEquivalenceTest, IncrementalCostCacheChangesNoDecision) {
  QdTreeGenerator gen;
  for (uint64_t seed : {5u, 6u}) {
    Table t = testutil::MakeEventTable(3000, seed);
    std::vector<Query> stream = TwoPhaseStream(seed);

    OreoOptions scratch_opts = SmallOreoOptions(seed, /*num_threads=*/8);
    scratch_opts.incremental_cost_cache = false;
    Oreo scratch(&t, &gen, 0, scratch_opts);
    SimResult rs = scratch.Run(stream, /*record_trace=*/true);

    OreoOptions cached_opts = SmallOreoOptions(seed, /*num_threads=*/8);
    cached_opts.incremental_cost_cache = true;
    Oreo cached(&t, &gen, 0, cached_opts);
    SimResult rc = cached.Run(stream, /*record_trace=*/true);

    // Bit-identical decisions and accounting: exact equality intentional.
    EXPECT_EQ(rs.query_cost, rc.query_cost);
    EXPECT_EQ(rs.reorg_cost, rc.reorg_cost);
    EXPECT_EQ(rs.num_switches, rc.num_switches);
    EXPECT_EQ(rs.serving_state, rc.serving_state);
    EXPECT_EQ(rs.switch_events, rc.switch_events);
    EXPECT_EQ(rs.cumulative, rc.cumulative);
    EXPECT_EQ(rs.final_live_states, rc.final_live_states);

    // Identical candidates: every generated state, admitted or not.
    const auto& ms = scratch.manager();
    const auto& mc = cached.manager();
    EXPECT_EQ(ms.generations_attempted(), mc.generations_attempted());
    EXPECT_EQ(ms.candidates_admitted(), mc.candidates_admitted());
    EXPECT_EQ(ms.candidates_rejected(), mc.candidates_rejected());
    ASSERT_EQ(scratch.registry().num_total(), cached.registry().num_total());
    for (size_t id = 0; id < scratch.registry().num_total(); ++id) {
      EXPECT_EQ(scratch.registry().Get(static_cast<int>(id)).name(),
                cached.registry().Get(static_cast<int>(id)).name());
    }

    // ... while doing measurably less cost-evaluation work.
    EXPECT_GT(mc.cost_evals_reused(), 0u) << "cache never hit";
    EXPECT_LT(mc.cost_evals_computed(), ms.cost_evals_computed())
        << "cache did not reduce work";
    EXPECT_EQ(ms.cost_evals_reused(), 0u);
    // Scratch and cached paths answer the same total evaluation demand.
    EXPECT_EQ(ms.cost_evals_computed(),
              mc.cost_evals_computed() + mc.cost_evals_reused());
  }
}

// ------------------------------------ high-throughput client scenario ----

// Many queries arrive between reorganization cadences: the foreground
// executes whole batches against a snapshot while the background rewrites
// the layout; generation() tells the client when to refresh its snapshot.
// Counters must match a fully serial execution of the same plan.
TEST(BatchEquivalenceTest, HighThroughputClientOverlapsBatchesWithReorg) {
  Table t = testutil::MakeEventTable(3000, 91);
  LayoutInstance by_ts =
      testutil::MakeSortedInstance(t, 0, 12, "by_ts", /*sample_seed=*/3);
  LayoutInstance by_qty =
      testutil::MakeSortedInstance(t, 1, 12, "by_qty", /*sample_seed=*/3);

  std::vector<Query> stream =
      testutil::MakeRangeWorkload(1, 1000, 120, 96, 92);
  const size_t batch_size = 16;

  // Serial reference: all batches on the initial layout (snapshot shields
  // the foreground from the concurrent rewrite until it opts in).
  std::vector<uint64_t> expected;
  {
    std::string dir = testutil::ScratchDir("batch_eq_client_ref");
    PhysicalStore store(dir, 1);
    ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());
    for (const Query& q : stream) {
      auto exec = store.ExecuteQuery(q);
      ASSERT_TRUE(exec.ok());
      expected.push_back(exec->matches);
    }
    fs::remove_all(dir);
  }

  std::string dir = testutil::ScratchDir("batch_eq_client");
  PhysicalStore store(dir, 4);
  ASSERT_TRUE(store.MaterializeLayout(t, by_ts).ok());
  BackgroundReorganizer bg(&store, &t);
  const uint64_t gen_before = bg.generation();

  PhysicalStore::Snapshot snap = store.GetSnapshot();
  ASSERT_TRUE(bg.Submit(&by_qty));

  std::vector<uint64_t> got;
  bool refreshed = false;
  for (const QueryBatch& b : MakeBatches(stream, batch_size)) {
    auto result = store.ExecuteQueryBatchOnSnapshot(snap, b.queries);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const auto& exec : result->per_query) got.push_back(exec.matches);
    // Between batches: adopt the new layout once the background rewrite is
    // done. (For the counter comparison we keep querying the *old* snapshot
    // until then — exactly what a real client sees mid-rewrite.)
    if (!refreshed && bg.generation() > gen_before) {
      ASSERT_TRUE(bg.last_status().ok()) << bg.last_status().ToString();
      refreshed = true;
    }
  }
  EXPECT_EQ(got, expected)
      << "snapshot isolation broke under background reorganization";

  bg.Wait();
  EXPECT_EQ(bg.generation(), gen_before + 1);
  EXPECT_EQ(store.current_instance(), &by_qty);
  store.Vacuum();  // no snapshot readers remain

  // After adopting the new layout, batched results must equal per-query
  // results on the reorganized files too.
  PhysicalStore::Snapshot fresh = store.GetSnapshot();
  auto batched = store.ExecuteQueryBatchOnSnapshot(
      fresh, {stream[0], stream[1], Query{}});
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < 2; ++i) {
    auto single = store.ExecuteQueryOnSnapshot(fresh, stream[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->matches, batched->per_query[i].matches);
  }
  EXPECT_EQ(batched->per_query[2].matches, t.num_rows());
  fs::remove_all(dir);
}

// -------------------------------------------- WorkloadStatistics unit ----

TEST(BatchEquivalenceTest, WorkloadStatisticsChunkVersionsTrackMutations) {
  WorkloadStatistics::Options opt;
  opt.sample_capacity = 16;
  opt.lambda = 0.05;
  opt.chunk_size = 4;
  WorkloadStatistics stats(opt, Rng(7));

  std::vector<Query> queries =
      testutil::MakeRangeWorkload(0, 1000, 50, 400, 8, /*assign_ids=*/true);
  for (size_t i = 0; i < 16; ++i) stats.Observe(queries[i]);
  EXPECT_EQ(stats.sample_size(), 16u);
  EXPECT_EQ(stats.queries_seen(), 16u);

  auto chunks = stats.SampleChunks();
  ASSERT_EQ(chunks.size(), 4u);
  uint64_t version_sum = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.queries.size(), 4u);
    version_sum += c.version;
  }
  // Filling bumps each slot's chunk exactly once.
  EXPECT_EQ(version_sum, 16u);
  EXPECT_EQ(stats.sample_version(), 16u);

  // Feed the rest: every further mutation must bump exactly one chunk
  // version, and the flattened chunks must equal SampleItems().
  for (size_t i = 16; i < queries.size(); ++i) {
    const uint64_t before = stats.sample_version();
    auto chunks_before = stats.SampleChunks();
    stats.Observe(queries[i]);
    const uint64_t delta = stats.sample_version() - before;
    ASSERT_LE(delta, 1u);
    auto chunks_after = stats.SampleChunks();
    size_t bumped = 0;
    for (size_t c = 0; c < chunks_after.size(); ++c) {
      bumped += chunks_after[c].version != chunks_before[c].version ? 1 : 0;
    }
    EXPECT_EQ(bumped, delta);
  }
  EXPECT_GT(stats.sample_version(), 16u) << "no replacement ever happened";

  std::vector<Query> flat;
  for (const auto& c : stats.SampleChunks()) {
    EXPECT_EQ(c.first_slot, c.index * opt.chunk_size);
    for (const Query& q : c.queries) flat.push_back(q);
  }
  std::vector<Query> items = stats.SampleItems();
  ASSERT_EQ(flat.size(), items.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].id, items[i].id);
  }

  // Aggregates: one Between predicate per query, all on column 0.
  EXPECT_EQ(stats.queries_seen(), queries.size());
  EXPECT_EQ(stats.template_counts().at(-1), queries.size());
  ASSERT_EQ(stats.column_predicate_counts().size(), 1u);
  EXPECT_EQ(stats.column_predicate_counts()[0], queries.size());
  EXPECT_DOUBLE_EQ(stats.mean_conjuncts(), 1.0);
}

TEST(BatchEquivalenceTest, MakeBatchesCoversStreamInOrder) {
  std::vector<Query> stream =
      testutil::MakeRangeWorkload(0, 100, 10, 10, 3, /*assign_ids=*/true);
  for (size_t batch_size : {1u, 3u, 10u, 64u}) {
    auto batches = MakeBatches(stream, batch_size);
    size_t total = 0;
    int64_t next_id = 0;
    for (const QueryBatch& b : batches) {
      EXPECT_LE(b.size(), batch_size);
      EXPECT_FALSE(b.empty());
      for (const Query& q : b.queries) {
        EXPECT_EQ(q.id, next_id++);
      }
      total += b.size();
    }
    EXPECT_EQ(total, stream.size());
    EXPECT_EQ(batches.size(), (stream.size() + batch_size - 1) / batch_size);
  }
  EXPECT_TRUE(MakeBatches({}, 4).empty());
}

}  // namespace
}  // namespace core
}  // namespace oreo
