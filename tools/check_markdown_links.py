#!/usr/bin/env python3
"""Checks that relative markdown links resolve to real files.

Scans the given markdown files (or the repo's default doc set) for inline
links and images `[text](target)`, ignores external schemes (http, https,
mailto) and pure in-page anchors, and verifies every relative target exists
on disk relative to the file containing the link. Exits non-zero listing
every broken link.

Usage: tools/check_markdown_links.py [file.md ...]
"""

import os
import re
import sys

# Inline links/images. Markdown link destinations cannot contain unescaped
# whitespace or ')' outside <>; this pattern covers the repo's usage.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

# SNIPPETS.md / PAPERS.md quote external material verbatim (including links
# to assets that live in other repos), so only the repo's own docs are
# checked by default.
DEFAULT_FILES = ["README.md", "ROADMAP.md", "CHANGES.md"]


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_targets(root):
    files = [f for f in DEFAULT_FILES if os.path.exists(os.path.join(root, f))]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join("docs", name))
    return [os.path.join(root, f) for f in files]


def check_file(path):
    broken = []
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if EXTERNAL_RE.match(target) or target.startswith("#"):
                    continue
                # Strip an in-page anchor from a file target.
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main(argv):
    root = repo_root()
    targets = [os.path.abspath(a) for a in argv[1:]] or default_targets(root)
    failures = 0
    for path in targets:
        for lineno, target in check_file(path):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken markdown link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(targets)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
