// oreo_server: multi-tenant OREO query server.
//
// Hosts one OreoEngine per tenant (telemetry datasets with distinct seeds)
// behind the wire protocol from src/server/wire.h.
//
// Default mode is a loopback demo: N client threads drive generated
// workloads through in-process connections — the full encode/frame/decode
// path — and the tool prints throughput plus the server's admission and
// batching counters.
//
//   ./build/tools/oreo_server --tenants 2 --clients 4 --queries 2000
//
// With --port the tool additionally accepts real TCP connections speaking
// the same protocol (one reader + one writer thread per connection) until
// interrupted; --port 0 binds an ephemeral port and prints it (the CI
// smoke test relies on that line):
//
//   ./build/tools/oreo_server --port 7447
//
// --weights sets per-tenant fair-share weights (comma-separated),
// --dispatchers sizes the shared scheduler pool, and --stats dumps the
// kStats wire snapshot before shutdown. --ingest-every N interleaves one
// kIngest mutation batch (--ingest-rows rows, every fourth batch also
// carrying a delete predicate) after every N queries of each client's
// stream, exercising the live-ingest wire path under fair scheduling.
//
// Every numeric flag is validated strictly: a malformed value (empty,
// non-numeric, trailing garbage, out of range) prints the usage message and
// exits 2 instead of silently running with a half-parsed configuration.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "server/client.h"
#include "server/server.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

// sigaction without SA_RESTART (std::signal on glibc sets it): the blocking
// accept() must fail with EINTR on Ctrl-C so the listener loop can observe
// g_stop and drain.
void InstallSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct Args {
  int tenants = 2;
  size_t rows = 20000;
  size_t queries = 2000;
  int clients = 4;
  int port = -1;  // -1 = loopback demo only; 0 = ephemeral TCP port
  size_t max_batch = 64;
  uint64_t max_delay_us = 200;
  size_t max_queue = 1024;
  size_t dispatchers = 2;
  std::vector<uint32_t> weights;  // per-tenant fair-share weights
  bool print_stats = false;       // dump the kStats snapshot at exit
  size_t ingest_every = 0;        // 0 = no ingest traffic
  size_t ingest_rows = 64;        // appended rows per ingest batch
};

void PrintUsage(FILE* out) {
  std::fprintf(out,
               "usage: oreo_server [--tenants N] [--rows R] [--queries Q]"
               " [--clients C] [--port P (0 = ephemeral)] [--max-batch N]"
               " [--max-delay-us T] [--max-queue N] [--dispatchers K]"
               " [--weights W1,W2,...] [--ingest-every N] [--ingest-rows R]"
               " [--stats]\n");
}

[[noreturn]] void UsageError(const std::string& flag, const std::string& value,
                             const char* why) {
  std::fprintf(stderr, "oreo_server: bad value \"%s\" for %s: %s\n",
               value.c_str(), flag.c_str(), why);
  PrintUsage(stderr);
  std::exit(2);
}

// Strict decimal parse: the whole token must be digits and the result must
// land in [min, max]. Anything else (empty token, sign, trailing garbage,
// overflow) is a usage error — never a silently half-parsed config.
uint64_t ParseUint(const std::string& flag, const std::string& value,
                   uint64_t min, uint64_t max) {
  if (value.empty()) UsageError(flag, value, "expected a number");
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      UsageError(flag, value, "expected an unsigned decimal number");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (parsed > (UINT64_MAX - digit) / 10) {
      UsageError(flag, value, "value out of range");
    }
    parsed = parsed * 10 + digit;
  }
  if (parsed < min || parsed > max) {
    UsageError(flag, value, "value out of range");
  }
  return parsed;
}

// Comma-separated list of positive weights, e.g. "3,1". Strict: empty
// tokens ("3,,1", a trailing comma) and non-numeric tokens are usage
// errors, because a silently dropped weight shifts every later tenant's
// share one slot over.
std::vector<uint32_t> ParseWeights(const std::string& spec) {
  std::vector<uint32_t> weights;
  size_t start = 0;
  while (true) {
    const size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    weights.push_back(static_cast<uint32_t>(
        ParseUint("--weights", tok, 1, UINT32_MAX)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return weights;
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    const size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    }
    auto next = [&]() -> std::string {
      if (eq != std::string::npos) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "oreo_server: missing value for %s\n",
                     flag.c_str());
        PrintUsage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--tenants") {
      args.tenants = static_cast<int>(ParseUint(flag, next(), 1, 1024));
    } else if (flag == "--rows") {
      args.rows = ParseUint(flag, next(), 1, UINT64_MAX);
    } else if (flag == "--queries") {
      args.queries = ParseUint(flag, next(), 0, UINT64_MAX);
    } else if (flag == "--clients") {
      args.clients = static_cast<int>(ParseUint(flag, next(), 0, 4096));
    } else if (flag == "--port") {
      args.port = static_cast<int>(ParseUint(flag, next(), 0, 65535));
    } else if (flag == "--max-batch") {
      args.max_batch = ParseUint(flag, next(), 1, UINT64_MAX);
    } else if (flag == "--max-delay-us") {
      args.max_delay_us = ParseUint(flag, next(), 0, UINT64_MAX);
    } else if (flag == "--max-queue") {
      args.max_queue = ParseUint(flag, next(), 1, UINT64_MAX);
    } else if (flag == "--dispatchers") {
      args.dispatchers = ParseUint(flag, next(), 1, 1024);
    } else if (flag == "--weights") {
      args.weights = ParseWeights(next());
    } else if (flag == "--ingest-every") {
      args.ingest_every = ParseUint(flag, next(), 0, UINT64_MAX);
    } else if (flag == "--ingest-rows") {
      args.ingest_rows = ParseUint(flag, next(), 1, 100000);
    } else if (flag == "--stats") {
      args.print_stats = true;
    } else if (flag == "--help") {
      PrintUsage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "oreo_server: unknown flag %s\n", flag.c_str());
      PrintUsage(stderr);
      std::exit(2);
    }
  }
  return args;
}

// One TCP connection: a reader thread feeds socket bytes into the session,
// a writer thread pumps reply bytes back out. Teardown order is
// load-bearing: CloseResponses wakes the writer (which drains any final
// reply, e.g. the kBadRequest for a poisoned stream, then sees empty and
// exits), the writer is joined, and only then is the session destroyed —
// the writer must never touch a freed session/outbox.
void ServeConnection(server::OreoServer* srv, int fd) {
  std::unique_ptr<server::ServerSession> session = srv->OpenSession();
  server::ServerSession* sess = session.get();
  std::thread writer([sess, fd] {
    while (true) {
      std::string bytes = sess->WaitResponses();
      if (bytes.empty()) return;  // outbox closed and drained
      size_t off = 0;
      while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n <= 0) return;  // peer gone; late replies drop in the outbox
        off += static_cast<size_t>(n);
      }
    }
  });
  char buf[4096];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF or error: client disconnected
    session->Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (session->broken()) break;  // framing lost; drop the connection
  }
  ::shutdown(fd, SHUT_RD);
  session->CloseResponses();  // writer drains buffered replies, then exits
  writer.join();
  session.reset();  // in-flight replies now drop silently in the outbox
  ::close(fd);
}

void RunTcpListener(server::OreoServer* srv, int port) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd);
    return;
  }
  // Report the bound port: with --port 0 the kernel picked an ephemeral one
  // (the TCP smoke test parses this line).
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port = static_cast<int>(ntohs(addr.sin_port));
  }
  std::printf("listening on 127.0.0.1:%d (Ctrl-C to stop)\n", port);
  std::fflush(stdout);
  std::vector<std::thread> conns;
  while (!g_stop) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop) break;
      continue;
    }
    conns.emplace_back([srv, fd] { ServeConnection(srv, fd); });
  }
  ::close(listen_fd);
  for (std::thread& t : conns) t.join();
}

// One synthetic telemetry-schema ingest batch (fresh rows, arrival times
// past the seeded table's 180-day span so the drift is visible to zone
// maps). Every fourth batch also deletes the highest-severity rows —
// exercising the tombstone path alongside appends.
server::WireIngest MakeIngestBatch(size_t rows, uint64_t batch_index,
                                   Rng* rng) {
  server::WireIngest ingest;
  ingest.rows.reserve(rows);
  constexpr int64_t kBaseArrival = 181LL * 24 * 3600;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(10);
    row.push_back(Value(kBaseArrival +
                        static_cast<int64_t>(batch_index * rows + r)));
    row.push_back(Value("collector_live"));
    row.push_back(Value(rng->UniformInt(1, 5000)));                // job_id
    row.push_back(Value(rng->UniformInt(0, 1) ? "SUCCESS" : "FAILED"));
    row.push_back(Value(static_cast<double>(rng->UniformInt(1, 5000))));
    row.push_back(Value(static_cast<double>(rng->UniformInt(1, 1 << 20))));
    row.push_back(Value("host_live"));
    row.push_back(Value(rng->UniformInt(0, 5)));                   // severity
    row.push_back(Value("team_live"));
    row.push_back(Value(rng->UniformInt(1, 100)));                 // records
    ingest.rows.push_back(std::move(row));
  }
  if (batch_index % 4 == 3) {
    Query del;
    del.conjuncts.push_back(Predicate::Ge(/*severity=*/7, Value(int64_t{5})));
    ingest.deletes.push_back(std::move(del));
  }
  return ingest;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  InstallSignalHandlers();

  // Tenant fleet: telemetry datasets with per-tenant seeds, so layouts and
  // workloads differ across tenants.
  std::vector<workloads::WorkloadDataset> datasets;
  datasets.reserve(args.tenants);
  for (int t = 0; t < args.tenants; ++t) {
    datasets.push_back(workloads::MakeTelemetry(args.rows, 100 + t));
  }
  QdTreeGenerator generator;

  server::ServerOptions sopts;
  sopts.dispatchers = args.dispatchers;
  server::OreoServer srv(sopts);
  for (int t = 0; t < args.tenants; ++t) {
    server::TenantConfig cfg;
    cfg.name = "telemetry_" + std::to_string(t);
    cfg.table = &datasets[t].table;
    cfg.generator = &generator;
    cfg.time_column = datasets[t].time_column;
    cfg.options.target_partitions = 16;
    cfg.batch.max_batch = args.max_batch;
    cfg.batch.max_delay_us = args.max_delay_us;
    cfg.batch.max_queue = args.max_queue;
    if (static_cast<size_t>(t) < args.weights.size()) {
      cfg.weight = std::max<uint32_t>(1, args.weights[t]);
    }
    OREO_CHECK_OK(srv.AddTenant(static_cast<uint32_t>(t + 1), cfg));
  }
  OREO_CHECK_OK(srv.Start());
  std::printf("serving %d tenant(s) over %zu dispatcher(s), batch policy: "
              "max_batch=%zu max_delay_us=%llu max_queue=%zu\n",
              args.tenants, args.dispatchers, args.max_batch,
              static_cast<unsigned long long>(args.max_delay_us),
              args.max_queue);

  // Loopback demo: each client thread owns one connection and drives one
  // tenant's generated workload through the wire path.
  std::vector<std::thread> clients;
  for (int c = 0; c < args.clients; ++c) {
    clients.emplace_back([&srv, &datasets, &args, c] {
      const uint32_t tenant =
          static_cast<uint32_t>(c % args.tenants) + 1;
      workloads::WorkloadOptions wopts;
      wopts.num_queries = args.queries;
      // Template drift scaled to the stream: the generator requires
      // num_queries >= num_segments * min_segment_length.
      wopts.num_segments = std::max<size_t>(
          1, std::min<size_t>(5, args.queries / 50));
      wopts.seed = 1000 + static_cast<uint64_t>(c);
      workloads::Workload workload = workloads::GenerateWorkload(
          datasets[tenant - 1].templates, wopts);
      server::LoopbackClient client(&srv);
      Rng ingest_rng(9000 + static_cast<uint64_t>(c));
      size_t ok = 0, rejected = 0;
      size_t ingested_batches = 0, ingested_rows = 0;
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        Result<server::QueryReply> reply =
            client.Call(tenant, workload.queries[qi]);
        if (!reply.ok()) break;
        if (reply->status == server::ReplyStatus::kOk) ++ok;
        else ++rejected;
        if (args.ingest_every > 0 && (qi + 1) % args.ingest_every == 0) {
          server::WireIngest batch = MakeIngestBatch(
              args.ingest_rows, ingested_batches, &ingest_rng);
          Result<server::IngestReply> ack = client.CallIngest(tenant, batch);
          if (!ack.ok()) break;
          if (ack->status == server::ReplyStatus::kOk) {
            ++ingested_batches;
            ingested_rows += ack->rows_appended;
          } else {
            ++rejected;
          }
        }
      }
      if (args.ingest_every > 0) {
        std::printf(
            "client %d (tenant %u): %zu ok, %zu rejected, "
            "%zu ingest batches (%zu rows)\n",
            c, tenant, ok, rejected, ingested_batches, ingested_rows);
      } else {
        std::printf("client %d (tenant %u): %zu ok, %zu rejected\n", c,
                    tenant, ok, rejected);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  if (args.port >= 0) RunTcpListener(&srv, args.port);

  if (args.print_stats) {
    // Fetch through the wire (a real kStats round trip), not the in-process
    // accessor: --stats doubles as coverage of the stats frame itself.
    server::LoopbackClient stats_client(&srv);
    Result<server::StatsSnapshot> snap = stats_client.FetchStats();
    OREO_CHECK(snap.ok()) << snap.status().ToString();
    std::printf("\nscheduler stats (wire snapshot):\n");
    for (const server::TenantStats& t : snap->tenants) {
      std::printf("  tenant %u: weight=%u deficit=%lld admitted=%llu "
                  "executed=%llu batches=%llu expired(adm/form/reply)="
                  "%llu/%llu/%llu\n",
                  t.tenant_id, t.weight, static_cast<long long>(t.deficit),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.executed),
                  static_cast<unsigned long long>(t.batches),
                  static_cast<unsigned long long>(t.expired_admission),
                  static_cast<unsigned long long>(t.expired_formation),
                  static_cast<unsigned long long>(t.expired_reply));
    }
  }

  srv.Shutdown();
  server::ServerStats stats = srv.stats();
  std::printf("\nserver stats:\n");
  std::printf("  sessions opened        %llu\n",
              static_cast<unsigned long long>(stats.sessions_opened));
  std::printf("  requests admitted      %llu\n",
              static_cast<unsigned long long>(stats.admitted));
  std::printf("  requests executed      %llu\n",
              static_cast<unsigned long long>(stats.executed));
  std::printf("  batches dispatched     %llu (largest %llu)\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch_observed));
  std::printf("  rejected: backpressure %llu, shutdown %llu, "
              "unknown tenant %llu, malformed %llu\n",
              static_cast<unsigned long long>(stats.rejected_backpressure),
              static_cast<unsigned long long>(stats.rejected_shutdown),
              static_cast<unsigned long long>(stats.rejected_unknown_tenant),
              static_cast<unsigned long long>(stats.rejected_malformed));
  std::printf("  deadline expiries: admission %llu, formation %llu, "
              "reply %llu\n",
              static_cast<unsigned long long>(stats.expired_admission),
              static_cast<unsigned long long>(stats.expired_formation),
              static_cast<unsigned long long>(stats.expired_reply));
  std::printf("  ingest: %llu batches, %llu rows appended\n",
              static_cast<unsigned long long>(stats.ingest_batches),
              static_cast<unsigned long long>(stats.ingest_rows));
  for (int t = 0; t < args.tenants; ++t) {
    core::OreoEngine* engine = srv.engine(static_cast<uint32_t>(t + 1));
    std::printf("  tenant %d: query cost %.1f, reorg cost %.1f, %lld "
                "switches\n",
                t + 1, engine->total_query_cost(), engine->total_reorg_cost(),
                static_cast<long long>(engine->num_switches()));
  }
  return 0;
}
