#!/usr/bin/env python3
"""CI smoke test for oreo_server's TCP path.

Launches the server tool on an ephemeral port, speaks the v2 wire protocol
over a real socket — a query round trip, a kStats round trip, and a
graceful v1 rejection — then SIGINTs the process and checks it drains
cleanly. This is the only coverage the TCP listener gets (unit and wall
tests drive loopback sessions), so it deliberately exercises the socket
reader/writer threads and the signal-driven shutdown.

Usage: python3 tools/tcp_smoke.py ./build/tools/oreo_server
"""

import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

MAGIC = 0x4F45524F  # "OREO"
VERSION = 2
LEGACY_VERSION = 1
HEADER = struct.Struct("<IHHQII")  # magic, version, type, req id, tenant, len
MSG_QUERY = 1
MSG_STATS = 2
MSG_REPLY = 129
MSG_STATS_REPLY = 130
STATUS_OK = 0
STATUS_BAD_REQUEST = 3

SERVER_STAT_FIELDS = 12  # u64 counters in the stats payload, in wire order
TENANT_STAT_U64S = 9  # per-tenant u64 counters after id/weight/deficit


def frame(msg_type, request_id, tenant_id, payload=b"", version=VERSION):
    return (
        HEADER.pack(MAGIC, version, msg_type, request_id, tenant_id,
                    len(payload))
        + payload
    )


def query_payload(query_id, deadline_us=0):
    # i64 id, i32 template, u64 deadline, u16 conjuncts (0 = full scan).
    return struct.pack("<qiQH", query_id, -1, deadline_us, 0)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise AssertionError(f"connection closed after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def read_reply(sock):
    header = HEADER.unpack(recv_exact(sock, HEADER.size))
    magic, version, msg_type, request_id, tenant_id, payload_len = header
    assert magic == MAGIC, f"bad magic {magic:#x}"
    assert version == VERSION, f"bad version {version}"
    payload = recv_exact(sock, payload_len)
    return msg_type, request_id, tenant_id, payload


def parse_query_reply(payload):
    status, msg_len = struct.unpack_from("<BI", payload, 0)
    off = 5
    message = payload[off : off + msg_len].decode()
    off += msg_len
    state, reorganized, has_physical, executed = struct.unpack_from(
        "<iBBB", payload, off
    )
    return status, message, state, bool(executed)


def parse_stats_reply(payload):
    (stats_version,) = struct.unpack_from("<H", payload, 0)
    assert stats_version == 1, f"unknown stats payload version {stats_version}"
    off = 2
    server = struct.unpack_from(f"<{SERVER_STAT_FIELDS}Q", payload, off)
    off += 8 * SERVER_STAT_FIELDS
    (tenant_count,) = struct.unpack_from("<I", payload, off)
    off += 4
    tenants = []
    for _ in range(tenant_count):
        tenant_id, weight = struct.unpack_from("<II", payload, off)
        off += 8
        (deficit,) = struct.unpack_from("<q", payload, off)
        off += 8
        counters = struct.unpack_from(f"<{TENANT_STAT_U64S}Q", payload, off)
        off += 8 * TENANT_STAT_U64S
        tenants.append((tenant_id, weight, deficit, counters))
    assert off == len(payload), f"trailing stats bytes: {len(payload) - off}"
    return server, tenants


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <path-to-oreo_server>")
    server_bin = sys.argv[1]

    proc = subprocess.Popen(
        [
            server_bin,
            "--tenants", "2",
            "--clients", "2",
            "--queries", "60",
            "--rows", "2000",
            "--weights", "3,1",
            "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    output_lines = []
    port_found = threading.Event()
    port = [None]

    def pump():
        for line in proc.stdout:
            output_lines.append(line)
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port[0] = int(m.group(1))
                port_found.set()
        port_found.set()  # EOF: unblock the waiter even on early exit

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    try:
        if not port_found.wait(timeout=120) or port[0] is None:
            raise AssertionError("server never printed its listen port")

        sock = socket.create_connection(("127.0.0.1", port[0]), timeout=30)
        sock.settimeout(30)

        # 1. A real-socket query round trip (tenant 1, full scan).
        sock.sendall(frame(MSG_QUERY, 7, 1, query_payload(1001)))
        msg_type, request_id, _, payload = read_reply(sock)
        assert msg_type == MSG_REPLY, f"expected kReply, got {msg_type}"
        assert request_id == 7, f"request id echo broken: {request_id}"
        status, message, _, executed = parse_query_reply(payload)
        assert status == STATUS_OK, f"query failed: {message!r}"
        assert executed, "kOk reply must carry executed=true"

        # 2. A query with a generous deadline budget still succeeds.
        sock.sendall(
            frame(MSG_QUERY, 8, 1, query_payload(1002, deadline_us=10**9))
        )
        msg_type, request_id, _, payload = read_reply(sock)
        status, message, _, _ = parse_query_reply(payload)
        assert (msg_type, request_id) == (MSG_REPLY, 8)
        assert status == STATUS_OK, f"deadline query failed: {message!r}"

        # 3. kStats round trip: counters include the loopback demo's work.
        sock.sendall(frame(MSG_STATS, 9, 0))
        msg_type, request_id, _, payload = read_reply(sock)
        assert msg_type == MSG_STATS_REPLY, f"expected kStatsReply: {msg_type}"
        assert request_id == 9
        server, tenants = parse_stats_reply(payload)
        # Third u64: requests executed. The two loopback demo clients ran 60
        # queries each before the listener came up, plus our two socket ones.
        executed_total = server[2]
        assert executed_total >= 122, f"executed={executed_total}, expected >=122"
        assert len(tenants) == 2, f"tenant count {len(tenants)}"
        weights = {t[0]: t[1] for t in tenants}
        assert weights == {1: 3, 2: 1}, f"weights on the wire: {weights}"

        # 4. A v1 frame gets a request-level upgrade hint, not a poisoned
        # stream: the same connection keeps serving afterwards.
        sock.sendall(
            frame(MSG_QUERY, 10, 1, query_payload(1003),
                  version=LEGACY_VERSION)
        )
        msg_type, request_id, _, payload = read_reply(sock)
        status, message, _, _ = parse_query_reply(payload)
        assert (msg_type, request_id) == (MSG_REPLY, 10)
        assert status == STATUS_BAD_REQUEST, f"v1 status {status}"
        assert "upgrade" in message, f"v1 hint missing: {message!r}"
        sock.sendall(frame(MSG_QUERY, 11, 1, query_payload(1004)))
        msg_type, request_id, _, payload = read_reply(sock)
        status, message, _, _ = parse_query_reply(payload)
        assert (msg_type, request_id, status) == (MSG_REPLY, 11, STATUS_OK), (
            f"stream did not survive the v1 frame: {status} {message!r}"
        )

        sock.close()

        # 5. SIGINT drains: the process exits 0 and prints its final stats.
        proc.send_signal(signal.SIGINT)
        rc = proc.wait(timeout=120)
        reader.join(timeout=30)
        assert rc == 0, f"server exited {rc} on SIGINT"
        tail = "".join(output_lines)
        assert "server stats:" in tail, "final stats block missing"
    except BaseException:
        proc.kill()
        proc.wait()
        sys.stdout.write("".join(output_lines))
        raise

    print(f"tcp_smoke: OK (port {port[0]}, {executed_total} queries executed)")


if __name__ == "__main__":
    main()
