#!/usr/bin/env python3
"""CI smoke test for oreo_server's TCP path.

Launches the server tool on an ephemeral port, speaks the v3 wire protocol
over a real socket — a query round trip, an ingest round trip that mutates
the tenant, a kStats round trip, and graceful retired-version (v1/v2)
rejections — then SIGINTs the process and checks it drains cleanly. This
is the only coverage the TCP listener gets (unit and wall tests drive
loopback sessions), so it deliberately exercises the socket reader/writer
threads and the signal-driven shutdown.

Usage: python3 tools/tcp_smoke.py ./build/tools/oreo_server
"""

import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

MAGIC = 0x4F45524F  # "OREO"
VERSION = 3
RETIRED_VERSIONS = (1, 2)
HEADER = struct.Struct("<IHHQII")  # magic, version, type, req id, tenant, len
MSG_QUERY = 1
MSG_STATS = 2
MSG_INGEST = 3
MSG_REPLY = 129
MSG_STATS_REPLY = 130
MSG_INGEST_REPLY = 131
STATUS_OK = 0
STATUS_BAD_REQUEST = 3

STATS_PAYLOAD_VERSION = 2
SERVER_STAT_FIELDS = 14  # u64 counters in the stats payload, in wire order
TENANT_STAT_U64S = 11  # per-tenant u64 counters after id/weight/deficit


def frame(msg_type, request_id, tenant_id, payload=b"", version=VERSION):
    return (
        HEADER.pack(MAGIC, version, msg_type, request_id, tenant_id,
                    len(payload))
        + payload
    )


def query_payload(query_id, deadline_us=0):
    # i64 id, i32 template, u64 deadline, u16 conjuncts (0 = full scan).
    return struct.pack("<qiQH", query_id, -1, deadline_us, 0)


def value_i64(v):
    return struct.pack("<bq", 0, v)


def value_f64(v):
    return struct.pack("<bd", 1, v)


def value_str(s):
    raw = s.encode()
    return struct.pack("<bI", 2, len(raw)) + raw


def telemetry_row(i):
    # The tool's tenants use the 10-column telemetry schema; arrival times
    # land past the seeded 180-day span, like the loopback demo's batches.
    return b"".join([
        value_i64(181 * 24 * 3600 + i),  # arrival
        value_str("collector_tcp"),      # collector
        value_i64(1 + i),                # job_id
        value_str("SUCCESS"),            # status
        value_f64(12.5),                 # duration_ms
        value_f64(4096.0),               # bytes_ingested
        value_str("host_tcp"),           # host
        value_i64(2),                    # severity
        value_str("team_tcp"),           # team
        value_i64(42),                   # record_count
    ])


def ingest_payload(rows, deadline_us=0):
    # u64 deadline, u32 num_rows, u16 num_cols, rows, u16 num_deletes.
    body = struct.pack("<QIH", deadline_us, len(rows), 10)
    body += b"".join(rows)
    body += struct.pack("<H", 0)
    return body


def parse_ingest_reply(payload):
    status, msg_len = struct.unpack_from("<BI", payload, 0)
    off = 5
    message = payload[off : off + msg_len].decode()
    off += msg_len
    version, appended, deleted, visible = struct.unpack_from("<4Q", payload,
                                                             off)
    off += 32
    (folded,) = struct.unpack_from("<B", payload, off)
    return status, message, version, appended, deleted, visible, bool(folded)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise AssertionError(f"connection closed after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def read_reply(sock):
    header = HEADER.unpack(recv_exact(sock, HEADER.size))
    magic, version, msg_type, request_id, tenant_id, payload_len = header
    assert magic == MAGIC, f"bad magic {magic:#x}"
    assert version == VERSION, f"bad version {version}"
    payload = recv_exact(sock, payload_len)
    return msg_type, request_id, tenant_id, payload


def parse_query_reply(payload):
    status, msg_len = struct.unpack_from("<BI", payload, 0)
    off = 5
    message = payload[off : off + msg_len].decode()
    off += msg_len
    state, reorganized, has_physical, executed = struct.unpack_from(
        "<iBBB", payload, off
    )
    return status, message, state, bool(executed)


def parse_stats_reply(payload):
    (stats_version,) = struct.unpack_from("<H", payload, 0)
    assert stats_version == STATS_PAYLOAD_VERSION, (
        f"unknown stats payload version {stats_version}"
    )
    off = 2
    server = struct.unpack_from(f"<{SERVER_STAT_FIELDS}Q", payload, off)
    off += 8 * SERVER_STAT_FIELDS
    (tenant_count,) = struct.unpack_from("<I", payload, off)
    off += 4
    tenants = []
    for _ in range(tenant_count):
        tenant_id, weight = struct.unpack_from("<II", payload, off)
        off += 8
        (deficit,) = struct.unpack_from("<q", payload, off)
        off += 8
        counters = struct.unpack_from(f"<{TENANT_STAT_U64S}Q", payload, off)
        off += 8 * TENANT_STAT_U64S
        tenants.append((tenant_id, weight, deficit, counters))
    assert off == len(payload), f"trailing stats bytes: {len(payload) - off}"
    return server, tenants


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} <path-to-oreo_server>")
    server_bin = sys.argv[1]

    proc = subprocess.Popen(
        [
            server_bin,
            "--tenants", "2",
            "--clients", "2",
            "--queries", "60",
            "--rows", "2000",
            "--weights", "3,1",
            "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    output_lines = []
    port_found = threading.Event()
    port = [None]

    def pump():
        for line in proc.stdout:
            output_lines.append(line)
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                port[0] = int(m.group(1))
                port_found.set()
        port_found.set()  # EOF: unblock the waiter even on early exit

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()

    try:
        if not port_found.wait(timeout=120) or port[0] is None:
            raise AssertionError("server never printed its listen port")

        sock = socket.create_connection(("127.0.0.1", port[0]), timeout=30)
        sock.settimeout(30)

        # 1. A real-socket query round trip (tenant 1, full scan).
        sock.sendall(frame(MSG_QUERY, 7, 1, query_payload(1001)))
        msg_type, request_id, _, payload = read_reply(sock)
        assert msg_type == MSG_REPLY, f"expected kReply, got {msg_type}"
        assert request_id == 7, f"request id echo broken: {request_id}"
        status, message, _, executed = parse_query_reply(payload)
        assert status == STATUS_OK, f"query failed: {message!r}"
        assert executed, "kOk reply must carry executed=true"

        # 2. A query with a generous deadline budget still succeeds.
        sock.sendall(
            frame(MSG_QUERY, 8, 1, query_payload(1002, deadline_us=10**9))
        )
        msg_type, request_id, _, payload = read_reply(sock)
        status, message, _, _ = parse_query_reply(payload)
        assert (msg_type, request_id) == (MSG_REPLY, 8)
        assert status == STATUS_OK, f"deadline query failed: {message!r}"

        # 3. An ingest round trip: two telemetry rows appended to tenant 1
        # over the socket, acknowledged with the post-batch version stamp.
        rows = [telemetry_row(0), telemetry_row(1)]
        sock.sendall(frame(MSG_INGEST, 12, 1, ingest_payload(rows)))
        msg_type, request_id, _, payload = read_reply(sock)
        assert msg_type == MSG_INGEST_REPLY, f"expected kIngestReply: {msg_type}"
        assert request_id == 12
        status, message, version, appended, deleted, visible, _ = (
            parse_ingest_reply(payload)
        )
        assert status == STATUS_OK, f"ingest failed: {message!r}"
        assert version >= 1, f"ingest version not stamped: {version}"
        assert appended == len(rows), f"rows_appended={appended}"
        assert deleted == 0, f"unexpected deletes: {deleted}"
        assert visible >= 2000 + len(rows), f"visible={visible}"

        # 4. kStats round trip: counters include the loopback demo's work
        # and the socket ingest we just did.
        sock.sendall(frame(MSG_STATS, 9, 0))
        msg_type, request_id, _, payload = read_reply(sock)
        assert msg_type == MSG_STATS_REPLY, f"expected kStatsReply: {msg_type}"
        assert request_id == 9
        server, tenants = parse_stats_reply(payload)
        # Third u64: requests executed. The two loopback demo clients ran 60
        # queries each before the listener came up, plus our two socket ones.
        executed_total = server[2]
        assert executed_total >= 122, f"executed={executed_total}, expected >=122"
        # Last two u64s: ingest batches / rows. The demo ran without
        # --ingest-every, so the socket batch is the only mutation traffic.
        assert server[-2] == 1, f"ingest_batches={server[-2]}, expected 1"
        assert server[-1] == len(rows), f"ingest_rows={server[-1]}"
        assert len(tenants) == 2, f"tenant count {len(tenants)}"
        weights = {t[0]: t[1] for t in tenants}
        assert weights == {1: 3, 2: 1}, f"weights on the wire: {weights}"
        by_id = {t[0]: t[3] for t in tenants}
        assert by_id[1][-2] == 1, f"tenant 1 ingest_batches={by_id[1][-2]}"
        assert by_id[1][-1] == len(rows), f"tenant 1 ingest_rows={by_id[1][-1]}"
        assert by_id[2][-2] == 0, f"tenant 2 ingest_batches={by_id[2][-2]}"

        # 5. Retired-version frames get a request-level upgrade hint, not a
        # poisoned stream: the same connection keeps serving afterwards.
        for i, retired in enumerate(RETIRED_VERSIONS):
            sock.sendall(
                frame(MSG_QUERY, 20 + i, 1, query_payload(1003 + i),
                      version=retired)
            )
            msg_type, request_id, _, payload = read_reply(sock)
            status, message, _, _ = parse_query_reply(payload)
            assert (msg_type, request_id) == (MSG_REPLY, 20 + i)
            assert status == STATUS_BAD_REQUEST, f"v{retired} status {status}"
            assert "upgrade" in message, f"v{retired} hint missing: {message!r}"
        sock.sendall(frame(MSG_QUERY, 11, 1, query_payload(1010)))
        msg_type, request_id, _, payload = read_reply(sock)
        status, message, _, _ = parse_query_reply(payload)
        assert (msg_type, request_id, status) == (MSG_REPLY, 11, STATUS_OK), (
            f"stream did not survive the retired frames: {status} {message!r}"
        )

        sock.close()

        # 6. SIGINT drains: the process exits 0 and prints its final stats.
        proc.send_signal(signal.SIGINT)
        rc = proc.wait(timeout=120)
        reader.join(timeout=30)
        assert rc == 0, f"server exited {rc} on SIGINT"
        tail = "".join(output_lines)
        assert "server stats:" in tail, "final stats block missing"
    except BaseException:
        proc.kill()
        proc.wait()
        sys.stdout.write("".join(output_lines))
        raise

    print(f"tcp_smoke: OK (port {port[0]}, {executed_total} queries executed)")


if __name__ == "__main__":
    main()
