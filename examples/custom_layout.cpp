// Plugging a custom layout-generation mechanism into OREO.
//
// The framework is agnostic to how layouts are produced (paper SIII-B): any
// mechanism implementing LayoutGenerator::Generate can feed the dynamic state
// space. This example adds a "hot-column equality" layout — it finds the most
// frequent equality-predicate column in the recent workload and hash-buckets
// rows by that column's value — and lets OREO arbitrate between it, the
// built-in Qd-tree, and the default sort layout.
//
// Run: ./build/examples/custom_layout
#include <cstdio>
#include <memory>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

namespace {

// A layout that buckets rows by hashing one column's value.
class HashBucketLayout : public Layout {
 public:
  HashBucketLayout(int column, std::string column_name, uint32_t buckets)
      : column_(column), column_name_(std::move(column_name)),
        buckets_(buckets) {}

  std::string Describe() const override {
    return "hash(" + column_name_ + ", k=" + std::to_string(buckets_) + ")";
  }
  uint32_t NumPartitionsUpperBound() const override { return buckets_; }
  std::vector<uint32_t> Assign(const Table& table) const override {
    const Column& col = table.column(static_cast<size_t>(column_));
    std::vector<uint32_t> out(table.num_rows());
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      uint64_t h;
      if (col.type() == DataType::kString) {
        h = std::hash<std::string>{}(col.GetString(r));
      } else {
        h = std::hash<int64_t>{}(static_cast<int64_t>(col.GetNumeric(r)));
      }
      out[r] = static_cast<uint32_t>(h % buckets_);
    }
    return out;
  }

 private:
  int column_;
  std::string column_name_;
  uint32_t buckets_;
};

// Generator: pick the column with the most equality/IN predicates in the
// recent window and hash-bucket on it. Falls back to column 0.
class HotColumnHashGenerator : public LayoutGenerator {
 public:
  std::string name() const override { return "hot-hash"; }
  std::unique_ptr<Layout> Generate(const Table& sample,
                                   const std::vector<Query>& workload,
                                   uint32_t target_partitions) const override {
    std::vector<int64_t> counts(sample.num_columns(), 0);
    for (const Query& q : workload) {
      for (const Predicate& p : q.conjuncts) {
        if (p.op == CompareOp::kEq || p.op == CompareOp::kIn) {
          ++counts[static_cast<size_t>(p.column)];
        }
      }
    }
    int best = 0;
    for (size_t c = 1; c < counts.size(); ++c) {
      if (counts[c] > counts[static_cast<size_t>(best)]) best = static_cast<int>(c);
    }
    return std::make_unique<HashBucketLayout>(
        best, sample.schema().field(static_cast<size_t>(best)).name,
        target_partitions);
  }
};

// A generator that proposes BOTH a qd-tree and a hot-hash candidate by
// alternating — OREO's admission test keeps whichever is distinct enough.
class AlternatingGenerator : public LayoutGenerator {
 public:
  std::string name() const override { return "qdtree+hot-hash"; }
  std::unique_ptr<Layout> Generate(const Table& sample,
                                   const std::vector<Query>& workload,
                                   uint32_t target_partitions) const override {
    flip_ = !flip_;
    if (flip_) return qdtree_.Generate(sample, workload, target_partitions);
    return hash_.Generate(sample, workload, target_partitions);
  }

 private:
  mutable bool flip_ = false;
  QdTreeGenerator qdtree_;
  HotColumnHashGenerator hash_;
};

}  // namespace

int main() {
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(60000, 41);
  workloads::WorkloadOptions wopts;
  wopts.num_queries = 8000;
  wopts.num_segments = 8;
  wopts.seed = 42;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  std::printf("Running OREO with a custom layout-generation mechanism "
              "(qd-tree alternating with hot-column hash buckets)...\n\n");
  AlternatingGenerator generator;
  core::OreoOptions opts;
  opts.target_partitions = 20;
  opts.generate_every = 100;  // alternation needs a faster cadence
  auto oreo = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);
  for (const Query& q : wl.queries) {
    core::OreoEngine::StepResult step = oreo->Step(q);
    if (step.reorganized) {
      std::printf("query %5lld: switch to %-40s\n",
                  static_cast<long long>(q.id),
                  oreo->core(0).registry().Get(step.state).name().c_str());
    }
  }
  std::printf("\nquery cost=%.1f reorg cost=%.1f switches=%lld\n",
              oreo->total_query_cost(), oreo->total_reorg_cost(),
              static_cast<long long>(oreo->num_switches()));
  std::printf("\nLive state space at the end:\n");
  for (int id : oreo->core(0).registry().live()) {
    std::printf("  [%d] %s (%zu partitions)\n", id,
                oreo->core(0).registry().Get(id).name().c_str(),
                oreo->core(0).registry().Get(id).partitioning().num_partitions());
  }
  return 0;
}
