// Storage-backend quickstart: the same engine, the same workload, three
// physical byte stores — posix files, pure RAM, and a cached file store —
// selected with one OreoOptions knob. The layout decisions (Theorem IV.1's
// territory) are bit-identical on every backend; only where the bytes live
// and how fast they come back differs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_backend_quickstart
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

namespace {

struct RunReport {
  double query_cost = 0.0;
  int64_t switches = 0;
  uint64_t matches = 0;
  double seconds = 0.0;
};

RunReport RunOn(const workloads::WorkloadDataset& ds,
                const std::vector<Query>& queries,
                std::shared_ptr<StorageBackend> backend,
                const std::string& dir) {
  QdTreeGenerator generator;
  core::OreoOptions opts;
  opts.target_partitions = 16;
  opts.num_threads = 4;
  opts.storage_backend = std::move(backend);  // <- the whole difference
  auto engine = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);

  std::filesystem::remove_all(dir);
  Status attached = engine->AttachPhysical(dir, /*store_threads=*/4);
  OREO_CHECK(attached.ok()) << attached.ToString();

  RunReport report;
  Stopwatch sw;
  for (const QueryBatch& batch : MakeBatches(queries, /*batch_size=*/64)) {
    engine->RunBatch(batch);
    auto exec = engine->ExecuteBatchPhysical(batch.queries);
    OREO_CHECK(exec.ok()) << exec.status().ToString();
    for (const auto& per_query : exec->per_query) {
      report.matches += per_query.matches;
    }
    engine->SyncPhysical();
  }
  engine->WaitForReorgs();
  report.seconds = sw.ElapsedSeconds();
  report.query_cost = engine->total_query_cost();
  report.switches = engine->num_switches();
  std::filesystem::remove_all(dir);
  return report;
}

}  // namespace

int main() {
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(40000, /*seed=*/1);
  workloads::WorkloadOptions wopts;
  wopts.num_queries = 3000;
  wopts.num_segments = 5;
  wopts.seed = 3;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  std::string base =
      (std::filesystem::temp_directory_path() / "oreo_backend_quickstart")
          .string();

  std::shared_ptr<CachedBackend> cached = MakeCachedBackend(MakePosixBackend());
  struct Config {
    const char* label;
    std::shared_ptr<StorageBackend> backend;
  };
  Config configs[] = {
      {"posix", MakePosixBackend()},
      {"inmem", MakeInMemoryBackend()},
      {"cached(posix)", cached},
  };

  std::printf("%-14s %12s %9s %12s %9s\n", "backend", "query_cost",
              "switches", "matches", "seconds");
  RunReport first;
  bool have_first = false;
  for (Config& config : configs) {
    RunReport r =
        RunOn(ds, wl.queries, config.backend, base + "_" + config.label[0]);
    std::printf("%-14s %12.1f %9lld %12llu %9.3f\n", config.label,
                r.query_cost, static_cast<long long>(r.switches),
                static_cast<unsigned long long>(r.matches), r.seconds);
    if (!have_first) {
      first = r;
      have_first = true;
    } else {
      // The determinism contract across backends, checked live.
      OREO_CHECK_EQ(r.matches, first.matches);
      OREO_CHECK_EQ(r.switches, first.switches);
      OREO_CHECK(r.query_cost == first.query_cost);
    }
  }

  CachedBackend::CacheStats stats = cached->cache_stats();
  const uint64_t logical = stats.hit_bytes + stats.miss_bytes;
  std::printf("\ncached(posix): %llu hits / %llu misses; %.1f%% of logically "
              "read bytes never touched the file store\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              logical > 0 ? 100.0 * static_cast<double>(stats.hit_bytes) /
                                static_cast<double>(logical)
                          : 0.0);
  std::printf("Same costs, same switches, same matches on every backend: "
              "the online guarantee is storage-independent.\n");
  return 0;
}
