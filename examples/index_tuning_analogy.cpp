// Two-state asymmetric MTS: the adaptive index-tuning analogy from the
// paper's related work (SVII-3, Appendix C). State 0 = "no index" (each
// query pays a scan), state 1 = "index built" (queries are cheap, but
// building cost >> dropping cost). The work-function algorithm decides when
// to build and when to drop as the workload oscillates, and we compare its
// cost with the exact offline optimum.
//
// Run: ./build/examples/index_tuning_analogy
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "mts/offline.h"
#include "mts/work_function.h"

using namespace oreo;

int main() {
  const double kBuildCost = 25.0;  // moving 0 -> 1
  const double kDropCost = 1.0;    // moving 1 -> 0
  mts::TwoStateAsymmetric tuner(kBuildCost, kDropCost, /*initial_state=*/0);

  // Workload: alternating bursts of point lookups (index helps a lot) and
  // bulk inserts (index maintenance makes it a liability).
  Rng rng(7);
  std::vector<std::vector<double>> costs;
  const char* phase_names[] = {"point-lookups", "bulk-inserts"};
  std::printf("%-8s %-14s %-10s %s\n", "query#", "workload", "state", "event");
  int prev_state = 0;
  double alg_cost = 0.0;
  for (int burst = 0; burst < 8; ++burst) {
    int kind = burst % 2;
    size_t len = 40 + rng.Uniform(80);
    for (size_t i = 0; i < len; ++i) {
      double c_noindex, c_index;
      if (kind == 0) {  // lookups: scans are expensive, index is ~free
        c_noindex = rng.UniformDouble(0.6, 1.0);
        c_index = rng.UniformDouble(0.0, 0.05);
      } else {  // inserts: index maintenance dominates
        c_noindex = rng.UniformDouble(0.0, 0.1);
        c_index = rng.UniformDouble(0.4, 0.8);
      }
      costs.push_back({c_noindex, c_index});
      int s = tuner.OnQuery(c_noindex, c_index);
      if (s != prev_state) {
        alg_cost += (s == 1) ? kBuildCost : kDropCost;
        std::printf("%-8zu %-14s %-10s %s\n", costs.size(),
                    phase_names[kind], s == 1 ? "indexed" : "no-index",
                    s == 1 ? "BUILD index" : "DROP index");
        prev_state = s;
      }
      alg_cost += costs.back()[static_cast<size_t>(s)];
    }
  }

  mts::OfflineResult opt = mts::SolveOfflineMetric(
      costs, {{0.0, kBuildCost}, {kDropCost, 0.0}});
  std::printf("\nwork-function algorithm: cost = %.1f (%d state changes)\n",
              alg_cost, tuner.num_switches());
  std::printf("offline optimum:         cost = %.1f (%d state changes)\n",
              opt.total_cost, opt.num_switches);
  std::printf("empirical competitive ratio = %.2f (guarantee for two states: "
              "2n-1 = 3)\n",
              alg_cost / opt.total_cost);
  return 0;
}
