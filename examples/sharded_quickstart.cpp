// Sharded quickstart: run OREO over a horizontally sharded table with
// concurrent per-shard background reorganizations.
//
// Each shard runs its own independent engine (LayoutManager + D-UMTS), so
// the paper's worst-case guarantee holds shard by shard while batches fan
// out across shards; the range router prunes shards a query's time
// predicate cannot touch, like a coarse zone map.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_sharded_quickstart
#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

int main() {
  // 1. A telemetry-style table: 40k ingestion-log rows.
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(40000, /*seed=*/1);

  // 2. A drifting workload: 4000 queries that switch template every ~600.
  workloads::WorkloadOptions wopts;
  wopts.num_queries = 4000;
  wopts.num_segments = 7;
  wopts.seed = 3;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  // 3. OREO sharded 4 ways on the time column (range routing), one engine
  //    per shard, behind the unified MakeEngine handle. The same
  //    OreoOptions knobs drive every shard; shard engines derive their own
  //    seeds. (Set num_shards = 1 and this very code runs the unsharded
  //    engine; set opts.storage_backend and the bytes move off disk.)
  QdTreeGenerator generator;
  core::OreoOptions opts;
  opts.alpha = 80.0;
  opts.target_partitions = 12;  // per shard
  opts.num_shards = 4;
  opts.shard_routing = ShardRouting::kRange;
  auto oreo = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);

  // 4. Physical stores, one directory per shard, plus a shared background
  //    pool that reorganizes shards concurrently (still at most one rewrite
  //    in flight per shard).
  std::string dir =
      (std::filesystem::temp_directory_path() / "oreo_sharded_quickstart")
          .string();
  std::filesystem::remove_all(dir);
  Status attached = oreo->AttachPhysical(dir);
  if (!attached.ok()) {
    std::printf("AttachPhysical failed: %s\n", attached.ToString().c_str());
    return 1;
  }

  // 5. Stream the workload in batches: logical decisions per shard, batched
  //    physical execution against per-shard snapshots, and background
  //    rewrites reconciled at every batch boundary.
  uint64_t matches = 0;
  size_t rewrites = 0;
  for (const QueryBatch& batch : MakeBatches(wl.queries, /*batch_size=*/64)) {
    oreo->RunBatch(batch);
    auto exec = oreo->ExecuteBatchPhysical(batch.queries);
    if (!exec.ok()) {
      std::printf("batch failed: %s\n", exec.status().ToString().c_str());
      return 1;
    }
    for (const auto& per_query : exec->per_query) matches += per_query.matches;
    rewrites += oreo->SyncPhysical();
  }
  oreo->WaitForReorgs();

  // 6. Report per-shard cores and merged accounting.
  std::printf("%-8s %12s %12s %10s %12s\n", "shard", "query_cost",
              "reorg_cost", "switches", "live_states");
  for (size_t s = 0; s < oreo->num_shards(); ++s) {
    const core::Oreo& shard_core = oreo->core(s);
    std::printf("%-8zu %12.1f %12.1f %10lld %12zu\n", s,
                shard_core.total_query_cost(), shard_core.total_reorg_cost(),
                static_cast<long long>(shard_core.num_switches()),
                shard_core.registry().num_live());
  }
  std::printf("\nmerged (row-weighted): query_cost=%.1f reorg_cost=%.1f "
              "switches=%lld\n",
              oreo->total_query_cost(), oreo->total_reorg_cost(),
              static_cast<long long>(oreo->num_switches()));
  std::printf("background rewrites submitted: %zu\n", rewrites);
  std::printf("total matches streamed: %llu\n",
              static_cast<unsigned long long>(matches));
  std::filesystem::remove_all(dir);
  return 0;
}
