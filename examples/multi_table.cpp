// Multi-table operation (paper SVIII / Appendix B flavor): each table runs
// its own OREO instance and reacts to the subset of predicates that apply to
// it. Join queries induce predicates on both tables (after Kandula et al.'s
// data-induced predicates, cited by the paper): a filter on the fact table's
// join key range propagates to the dimension table.
//
// Run: ./build/examples/multi_table
#include <cstdio>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"

using namespace oreo;

namespace {

// A small dimension table: collector metadata keyed by collector name.
Table MakeCollectorDim(int collectors, uint64_t seed) {
  Table t(Schema({{"collector", DataType::kString},
                  {"owner_team", DataType::kString},
                  {"retention_days", DataType::kInt64},
                  {"priority", DataType::kInt64}}));
  Rng rng(seed);
  for (int c = 0; c < collectors; ++c) {
    std::string num = std::to_string(c);
    if (num.size() < 2) num = "0" + num;
    // Several rows per collector: config history versions.
    for (int v = 0; v < 40; ++v) {
      t.AppendRow({Value("collector_" + num),
                   Value("team_" + std::to_string(rng.Uniform(25))),
                   Value(rng.UniformInt(7, 365)), Value(rng.UniformInt(0, 4))});
    }
  }
  return t;
}

}  // namespace

int main() {
  // Fact table: telemetry log. Dimension table: collector metadata.
  workloads::WorkloadDataset fact = workloads::MakeTelemetry(60000, 51);
  Table dim = MakeCollectorDim(50, 52);

  QdTreeGenerator gen_fact, gen_dim;
  core::OreoOptions opts;
  opts.target_partitions = 20;
  auto oreo_fact = core::MakeEngine(&fact.table, &gen_fact, fact.time_column, opts);
  core::OreoOptions dim_opts = opts;
  dim_opts.target_partitions = 8;
  dim_opts.alpha = 20.0;  // the dimension table is cheaper to rewrite
  // Default layout for the dimension table: sort by retention_days (col 2).
  auto oreo_dim = core::MakeEngine(&dim, &gen_dim, 2, dim_opts);

  // Workload: joins "fact JOIN dim ON collector" filtered by time + team.
  // The team filter applies to dim; the collector filter it induces applies
  // to both sides.
  Rng rng(53);
  const int64_t span = 180LL * 24 * 3600;
  int fact_reorgs = 0, dim_reorgs = 0;
  const int kQueries = 6000;
  for (int i = 0; i < kQueries; ++i) {
    // Drift: every ~1500 queries the hot teams change.
    int team_base = (i / 1500) * 7;
    std::string team = "team_" + std::to_string((team_base + static_cast<int>(rng.Uniform(3))) % 25);
    int64_t t0 = rng.UniformInt(0, span - 24 * 3600);

    // Dimension-side query: team filter.
    Query dim_q;
    dim_q.id = i;
    dim_q.conjuncts = {Predicate::Eq(1, Value(team))};
    if (oreo_dim->Step(dim_q).reorganized) ++dim_reorgs;

    // Join-induced predicate: the collectors owned by the team — modeled as
    // an IN-list over a few collector names (what a data-induced predicate
    // push-down would produce).
    std::vector<Value> collectors;
    for (int c = 0; c < 3; ++c) {
      std::string num = std::to_string(rng.Uniform(50));
      if (num.size() < 2) num = "0" + num;
      collectors.push_back(Value("collector_" + num));
    }
    Query fact_q;
    fact_q.id = i;
    fact_q.conjuncts = {
        Predicate::In(1, collectors),
        Predicate::Between(0, Value(t0), Value(t0 + 24 * 3600))};
    if (oreo_fact->Step(fact_q).reorganized) ++fact_reorgs;
  }

  std::printf("Fact table:      query cost=%8.1f reorg cost=%7.1f (%d reorgs, "
              "%zu live layouts)\n",
              oreo_fact->total_query_cost(), oreo_fact->total_reorg_cost(),
              fact_reorgs, oreo_fact->core(0).registry().num_live());
  std::printf("Dimension table: query cost=%8.1f reorg cost=%7.1f (%d reorgs, "
              "%zu live layouts)\n",
              oreo_dim->total_query_cost(), oreo_dim->total_reorg_cost(),
              dim_reorgs, oreo_dim->core(0).registry().num_live());
  std::printf("\nEach table adapts independently; the join-induced collector "
              "predicates let the\nfact table cluster by collector while the "
              "dimension table clusters by team\n(paper SVIII: multi-table "
              "layouts benefit more from dynamic reorganization).\n");
  return 0;
}
