// Quickstart: run OREO over a drifting query stream and compare against a
// single static layout.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/oreo.h"
#include "core/simulator.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

int main() {
  // 1. A telemetry-style table: 60k ingestion-log rows.
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(60000, /*seed=*/1);

  // 2. A drifting workload: 6000 queries that switch template every ~900.
  workloads::WorkloadOptions wopts;
  wopts.num_queries = 6000;
  wopts.num_segments = 7;
  wopts.seed = 3;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  // 3. OREO with Qd-tree as the layout-generation mechanism, through the
  //    unified engine factory. (This walkthrough reads per-step layout
  //    names from the unsharded core's registry; see sharded_quickstart /
  //    backend_quickstart for the num_shards and storage_backend knobs.)
  QdTreeGenerator generator;
  core::OreoOptions opts;
  opts.alpha = 80.0;
  opts.target_partitions = 24;
  auto oreo = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);

  // Stream the queries through the framework.
  for (const Query& q : wl.queries) {
    core::OreoEngine::StepResult step = oreo->Step(q);
    if (step.reorganized) {
      std::printf("  query %5lld: reorganize -> %s\n",
                  static_cast<long long>(q.id),
                  oreo->core(0).registry().Get(step.state).name().c_str());
    }
  }

  // 4. Baseline: the best single layout, built with knowledge of the whole
  //    workload (the paper's Static baseline).
  core::StateRegistry static_registry;
  Rng rng(99);
  Table sample = ds.table.SampleRows(2000, &rng);
  std::vector<Query> all(wl.queries.begin(), wl.queries.end());
  // Static sees the full workload; subsample to keep construction fast.
  std::vector<Query> wl_sample;
  for (size_t i = 0; i < all.size(); i += 10) wl_sample.push_back(all[i]);
  auto layout = generator.Generate(sample, wl_sample, opts.target_partitions);
  std::shared_ptr<const Layout> shared(std::move(layout));
  int static_id = static_registry.Add(
      Materialize("static:qdtree", shared, ds.table));
  core::StaticStrategy static_strategy(static_id);
  core::SimOptions sim;
  sim.alpha = opts.alpha;
  core::SimResult static_result = core::RunSimulation(
      &static_strategy, nullptr, &static_registry, wl.queries, sim);

  // 5. Report.
  double oreo_total = oreo->total_cost();
  std::printf("\n%-22s %12s %12s %12s %10s\n", "method", "query_cost",
              "reorg_cost", "total", "switches");
  std::printf("%-22s %12.1f %12.1f %12.1f %10lld\n", "oreo",
              oreo->total_query_cost(), oreo->total_reorg_cost(), oreo_total,
              static_cast<long long>(oreo->num_switches()));
  std::printf("%-22s %12.1f %12.1f %12.1f %10d\n", "static (whole workload)",
              static_result.query_cost, static_result.reorg_cost,
              static_result.total_cost(), 0);
  std::printf("\nOREO total = %.1f%% of the static layout's total cost.\n",
              100.0 * oreo_total / static_result.total_cost());
  return 0;
}
