// Telemetry drift scenario (the paper's SuperCollider use case, SVI-A2):
// an ingestion-log table whose query mix shifts between time-range scans,
// per-collector investigations and failure hunts. Demonstrates the streaming
// Step() API: the caller serves each query on the layout OREO reports and
// kicks off background rewrites when Step says to reorganize.
//
// Run: ./build/examples/telemetry_drift [--queries=N]
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

int main(int argc, char** argv) {
  size_t num_queries = 12000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) num_queries = std::stoul(arg.substr(10));
  }

  std::printf("Loading telemetry table (ingestion-log, 80k rows)...\n");
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(80000, 21);

  workloads::WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.num_segments = 12;
  wopts.seed = 22;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  QdTreeGenerator generator;
  core::OreoOptions opts;  // paper defaults: alpha=80, eps=0.08, gamma=1
  opts.target_partitions = 24;
  auto oreo = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);

  std::printf("Streaming %zu queries through OREO (alpha=%.0f)...\n\n",
              wl.queries.size(), opts.alpha);
  std::printf("%-9s %-18s %s\n", "query#", "event", "detail");

  size_t next_segment = 1;
  double window_cost = 0.0;
  size_t window_n = 0;
  for (const Query& q : wl.queries) {
    // Narrate workload drift as it happens.
    if (next_segment < wl.segment_starts.size() &&
        static_cast<size_t>(q.id) == wl.segment_starts[next_segment]) {
      std::printf("%-9lld %-18s template -> %s\n",
                  static_cast<long long>(q.id), "workload drift",
                  ds.templates[static_cast<size_t>(
                                   wl.segment_templates[next_segment])]
                      .name.c_str());
      ++next_segment;
    }
    core::OreoEngine::StepResult step = oreo->Step(q);
    window_cost += step.query_cost;
    ++window_n;
    if (step.reorganized) {
      std::printf("%-9lld %-18s now on '%s' (%zu live layouts)\n",
                  static_cast<long long>(q.id), "REORGANIZE",
                  oreo->core(0).registry().Get(step.state).name().c_str(),
                  oreo->core(0).registry().num_live());
    }
    if (window_n == 2000) {
      std::printf("%-9lld %-18s mean fraction scanned = %.3f\n",
                  static_cast<long long>(q.id), "checkpoint",
                  window_cost / static_cast<double>(window_n));
      window_cost = 0.0;
      window_n = 0;
    }
  }

  std::printf("\nTotals: query cost = %.1f, reorg cost = %.1f (%lld switches), "
              "combined = %.1f\n",
              oreo->total_query_cost(), oreo->total_reorg_cost(),
              static_cast<long long>(oreo->num_switches()),
              oreo->total_cost());
  std::printf("Candidate layouts generated: %zu admitted, %zu rejected by the "
              "epsilon-distance test\n",
              oreo->core(0).manager().candidates_admitted(),
              oreo->core(0).manager().candidates_rejected());
  return 0;
}
