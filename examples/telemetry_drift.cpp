// Telemetry drift scenario (the paper's SuperCollider use case, SVI-A2),
// now with *data* drift alongside workload drift: an ingestion-log table
// that keeps growing while it is being queried. Demonstrates the streaming
// Step() API together with the live-ingest subsystem — mutation batches
// append fresh log records and tombstone stale ones mid-stream, each batch
// becoming query-visible atomically at its Ingest() boundary, and the
// engine folds the accumulated deltas back into a compact base when the
// mutation debt crosses OreoOptions::fold_threshold.
//
// Run: ./build/examples/telemetry_drift [--queries=N]
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/oreo.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;

namespace {

// Slices `source` into consecutive ingest batches of `rows` rows each,
// wrapping around when the source is exhausted — a stand-in for the live
// collector feed.
Table NextSlice(const Table& source, size_t rows, size_t* cursor) {
  std::vector<uint32_t> ids;
  ids.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    ids.push_back(static_cast<uint32_t>((*cursor + r) % source.num_rows()));
  }
  *cursor = (*cursor + rows) % source.num_rows();
  return source.Take(ids);
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = 12000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) num_queries = std::stoul(arg.substr(10));
  }

  std::printf("Loading telemetry table (ingestion-log, 60k rows seeded)...\n");
  workloads::WorkloadDataset ds = workloads::MakeTelemetry(60000, 21);
  // The "live feed": telemetry drawn from a different seed, so the appended
  // rows drift away from the distribution the initial layout was built for.
  workloads::WorkloadDataset feed = workloads::MakeTelemetry(30000, 77);

  workloads::WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.num_segments = 12;
  wopts.seed = 22;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  QdTreeGenerator generator;
  core::OreoOptions opts;  // paper defaults: alpha=80, eps=0.08, gamma=1
  opts.target_partitions = 24;
  auto oreo = core::MakeEngine(&ds.table, &generator, ds.time_column, opts);

  // Every `kIngestEvery` queries one mutation batch arrives: fresh rows
  // from the feed, and (each fourth batch) a purge of the highest-severity
  // records that were visible before the batch.
  const size_t kIngestEvery = 1500;
  const size_t kIngestRows = 2000;
  size_t feed_cursor = 0;
  uint64_t ingest_batches = 0;
  uint64_t rows_appended = 0, rows_deleted = 0, folds = 0;
  uint64_t visible_rows = ds.table.num_rows();

  std::printf("Streaming %zu queries through OREO (alpha=%.0f, "
              "fold threshold=%.2f), ingesting %zu rows every %zu queries"
              "...\n\n",
              wl.queries.size(), opts.alpha, opts.fold_threshold, kIngestRows,
              kIngestEvery);
  std::printf("%-9s %-18s %s\n", "query#", "event", "detail");

  size_t next_segment = 1;
  double window_cost = 0.0;
  size_t window_n = 0;
  for (const Query& q : wl.queries) {
    // Narrate workload drift as it happens.
    if (next_segment < wl.segment_starts.size() &&
        static_cast<size_t>(q.id) == wl.segment_starts[next_segment]) {
      std::printf("%-9lld %-18s template -> %s\n",
                  static_cast<long long>(q.id), "workload drift",
                  ds.templates[static_cast<size_t>(
                                   wl.segment_templates[next_segment])]
                      .name.c_str());
      ++next_segment;
    }
    // Data drift: one mutation batch per kIngestEvery queries.
    if (q.id > 0 && static_cast<size_t>(q.id) % kIngestEvery == 0) {
      core::IngestBatch batch;
      batch.rows = NextSlice(feed.table, kIngestRows, &feed_cursor);
      if (ingest_batches % 4 == 3) {
        Query purge;
        purge.conjuncts.push_back(
            Predicate::Ge(/*severity=*/7, Value(int64_t{4})));
        batch.deletes.push_back(std::move(purge));
      }
      Result<core::IngestResult> applied = oreo->Ingest(std::move(batch));
      OREO_CHECK_OK(applied.status());
      ++ingest_batches;
      rows_appended += applied->rows_appended;
      rows_deleted += applied->rows_deleted;
      visible_rows = applied->visible_rows;
      if (applied->folded) ++folds;
      std::printf("%-9lld %-18s v%llu: +%llu rows, -%llu purged, "
                  "%llu visible%s\n",
                  static_cast<long long>(q.id),
                  applied->folded ? "INGEST + FOLD" : "ingest",
                  static_cast<unsigned long long>(applied->version),
                  static_cast<unsigned long long>(applied->rows_appended),
                  static_cast<unsigned long long>(applied->rows_deleted),
                  static_cast<unsigned long long>(applied->visible_rows),
                  applied->folded ? " (deltas compacted into the base)" : "");
    }
    core::OreoEngine::StepResult step = oreo->Step(q);
    window_cost += step.query_cost;
    ++window_n;
    if (step.reorganized) {
      std::printf("%-9lld %-18s now on '%s' (%zu live layouts)\n",
                  static_cast<long long>(q.id), "REORGANIZE",
                  oreo->core(0).registry().Get(step.state).name().c_str(),
                  oreo->core(0).registry().num_live());
    }
    if (window_n == 2000) {
      std::printf("%-9lld %-18s mean fraction scanned = %.3f\n",
                  static_cast<long long>(q.id), "checkpoint",
                  window_cost / static_cast<double>(window_n));
      window_cost = 0.0;
      window_n = 0;
    }
  }

  std::printf("\nTotals: query cost = %.1f, reorg cost = %.1f (%lld switches), "
              "combined = %.1f\n",
              oreo->total_query_cost(), oreo->total_reorg_cost(),
              static_cast<long long>(oreo->num_switches()),
              oreo->total_cost());
  std::printf("Ingest: %llu batches (+%llu rows, -%llu purged), %llu folds, "
              "%llu rows visible at the end\n",
              static_cast<unsigned long long>(ingest_batches),
              static_cast<unsigned long long>(rows_appended),
              static_cast<unsigned long long>(rows_deleted),
              static_cast<unsigned long long>(folds),
              static_cast<unsigned long long>(visible_rows));
  std::printf("Candidate layouts generated: %zu admitted, %zu rejected by the "
              "epsilon-distance test\n",
              oreo->core(0).manager().candidates_admitted(),
              oreo->core(0).manager().candidates_rejected());
  return 0;
}
