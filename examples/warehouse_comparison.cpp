// Cloud-warehouse scenario: a denormalized TPC-H-like fact table under a
// template-switching analyst workload. Compares every reorganization policy
// the paper evaluates — Static, OREO, Greedy, Regret, MTS-Optimal,
// Offline-Optimal — on logical costs (fraction of data scanned + alpha per
// reorganization), reproducing the Section VI ordering at example scale.
//
// Run: ./build/examples/warehouse_comparison
#include <cstdio>

#include "core/engine.h"
#include "core/oreo.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "layout/qdtree_layout.h"
#include "workloads/dataset.h"
#include "workloads/workload_gen.h"

using namespace oreo;
using core::SimResult;

namespace {

void Report(const char* name, const SimResult& r, double static_total) {
  std::printf("%-16s query=%8.1f reorg=%7.1f total=%8.1f switches=%3lld",
              name, r.query_cost, r.reorg_cost, r.total_cost(),
              static_cast<long long>(r.num_switches));
  if (static_total > 0) {
    std::printf("  (%+.1f%% vs static)",
                100.0 * (r.total_cost() - static_total) / static_total);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Segment length relative to alpha follows the paper's regime (~1400
  // queries per segment at alpha=80) so reorganizations can amortize.
  std::printf("Building TPC-H-like table (50k rows) and workload "
              "(20k queries, 14 segments)...\n\n");
  workloads::WorkloadDataset ds = workloads::MakeTpchLike(50000, 31);
  workloads::WorkloadOptions wopts;
  wopts.num_queries = 20000;
  wopts.num_segments = 14;
  wopts.seed = 32;
  workloads::Workload wl = workloads::GenerateWorkload(ds.templates, wopts);

  QdTreeGenerator gen;
  core::OreoOptions opts;
  opts.target_partitions = 24;
  opts.seed = 33;

  core::SimOptions sim;
  sim.alpha = opts.alpha;

  // --- Static: one layout optimized for the whole (known) workload. ---
  core::StateRegistry static_reg;
  Rng rng(34);
  Table sample = ds.table.SampleRows(2000, &rng);
  std::vector<Query> wl_sample;
  for (size_t i = 0; i < wl.queries.size(); i += 10) wl_sample.push_back(wl.queries[i]);
  int static_id = static_reg.Add(Materialize(
      "static",
      std::shared_ptr<const Layout>(gen.Generate(sample, wl_sample, 24)),
      ds.table));
  core::StaticStrategy static_strategy(static_id);
  SimResult r_static = core::RunSimulation(&static_strategy, nullptr,
                                           &static_reg, wl.queries, sim);

  // --- OREO (through the unified engine factory). ---
  auto oreo = core::MakeEngine(&ds.table, &gen, ds.time_column, opts);
  SimResult r_oreo = oreo->RunTrace(wl.queries).shards.front();

  // --- Greedy & Regret (same candidate pipeline as OREO). ---
  auto with_manager = [&](auto make) {
    core::StateRegistry reg;
    core::LayoutManagerOptions mopts;
    mopts.target_partitions = opts.target_partitions;
    mopts.seed = opts.seed ^ 0x9e3779b9;
    core::LayoutManager mgr(&ds.table, &gen, &reg, mopts);
    int def = mgr.InitDefaultState(ds.time_column);
    auto strategy = make(&reg, &mgr, def);
    return core::RunSimulation(strategy.get(), &mgr, &reg, wl.queries, sim);
  };
  SimResult r_greedy = with_manager([&](auto* reg, auto* mgr, int def) {
    return std::make_unique<core::GreedyStrategy>(reg, mgr, def);
  });
  SimResult r_regret = with_manager([&](auto* reg, auto* /*mgr*/, int def) {
    return std::make_unique<core::RegretStrategy>(reg, sim.alpha, def);
  });

  // --- Oracles with precomputed per-template layouts (SVI-C). ---
  core::StateRegistry oracle_reg;
  std::vector<int> tpl_states = core::BuildPerTemplateStates(
      ds.table, sample, ds.templates, gen, 24, 200, 35, &oracle_reg);
  mts::DumtsOptions dopts;
  dopts.alpha = sim.alpha;
  dopts.gamma = 1.0;
  dopts.seed = 36;
  core::MtsOptimalStrategy mts_strategy(
      &oracle_reg, tpl_states,
      tpl_states[static_cast<size_t>(wl.queries.front().template_id)], dopts);
  SimResult r_mts = core::RunSimulation(&mts_strategy, nullptr, &oracle_reg,
                                        wl.queries, sim);
  core::OfflineOptimalStrategy offline_strategy(tpl_states, &wl);
  SimResult r_offline = core::RunSimulation(&offline_strategy, nullptr,
                                            &oracle_reg, wl.queries, sim);

  std::printf("Logical costs (fraction of table scanned per query; "
              "alpha=%.0f per reorganization):\n\n", sim.alpha);
  double st = r_static.total_cost();
  Report("static", r_static, 0);
  Report("oreo", r_oreo, st);
  Report("greedy", r_greedy, st);
  Report("regret", r_regret, st);
  Report("mts_optimal*", r_mts, st);
  Report("offline_optimal*", r_offline, st);
  std::printf("\n(*) oracles use workload knowledge unavailable to online "
              "methods.\nExpected ordering (paper SVI): offline < mts/oreo < "
              "static; greedy reorganizes most,\nregret least.\n");
  return 0;
}
