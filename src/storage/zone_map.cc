#include "storage/zone_map.h"

#include <algorithm>

#include "common/logging.h"

namespace oreo {

void ColumnZone::UpdateInt64(int64_t v) {
  if (empty) {
    int_min = int_max = v;
    empty = false;
  } else {
    int_min = std::min(int_min, v);
    int_max = std::max(int_max, v);
  }
}

void ColumnZone::UpdateDouble(double v) {
  if (empty) {
    dbl_min = dbl_max = v;
    empty = false;
  } else {
    dbl_min = std::min(dbl_min, v);
    dbl_max = std::max(dbl_max, v);
  }
}

void ColumnZone::UpdateString(const std::string& v) {
  if (empty) {
    str_min = str_max = v;
    empty = false;
  } else {
    if (v < str_min) str_min = v;
    if (v > str_max) str_max = v;
  }
  if (!distinct_overflow) {
    distinct.insert(v);
    if (distinct.size() > kMaxDistinct) {
      distinct.clear();
      distinct_overflow = true;
    }
  }
}

ZoneMap ZoneMap::ForSchema(const Schema& schema) {
  ZoneMap zm;
  zm.columns.resize(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    zm.columns[i].type = schema.field(i).type;
  }
  return zm;
}

void ZoneMap::UpdateRow(const Table& table, uint32_t row) {
  OREO_DCHECK(columns.size() == table.num_columns());
  for (size_t c = 0; c < columns.size(); ++c) {
    const Column& col = table.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        columns[c].UpdateInt64(col.GetInt64(row));
        break;
      case DataType::kDouble:
        columns[c].UpdateDouble(col.GetDouble(row));
        break;
      case DataType::kString:
        columns[c].UpdateString(col.GetString(row));
        break;
    }
  }
  ++num_rows;
}

ZoneMap BuildZoneMap(const Table& table, const std::vector<uint32_t>& row_ids) {
  ZoneMap zm = ZoneMap::ForSchema(table.schema());
  for (uint32_t r : row_ids) zm.UpdateRow(table, r);
  return zm;
}

ZoneMap BuildZoneMap(const Table& table) {
  ZoneMap zm = ZoneMap::ForSchema(table.schema());
  for (uint32_t r = 0; r < table.num_rows(); ++r) zm.UpdateRow(table, r);
  return zm;
}

}  // namespace oreo
