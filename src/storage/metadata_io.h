// Persistence for partition-level metadata. OREO estimates query costs for
// every candidate layout purely from zone maps (SIII-B); a system restart
// must not require re-scanning the data to rebuild them. The format follows
// the block format conventions: magic, versioned payload, CRC-32C footer,
// Corruption status on any mismatch.
#ifndef OREO_STORAGE_METADATA_IO_H_
#define OREO_STORAGE_METADATA_IO_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/backend.h"
#include "storage/partitioning.h"
#include "storage/zone_map.h"

namespace oreo {

/// The persisted view of a layout's partition metadata: everything needed to
/// prune partitions and price queries, nothing else (no row lists).
struct PartitionMetadata {
  Schema schema;
  std::vector<ZoneMap> zones;
  uint64_t total_rows = 0;
  std::string layout_name;
};

/// Extracts persistable metadata from a materialized partitioning.
PartitionMetadata MetadataFrom(const Schema& schema, const Partitioning& p,
                               std::string layout_name);

/// Wire (de)serialization.
std::string SerializePartitionMetadata(const PartitionMetadata& meta);
Result<PartitionMetadata> DeserializePartitionMetadata(const std::string& data);

/// Backend round trip (atomic publish; readers never observe a half-written
/// object).
Status WriteMetadataTo(StorageBackend* backend, const std::string& path,
                       const PartitionMetadata& meta);
Result<PartitionMetadata> ReadMetadataFrom(StorageBackend* backend,
                                           const std::string& path);

/// Legacy path-based round trip over DefaultPosixBackend().
Status WriteMetadataFile(const std::string& path,
                         const PartitionMetadata& meta);
Result<PartitionMetadata> ReadMetadataFile(const std::string& path);

}  // namespace oreo

#endif  // OREO_STORAGE_METADATA_IO_H_
