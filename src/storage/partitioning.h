// A concrete partitioning of a table: the row->partition assignment produced
// by a data layout, together with per-partition zone maps. This is the
// "partition-level metadata" the paper's query optimizer consults.
#ifndef OREO_STORAGE_PARTITIONING_H_
#define OREO_STORAGE_PARTITIONING_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"
#include "storage/zone_map.h"

namespace oreo {

/// Row-id lists per partition plus zone maps. Invariant: every row of the
/// source table appears in exactly one partition.
struct Partitioning {
  std::vector<std::vector<uint32_t>> partitions;
  std::vector<ZoneMap> zones;
  uint64_t total_rows = 0;

  size_t num_partitions() const { return partitions.size(); }
};

/// Builds a Partitioning from per-row partition ids.
/// `assignment[r]` is the partition id (contiguous, 0-based) of row r.
/// Empty partitions are dropped.
Partitioning BuildPartitioning(const Table& table,
                               const std::vector<uint32_t>& assignment,
                               uint32_t num_partitions);

/// Validates the exactly-once row coverage invariant (test helper).
bool ValidatePartitioning(const Partitioning& p, uint64_t expected_rows);

}  // namespace oreo

#endif  // OREO_STORAGE_PARTITIONING_H_
