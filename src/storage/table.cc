#include "storage/table.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace oreo {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

void Table::AppendRow(const std::vector<Value>& values) {
  OREO_CHECK_EQ(values.size(), columns_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].AppendValue(values[i]);
  }
  ++num_rows_;
}

void Table::FinishAppends() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return;
  }
  num_rows_ = columns_[0].size();
  for (const Column& c : columns_) {
    OREO_CHECK_EQ(c.size(), num_rows_) << "ragged columns";
  }
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

Table Table::Take(const std::vector<uint32_t>& row_ids) const {
  Table out(schema_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.columns_[i] = columns_[i].Take(row_ids);
  }
  out.num_rows_ = row_ids.size();
  return out;
}

void Table::Append(const Table& other) {
  OREO_CHECK(schema_.Equals(other.schema())) << "schema mismatch in Append";
  for (size_t c = 0; c < columns_.size(); ++c) {
    Column& dst = columns_[c];
    const Column& src = other.columns_[c];
    switch (dst.type()) {
      case DataType::kInt64:
        dst.mutable_ints()->insert(dst.mutable_ints()->end(),
                                   src.ints().begin(), src.ints().end());
        break;
      case DataType::kDouble:
        dst.mutable_doubles()->insert(dst.mutable_doubles()->end(),
                                      src.doubles().begin(),
                                      src.doubles().end());
        break;
      case DataType::kString:
        // Re-encode through the destination dictionary.
        for (size_t r = 0; r < src.size(); ++r) {
          dst.AppendString(src.GetString(r));
        }
        break;
    }
  }
  num_rows_ += other.num_rows();
}

Table Table::SampleRows(size_t n, Rng* rng,
                        std::vector<uint32_t>* out_row_ids) const {
  n = std::min(n, num_rows_);
  // Floyd's algorithm for sampling without replacement.
  std::vector<uint32_t> chosen;
  chosen.reserve(n);
  // For small tables relative to n, a partial shuffle is simpler.
  std::vector<uint32_t> ids(num_rows_);
  std::iota(ids.begin(), ids.end(), 0);
  for (size_t i = 0; i < n; ++i) {
    size_t j = i + rng->Uniform(num_rows_ - i);
    std::swap(ids[i], ids[j]);
  }
  chosen.assign(ids.begin(), ids.begin() + static_cast<long>(n));
  std::sort(chosen.begin(), chosen.end());
  if (out_row_ids != nullptr) *out_row_ids = chosen;
  return Take(chosen);
}

size_t Table::MemoryBytes() const {
  size_t total = 0;
  for (const Column& c : columns_) {
    switch (c.type()) {
      case DataType::kInt64:
        total += c.ints().size() * sizeof(int64_t);
        break;
      case DataType::kDouble:
        total += c.doubles().size() * sizeof(double);
        break;
      case DataType::kString: {
        total += c.codes().size() * sizeof(uint32_t);
        for (const std::string& s : c.dictionary()) total += s.size();
        break;
      }
    }
  }
  return total;
}

}  // namespace oreo
