#include "storage/shard_router.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/simd.h"

namespace oreo {

namespace {

// splitmix64: fixed-constant 64-bit mixer, identical on every platform.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Comparisons between a shard boundary and a predicate literal. Same-type
// operands compare *exactly* through Value — row routing (ShardOfValue)
// uses the same operators, so pruning can never disagree with routing by a
// rounding error (int64 values above 2^53 would be lossy through double).
// A mixed int64/double pair falls back to the AsNumeric tolerance zone-map
// pruning uses (predicate.cc); a numeric/string mix is a programmer error
// (Value CHECK-fails, as everywhere else).
bool LiteralLe(const Value& literal, const Value& bound) {
  if (literal.type() == bound.type()) return literal <= bound;
  return literal.AsNumeric() <= bound.AsNumeric();
}

bool LiteralLt(const Value& literal, const Value& bound) {
  if (literal.type() == bound.type()) return literal < bound;
  return literal.AsNumeric() < bound.AsNumeric();
}

}  // namespace

const char* ShardRoutingName(ShardRouting routing) {
  switch (routing) {
    case ShardRouting::kHash:
      return "hash";
    case ShardRouting::kRange:
      return "range";
  }
  return "?";
}

uint64_t ShardRouter::HashValue(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      return Mix64(static_cast<uint64_t>(v.AsInt64()));
    case DataType::kDouble: {
      double d = v.AsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0 to one shard
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case DataType::kString:
      return Mix64(Fnv1a64(v.AsString()));
  }
  return 0;
}

ShardRouter ShardRouter::Build(const Table& table,
                               const ShardRouterOptions& opts) {
  OREO_CHECK_GT(opts.num_shards, 0u) << "num_shards must be positive";
  OREO_CHECK(opts.column >= 0 &&
             static_cast<size_t>(opts.column) < table.num_columns())
      << "routing column " << opts.column << " out of range";
  ShardRouter router;
  router.num_shards_ = opts.num_shards;
  router.column_ = opts.column;
  router.routing_ = opts.routing;
  if (opts.routing == ShardRouting::kRange && opts.num_shards > 1) {
    // Quantile boundaries: sort the routing column and cut at i*n/N.
    // Sorting values (not row ids) makes ties order-free, so the boundaries
    // are a pure function of the column's multiset of values. Each cut is
    // snapped to a *distinct* value, strictly above the previous boundary
    // and strictly below the maximum, so every shard interval contains at
    // least one actual value — a skewed (duplicate-heavy) column can never
    // produce a structurally empty shard.
    const Column& col = table.column(static_cast<size_t>(opts.column));
    std::vector<Value> values;
    values.reserve(table.num_rows());
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      values.push_back(col.GetValue(r));
    }
    std::sort(values.begin(), values.end(),
              [](const Value& a, const Value& b) { return a < b; });
    OREO_CHECK(!values.empty()) << "cannot derive range bounds: empty table";
    std::vector<Value> distinct;
    for (const Value& v : values) {
      if (distinct.empty() || distinct.back() < v) distinct.push_back(v);
    }
    const size_t m = distinct.size();
    const size_t n_shards = opts.num_shards;
    OREO_CHECK(m >= n_shards)
        << "range routing over column " << opts.column << " cannot fill "
        << n_shards << " shards: only " << m << " distinct value(s)";
    size_t prev_k = 0;  // distinct index of the previous boundary
    for (size_t i = 1; i < n_shards; ++i) {
      const size_t idx = (i * values.size()) / n_shards;
      // Distinct index of the quantile value (present by construction).
      size_t k = static_cast<size_t>(
          std::upper_bound(distinct.begin(), distinct.end(), values[idx],
                           [](const Value& a, const Value& b) {
                             return a < b;
                           }) -
          distinct.begin()) - 1;
      // Clamp: strictly above the previous boundary, and low enough that
      // the remaining boundaries plus the last shard still fit below the
      // maximum (m >= n_shards guarantees the window is never empty).
      const size_t lo = (i == 1) ? 0 : prev_k + 1;
      const size_t hi = m - 1 - (n_shards - i);
      k = std::max(k, lo);
      k = std::min(k, hi);
      prev_k = k;
      router.bounds_.push_back(distinct[k]);
    }
    router.bounds_index_ = EytzingerIndex<Value>(router.bounds_);
  }
  return router;
}

uint32_t ShardRouter::ShardOfValue(const Value& v) const {
  if (num_shards_ == 1) return 0;
  if (routing_ == ShardRouting::kHash) {
    return static_cast<uint32_t>(HashValue(v) % num_shards_);
  }
  // Range: shard s covers (bounds_[s-1], bounds_[s]]; first bound >= v wins.
  if (simd::VectorEnabled()) {
    return static_cast<uint32_t>(bounds_index_.LowerBound(v));
  }
  auto it = std::lower_bound(
      bounds_.begin(), bounds_.end(), v,
      [](const Value& bound, const Value& probe) { return bound < probe; });
  return static_cast<uint32_t>(it - bounds_.begin());
}

uint32_t ShardRouter::ShardOfRow(const Table& table, uint32_t row) const {
  OREO_DCHECK(static_cast<size_t>(column_) < table.num_columns());
  return ShardOfValue(
      table.column(static_cast<size_t>(column_)).GetValue(row));
}

std::vector<std::vector<uint32_t>> ShardRouter::SplitRows(
    const Table& table) const {
  std::vector<std::vector<uint32_t>> rows(num_shards_);
  for (uint32_t r = 0; r < table.num_rows(); ++r) {
    rows[ShardOfRow(table, r)].push_back(r);
  }
  return rows;
}

std::vector<Table> ShardRouter::SplitTable(const Table& table) const {
  std::vector<Table> shards;
  shards.reserve(num_shards_);
  for (const std::vector<uint32_t>& rows : SplitRows(table)) {
    shards.push_back(table.Take(rows));
  }
  return shards;
}

bool ShardRouter::RangeShardCanMatch(uint32_t shard,
                                     const Predicate& pred) const {
  // Shard `shard` holds values in (lo, hi] with lo = bounds_[shard-1]
  // (exclusive; absent for shard 0) and hi = bounds_[shard] (inclusive;
  // absent for the last shard). Prune only on provable emptiness; the value
  // domain is treated as continuous, so integer-only gaps are kept
  // (conservative, like ProvesEmpty).
  const bool has_lo = shard > 0;
  const bool has_hi = shard + 1 < num_shards_;
  const Value* lo = has_lo ? &bounds_[shard - 1] : nullptr;
  const Value* hi = has_hi ? &bounds_[shard] : nullptr;
  auto above = [&](const Value& x) {  // every shard value v > lo >= x?
    return has_lo && LiteralLe(x, *lo);
  };
  switch (pred.op) {
    case CompareOp::kEq:
      return !above(pred.value) && !(has_hi && LiteralLt(*hi, pred.value));
    case CompareOp::kLt:
    case CompareOp::kLe:
      // v < x (or v <= x) is impossible iff every v > lo >= x.
      return !above(pred.value);
    case CompareOp::kGt:
      // v > x impossible iff every v <= hi <= x.
      return !(has_hi && LiteralLe(*hi, pred.value));
    case CompareOp::kGe:
      return !(has_hi && LiteralLt(*hi, pred.value));
    case CompareOp::kBetween:
      return !(has_hi && LiteralLt(*hi, pred.value)) && !above(pred.value2);
    case CompareOp::kIn:
      for (const Value& v : pred.in_list) {
        if (!above(v) && !(has_hi && LiteralLt(*hi, v))) return true;
      }
      return false;
  }
  return true;
}

std::vector<uint32_t> ShardRouter::ShardsForQuery(const Query& query) const {
  // A single shard is the whole table: nothing to prune. (This also keeps
  // the 1-shard facade bit-identical to an unsharded engine for degenerate
  // predicates — e.g. an empty IN list — that prove no shard can match.)
  if (num_shards_ == 1) return {0};
  std::vector<bool> keep(num_shards_, true);
  for (const Predicate& pred : query.conjuncts) {
    if (pred.column != column_) continue;
    if (routing_ == ShardRouting::kHash) {
      // Only point predicates identify hash shards.
      if (pred.op == CompareOp::kEq) {
        std::vector<bool> mine(num_shards_, false);
        mine[ShardOfValue(pred.value)] = true;
        for (size_t s = 0; s < num_shards_; ++s) {
          keep[s] = keep[s] && mine[s];
        }
      } else if (pred.op == CompareOp::kIn) {
        std::vector<bool> mine(num_shards_, false);
        for (const Value& v : pred.in_list) mine[ShardOfValue(v)] = true;
        for (size_t s = 0; s < num_shards_; ++s) {
          keep[s] = keep[s] && mine[s];
        }
      }
      continue;
    }
    for (size_t s = 0; s < num_shards_; ++s) {
      keep[s] =
          keep[s] && RangeShardCanMatch(static_cast<uint32_t>(s), pred);
    }
  }
  std::vector<uint32_t> out;
  for (size_t s = 0; s < num_shards_; ++s) {
    if (keep[s]) out.push_back(static_cast<uint32_t>(s));
  }
  return out;
}

namespace {

// --- bound serialization ------------------------------------------------
// Values print as "i:<int>", "d:<%.17g>" (round-trips every double), or
// "s:<len>:<bytes>" (length prefix, so arbitrary bytes survive).

void AppendBound(std::string* out, const Value& v) {
  char buf[64];
  switch (v.type()) {
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "i:%lld",
                    static_cast<long long>(v.AsInt64()));
      *out += buf;
      return;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.AsDouble());
      *out += buf;
      return;
    case DataType::kString:
      std::snprintf(buf, sizeof(buf), "s:%zu:", v.AsString().size());
      *out += buf;
      *out += v.AsString();
      return;
  }
}

// Parses one bound starting at `pos`; advances `pos` past it. Returns a
// non-OK status on malformed input.
Status ParseBound(const std::string& text, size_t* pos, Value* out) {
  if (*pos + 2 > text.size() || text[*pos + 1] != ':') {
    return Status::InvalidArgument("shard router: malformed bound");
  }
  const char kind = text[*pos];
  *pos += 2;
  if (kind == 's') {
    size_t colon = text.find(':', *pos);
    if (colon == std::string::npos) {
      return Status::InvalidArgument("shard router: malformed string bound");
    }
    size_t len = 0;
    for (size_t i = *pos; i < colon; ++i) {
      if (text[i] < '0' || text[i] > '9') {
        return Status::InvalidArgument("shard router: bad string length");
      }
      len = len * 10 + static_cast<size_t>(text[i] - '0');
    }
    if (colon + 1 + len > text.size()) {
      return Status::InvalidArgument("shard router: truncated string bound");
    }
    *out = Value(text.substr(colon + 1, len));
    *pos = colon + 1 + len;
    return Status::OK();
  }
  size_t end = *pos;
  while (end < text.size() && text[end] != ',' && text[end] != ']') ++end;
  const std::string token = text.substr(*pos, end - *pos);
  errno = 0;
  char* parsed_end = nullptr;
  if (kind == 'i') {
    long long v = std::strtoll(token.c_str(), &parsed_end, 10);
    if (token.empty() || *parsed_end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument("shard router: bad int bound '" + token +
                                     "'");
    }
    *out = Value(static_cast<int64_t>(v));
  } else if (kind == 'd') {
    double v = std::strtod(token.c_str(), &parsed_end);
    if (token.empty() || *parsed_end != '\0') {
      return Status::InvalidArgument("shard router: bad double bound '" +
                                     token + "'");
    }
    *out = Value(v);
  } else {
    return Status::InvalidArgument("shard router: unknown bound kind");
  }
  *pos = end;
  return Status::OK();
}

}  // namespace

std::string ShardRouter::Serialize() const {
  std::string out = "shards=" + std::to_string(num_shards_) +
                    " column=" + std::to_string(column_) +
                    " routing=" + ShardRoutingName(routing_) + " bounds=[";
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (i > 0) out += ',';
    AppendBound(&out, bounds_[i]);
  }
  out += ']';
  return out;
}

Result<ShardRouter> ShardRouter::Deserialize(const std::string& text) {
  ShardRouter router;
  unsigned long long shards = 0;
  long long column = 0;
  char routing_name[16] = {0};
  int consumed = 0;
  // 2^20 shards is far beyond any sane deployment; the cap also rejects
  // negative counts that %llu would otherwise wrap to huge values.
  constexpr unsigned long long kMaxShards = 1ULL << 20;
  if (std::sscanf(text.c_str(), "shards=%llu column=%lld routing=%15s bounds=%n",
                  &shards, &column, routing_name, &consumed) != 3 ||
      shards == 0 || shards > kMaxShards || column < 0 || consumed <= 0 ||
      static_cast<size_t>(consumed) >= text.size() ||
      text[static_cast<size_t>(consumed)] != '[') {
    return Status::InvalidArgument("shard router: cannot parse '" + text + "'");
  }
  router.num_shards_ = static_cast<size_t>(shards);
  router.column_ = static_cast<int>(column);
  const std::string name(routing_name);
  if (name == "hash") {
    router.routing_ = ShardRouting::kHash;
  } else if (name == "range") {
    router.routing_ = ShardRouting::kRange;
  } else {
    return Status::InvalidArgument("shard router: unknown routing '" + name +
                                   "'");
  }
  size_t pos = static_cast<size_t>(consumed) + 1;  // past '['
  while (pos < text.size() && text[pos] != ']') {
    if (!router.bounds_.empty()) {
      if (text[pos] != ',') {
        return Status::InvalidArgument("shard router: expected ','");
      }
      ++pos;
    }
    Value bound;
    OREO_RETURN_NOT_OK(ParseBound(text, &pos, &bound));
    router.bounds_.push_back(std::move(bound));
  }
  if (pos >= text.size() || text[pos] != ']') {
    return Status::InvalidArgument("shard router: unterminated bounds");
  }
  if (pos + 1 != text.size()) {
    return Status::InvalidArgument("shard router: trailing garbage after ']'");
  }
  if (router.routing_ == ShardRouting::kRange &&
      router.bounds_.size() + 1 != router.num_shards_) {
    return Status::InvalidArgument("shard router: bound count mismatch");
  }
  if (router.routing_ == ShardRouting::kHash && !router.bounds_.empty()) {
    return Status::InvalidArgument("shard router: hash routing has no bounds");
  }
  // Routing and pruning both assume one value type in strictly ascending
  // order (Build guarantees it); reject corrupted lines instead of routing
  // incorrectly — or CHECK-aborting on a mixed-type comparison — later.
  for (size_t i = 1; i < router.bounds_.size(); ++i) {
    if (router.bounds_[i].type() != router.bounds_[0].type()) {
      return Status::InvalidArgument("shard router: mixed bound types");
    }
    if (!(router.bounds_[i - 1] < router.bounds_[i])) {
      return Status::InvalidArgument(
          "shard router: bounds not strictly ascending");
    }
  }
  router.bounds_index_ = EytzingerIndex<Value>(router.bounds_);
  return router;
}

}  // namespace oreo
