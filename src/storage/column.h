// In-memory column storage. Numeric columns are flat vectors; string columns
// are dictionary-encoded (a code vector plus a dictionary), matching how
// columnar formats store low-cardinality categoricals.
#ifndef OREO_STORAGE_COLUMN_H_
#define OREO_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/types.h"
#include "catalog/value.h"

namespace oreo {

/// A single typed column of values.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  void Reserve(size_t n);

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);
  /// Appends a value whose type must match the column type.
  void AppendValue(const Value& v);

  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  const std::string& GetString(size_t row) const {
    return dict_[codes_[row]];
  }
  /// Dictionary code of the string at `row` (string columns only).
  uint32_t GetCode(size_t row) const { return codes_[row]; }
  Value GetValue(size_t row) const;

  /// Numeric view of the value at `row`: int64 widened to double; string
  /// columns expose their dictionary code (used by Z-order rank mapping).
  double GetNumeric(size_t row) const;

  /// Dictionary of a string column (code -> string).
  const std::vector<std::string>& dictionary() const { return dict_; }
  /// Code for `s`, inserting into the dictionary if absent.
  uint32_t CodeFor(const std::string& s);
  /// Code for `s` or -1 if the dictionary does not contain it.
  int64_t FindCode(const std::string& s) const;

  /// Builds a column containing rows at `row_ids` in order.
  /// String columns share the dictionary content (codes re-mapped as needed).
  Column Take(const std::vector<uint32_t>& row_ids) const;

  // Raw access used by the block writer / codecs.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  std::vector<double>* mutable_doubles() { return &doubles_; }
  /// Installs a decoded string column (block reader path).
  void SetStringData(std::vector<uint32_t> codes,
                     std::vector<std::string> dict);

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
};

}  // namespace oreo

#endif  // OREO_STORAGE_COLUMN_H_
