// Cross-shard tiered block cache. PR 5 gave every store a private
// CachedBackend; with many shards over one slow remote tier that splinters
// the memory budget and re-fetches the same object once per shard. The
// SharedBlockCache holds ONE global budget with per-shard accounting and
// single-flight dedup across every shard view, plus an async prefetch
// executor that warms zone-map-surviving partitions for the next queries of
// a batch while the current ones scan.
//
// Staleness contract (shared with CachedBackend, which is a single-tenant
// view of this class): a mutation of `path` brackets its base op with
// BeginMutation/EndMutation. BeginMutation drops the cached object and dooms
// any in-flight fetch; every fetch started while a mutation is active is
// *born doomed* — its bytes are served to the reader whose read legitimately
// overlapped the mutation, but they are never inserted, so a read that
// begins after the mutation returns always observes the new bytes.
//
// Determinism: the cache only affects *where* bytes are served from, never
// which bytes — reads return exactly what the base backend holds. With
// prefetching off, hit/miss totals for a fixed multiset of reads are
// thread-count invariant (each distinct path is fetched once). Prefetching
// keeps byte-identical results but turns some demand misses into hits, so
// hit/miss totals are only comparable between runs with the same prefetch
// configuration.
#ifndef OREO_STORAGE_SHARED_CACHE_H_
#define OREO_STORAGE_SHARED_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/backend.h"

namespace oreo {

struct SharedBlockCacheOptions {
  /// Total bytes of cached objects across ALL shards; strict-LRU eviction
  /// when an insertion would exceed it. Objects larger than the capacity are
  /// served but never cached.
  size_t capacity_bytes = size_t{64} << 20;

  /// Worker threads for async prefetch. 0 disables prefetching entirely
  /// (StartPrefetch/RequestPrefetch become counted no-ops).
  size_t prefetch_threads = 0;

  /// Bound on queued prefetch requests; requests beyond it are dropped
  /// (prefetch is advisory, never load-bearing).
  size_t max_queued_prefetches = 256;
};

/// Global cache counters (sums over all shards, plus prefetch activity).
struct SharedCacheStats {
  uint64_t hits = 0;        ///< reads served without a base fetch of their own
  uint64_t misses = 0;      ///< demand reads that fetched from the base
  uint64_t coalesced = 0;   ///< hits that waited on an in-flight fetch
  uint64_t evictions = 0;   ///< objects dropped by the LRU bound
  uint64_t invalidations = 0;  ///< objects dropped by writes/removes
  uint64_t hit_bytes = 0;   ///< bytes served from cache (base reads avoided)
  uint64_t miss_bytes = 0;  ///< bytes fetched from the base by demand reads
  uint64_t resident_bytes = 0;
  uint64_t resident_objects = 0;
  uint64_t prefetch_requests = 0;  ///< accepted (queued) prefetch requests
  uint64_t prefetch_dropped = 0;   ///< dropped: queue full or no workers
  uint64_t prefetch_noops = 0;     ///< skipped: cached / in flight / mutating
  uint64_t prefetch_fetches = 0;   ///< base fetches issued by the prefetcher
  uint64_t prefetch_bytes = 0;     ///< bytes fetched by the prefetcher
};

/// One shard's slice of the accounting. resident_* sums over shards equal
/// the global resident_*; evictions_charged names the shard whose object
/// was dropped (the victim's owner, not the inserter).
struct ShardCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t hit_bytes = 0;
  uint64_t miss_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_objects = 0;
  uint64_t evictions_charged = 0;
  uint64_t invalidations = 0;
  uint64_t prefetch_fetches = 0;
};

/// The shared tier itself. Thread-safe; shard views (SharedCacheBackend,
/// CachedBackend) route every cacheable op through it.
class SharedBlockCache {
 public:
  explicit SharedBlockCache(SharedBlockCacheOptions options = {});
  ~SharedBlockCache();

  SharedBlockCache(const SharedBlockCache&) = delete;
  SharedBlockCache& operator=(const SharedBlockCache&) = delete;

  /// Serves `path` from cache, an in-flight fetch, or `base` (single-flight:
  /// concurrent readers of one path across ALL shards share one base fetch).
  /// The hit/miss is charged to `shard`; an inserted object is owned by the
  /// shard whose fetch inserted it.
  Result<std::string> Read(uint32_t shard, StorageBackend* base,
                           const std::string& path);

  /// Mutation bracket around a base write/remove of `path`. Begin drops the
  /// cached object, dooms any in-flight fetch, and marks the path mutating
  /// so fetches started before End are born doomed; invalidations are
  /// charged to the owner shard of the dropped object. Calls must balance;
  /// brackets for the same path may nest (concurrent same-path writers).
  void BeginMutation(const std::string& path);
  void EndMutation(const std::string& path);

  /// Queues an async warm-up of `path` through `base`, charged to `shard`.
  /// Advisory: dropped when the queue is full or no workers exist, skipped
  /// when the object is already cached, in flight, or mutating; a failed
  /// prefetch is invisible to later demand reads.
  void RequestPrefetch(uint32_t shard, std::shared_ptr<StorageBackend> base,
                       const std::string& path);

  /// Blocks until the prefetch queue is empty and no prefetch is running
  /// (tests and deterministic warm-up).
  void DrainPrefetches();

  SharedCacheStats stats() const;
  ShardCacheStats shard_stats(uint32_t shard) const;
  /// Every shard that has touched the cache, in shard-id order.
  std::map<uint32_t, ShardCacheStats> all_shard_stats() const;
  size_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Fetch {
    bool done = false;
    bool doomed = false;  // raced a mutation (or failed prefetch): not cached
    std::shared_ptr<const std::string> data;
    Status status;
  };
  struct Entry {
    std::shared_ptr<const std::string> data;
    uint32_t owner;  // shard charged for residency and eviction
    std::list<std::string>::iterator lru_it;  // position in lru_
  };
  struct PrefetchTask {
    uint32_t shard;
    std::shared_ptr<StorageBackend> base;
    std::string path;
  };
  enum class DropReason { kReplace, kEviction, kInvalidation };

  // All Locked helpers require mu_ held.
  void EraseLocked(const std::string& path, DropReason reason);
  void InsertLocked(const std::string& path, uint32_t shard,
                    std::shared_ptr<const std::string> data);
  bool MutationActiveLocked(const std::string& path) const {
    return active_mutations_.find(path) != active_mutations_.end();
  }

  void PrefetchLoop();
  void RunPrefetch(const PrefetchTask& task);

  SharedBlockCacheOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes readers waiting on an in-flight fetch
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> cache_;
  std::unordered_map<std::string, std::shared_ptr<Fetch>> inflight_;
  std::unordered_map<std::string, uint32_t> active_mutations_;  // nest depth
  SharedCacheStats stats_;
  std::map<uint32_t, ShardCacheStats> shard_stats_;

  // Prefetch executor. queue_mu_ is never held together with mu_.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<PrefetchTask> queue_;
  size_t active_prefetches_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// One shard's StorageBackend view of a SharedBlockCache: reads go through
/// the shared tier, writes/removes are write-through with the mutation
/// bracket, StartPrefetch feeds the shared async prefetcher.
class SharedCacheBackend : public StorageBackend, public BlockPrefetcher {
 public:
  SharedCacheBackend(std::shared_ptr<SharedBlockCache> cache,
                     std::shared_ptr<StorageBackend> base, uint32_t shard);

  std::string name() const override;
  Result<std::string> ReadBlock(const std::string& path) override;
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status Sync() override;
  BackendStats stats() const override { return stats_.snapshot(); }

  void StartPrefetch(const std::string& path) override;

  SharedBlockCache* cache() const { return cache_.get(); }
  StorageBackend* base() const { return base_.get(); }
  uint32_t shard() const { return shard_; }

 private:
  std::shared_ptr<SharedBlockCache> cache_;
  std::shared_ptr<StorageBackend> base_;
  uint32_t shard_;
  internal::AtomicBackendStats stats_;
};

std::shared_ptr<SharedBlockCache> MakeSharedBlockCache(
    SharedBlockCacheOptions options = {});
std::shared_ptr<SharedCacheBackend> MakeSharedCacheBackend(
    std::shared_ptr<SharedBlockCache> cache,
    std::shared_ptr<StorageBackend> base, uint32_t shard);

/// The backend a shard's store should use: when `cache` is null this is just
/// `base` (possibly null → the store's own default); otherwise `base` (or
/// the default posix backend when null) wrapped in a shard-charged view.
std::shared_ptr<StorageBackend> WrapWithSharedCache(
    std::shared_ptr<SharedBlockCache> cache,
    std::shared_ptr<StorageBackend> base, uint32_t shard);

}  // namespace oreo

#endif  // OREO_STORAGE_SHARED_CACHE_H_
