// Horizontal sharding of a Table over one routing column.
//
// A ShardRouter is a pure, deterministic mapping from rows to shard ids —
// the sharding analogue of a Layout's row→partition mapping, one level up.
// Two routing functions are supported:
//
//   - kHash:  shard = H(value) mod N with a fixed, platform-independent hash
//             (splitmix64 for numerics, FNV-1a for strings). Balances any
//             value distribution; only point predicates (=, IN) on the
//             routing column can prune shards.
//   - kRange: shard boundaries are derived from routing-column quantiles of
//             the table the router is built from, so shards are balanced on
//             that table. Every comparison predicate on the routing column
//             prunes shards like a coarse zone map.
//
// Routing is *complete by construction*: shard s holds exactly the rows the
// routing function assigns to s, so ShardsForQuery — which keeps a shard
// only if the query's routing-column conjuncts could match some value the
// shard can hold — can never drop a matching row (pinned by the property
// test in tests/sharded_equivalence_test.cc).
//
// Routers serialize to a single text line (Serialize/Deserialize round-trip
// exactly), so a sharded deployment can persist its routing function next to
// the partition metadata.
#ifndef OREO_STORAGE_SHARD_ROUTER_H_
#define OREO_STORAGE_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/eytzinger.h"
#include "common/status.h"
#include "query/query.h"
#include "storage/table.h"

namespace oreo {

/// Which routing function maps rows to shards.
enum class ShardRouting : uint8_t {
  kHash = 0,
  kRange,
};

const char* ShardRoutingName(ShardRouting routing);

struct ShardRouterOptions {
  size_t num_shards = 1;
  int column = 0;  ///< routing column (field index in the table schema)
  ShardRouting routing = ShardRouting::kHash;
};

/// Deterministic row→shard mapping plus query→shards pruning.
class ShardRouter {
 public:
  /// Builds a router for tables shaped like `table`. Hash routing only
  /// records the column type; range routing additionally derives
  /// `num_shards - 1` ascending boundary values from the routing column's
  /// quantiles (deterministic: ties are broken by value order).
  static ShardRouter Build(const Table& table, const ShardRouterOptions& opts);

  size_t num_shards() const { return num_shards_; }
  int column() const { return column_; }
  ShardRouting routing() const { return routing_; }

  /// Shard id of row `row` of `table`.
  uint32_t ShardOfRow(const Table& table, uint32_t row) const;

  /// Shard id of a routing-column value.
  uint32_t ShardOfValue(const Value& v) const;

  /// Row-id lists per shard, each ascending (the split is order-stable, so a
  /// 1-shard split reproduces the source row order exactly).
  std::vector<std::vector<uint32_t>> SplitRows(const Table& table) const;

  /// Materializes the shard tables (Take of each SplitRows list).
  std::vector<Table> SplitTable(const Table& table) const;

  /// Ids of shards whose rows could match `query`, ascending. A shard is
  /// pruned only if some routing-column conjunct can match no value routed
  /// to it; conjuncts on other columns and non-prunable operators keep every
  /// shard (conservative, like zone-map pruning).
  std::vector<uint32_t> ShardsForQuery(const Query& query) const;

  /// One-line textual form, e.g. "shards=4 column=2 routing=range
  /// bounds=[i:10,i:20,i:30]". Deserialize parses it back exactly.
  std::string Serialize() const;
  static Result<ShardRouter> Deserialize(const std::string& text);

  /// Deterministic 64-bit value hash used by kHash routing (exposed so tests
  /// can pin the routing function).
  static uint64_t HashValue(const Value& v);

 private:
  ShardRouter() = default;

  /// True if `pred` (on the routing column) can match some value in the
  /// range-shard `shard`'s interval.
  bool RangeShardCanMatch(uint32_t shard, const Predicate& pred) const;

  size_t num_shards_ = 1;
  int column_ = 0;
  ShardRouting routing_ = ShardRouting::kHash;
  /// Range mode: ascending boundary values, size num_shards_ - 1. Shard s
  /// covers (bounds_[s-1], bounds_[s]]; shard 0 is unbounded below, the last
  /// shard unbounded above. Values above the last boundary go to the last
  /// shard.
  std::vector<Value> bounds_;
  /// BFS-layout mirror of bounds_ (rebuilt by Build and Deserialize);
  /// ShardOfValue dispatches to its branchless LowerBound when the
  /// vectorized kernels are enabled.
  EytzingerIndex<Value> bounds_index_;
};

}  // namespace oreo

#endif  // OREO_STORAGE_SHARD_ROUTER_H_
