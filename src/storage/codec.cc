#include "storage/codec.h"

#include <cstring>

#include "common/logging.h"
#include "common/simd.h"

namespace oreo {

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDeltaVarint:
      return "delta-varint";
    case Encoding::kDictionary:
      return "dictionary";
  }
  return "unknown";
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view data, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++(*pos);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

namespace {

template <typename T>
void AppendRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

// Vectorized decode paths. The wire format is untouched (encoders above are
// the single source of truth); these only read it faster. Both return the
// exact bytes and the exact Status the scalar loops in DecodeInt64 produce —
// corruption and truncation are detected at the same points with the same
// messages — pinned by the codec fuzz cases in tests/kernels_test.cc.
// `out` is unspecified on a non-OK return (true of the scalar paths too:
// they leave a partially-filled vector).

// RLE: run headers are varint-decoded as before, but each run is expanded
// with one bulk fill (resize-with-value into the reserved buffer) — exactly
// one write per element. Pre-sizing the whole vector would zero-fill n
// elements and then overwrite them: double the memory traffic of a decode
// that is bandwidth-bound to begin with.
Status DecodeRleFast(std::string_view data, size_t n,
                     std::vector<int64_t>* out) {
  size_t pos = 0;
  while (out->size() < n) {
    uint64_t run, zz;
    if (!GetVarint64(data, &pos, &run) || !GetVarint64(data, &pos, &zz)) {
      return Status::Corruption("truncated RLE chunk");
    }
    // `run > n - size` rather than `size + run > n`: the subtraction cannot
    // wrap (size <= n), so an absurd 2^64-scale run cannot slip past the
    // bound check.
    if (run == 0 || run > n - out->size()) {
      return Status::Corruption("RLE run overflows row count");
    }
    out->resize(out->size() + run, ZigZagDecode(zz));
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes in RLE chunk");
  }
  return Status::OK();
}

// Delta-varint: sorted columns produce mostly small deltas, i.e. runs of
// single-byte varints. Load 8 bytes at a time; when no continuation bit is
// set, decode all 8 with an unrolled zigzag + prefix sum. Any byte with a
// continuation bit drops to the scalar GetVarint64 for that one element, so
// multi-byte varints, truncation and over-long encodings take exactly the
// reference path.
Status DecodeDeltaVarintFast(std::string_view data, size_t n,
                             std::vector<int64_t>* out) {
  out->resize(n);
  int64_t* dst = out->data();
  size_t pos = 0;
  uint64_t prev = 0;  // wrapping accumulator, mirrors the encoder
  size_t i = 0;
  while (i < n) {
    if (i + 8 <= n && pos + 8 <= data.size()) {
      uint64_t w;
      std::memcpy(&w, data.data() + pos, sizeof(w));
      if ((w & 0x8080808080808080ULL) == 0) {
        for (int b = 0; b < 8; ++b) {
          const uint64_t zz = (w >> (b * 8)) & 0x7f;
          prev += static_cast<uint64_t>(ZigZagDecode(zz));
          dst[i + static_cast<size_t>(b)] = static_cast<int64_t>(prev);
        }
        pos += 8;
        i += 8;
        continue;
      }
    }
    uint64_t zz;
    if (!GetVarint64(data, &pos, &zz)) {
      return Status::Corruption("truncated delta-varint chunk");
    }
    prev += static_cast<uint64_t>(ZigZagDecode(zz));
    dst[i++] = static_cast<int64_t>(prev);
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes in delta-varint chunk");
  }
  return Status::OK();
}

}  // namespace

void EncodeInt64(const std::vector<int64_t>& values, Encoding enc,
                 std::string* out) {
  switch (enc) {
    case Encoding::kPlain: {
      out->append(reinterpret_cast<const char*>(values.data()),
                  values.size() * sizeof(int64_t));
      return;
    }
    case Encoding::kRle: {
      size_t i = 0;
      while (i < values.size()) {
        size_t j = i;
        while (j < values.size() && values[j] == values[i]) ++j;
        PutVarint64(out, j - i);
        PutVarint64(out, ZigZagEncode(values[i]));
        i = j;
      }
      return;
    }
    case Encoding::kDeltaVarint: {
      // Deltas are computed with wrapping uint64 arithmetic: a signed
      // difference overflows (UB) on extreme pairs like INT64_MIN ->
      // INT64_MAX, while the two's-complement wrap round-trips exactly.
      uint64_t prev = 0;
      for (int64_t v : values) {
        uint64_t delta = static_cast<uint64_t>(v) - prev;
        PutVarint64(out, ZigZagEncode(static_cast<int64_t>(delta)));
        prev = static_cast<uint64_t>(v);
      }
      return;
    }
    case Encoding::kDictionary:
      OREO_CHECK(false) << "kDictionary is not an int64 encoding";
  }
}

Status DecodeInt64(std::string_view data, Encoding enc, size_t n,
                   std::vector<int64_t>* out) {
  out->clear();
  out->reserve(n);
  switch (enc) {
    case Encoding::kPlain: {
      if (data.size() != n * sizeof(int64_t)) {
        return Status::Corruption("plain int64 chunk size mismatch");
      }
      out->resize(n);
      if (n > 0) std::memcpy(out->data(), data.data(), data.size());
      return Status::OK();
    }
    case Encoding::kRle: {
      if (simd::VectorEnabled()) return DecodeRleFast(data, n, out);
      size_t pos = 0;
      while (out->size() < n) {
        uint64_t run, zz;
        if (!GetVarint64(data, &pos, &run) || !GetVarint64(data, &pos, &zz)) {
          return Status::Corruption("truncated RLE chunk");
        }
        if (run == 0 || out->size() + run > n) {
          return Status::Corruption("RLE run overflows row count");
        }
        int64_t v = ZigZagDecode(zz);
        out->insert(out->end(), run, v);
      }
      if (pos != data.size()) {
        return Status::Corruption("trailing bytes in RLE chunk");
      }
      return Status::OK();
    }
    case Encoding::kDeltaVarint: {
      if (simd::VectorEnabled()) return DecodeDeltaVarintFast(data, n, out);
      size_t pos = 0;
      uint64_t prev = 0;  // wrapping accumulator, mirrors the encoder
      for (size_t i = 0; i < n; ++i) {
        uint64_t zz;
        if (!GetVarint64(data, &pos, &zz)) {
          return Status::Corruption("truncated delta-varint chunk");
        }
        prev += static_cast<uint64_t>(ZigZagDecode(zz));
        out->push_back(static_cast<int64_t>(prev));
      }
      if (pos != data.size()) {
        return Status::Corruption("trailing bytes in delta-varint chunk");
      }
      return Status::OK();
    }
    case Encoding::kDictionary:
      return Status::InvalidArgument("kDictionary is not an int64 encoding");
  }
  return Status::Internal("unreachable");
}

Encoding ChooseInt64Encoding(const std::vector<int64_t>& values) {
  if (values.empty()) return Encoding::kPlain;
  size_t runs = 1;
  bool sorted = true;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] != values[i - 1]) ++runs;
    if (values[i] < values[i - 1]) sorted = false;
  }
  // Few runs -> RLE wins decisively.
  if (runs * 16 <= values.size()) return Encoding::kRle;
  // Sorted (the common case after layout assignment on the sort column) ->
  // small deltas, varint wins.
  if (sorted) return Encoding::kDeltaVarint;
  return Encoding::kPlain;
}

void EncodeDouble(const std::vector<double>& values, std::string* out) {
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(double));
}

Status DecodeDouble(std::string_view data, size_t n,
                    std::vector<double>* out) {
  if (data.size() != n * sizeof(double)) {
    return Status::Corruption("double chunk size mismatch");
  }
  out->resize(n);
  if (n > 0) std::memcpy(out->data(), data.data(), data.size());
  return Status::OK();
}

void EncodeStringDict(const std::vector<uint32_t>& codes,
                      const std::vector<std::string>& dict, std::string* out) {
  PutVarint64(out, dict.size());
  for (const std::string& s : dict) {
    PutVarint64(out, s.size());
    out->append(s);
  }
  for (uint32_t c : codes) AppendRaw(out, c);
}

Status DecodeStringDict(std::string_view data, size_t n,
                        std::vector<uint32_t>* codes,
                        std::vector<std::string>* dict) {
  size_t pos = 0;
  uint64_t dict_size;
  if (!GetVarint64(data, &pos, &dict_size)) {
    return Status::Corruption("truncated dictionary header");
  }
  dict->clear();
  dict->reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    uint64_t len;
    if (!GetVarint64(data, &pos, &len) || pos + len > data.size()) {
      return Status::Corruption("truncated dictionary entry");
    }
    dict->emplace_back(data.substr(pos, len));
    pos += len;
  }
  codes->clear();
  codes->resize(n);
  if (pos + n * sizeof(uint32_t) != data.size()) {
    return Status::Corruption("dictionary code array size mismatch");
  }
  if (n > 0) std::memcpy(codes->data(), data.data() + pos, n * sizeof(uint32_t));
  if (simd::VectorEnabled()) {
    // Branchless max-scan (auto-vectorizes), one range check at the end —
    // same verdict as the early-exit reference loop below.
    uint32_t max_code = 0;
    for (uint32_t c : *codes) max_code = c > max_code ? c : max_code;
    if (n > 0 && max_code >= dict_size) {
      return Status::Corruption("dictionary code out of range");
    }
    return Status::OK();
  }
  for (uint32_t c : *codes) {
    if (c >= dict_size) return Status::Corruption("dictionary code out of range");
  }
  return Status::OK();
}

}  // namespace oreo
