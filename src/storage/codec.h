// Lightweight column encodings for the on-disk block format: plain, RLE,
// zigzag delta-varint (for sorted/clustered integers), and dictionary (for
// strings). Reorganization cost in the paper includes compressing and writing
// partitions; these codecs make that work real in the physical benchmarks.
#ifndef OREO_STORAGE_CODEC_H_
#define OREO_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace oreo {

/// Wire encoding of a column chunk.
enum class Encoding : uint8_t {
  kPlain = 0,        ///< raw little-endian values
  kRle = 1,          ///< (varint run length, zigzag varint value) pairs
  kDeltaVarint = 2,  ///< first value raw, then zigzag varint deltas
  kDictionary = 3,   ///< length-prefixed dictionary + plain u32 codes
};

const char* EncodingName(Encoding e);

// --- varint / zigzag primitives (exposed for tests) ---

void PutVarint64(std::string* out, uint64_t v);
/// Reads a varint at *pos, advancing it. Returns false on truncation.
bool GetVarint64(std::string_view data, size_t* pos, uint64_t* v);
uint64_t ZigZagEncode(int64_t v);
int64_t ZigZagDecode(uint64_t v);

// --- int64 columns ---

/// Encodes `values` using `enc` (kPlain, kRle or kDeltaVarint).
void EncodeInt64(const std::vector<int64_t>& values, Encoding enc,
                 std::string* out);
/// Decodes exactly `n` values; fails with Corruption on malformed input.
Status DecodeInt64(std::string_view data, Encoding enc, size_t n,
                   std::vector<int64_t>* out);
/// Picks the smallest encoding among plain/RLE/delta for the given data
/// using cheap heuristics (run count, sortedness).
Encoding ChooseInt64Encoding(const std::vector<int64_t>& values);

// --- double columns (plain only) ---

void EncodeDouble(const std::vector<double>& values, std::string* out);
Status DecodeDouble(std::string_view data, size_t n,
                    std::vector<double>* out);

// --- string columns (dictionary) ---

void EncodeStringDict(const std::vector<uint32_t>& codes,
                      const std::vector<std::string>& dict, std::string* out);
Status DecodeStringDict(std::string_view data, size_t n,
                        std::vector<uint32_t>* codes,
                        std::vector<std::string>* dict);

}  // namespace oreo

#endif  // OREO_STORAGE_CODEC_H_
