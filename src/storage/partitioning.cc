#include "storage/partitioning.h"

#include <algorithm>

#include "common/logging.h"

namespace oreo {

Partitioning BuildPartitioning(const Table& table,
                               const std::vector<uint32_t>& assignment,
                               uint32_t num_partitions) {
  OREO_CHECK_EQ(assignment.size(), table.num_rows());
  Partitioning out;
  out.partitions.assign(num_partitions, {});
  for (uint32_t r = 0; r < assignment.size(); ++r) {
    OREO_CHECK_LT(assignment[r], num_partitions);
    out.partitions[assignment[r]].push_back(r);
  }
  // Drop empty partitions to keep metadata compact.
  out.partitions.erase(
      std::remove_if(out.partitions.begin(), out.partitions.end(),
                     [](const std::vector<uint32_t>& p) { return p.empty(); }),
      out.partitions.end());
  out.zones.reserve(out.partitions.size());
  for (const auto& rows : out.partitions) {
    out.zones.push_back(BuildZoneMap(table, rows));
  }
  out.total_rows = table.num_rows();
  return out;
}

bool ValidatePartitioning(const Partitioning& p, uint64_t expected_rows) {
  std::vector<uint8_t> seen(expected_rows, 0);
  uint64_t count = 0;
  for (const auto& part : p.partitions) {
    for (uint32_t r : part) {
      if (r >= expected_rows) return false;
      if (seen[r]) return false;
      seen[r] = 1;
      ++count;
    }
  }
  if (count != expected_rows) return false;
  if (p.zones.size() != p.partitions.size()) return false;
  for (size_t i = 0; i < p.partitions.size(); ++i) {
    if (p.zones[i].num_rows != p.partitions[i].size()) return false;
  }
  return true;
}

}  // namespace oreo
