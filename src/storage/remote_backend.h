// Simulated remote object store. ROADMAP item 2: prove the engine's
// Theorem IV.1 guarantee is independent of where bytes live by running it
// on slow, failure-prone storage. RemoteBackend decorates any inner backend
// with the three properties that make remote tiers hard:
//
//   1. Latency: a configurable per-op sleep (the round trip) plus a
//      bandwidth throttle proportional to the bytes moved.
//   2. Transient failures: seeded-deterministic injected faults. Whether an
//      op is "afflicted" is a pure function of (fault_seed, opcode, path),
//      and an afflicted (opcode, path) fails its first `k` attempts with
//      Status::Unavailable before healing, where `k` is also derived from
//      the seed. The schedule is therefore independent of thread timing:
//      the same seed yields the same faults and the same retry counts in
//      every run, which keeps the engine's bit-identical determinism
//      contract testable under failure injection.
//   3. Retries: an exponential-backoff retry policy that absorbs transient
//      kUnavailable faults internally. Non-transient errors (NotFound,
//      IoError, ...) pass through immediately — retrying cannot fix them
//      and retrying Remove-after-success would turn idempotence bugs into
//      silent double-failures.
//
// The decorator never changes bytes: reads return exactly what the inner
// backend holds and writes pass through verbatim, so partition CRCs are
// identical to the undecorated run.
#ifndef OREO_STORAGE_REMOTE_BACKEND_H_
#define OREO_STORAGE_REMOTE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/backend.h"

namespace oreo {

struct RemoteBackendOptions {
  // --- simulated network ---
  uint64_t read_latency_us = 0;    ///< round-trip sleep per ReadBlock attempt
  uint64_t write_latency_us = 0;   ///< per AtomicWriteBlock attempt
  uint64_t list_latency_us = 0;    ///< per List attempt
  uint64_t remove_latency_us = 0;  ///< per Remove attempt
  /// Payload throttle: each read/write additionally sleeps
  /// bytes / bandwidth_bytes_per_sec. 0 = unthrottled.
  uint64_t bandwidth_bytes_per_sec = 0;

  // --- seeded-deterministic transient faults ---
  /// Fraction of (opcode, path) keys that are afflicted (0.0 disables).
  double fault_rate = 0.0;
  /// An afflicted key fails its first 1..max_faults_per_key attempts
  /// (seed-derived count) with Unavailable, then heals.
  uint32_t max_faults_per_key = 2;
  uint64_t fault_seed = 42;
  bool fault_reads = true;
  bool fault_writes = true;
  bool fault_removes = true;
  bool fault_lists = false;  ///< List drives recovery paths; default solid

  // --- retry policy ---
  /// Additional attempts after the first before Unavailable surfaces to the
  /// caller. max_retries >= ceil(log2(max_faults_per_key)) + 1 guarantees
  /// injected faults are always absorbed.
  uint32_t max_retries = 5;
  uint64_t initial_backoff_us = 100;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 20'000;  ///< per-sleep cap, not a total deadline

  /// Test hook: when false, backoff/latency/throttle sleeps are accounted
  /// in the stats but not actually slept — fault/retry schedules stay
  /// identical while walls run at full speed.
  bool sleep_for_real = true;
};

/// Counters for the remote tier (all monotonic, torn-read-free).
struct RemoteBackendStats {
  uint64_t ops = 0;              ///< logical ops (retries not counted)
  uint64_t attempts = 0;         ///< physical attempts (>= ops)
  uint64_t injected_faults = 0;  ///< attempts failed by fault injection
  uint64_t retries = 0;          ///< attempts after the first
  uint64_t exhausted = 0;        ///< ops that surfaced Unavailable
  uint64_t backoff_sleep_us = 0;
  uint64_t latency_sleep_us = 0;  ///< per-op latency + bandwidth throttle
};

class RemoteBackend : public StorageBackend {
 public:
  explicit RemoteBackend(std::shared_ptr<StorageBackend> base,
                         RemoteBackendOptions options = {});

  std::string name() const override { return "remote(" + base_->name() + ")"; }
  Result<std::string> ReadBlock(const std::string& path) override;
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status Remove(const std::string& path) override;
  /// Control-plane ops: no latency, no faults (PhysicalStore treats
  /// CreateDir failure as fatal, and Sync has no remote analogue here).
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override { return stats_.snapshot(); }

  RemoteBackendStats remote_stats() const;
  StorageBackend* base() const { return base_.get(); }
  const RemoteBackendOptions& options() const { return options_; }

 private:
  enum class Op : uint32_t { kRead = 1, kWrite = 2, kRemove = 3, kList = 4 };

  /// Deterministic per-attempt fault decision for (op, path); consumes one
  /// attempt from the key's seed-derived fault budget.
  Status MaybeInjectFault(Op op, const std::string& path);
  /// Sleeps (or just accounts) the injected latency for `bytes` moved.
  void ChargeLatency(uint64_t op_latency_us, uint64_t bytes);
  void ChargeBackoff(uint64_t sleep_us);
  bool FaultsEnabled(Op op) const;

  template <typename Fn>
  auto WithRetry(Fn&& attempt) -> decltype(attempt());

  std::shared_ptr<StorageBackend> base_;
  RemoteBackendOptions options_;
  internal::AtomicBackendStats stats_;

  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> injected_faults_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
  std::atomic<uint64_t> backoff_sleep_us_{0};
  std::atomic<uint64_t> latency_sleep_us_{0};

  // (op, path) -> attempts so far; the only non-atomic state, guarded.
  std::mutex attempts_mu_;
  std::unordered_map<std::string, uint32_t> attempt_counts_;
};

std::shared_ptr<RemoteBackend> MakeRemoteBackend(
    std::shared_ptr<StorageBackend> base, RemoteBackendOptions options = {});

}  // namespace oreo

#endif  // OREO_STORAGE_REMOTE_BACKEND_H_
