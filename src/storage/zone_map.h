// Partition-level metadata ("zone maps"): per-column min/max plus a bounded
// distinct-value set for categoricals. This is the only information the
// query optimizer uses to decide whether a partition can be skipped
// (paper §III-B, Figure 2), so query costs can be estimated without touching
// the underlying data.
#ifndef OREO_STORAGE_ZONE_MAP_H_
#define OREO_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/table.h"

namespace oreo {

/// Zone metadata for one column of one partition.
struct ColumnZone {
  DataType type = DataType::kInt64;
  bool empty = true;

  // Numeric bounds (kInt64 / kDouble).
  int64_t int_min = 0;
  int64_t int_max = 0;
  double dbl_min = 0.0;
  double dbl_max = 0.0;

  // String bounds and distinct set (kString). The distinct set is capped at
  // kMaxDistinct values; past that only min/max remain usable.
  std::string str_min;
  std::string str_max;
  std::set<std::string> distinct;
  bool distinct_overflow = false;

  static constexpr size_t kMaxDistinct = 64;

  void UpdateInt64(int64_t v);
  void UpdateDouble(double v);
  void UpdateString(const std::string& v);
};

/// Zone metadata for one partition: one ColumnZone per schema field plus the
/// row count.
struct ZoneMap {
  std::vector<ColumnZone> columns;
  uint64_t num_rows = 0;

  /// Initializes empty zones for every field in `schema`.
  static ZoneMap ForSchema(const Schema& schema);

  /// Folds row `row` of `table` into this zone map.
  void UpdateRow(const Table& table, uint32_t row);
};

/// Builds a zone map covering the given rows of `table`.
ZoneMap BuildZoneMap(const Table& table, const std::vector<uint32_t>& row_ids);

/// Builds a zone map covering the entire table.
ZoneMap BuildZoneMap(const Table& table);

}  // namespace oreo

#endif  // OREO_STORAGE_ZONE_MAP_H_
