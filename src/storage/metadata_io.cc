#include "storage/metadata_io.h"

#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "storage/codec.h"

namespace oreo {

namespace {

constexpr char kMagic[8] = {'O', 'R', 'E', 'O', 'M', 'E', 'T', '1'};

template <typename T>
void AppendRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutString(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint64_t len;
  if (!GetVarint64(data, pos, &len) || *pos + len > data.size()) return false;
  s->assign(data, *pos, len);
  *pos += len;
  return true;
}

void PutZone(std::string* out, const ColumnZone& z) {
  out->push_back(static_cast<char>(z.type));
  out->push_back(z.empty ? 1 : 0);
  AppendRaw(out, z.int_min);
  AppendRaw(out, z.int_max);
  AppendRaw(out, z.dbl_min);
  AppendRaw(out, z.dbl_max);
  PutString(out, z.str_min);
  PutString(out, z.str_max);
  out->push_back(z.distinct_overflow ? 1 : 0);
  PutVarint64(out, z.distinct.size());
  for (const std::string& s : z.distinct) PutString(out, s);
}

bool GetZone(const std::string& data, size_t* pos, ColumnZone* z) {
  if (*pos + 2 > data.size()) return false;
  z->type = static_cast<DataType>(data[(*pos)++]);
  z->empty = data[(*pos)++] != 0;
  if (!ReadRaw(data, pos, &z->int_min) || !ReadRaw(data, pos, &z->int_max) ||
      !ReadRaw(data, pos, &z->dbl_min) || !ReadRaw(data, pos, &z->dbl_max)) {
    return false;
  }
  if (!GetString(data, pos, &z->str_min) ||
      !GetString(data, pos, &z->str_max)) {
    return false;
  }
  if (*pos + 1 > data.size()) return false;
  z->distinct_overflow = data[(*pos)++] != 0;
  uint64_t n;
  if (!GetVarint64(data, pos, &n)) return false;
  z->distinct.clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(data, pos, &s)) return false;
    z->distinct.insert(std::move(s));
  }
  return true;
}

}  // namespace

PartitionMetadata MetadataFrom(const Schema& schema, const Partitioning& p,
                               std::string layout_name) {
  PartitionMetadata meta;
  meta.schema = schema;
  meta.zones = p.zones;
  meta.total_rows = p.total_rows;
  meta.layout_name = std::move(layout_name);
  return meta;
}

std::string SerializePartitionMetadata(const PartitionMetadata& meta) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutString(&out, meta.layout_name);
  AppendRaw(&out, meta.total_rows);
  // Schema.
  PutVarint64(&out, meta.schema.num_fields());
  for (const Field& f : meta.schema.fields()) {
    PutString(&out, f.name);
    out.push_back(static_cast<char>(f.type));
  }
  // Zones.
  PutVarint64(&out, meta.zones.size());
  for (const ZoneMap& zm : meta.zones) {
    AppendRaw(&out, zm.num_rows);
    PutVarint64(&out, zm.columns.size());
    for (const ColumnZone& z : zm.columns) PutZone(&out, z);
  }
  uint32_t crc = Crc32c(out.data(), out.size());
  AppendRaw(&out, crc);
  return out;
}

Result<PartitionMetadata> DeserializePartitionMetadata(
    const std::string& data) {
  if (data.size() < sizeof(kMagic) + sizeof(uint32_t)) {
    return Status::Corruption("metadata too small");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad metadata magic");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (stored_crc != Crc32c(data.data(), data.size() - sizeof(uint32_t))) {
    return Status::Corruption("metadata checksum mismatch");
  }

  PartitionMetadata meta;
  size_t pos = sizeof(kMagic);
  if (!GetString(data, &pos, &meta.layout_name) ||
      !ReadRaw(data, &pos, &meta.total_rows)) {
    return Status::Corruption("truncated metadata header");
  }
  uint64_t n_fields;
  if (!GetVarint64(data, &pos, &n_fields)) {
    return Status::Corruption("truncated schema");
  }
  std::vector<Field> fields;
  for (uint64_t i = 0; i < n_fields; ++i) {
    Field f;
    if (!GetString(data, &pos, &f.name) || pos + 1 > data.size()) {
      return Status::Corruption("truncated schema field");
    }
    f.type = static_cast<DataType>(data[pos++]);
    fields.push_back(std::move(f));
  }
  meta.schema = Schema(std::move(fields));
  uint64_t n_zones;
  if (!GetVarint64(data, &pos, &n_zones)) {
    return Status::Corruption("truncated zone count");
  }
  for (uint64_t i = 0; i < n_zones; ++i) {
    ZoneMap zm;
    if (!ReadRaw(data, &pos, &zm.num_rows)) {
      return Status::Corruption("truncated zone map");
    }
    uint64_t n_cols;
    if (!GetVarint64(data, &pos, &n_cols)) {
      return Status::Corruption("truncated zone columns");
    }
    for (uint64_t c = 0; c < n_cols; ++c) {
      ColumnZone z;
      if (!GetZone(data, &pos, &z)) {
        return Status::Corruption("truncated column zone");
      }
      zm.columns.push_back(std::move(z));
    }
    meta.zones.push_back(std::move(zm));
  }
  if (pos != data.size() - sizeof(uint32_t)) {
    return Status::Corruption("trailing bytes in metadata");
  }
  return meta;
}

Status WriteMetadataTo(StorageBackend* backend, const std::string& path,
                       const PartitionMetadata& meta) {
  OREO_CHECK(backend != nullptr);
  return backend->AtomicWriteBlock(path, SerializePartitionMetadata(meta),
                                   /*sync=*/false);
}

Result<PartitionMetadata> ReadMetadataFrom(StorageBackend* backend,
                                           const std::string& path) {
  OREO_CHECK(backend != nullptr);
  OREO_ASSIGN_OR_RETURN(std::string data, backend->ReadBlock(path));
  return DeserializePartitionMetadata(data);
}

Status WriteMetadataFile(const std::string& path,
                         const PartitionMetadata& meta) {
  return WriteMetadataTo(DefaultPosixBackend(), path, meta);
}

Result<PartitionMetadata> ReadMetadataFile(const std::string& path) {
  return ReadMetadataFrom(DefaultPosixBackend(), path);
}

}  // namespace oreo
