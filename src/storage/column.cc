#include "storage/column.h"

#include "common/logging.h"

namespace oreo {

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return codes_.size();
  }
  return 0;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
  }
}

void Column::AppendInt64(int64_t v) {
  OREO_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  OREO_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendString(const std::string& v) {
  OREO_DCHECK(type_ == DataType::kString);
  codes_.push_back(CodeFor(v));
}

void Column::AppendValue(const Value& v) {
  OREO_CHECK(v.type() == type_)
      << "AppendValue type mismatch: " << DataTypeName(v.type()) << " into "
      << DataTypeName(type_);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(v.AsInt64());
      break;
    case DataType::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case DataType::kString:
      AppendString(v.AsString());
      break;
  }
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(dict_[codes_[row]]);
  }
  return Value();
}

double Column::GetNumeric(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      return static_cast<double>(codes_[row]);
  }
  return 0.0;
}

uint32_t Column::CodeFor(const std::string& s) {
  auto it = dict_index_.find(s);
  if (it != dict_index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(dict_.size());
  dict_.push_back(s);
  dict_index_.emplace(s, code);
  return code;
}

int64_t Column::FindCode(const std::string& s) const {
  auto it = dict_index_.find(s);
  return it == dict_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Column Column::Take(const std::vector<uint32_t>& row_ids) const {
  Column out(type_);
  out.Reserve(row_ids.size());
  switch (type_) {
    case DataType::kInt64:
      for (uint32_t r : row_ids) out.ints_.push_back(ints_[r]);
      break;
    case DataType::kDouble:
      for (uint32_t r : row_ids) out.doubles_.push_back(doubles_[r]);
      break;
    case DataType::kString:
      // Share the full dictionary: simpler and correct; unreferenced entries
      // are harmless for query evaluation.
      out.dict_ = dict_;
      out.dict_index_ = dict_index_;
      for (uint32_t r : row_ids) out.codes_.push_back(codes_[r]);
      break;
  }
  return out;
}

void Column::SetStringData(std::vector<uint32_t> codes,
                           std::vector<std::string> dict) {
  OREO_CHECK(type_ == DataType::kString);
  codes_ = std::move(codes);
  dict_ = std::move(dict);
  dict_index_.clear();
  for (uint32_t i = 0; i < dict_.size(); ++i) dict_index_.emplace(dict_[i], i);
}

}  // namespace oreo
