#include "storage/block.h"

#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "storage/codec.h"

namespace oreo {

namespace {

constexpr char kMagic[8] = {'O', 'R', 'E', 'O', 'B', 'L', 'K', '1'};
constexpr uint32_t kVersion = 1;

template <typename T>
void AppendRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string SerializeBlock(const Table& table) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendRaw(&out, kVersion);
  AppendRaw(&out, static_cast<uint32_t>(table.num_columns()));
  AppendRaw(&out, static_cast<uint64_t>(table.num_rows()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    const std::string& name = table.schema().field(c).name;
    PutVarint64(&out, name.size());
    out.append(name);
    out.push_back(static_cast<char>(col.type()));

    std::string payload;
    Encoding enc = Encoding::kPlain;
    switch (col.type()) {
      case DataType::kInt64:
        enc = ChooseInt64Encoding(col.ints());
        EncodeInt64(col.ints(), enc, &payload);
        break;
      case DataType::kDouble:
        enc = Encoding::kPlain;
        EncodeDouble(col.doubles(), &payload);
        break;
      case DataType::kString:
        enc = Encoding::kDictionary;
        EncodeStringDict(col.codes(), col.dictionary(), &payload);
        break;
    }
    out.push_back(static_cast<char>(enc));
    AppendRaw(&out, static_cast<uint64_t>(payload.size()));
    out.append(payload);
  }
  uint32_t crc = Crc32c(out.data(), out.size());
  AppendRaw(&out, crc);
  return out;
}

Result<Table> DeserializeBlock(const std::string& data,
                               const BlockReadOptions& options) {
  if (data.size() < sizeof(kMagic) + sizeof(uint32_t) * 3 + sizeof(uint64_t)) {
    return Status::Corruption("block too small");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad block magic");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  uint32_t actual_crc = Crc32c(data.data(), data.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption("block checksum mismatch");
  }

  size_t pos = sizeof(kMagic);
  uint32_t version, ncols;
  uint64_t nrows;
  if (!ReadRaw(data, &pos, &version) || !ReadRaw(data, &pos, &ncols) ||
      !ReadRaw(data, &pos, &nrows)) {
    return Status::Corruption("truncated block header");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported block version");
  }

  const size_t payload_end = data.size() - sizeof(uint32_t);
  std::vector<Field> fields;
  struct RawChunk {
    Encoding enc;
    std::string_view payload;
  };
  std::vector<RawChunk> chunks;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint64_t name_len;
    if (!GetVarint64(std::string_view(data.data(), payload_end), &pos,
                     &name_len) ||
        pos + name_len > payload_end) {
      return Status::Corruption("truncated column name");
    }
    std::string name(data.data() + pos, name_len);
    pos += name_len;
    if (pos + 2 > payload_end) return Status::Corruption("truncated column meta");
    auto type = static_cast<DataType>(data[pos++]);
    auto enc = static_cast<Encoding>(data[pos++]);
    uint64_t payload_size;
    if (!ReadRaw(data, &pos, &payload_size) ||
        pos + payload_size > payload_end) {
      return Status::Corruption("truncated column payload");
    }
    fields.push_back(Field{std::move(name), type});
    chunks.push_back(RawChunk{enc, std::string_view(data.data() + pos,
                                                    payload_size)});
    pos += payload_size;
  }
  if (pos != payload_end) {
    return Status::Corruption("trailing bytes in block");
  }

  // Apply the column projection: keep block order, drop unrequested columns.
  std::vector<uint32_t> selected;
  std::vector<Field> selected_fields;
  for (uint32_t c = 0; c < ncols; ++c) {
    bool keep = true;
    if (options.columns != nullptr) {
      keep = false;
      for (const std::string& want : *options.columns) {
        if (fields[c].name == want) {
          keep = true;
          break;
        }
      }
    }
    if (keep) {
      selected.push_back(c);
      selected_fields.push_back(fields[c]);
    }
  }

  Table table(Schema(std::move(selected_fields)));
  for (uint32_t out_c = 0; out_c < selected.size(); ++out_c) {
    uint32_t c = selected[out_c];
    Column* col = table.mutable_column(out_c);
    switch (col->type()) {
      case DataType::kInt64: {
        OREO_RETURN_NOT_OK(
            DecodeInt64(chunks[c].payload, chunks[c].enc, nrows,
                        col->mutable_ints()));
        break;
      }
      case DataType::kDouble: {
        if (chunks[c].enc != Encoding::kPlain) {
          return Status::Corruption("unexpected double encoding");
        }
        OREO_RETURN_NOT_OK(
            DecodeDouble(chunks[c].payload, nrows, col->mutable_doubles()));
        break;
      }
      case DataType::kString: {
        if (chunks[c].enc != Encoding::kDictionary) {
          return Status::Corruption("unexpected string encoding");
        }
        std::vector<uint32_t> codes;
        std::vector<std::string> dict;
        OREO_RETURN_NOT_OK(
            DecodeStringDict(chunks[c].payload, nrows, &codes, &dict));
        col->SetStringData(std::move(codes), std::move(dict));
        break;
      }
    }
  }
  table.FinishAppends();
  if (!selected.empty() && table.num_rows() != nrows) {
    return Status::Corruption("row count mismatch after decode");
  }
  return table;
}

Result<uint64_t> WriteBlockTo(StorageBackend* backend, const std::string& path,
                              const Table& table, bool sync) {
  OREO_CHECK(backend != nullptr);
  std::string data = SerializeBlock(table);
  OREO_RETURN_NOT_OK(backend->AtomicWriteBlock(path, data, sync));
  return static_cast<uint64_t>(data.size());
}

Result<Table> ReadBlockFrom(StorageBackend* backend, const std::string& path,
                            const BlockReadOptions& options) {
  OREO_CHECK(backend != nullptr);
  OREO_ASSIGN_OR_RETURN(std::string data, backend->ReadBlock(path));
  return DeserializeBlock(data, options);
}

Status WriteBlockFile(const std::string& path, const Table& table,
                      bool sync) {
  return WriteBlockTo(DefaultPosixBackend(), path, table, sync).status();
}

Result<Table> ReadBlockFile(const std::string& path,
                            const BlockReadOptions& options) {
  return ReadBlockFrom(DefaultPosixBackend(), path, options);
}

size_t SerializedBlockSize(const Table& table) {
  return SerializeBlock(table).size();
}

}  // namespace oreo
