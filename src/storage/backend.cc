#include "storage/backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

#include "storage/shared_cache.h"

namespace oreo {

namespace fs = std::filesystem;

// ----------------------------------------------------------- posix -------

Result<std::string> PosixFileBackend::ReadBlock(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), size);
  if (!in) return Status::IoError("read failed: " + path);
  stats_.RecordRead(data.size());
  return data;
}

Status PosixFileBackend::AtomicWriteBlock(const std::string& path,
                                          const std::string& data,
                                          bool sync) {
  // Write-to-temp then rename: a reader of `path` sees the old bytes or the
  // complete new bytes, never a torn prefix (same publish protocol the
  // metadata writer has always used). The temp name is unique per call so
  // the contract's last-wins concurrent same-path writers cannot interleave
  // inside one temp file.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string tmp = path + ".oreotmp" +
                          std::to_string(temp_counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("cannot open for write: " + tmp);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fdatasync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::IoError("fdatasync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  stats_.RecordWrite(data.size());
  return Status::OK();
}

Result<std::vector<std::string>> PosixFileBackend::List(
    const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec), end;
  if (ec) return paths;  // a missing directory holds no objects
  for (; it != end; it.increment(ec)) {
    if (ec) return Status::IoError("list failed: " + dir + ": " + ec.message());
    if (!it->is_regular_file(ec) || ec) continue;
    std::string path = it->path().string();
    // Unpublished temp files are not objects.
    if (path.find(".oreotmp") != std::string::npos) continue;
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status PosixFileBackend::Remove(const std::string& path) {
  std::error_code ec;
  bool removed = fs::remove(path, ec);
  if (ec) return Status::IoError("remove failed: " + path + ": " + ec.message());
  if (!removed) return Status::NotFound("no such object: " + path);
  stats_.RecordRemove();
  return Status::OK();
}

Status PosixFileBackend::CreateDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  return Status::OK();
}

// ----------------------------------------------------------- in-memory ---

InMemoryBackend::Shard& InMemoryBackend::ShardFor(const std::string& path) {
  return shards_[std::hash<std::string>{}(path) % kNumShards];
}

const InMemoryBackend::Shard& InMemoryBackend::ShardFor(
    const std::string& path) const {
  return shards_[std::hash<std::string>{}(path) % kNumShards];
}

Result<std::string> InMemoryBackend::ReadBlock(const std::string& path) {
  std::shared_ptr<const std::string> data;
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.objects.find(path);
    if (it == shard.objects.end()) {
      return Status::IoError("cannot open for read: " + path);
    }
    data = it->second;
  }
  stats_.RecordRead(data->size());
  return std::string(*data);
}

Status InMemoryBackend::AtomicWriteBlock(const std::string& path,
                                         const std::string& data,
                                         bool /*sync*/) {
  auto obj = std::make_shared<const std::string>(data);
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.objects[path] = std::move(obj);  // whole-object swap: atomic
  }
  stats_.RecordWrite(data.size());
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryBackend::List(
    const std::string& dir) {
  const std::string prefix = dir + "/";
  std::vector<std::string> paths;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, data] : shard.objects) {
      if (path.compare(0, prefix.size(), prefix) == 0) paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status InMemoryBackend::Remove(const std::string& path) {
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.objects.erase(path) == 0) {
      return Status::NotFound("no such object: " + path);
    }
  }
  stats_.RecordRemove();
  return Status::OK();
}

size_t InMemoryBackend::num_objects() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.objects.size();
  }
  return total;
}

// ----------------------------------------------------------- cached ------

// CachedBackend is a single-tenant view of SharedBlockCache: the cache/
// coalescing/staleness machinery (including the mutation bracket that closes
// the doomed-fetch window) lives in one place and every tenant count is
// charged to shard 0.

CachedBackend::CachedBackend(std::shared_ptr<StorageBackend> base,
                             CachedBackendOptions options)
    : base_(std::move(base)), options_(options) {
  SharedBlockCacheOptions cache_options;
  cache_options.capacity_bytes = options_.capacity_bytes;
  cache_options.prefetch_threads = 0;
  cache_ = std::make_unique<SharedBlockCache>(cache_options);
}

CachedBackend::~CachedBackend() = default;

Result<std::string> CachedBackend::ReadBlock(const std::string& path) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  Result<std::string> result = cache_->Read(0, base_.get(), path);
  if (result.ok()) {
    stats_.read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
  }
  return result;
}

Status CachedBackend::AtomicWriteBlock(const std::string& path,
                                       const std::string& data, bool sync) {
  // Write-through: the base stays authoritative. The mutation bracket
  // invalidates before the base write so no reader can re-cache the old
  // bytes, dooms any in-flight fetch, and keeps the path poisoned until the
  // base write returns so a fetch racing it cannot repopulate stale bytes.
  stats_.RecordWrite(data.size());
  cache_->BeginMutation(path);
  Status status = base_->AtomicWriteBlock(path, data, sync);
  cache_->EndMutation(path);
  return status;
}

Result<std::vector<std::string>> CachedBackend::List(const std::string& dir) {
  return base_->List(dir);
}

Status CachedBackend::Remove(const std::string& path) {
  stats_.RecordRemove();
  cache_->BeginMutation(path);
  Status status = base_->Remove(path);
  cache_->EndMutation(path);
  return status;
}

Status CachedBackend::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

BackendStats CachedBackend::stats() const { return stats_.snapshot(); }

CachedBackend::CacheStats CachedBackend::cache_stats() const {
  SharedCacheStats s = cache_->stats();
  CacheStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.coalesced = s.coalesced;
  out.evictions = s.evictions;
  out.invalidations = s.invalidations;
  out.hit_bytes = s.hit_bytes;
  out.miss_bytes = s.miss_bytes;
  out.resident_bytes = s.resident_bytes;
  out.resident_objects = s.resident_objects;
  return out;
}

// ----------------------------------------------------------- factories ---

std::shared_ptr<StorageBackend> MakePosixBackend() {
  return std::make_shared<PosixFileBackend>();
}

std::shared_ptr<StorageBackend> MakeInMemoryBackend() {
  return std::make_shared<InMemoryBackend>();
}

std::shared_ptr<CachedBackend> MakeCachedBackend(
    std::shared_ptr<StorageBackend> base, CachedBackendOptions options) {
  return std::make_shared<CachedBackend>(std::move(base), options);
}

StorageBackend* DefaultPosixBackend() {
  static PosixFileBackend* backend = new PosixFileBackend();
  return backend;
}

}  // namespace oreo
