#include "storage/backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

namespace oreo {

namespace fs = std::filesystem;

// ----------------------------------------------------------- posix -------

Result<std::string> PosixFileBackend::ReadBlock(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), size);
  if (!in) return Status::IoError("read failed: " + path);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
    stats_.read_bytes += data.size();
  }
  return data;
}

Status PosixFileBackend::AtomicWriteBlock(const std::string& path,
                                          const std::string& data,
                                          bool sync) {
  // Write-to-temp then rename: a reader of `path` sees the old bytes or the
  // complete new bytes, never a torn prefix (same publish protocol the
  // metadata writer has always used). The temp name is unique per call so
  // the contract's last-wins concurrent same-path writers cannot interleave
  // inside one temp file.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string tmp = path + ".oreotmp" +
                          std::to_string(temp_counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("cannot open for write: " + tmp);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (sync && ::fdatasync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return Status::IoError("fdatasync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.writes;
    stats_.write_bytes += data.size();
  }
  return Status::OK();
}

Result<std::vector<std::string>> PosixFileBackend::List(
    const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec), end;
  if (ec) return paths;  // a missing directory holds no objects
  for (; it != end; it.increment(ec)) {
    if (ec) return Status::IoError("list failed: " + dir + ": " + ec.message());
    if (!it->is_regular_file(ec) || ec) continue;
    std::string path = it->path().string();
    // Unpublished temp files are not objects.
    if (path.find(".oreotmp") != std::string::npos) continue;
    paths.push_back(std::move(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status PosixFileBackend::Remove(const std::string& path) {
  std::error_code ec;
  bool removed = fs::remove(path, ec);
  if (ec) return Status::IoError("remove failed: " + path + ": " + ec.message());
  if (!removed) return Status::NotFound("no such object: " + path);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.removes;
  return Status::OK();
}

Status PosixFileBackend::CreateDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  return Status::OK();
}

BackendStats PosixFileBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// ----------------------------------------------------------- in-memory ---

InMemoryBackend::Shard& InMemoryBackend::ShardFor(const std::string& path) {
  return shards_[std::hash<std::string>{}(path) % kNumShards];
}

const InMemoryBackend::Shard& InMemoryBackend::ShardFor(
    const std::string& path) const {
  return shards_[std::hash<std::string>{}(path) % kNumShards];
}

Result<std::string> InMemoryBackend::ReadBlock(const std::string& path) {
  std::shared_ptr<const std::string> data;
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.objects.find(path);
    if (it == shard.objects.end()) {
      return Status::IoError("cannot open for read: " + path);
    }
    data = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads;
    stats_.read_bytes += data->size();
  }
  return std::string(*data);
}

Status InMemoryBackend::AtomicWriteBlock(const std::string& path,
                                         const std::string& data,
                                         bool /*sync*/) {
  auto obj = std::make_shared<const std::string>(data);
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.objects[path] = std::move(obj);  // whole-object swap: atomic
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.writes;
  stats_.write_bytes += data.size();
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryBackend::List(
    const std::string& dir) {
  const std::string prefix = dir + "/";
  std::vector<std::string> paths;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, data] : shard.objects) {
      if (path.compare(0, prefix.size(), prefix) == 0) paths.push_back(path);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Status InMemoryBackend::Remove(const std::string& path) {
  {
    Shard& shard = ShardFor(path);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.objects.erase(path) == 0) {
      return Status::NotFound("no such object: " + path);
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.removes;
  return Status::OK();
}

BackendStats InMemoryBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t InMemoryBackend::num_objects() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.objects.size();
  }
  return total;
}

// ----------------------------------------------------------- cached ------

CachedBackend::CachedBackend(std::shared_ptr<StorageBackend> base,
                             CachedBackendOptions options)
    : base_(std::move(base)), options_(options) {}

CachedBackend::~CachedBackend() = default;

void CachedBackend::EraseLocked(const std::string& path, uint64_t* counter) {
  auto it = cache_.find(path);
  if (it == cache_.end()) return;
  cache_stats_.resident_bytes -= it->second.data->size();
  --cache_stats_.resident_objects;
  if (counter != nullptr) ++*counter;
  lru_.erase(it->second.lru_it);
  cache_.erase(it);
}

void CachedBackend::InsertLocked(const std::string& path,
                                 std::shared_ptr<const std::string> data) {
  if (data->size() > options_.capacity_bytes) return;  // never cacheable
  EraseLocked(path, nullptr);  // replace, keeping the accounting exact
  while (!lru_.empty() &&
         cache_stats_.resident_bytes + data->size() >
             options_.capacity_bytes) {
    EraseLocked(lru_.back(), &cache_stats_.evictions);
  }
  lru_.push_front(path);
  cache_stats_.resident_bytes += data->size();
  ++cache_stats_.resident_objects;
  cache_.emplace(path, Entry{std::move(data), lru_.begin()});
}

Result<std::string> CachedBackend::ReadBlock(const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.reads;
  for (;;) {
    auto hit = cache_.find(path);
    if (hit != cache_.end()) {
      // Touch: move to the LRU front.
      lru_.erase(hit->second.lru_it);
      lru_.push_front(path);
      hit->second.lru_it = lru_.begin();
      ++cache_stats_.hits;
      cache_stats_.hit_bytes += hit->second.data->size();
      stats_.read_bytes += hit->second.data->size();
      std::shared_ptr<const std::string> data = hit->second.data;
      lock.unlock();
      return std::string(*data);
    }
    auto flight = inflight_.find(path);
    if (flight == inflight_.end()) break;  // nobody fetching: we fetch
    // Coalesce: wait for the in-flight base fetch instead of issuing our
    // own. A fetch doomed by a concurrent write/remove holds bytes from
    // before that write — returning them here would violate the staleness
    // contract, so loop around and fetch fresh instead.
    std::shared_ptr<Fetch> fetch = flight->second;
    cv_.wait(lock, [&] { return fetch->done; });
    if (fetch->doomed) continue;
    if (!fetch->status.ok()) return fetch->status;
    ++cache_stats_.hits;
    ++cache_stats_.coalesced;
    cache_stats_.hit_bytes += fetch->data->size();
    stats_.read_bytes += fetch->data->size();
    std::shared_ptr<const std::string> data = fetch->data;
    lock.unlock();
    return std::string(*data);
  }
  // Miss: fetch from the base without holding the lock.
  auto fetch = std::make_shared<Fetch>();
  inflight_.emplace(path, fetch);
  ++cache_stats_.misses;
  lock.unlock();
  Result<std::string> result = base_->ReadBlock(path);
  lock.lock();
  fetch->done = true;
  inflight_.erase(path);
  if (!result.ok()) {
    fetch->status = result.status();
    cv_.notify_all();
    return fetch->status;
  }
  fetch->data =
      std::make_shared<const std::string>(std::move(result).value());
  cache_stats_.miss_bytes += fetch->data->size();
  stats_.read_bytes += fetch->data->size();
  if (!fetch->doomed) InsertLocked(path, fetch->data);
  std::shared_ptr<const std::string> data = fetch->data;
  cv_.notify_all();
  lock.unlock();
  return std::string(*data);
}

Status CachedBackend::AtomicWriteBlock(const std::string& path,
                                       const std::string& data, bool sync) {
  // Write-through: the base stays authoritative. Invalidate before the base
  // write so no reader can re-cache the old bytes afterwards, and doom any
  // in-flight fetch so its (possibly stale) result is never inserted.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes;
    stats_.write_bytes += data.size();
    EraseLocked(path, &cache_stats_.invalidations);
    auto flight = inflight_.find(path);
    if (flight != inflight_.end()) flight->second->doomed = true;
  }
  return base_->AtomicWriteBlock(path, data, sync);
}

Result<std::vector<std::string>> CachedBackend::List(const std::string& dir) {
  return base_->List(dir);
}

Status CachedBackend::Remove(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.removes;
    EraseLocked(path, &cache_stats_.invalidations);
    auto flight = inflight_.find(path);
    if (flight != inflight_.end()) flight->second->doomed = true;
  }
  return base_->Remove(path);
}

Status CachedBackend::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

BackendStats CachedBackend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CachedBackend::CacheStats CachedBackend::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_stats_;
}

// ----------------------------------------------------------- factories ---

std::shared_ptr<StorageBackend> MakePosixBackend() {
  return std::make_shared<PosixFileBackend>();
}

std::shared_ptr<StorageBackend> MakeInMemoryBackend() {
  return std::make_shared<InMemoryBackend>();
}

std::shared_ptr<CachedBackend> MakeCachedBackend(
    std::shared_ptr<StorageBackend> base, CachedBackendOptions options) {
  return std::make_shared<CachedBackend>(std::move(base), options);
}

StorageBackend* DefaultPosixBackend() {
  static PosixFileBackend* backend = new PosixFileBackend();
  return backend;
}

}  // namespace oreo
