#include "storage/shared_cache.h"

#include <utility>

#include "common/logging.h"

namespace oreo {

SharedBlockCache::SharedBlockCache(SharedBlockCacheOptions options)
    : options_(options) {
  workers_.reserve(options_.prefetch_threads);
  for (size_t i = 0; i < options_.prefetch_threads; ++i) {
    workers_.emplace_back([this] { PrefetchLoop(); });
  }
}

SharedBlockCache::~SharedBlockCache() {
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    shutdown_ = true;
    queue_.clear();  // pending warm-ups are advisory; drop them
    queue_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

void SharedBlockCache::EraseLocked(const std::string& path,
                                   DropReason reason) {
  auto it = cache_.find(path);
  if (it == cache_.end()) return;
  const Entry& entry = it->second;
  ShardCacheStats& owner = shard_stats_[entry.owner];
  stats_.resident_bytes -= entry.data->size();
  --stats_.resident_objects;
  owner.resident_bytes -= entry.data->size();
  --owner.resident_objects;
  if (reason == DropReason::kEviction) {
    ++stats_.evictions;
    ++owner.evictions_charged;
  } else if (reason == DropReason::kInvalidation) {
    ++stats_.invalidations;
    ++owner.invalidations;
  }
  lru_.erase(entry.lru_it);
  cache_.erase(it);
}

void SharedBlockCache::InsertLocked(const std::string& path, uint32_t shard,
                                    std::shared_ptr<const std::string> data) {
  if (data->size() > options_.capacity_bytes) return;  // never cacheable
  EraseLocked(path, DropReason::kReplace);  // replace, keeping accounting exact
  while (!lru_.empty() &&
         stats_.resident_bytes + data->size() > options_.capacity_bytes) {
    EraseLocked(lru_.back(), DropReason::kEviction);
  }
  lru_.push_front(path);
  const size_t size = data->size();
  cache_.emplace(path, Entry{std::move(data), shard, lru_.begin()});
  stats_.resident_bytes += size;
  ++stats_.resident_objects;
  ShardCacheStats& owner = shard_stats_[shard];
  owner.resident_bytes += size;
  ++owner.resident_objects;
}

Result<std::string> SharedBlockCache::Read(uint32_t shard,
                                           StorageBackend* base,
                                           const std::string& path) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto hit = cache_.find(path);
    if (hit != cache_.end()) {
      // Touch: move to the LRU front.
      lru_.erase(hit->second.lru_it);
      lru_.push_front(path);
      hit->second.lru_it = lru_.begin();
      ++stats_.hits;
      stats_.hit_bytes += hit->second.data->size();
      ShardCacheStats& ss = shard_stats_[shard];
      ++ss.hits;
      ss.hit_bytes += hit->second.data->size();
      std::shared_ptr<const std::string> data = hit->second.data;
      lock.unlock();
      return std::string(*data);
    }
    auto flight = inflight_.find(path);
    if (flight == inflight_.end()) break;  // nobody fetching: we fetch
    // Coalesce: wait for the in-flight fetch (demand or prefetch, any
    // shard) instead of issuing our own. A doomed fetch either raced a
    // mutation (its bytes may be stale) or was a failed prefetch; loop
    // around and fetch fresh instead.
    std::shared_ptr<Fetch> fetch = flight->second;
    cv_.wait(lock, [&] { return fetch->done; });
    if (fetch->doomed) continue;
    if (!fetch->status.ok()) return fetch->status;
    ++stats_.hits;
    ++stats_.coalesced;
    stats_.hit_bytes += fetch->data->size();
    ShardCacheStats& ss = shard_stats_[shard];
    ++ss.hits;
    ss.hit_bytes += fetch->data->size();
    std::shared_ptr<const std::string> data = fetch->data;
    lock.unlock();
    return std::string(*data);
  }
  // Miss: fetch from the base without holding the lock. A fetch started
  // while a mutation of `path` is bracketing its base op is born doomed:
  // the base may return pre-mutation bytes, which are valid for THIS
  // reader (its read overlaps the mutation) but must never be cached.
  auto fetch = std::make_shared<Fetch>();
  fetch->doomed = MutationActiveLocked(path);
  inflight_.emplace(path, fetch);
  ++stats_.misses;
  ++shard_stats_[shard].misses;
  lock.unlock();
  Result<std::string> result = base->ReadBlock(path);
  lock.lock();
  fetch->done = true;
  inflight_.erase(path);
  if (!result.ok()) {
    fetch->status = result.status();
    cv_.notify_all();
    return fetch->status;
  }
  fetch->data =
      std::make_shared<const std::string>(std::move(result).value());
  stats_.miss_bytes += fetch->data->size();
  shard_stats_[shard].miss_bytes += fetch->data->size();
  if (!fetch->doomed) InsertLocked(path, shard, fetch->data);
  std::shared_ptr<const std::string> data = fetch->data;
  cv_.notify_all();
  lock.unlock();
  return std::string(*data);
}

void SharedBlockCache::BeginMutation(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(path, DropReason::kInvalidation);
  auto flight = inflight_.find(path);
  if (flight != inflight_.end()) flight->second->doomed = true;
  ++active_mutations_[path];
}

void SharedBlockCache::EndMutation(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_mutations_.find(path);
  OREO_CHECK(it != active_mutations_.end())
      << "EndMutation without BeginMutation: " << path;
  if (--it->second == 0) active_mutations_.erase(it);
}

void SharedBlockCache::RequestPrefetch(uint32_t shard,
                                       std::shared_ptr<StorageBackend> base,
                                       const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) {
      ++stats_.prefetch_dropped;
      return;
    }
    if (cache_.find(path) != cache_.end() ||
        inflight_.find(path) != inflight_.end() ||
        MutationActiveLocked(path)) {
      ++stats_.prefetch_noops;
      return;
    }
  }
  bool queued = false;
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    if (!shutdown_ && queue_.size() < options_.max_queued_prefetches) {
      queue_.push_back(PrefetchTask{shard, std::move(base), path});
      queued = true;
      queue_cv_.notify_one();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (queued) {
    ++stats_.prefetch_requests;
  } else {
    ++stats_.prefetch_dropped;
  }
}

void SharedBlockCache::DrainPrefetches() {
  std::unique_lock<std::mutex> qlock(queue_mu_);
  drain_cv_.wait(qlock,
                 [&] { return queue_.empty() && active_prefetches_ == 0; });
}

void SharedBlockCache::PrefetchLoop() {
  for (;;) {
    PrefetchTask task;
    {
      std::unique_lock<std::mutex> qlock(queue_mu_);
      queue_cv_.wait(qlock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_prefetches_;
    }
    RunPrefetch(task);
    {
      std::lock_guard<std::mutex> qlock(queue_mu_);
      --active_prefetches_;
      if (queue_.empty() && active_prefetches_ == 0) drain_cv_.notify_all();
    }
  }
}

void SharedBlockCache::RunPrefetch(const PrefetchTask& task) {
  std::unique_lock<std::mutex> lock(mu_);
  // The world may have moved since the request was queued; re-check.
  if (cache_.find(task.path) != cache_.end() ||
      inflight_.find(task.path) != inflight_.end() ||
      MutationActiveLocked(task.path)) {
    ++stats_.prefetch_noops;
    return;
  }
  auto fetch = std::make_shared<Fetch>();
  inflight_.emplace(task.path, fetch);
  ++stats_.prefetch_fetches;
  ++shard_stats_[task.shard].prefetch_fetches;
  lock.unlock();
  Result<std::string> result = task.base->ReadBlock(task.path);
  lock.lock();
  fetch->done = true;
  inflight_.erase(task.path);
  if (!result.ok()) {
    // Prefetch failures are invisible: doom the fetch so any coalesced
    // demand reader loops around and issues its own (authoritative) read
    // instead of inheriting an advisory error.
    fetch->doomed = true;
    fetch->status = result.status();
    cv_.notify_all();
    return;
  }
  fetch->data =
      std::make_shared<const std::string>(std::move(result).value());
  stats_.prefetch_bytes += fetch->data->size();
  if (!fetch->doomed) InsertLocked(task.path, task.shard, fetch->data);
  cv_.notify_all();
}

SharedCacheStats SharedBlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ShardCacheStats SharedBlockCache::shard_stats(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shard_stats_.find(shard);
  return it == shard_stats_.end() ? ShardCacheStats{} : it->second;
}

std::map<uint32_t, ShardCacheStats> SharedBlockCache::all_shard_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_stats_;
}

// ----------------------------------------------------- shard view --------

SharedCacheBackend::SharedCacheBackend(std::shared_ptr<SharedBlockCache> cache,
                                       std::shared_ptr<StorageBackend> base,
                                       uint32_t shard)
    : cache_(std::move(cache)), base_(std::move(base)), shard_(shard) {}

std::string SharedCacheBackend::name() const {
  return "sharedcache#" + std::to_string(shard_) + "(" + base_->name() + ")";
}

Result<std::string> SharedCacheBackend::ReadBlock(const std::string& path) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  Result<std::string> result = cache_->Read(shard_, base_.get(), path);
  if (result.ok()) {
    stats_.read_bytes.fetch_add(result->size(), std::memory_order_relaxed);
  }
  return result;
}

Status SharedCacheBackend::AtomicWriteBlock(const std::string& path,
                                            const std::string& data,
                                            bool sync) {
  stats_.RecordWrite(data.size());
  cache_->BeginMutation(path);
  Status status = base_->AtomicWriteBlock(path, data, sync);
  cache_->EndMutation(path);
  return status;
}

Result<std::vector<std::string>> SharedCacheBackend::List(
    const std::string& dir) {
  return base_->List(dir);
}

Status SharedCacheBackend::Remove(const std::string& path) {
  stats_.RecordRemove();
  cache_->BeginMutation(path);
  Status status = base_->Remove(path);
  cache_->EndMutation(path);
  return status;
}

Status SharedCacheBackend::CreateDir(const std::string& dir) {
  return base_->CreateDir(dir);
}

Status SharedCacheBackend::Sync() { return base_->Sync(); }

void SharedCacheBackend::StartPrefetch(const std::string& path) {
  cache_->RequestPrefetch(shard_, base_, path);
}

// ----------------------------------------------------- factories ---------

std::shared_ptr<SharedBlockCache> MakeSharedBlockCache(
    SharedBlockCacheOptions options) {
  return std::make_shared<SharedBlockCache>(options);
}

std::shared_ptr<SharedCacheBackend> MakeSharedCacheBackend(
    std::shared_ptr<SharedBlockCache> cache,
    std::shared_ptr<StorageBackend> base, uint32_t shard) {
  return std::make_shared<SharedCacheBackend>(std::move(cache),
                                              std::move(base), shard);
}

std::shared_ptr<StorageBackend> WrapWithSharedCache(
    std::shared_ptr<SharedBlockCache> cache,
    std::shared_ptr<StorageBackend> base, uint32_t shard) {
  if (cache == nullptr) return base;
  if (base == nullptr) base = MakePosixBackend();
  return MakeSharedCacheBackend(std::move(cache), std::move(base), shard);
}

}  // namespace oreo
