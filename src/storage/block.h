// On-disk partition block format (one file per partition), the stand-in for
// the Parquet files the paper writes during reorganization:
//
//   [magic "OREOBLK1"] [u32 version] [u32 ncols] [u64 nrows]
//   per column: [varint name_len][name][u8 type][u8 encoding]
//               [u64 payload_size][payload]
//   [u32 CRC-32C over everything above]
//
// The reader validates magic, structure, and checksum, returning
// Status::Corruption on any mismatch (exercised by failure-injection tests).
#ifndef OREO_STORAGE_BLOCK_H_
#define OREO_STORAGE_BLOCK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/backend.h"
#include "storage/table.h"

namespace oreo {

/// Read-side options.
struct BlockReadOptions {
  /// Column projection: when non-null, only the named columns are decoded
  /// (in block order). Names absent from the block are ignored. Scans that
  /// touch a few columns of a wide table decode proportionally less — the
  /// same effect a columnar format gets from reading a subset of column
  /// chunks. Checksum validation always covers the whole block.
  const std::vector<std::string>* columns = nullptr;
};

/// Serializes `table` into the block wire format (no I/O).
std::string SerializeBlock(const Table& table);

/// Parses a serialized block back into a Table.
Result<Table> DeserializeBlock(const std::string& data,
                               const BlockReadOptions& options = {});

/// Serializes `table` and atomically publishes it at `path` through
/// `backend` (overwrites). With `sync`, the bytes are durable before
/// returning — reorganization rewrites must be durable before the layout
/// swap. Returns the serialized byte count.
Result<uint64_t> WriteBlockTo(StorageBackend* backend, const std::string& path,
                              const Table& table, bool sync = false);

/// Reads and validates a block through `backend`.
Result<Table> ReadBlockFrom(StorageBackend* backend, const std::string& path,
                            const BlockReadOptions& options = {});

/// Legacy path-based round trip over DefaultPosixBackend().
Status WriteBlockFile(const std::string& path, const Table& table,
                      bool sync = false);

/// Legacy path-based read over DefaultPosixBackend().
Result<Table> ReadBlockFile(const std::string& path,
                            const BlockReadOptions& options = {});

/// Size in bytes of the serialized form (without writing).
size_t SerializedBlockSize(const Table& table);

}  // namespace oreo

#endif  // OREO_STORAGE_BLOCK_H_
