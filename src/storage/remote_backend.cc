#include "storage/remote_backend.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/crc32.h"

namespace oreo {

namespace {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. Fault
// decisions must be stable across platforms and standard libraries, so the
// path is digested with CRC-32C (stable by definition) rather than
// std::hash (implementation-defined).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

const char* OpTag(uint32_t op) {
  switch (op) {
    case 1:
      return "r:";
    case 2:
      return "w:";
    case 3:
      return "d:";
    default:
      return "l:";
  }
}

}  // namespace

RemoteBackend::RemoteBackend(std::shared_ptr<StorageBackend> base,
                             RemoteBackendOptions options)
    : base_(std::move(base)), options_(options) {}

bool RemoteBackend::FaultsEnabled(Op op) const {
  if (options_.fault_rate <= 0.0) return false;
  switch (op) {
    case Op::kRead:
      return options_.fault_reads;
    case Op::kWrite:
      return options_.fault_writes;
    case Op::kRemove:
      return options_.fault_removes;
    case Op::kList:
      return options_.fault_lists;
  }
  return false;
}

Status RemoteBackend::MaybeInjectFault(Op op, const std::string& path) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  if (!FaultsEnabled(op)) return Status::OK();
  // Afflicted-or-not and the fault count are pure functions of
  // (seed, op, path): no RNG state, no time, no thread identity.
  const uint64_t key = Mix64(options_.fault_seed ^
                             (static_cast<uint64_t>(op) << 56) ^
                             Crc32c(path.data(), path.size()));
  if (ToUnit(key) >= options_.fault_rate) return Status::OK();
  const uint32_t max_per_key =
      options_.max_faults_per_key == 0 ? 1 : options_.max_faults_per_key;
  const uint32_t fail_count = 1 + static_cast<uint32_t>(Mix64(key) % max_per_key);
  uint32_t attempt;
  {
    std::lock_guard<std::mutex> lock(attempts_mu_);
    attempt = attempt_counts_[OpTag(static_cast<uint32_t>(op)) + path]++;
  }
  if (attempt >= fail_count) return Status::OK();
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable("injected transient fault (attempt " +
                             std::to_string(attempt + 1) + "/" +
                             std::to_string(fail_count) + "): " + path);
}

void RemoteBackend::ChargeLatency(uint64_t op_latency_us, uint64_t bytes) {
  uint64_t sleep_us = op_latency_us;
  if (options_.bandwidth_bytes_per_sec > 0 && bytes > 0) {
    sleep_us += bytes * 1'000'000 / options_.bandwidth_bytes_per_sec;
  }
  if (sleep_us == 0) return;
  latency_sleep_us_.fetch_add(sleep_us, std::memory_order_relaxed);
  if (options_.sleep_for_real) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
}

void RemoteBackend::ChargeBackoff(uint64_t sleep_us) {
  backoff_sleep_us_.fetch_add(sleep_us, std::memory_order_relaxed);
  if (options_.sleep_for_real) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
}

namespace {
// Uniform access to "did this attempt succeed / what failed" for the two
// attempt shapes (Status and Result<T>).
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace

template <typename Fn>
auto RemoteBackend::WithRetry(Fn&& attempt) -> decltype(attempt()) {
  ops_.fetch_add(1, std::memory_order_relaxed);
  uint64_t backoff_us = options_.initial_backoff_us;
  for (uint32_t tries = 0;; ++tries) {
    auto result = attempt();
    if (StatusOf(result).code() != StatusCode::kUnavailable) return result;
    if (tries >= options_.max_retries) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_us > 0) ChargeBackoff(backoff_us);
    backoff_us = static_cast<uint64_t>(
        static_cast<double>(backoff_us) * options_.backoff_multiplier);
    if (backoff_us > options_.max_backoff_us) {
      backoff_us = options_.max_backoff_us;
    }
  }
}

Result<std::string> RemoteBackend::ReadBlock(const std::string& path) {
  Result<std::string> result = WithRetry(
      [&]() -> Result<std::string> {
        Status fault = MaybeInjectFault(Op::kRead, path);
        if (!fault.ok()) return fault;  // faults strike before the payload
        Result<std::string> r = base_->ReadBlock(path);
        ChargeLatency(options_.read_latency_us, r.ok() ? r->size() : 0);
        return r;
      });
  if (result.ok()) stats_.RecordRead(result->size());
  return result;
}

Status RemoteBackend::AtomicWriteBlock(const std::string& path,
                                       const std::string& data, bool sync) {
  stats_.RecordWrite(data.size());
  return WithRetry([&]() -> Status {
    Status fault = MaybeInjectFault(Op::kWrite, path);
    // A faulted write never reaches the base: the object is untouched, so
    // the retry re-publishes the identical bytes (idempotent).
    if (!fault.ok()) return fault;
    ChargeLatency(options_.write_latency_us, data.size());
    return base_->AtomicWriteBlock(path, data, sync);
  });
}

Result<std::vector<std::string>> RemoteBackend::List(const std::string& dir) {
  return WithRetry([&]() -> Result<std::vector<std::string>> {
    Status fault = MaybeInjectFault(Op::kList, dir);
    if (!fault.ok()) return fault;
    ChargeLatency(options_.list_latency_us, 0);
    return base_->List(dir);
  });
}

Status RemoteBackend::Remove(const std::string& path) {
  stats_.RecordRemove();
  return WithRetry([&]() -> Status {
    Status fault = MaybeInjectFault(Op::kRemove, path);
    // Like writes, a faulted remove never reaches the base, so the retry is
    // the first base-visible attempt — no NotFound-after-success ambiguity.
    if (!fault.ok()) return fault;
    ChargeLatency(options_.remove_latency_us, 0);
    return base_->Remove(path);
  });
}

RemoteBackendStats RemoteBackend::remote_stats() const {
  RemoteBackendStats s;
  s.ops = ops_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.injected_faults = injected_faults_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.backoff_sleep_us = backoff_sleep_us_.load(std::memory_order_relaxed);
  s.latency_sleep_us = latency_sleep_us_.load(std::memory_order_relaxed);
  return s;
}

std::shared_ptr<RemoteBackend> MakeRemoteBackend(
    std::shared_ptr<StorageBackend> base, RemoteBackendOptions options) {
  return std::make_shared<RemoteBackend>(std::move(base), options);
}

}  // namespace oreo
