// Pluggable physical byte storage. The paper's guarantee (Theorem IV.1) is
// about *when* to reorganize, not *where* bytes live; this interface
// separates the logical layout decision from the physical representation so
// the same engine can serve from local files, RAM, or a caching tier.
//
// Contract every implementation must honor:
//   - AtomicWriteBlock publishes a whole object atomically: a concurrent or
//     subsequent ReadBlock of `path` sees either the previous bytes (or a
//     read error if none existed) or the complete new bytes, never a torn
//     prefix. With `sync=true` the bytes are durable (as durable as the
//     medium allows) before the call returns.
//   - ReadBlock returns the complete object or a non-OK Status (IoError,
//     absent objects included); it never returns partial data.
//   - List returns every object whose path starts with `dir` + "/", sorted
//     lexicographically (deterministic across backends and platforms).
//   - Remove of a missing path returns NotFound; all other errors are
//     IoError. Callers that treat removal as best-effort ignore the status.
//   - All methods are thread-safe; concurrent writers to *different* paths
//     never interfere. Concurrent writers to the same path are last-wins.
//   - Stats counters are monotonic and thread-safe.
#ifndef OREO_STORAGE_BACKEND_H_
#define OREO_STORAGE_BACKEND_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace oreo {

/// Operation counters kept by every backend.
struct BackendStats {
  uint64_t reads = 0;
  uint64_t read_bytes = 0;
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  uint64_t removes = 0;
};

namespace internal {

/// Backend op counters as relaxed atomics. Backends record ops from many
/// threads (including the remote tier's background retries); keeping each
/// field a std::atomic makes snapshot() torn-read-free per field without a
/// lock. Cross-field consistency is not promised — BackendStats only
/// guarantees monotonic per-field counters.
struct AtomicBackendStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> read_bytes{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> write_bytes{0};
  std::atomic<uint64_t> removes{0};

  void RecordRead(uint64_t bytes) {
    reads.fetch_add(1, std::memory_order_relaxed);
    read_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    writes.fetch_add(1, std::memory_order_relaxed);
    write_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordRemove() { removes.fetch_add(1, std::memory_order_relaxed); }

  BackendStats snapshot() const {
    BackendStats s;
    s.reads = reads.load(std::memory_order_relaxed);
    s.read_bytes = read_bytes.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.write_bytes = write_bytes.load(std::memory_order_relaxed);
    s.removes = removes.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace internal

/// Optional capability interface for backends that can warm an object into
/// their cache tier asynchronously. StartPrefetch is advisory fire-and-
/// forget: it may be dropped under load and its failure is never surfaced —
/// a later ReadBlock of the same path remains the source of truth.
class BlockPrefetcher {
 public:
  virtual ~BlockPrefetcher() = default;
  virtual void StartPrefetch(const std::string& path) = 0;
};

/// Abstract byte-object store keyed by slash-separated paths.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Implementation name ("posix", "inmem", "cached(<base>)", ...).
  virtual std::string name() const = 0;

  /// Reads the complete object at `path`.
  virtual Result<std::string> ReadBlock(const std::string& path) = 0;

  /// Atomically publishes `data` at `path` (see the header contract).
  virtual Status AtomicWriteBlock(const std::string& path,
                                  const std::string& data, bool sync) = 0;

  /// Sorted paths of every object under `dir` (empty if none).
  virtual Result<std::vector<std::string>> List(const std::string& dir) = 0;

  /// Removes the object at `path` (NotFound if absent).
  virtual Status Remove(const std::string& path) = 0;

  /// Ensures `dir` exists (no-op where directories have no physical form).
  virtual Status CreateDir(const std::string& dir) = 0;

  /// Flushes any buffered state not yet covered by per-write `sync` flags.
  virtual Status Sync() = 0;

  virtual BackendStats stats() const = 0;
};

/// Local-filesystem backend; writes go to a temp file then rename, reads
/// are whole-file. Partition files it produces are bit-identical to the
/// pre-backend writer.
class PosixFileBackend : public StorageBackend {
 public:
  std::string name() const override { return "posix"; }
  Result<std::string> ReadBlock(const std::string& path) override;
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status Sync() override { return Status::OK(); }
  BackendStats stats() const override { return stats_.snapshot(); }

 private:
  internal::AtomicBackendStats stats_;
};

/// Diskless backend: a lock-sharded path -> bytes map. Enables serving
/// entirely from RAM and much faster test walls; object contents are
/// byte-identical to what posix would have written.
class InMemoryBackend : public StorageBackend {
 public:
  std::string name() const override { return "inmem"; }
  Result<std::string> ReadBlock(const std::string& path) override;
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& /*dir*/) override {
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }
  BackendStats stats() const override { return stats_.snapshot(); }

  /// Objects currently stored (tests).
  size_t num_objects() const;

 private:
  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const std::string>>
        objects;
  };
  Shard& ShardFor(const std::string& path);
  const Shard& ShardFor(const std::string& path) const;

  std::array<Shard, kNumShards> shards_;
  internal::AtomicBackendStats stats_;
};

struct CachedBackendOptions {
  /// Total bytes of cached objects; least-recently-used objects are evicted
  /// when an insertion would exceed it. Objects larger than the capacity are
  /// served but never cached.
  size_t capacity_bytes = size_t{64} << 20;
};

/// Write-through caching decorator: a bounded block cache with strict-LRU
/// eviction plus single-flight read coalescing (concurrent reads of the same
/// path share one base fetch, attacking the decompress-whole-partition-
/// per-batch read amplification).
///
/// Determinism: for a fixed multiset of reads with no evictions, hit/miss
/// totals are thread-count invariant — each distinct path is fetched from
/// the base exactly once (the miss); every other read of it is a hit,
/// whether it waited on the in-flight fetch or found the cached bytes.
/// Eviction order is strict LRU over the mutex-serialized access sequence.
///
/// Staleness: AtomicWriteBlock and Remove invalidate the cached object,
/// doom any in-flight fetch of the same path (its result is returned to
/// waiters but never inserted), and keep the path marked as mutating until
/// the base op returns, so a fetch started *during* the base mutation is
/// born doomed and cannot repopulate the cache with pre-write bytes. A read
/// that begins after a write returns always observes the new bytes.
///
/// Implementation: a single-tenant view over SharedBlockCache (shard 0);
/// multi-store deployments share one SharedBlockCache via SharedCacheBackend
/// instead (storage/shared_cache.h).
class SharedBlockCache;
class CachedBackend : public StorageBackend {
 public:
  explicit CachedBackend(std::shared_ptr<StorageBackend> base,
                         CachedBackendOptions options = {});
  ~CachedBackend() override;

  std::string name() const override { return "cached(" + base_->name() + ")"; }
  Result<std::string> ReadBlock(const std::string& path) override;
  Status AtomicWriteBlock(const std::string& path, const std::string& data,
                          bool sync) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status Sync() override { return base_->Sync(); }
  BackendStats stats() const override;

  struct CacheStats {
    uint64_t hits = 0;        ///< reads served without a base fetch of their own
    uint64_t misses = 0;      ///< reads that fetched from the base backend
    uint64_t coalesced = 0;   ///< hits that waited on an in-flight fetch
    uint64_t evictions = 0;   ///< objects dropped by the LRU bound
    uint64_t invalidations = 0;  ///< objects dropped by writes/removes
    uint64_t hit_bytes = 0;   ///< bytes served from cache (base reads avoided)
    uint64_t miss_bytes = 0;  ///< bytes fetched from the base
    uint64_t resident_bytes = 0;
    uint64_t resident_objects = 0;
  };
  CacheStats cache_stats() const;

  StorageBackend* base() const { return base_.get(); }
  size_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  std::shared_ptr<StorageBackend> base_;
  CachedBackendOptions options_;
  std::unique_ptr<SharedBlockCache> cache_;  // private, single tenant
  internal::AtomicBackendStats stats_;
};

std::shared_ptr<StorageBackend> MakePosixBackend();
std::shared_ptr<StorageBackend> MakeInMemoryBackend();
std::shared_ptr<CachedBackend> MakeCachedBackend(
    std::shared_ptr<StorageBackend> base, CachedBackendOptions options = {});

/// Process-wide PosixFileBackend used by the legacy path-based helpers
/// (WriteBlockFile / ReadMetadataFile / ...) and by components constructed
/// without an explicit backend.
StorageBackend* DefaultPosixBackend();

}  // namespace oreo

#endif  // OREO_STORAGE_BACKEND_H_
