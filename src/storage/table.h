// In-memory columnar table: a Schema plus one Column per field.
#ifndef OREO_STORAGE_TABLE_H_
#define OREO_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"
#include "storage/column.h"

namespace oreo {

/// A columnar table. Rows are appended column-wise or row-wise; after
/// construction the table is treated as immutable by the rest of the system.
class Table {
 public:
  /// Empty table with an empty schema (useful as a placeholder).
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }

  /// Appends one row; `values` must match the schema arity and types.
  void AppendRow(const std::vector<Value>& values);

  /// Recomputes num_rows after direct column mutation; CHECK-fails if the
  /// columns disagree on length.
  void FinishAppends();

  void Reserve(size_t n);

  /// New table containing rows at `row_ids` in order.
  Table Take(const std::vector<uint32_t>& row_ids) const;

  /// Appends all rows of `other` (schemas must match).
  void Append(const Table& other);

  /// Uniform sample without replacement of min(n, num_rows) rows.
  /// Returns the sampled table; `out_row_ids` (optional) receives the chosen
  /// row ids in ascending order.
  Table SampleRows(size_t n, Rng* rng,
                   std::vector<uint32_t>* out_row_ids = nullptr) const;

  /// Approximate in-memory footprint in bytes (column data only).
  size_t MemoryBytes() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace oreo

#endif  // OREO_STORAGE_TABLE_H_
