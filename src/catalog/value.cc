#include "catalog/value.h"

#include "common/logging.h"

namespace oreo {

DataType Value::type() const {
  if (std::holds_alternative<int64_t>(v_)) return DataType::kInt64;
  if (std::holds_alternative<double>(v_)) return DataType::kDouble;
  return DataType::kString;
}

int64_t Value::AsInt64() const {
  OREO_CHECK(std::holds_alternative<int64_t>(v_)) << "Value is not int64";
  return std::get<int64_t>(v_);
}

double Value::AsDouble() const {
  OREO_CHECK(std::holds_alternative<double>(v_)) << "Value is not double";
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  OREO_CHECK(std::holds_alternative<std::string>(v_)) << "Value is not string";
  return std::get<std::string>(v_);
}

double Value::AsNumeric() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  OREO_CHECK(std::holds_alternative<double>(v_))
      << "Value is not numeric: " << ToString();
  return std::get<double>(v_);
}

bool Value::operator==(const Value& other) const {
  OREO_CHECK(type() == other.type())
      << "type mismatch in Value comparison: " << DataTypeName(type())
      << " vs " << DataTypeName(other.type());
  return v_ == other.v_;
}

bool Value::operator<(const Value& other) const {
  OREO_CHECK(type() == other.type())
      << "type mismatch in Value comparison: " << DataTypeName(type())
      << " vs " << DataTypeName(other.type());
  return v_ < other.v_;
}

bool Value::operator<=(const Value& other) const {
  OREO_CHECK(type() == other.type());
  return v_ <= other.v_;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(v_));
    case DataType::kDouble:
      return std::to_string(std::get<double>(v_));
    case DataType::kString:
      return "'" + std::get<std::string>(v_) + "'";
  }
  return "?";
}

}  // namespace oreo
