#include "catalog/types.h"

namespace oreo {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

size_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 4;  // dictionary code
  }
  return 0;
}

}  // namespace oreo
