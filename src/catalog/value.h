// A single typed scalar value (predicate literal / row cell).
#ifndef OREO_CATALOG_VALUE_H_
#define OREO_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/types.h"

namespace oreo {

/// Tagged scalar. Comparison operators require matching types (comparing an
/// int64 Value to a string Value is a programmer error and CHECK-fails).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  DataType type() const;

  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: int64 widened to double. CHECK-fails for strings.
  double AsNumeric() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const;
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  /// Display form for logs and debug output.
  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace oreo

#endif  // OREO_CATALOG_VALUE_H_
