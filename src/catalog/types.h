// Core type system: the column types OREO's tables support.
//
// The paper's tables (TPC-H/TPC-DS denormalized fact tables, telemetry logs)
// need numeric columns (quantities, prices), date/time columns (shipdate,
// arrival time) and low-cardinality categorical columns (region, collector).
// We model dates/timestamps as int64 (days or seconds since epoch) and
// categoricals as dictionary-encoded strings.
#ifndef OREO_CATALOG_TYPES_H_
#define OREO_CATALOG_TYPES_H_

#include <cstdint>
#include <string>

namespace oreo {

/// Physical column type.
enum class DataType : uint8_t {
  kInt64 = 0,   ///< 64-bit signed integer (also used for dates/timestamps).
  kDouble = 1,  ///< IEEE-754 double.
  kString = 2,  ///< Dictionary-encoded string (categorical).
};

/// Human-readable type name ("int64", "double", "string").
const char* DataTypeName(DataType type);

/// Width in bytes of the in-memory representation of one value
/// (strings count their dictionary code width).
size_t DataTypeWidth(DataType type);

}  // namespace oreo

#endif  // OREO_CATALOG_TYPES_H_
