#include "catalog/schema.h"

#include "common/logging.h"

namespace oreo {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    auto [it, inserted] = index_.emplace(fields_[i].name, static_cast<int>(i));
    OREO_CHECK(inserted) << "duplicate field name: " << fields_[i].name;
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  out += "}";
  return out;
}

}  // namespace oreo
