// Table schema: an ordered list of named, typed fields.
#ifndef OREO_CATALOG_SCHEMA_H_
#define OREO_CATALOG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/types.h"

namespace oreo {

/// One column definition.
struct Field {
  std::string name;
  DataType type;
};

/// An immutable ordered field list with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// True if both schemas have identical field names and types in order.
  bool Equals(const Schema& other) const;

  /// e.g. "{quantity:int64, price:double, region:string}".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace oreo

#endif  // OREO_CATALOG_SCHEMA_H_
