// A server-side connection endpoint: consumes the raw byte stream of one
// client connection, parses and validates frames, dispatches well-formed
// requests into the server, and queues reply bytes for the transport to
// send back.
//
// Transport-agnostic by design: the loopback client feeds bytes directly
// (the equivalence wall thus exercises the exact wire path), and the
// oreo_server binary feeds bytes read from a TCP socket.
//
// Error containment:
//   - a malformed *payload* inside a well-framed request poisons only that
//     request (kBadRequest reply; the stream continues);
//   - a header that cannot be trusted — bad magic/version/type or a
//     declared payload over the limit — poisons the stream: one
//     kBadRequest reply is emitted and the session goes `broken` (further
//     bytes are discarded), because framing cannot be re-synchronized and
//     honoring the declared length would be an unbounded-buffering attack.
//
// Disconnect safety: replies are delivered into a ResponseOutbox owned
// jointly by the session and every in-flight callback (shared_ptr). A
// client that disconnects mid-stream just closes the outbox — late replies
// are dropped on the floor, never written into freed memory, and the
// engine-side batch runs to completion untouched.
#ifndef OREO_SERVER_SESSION_H_
#define OREO_SERVER_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "server/wire.h"

namespace oreo {
namespace server {

class OreoServer;

/// Thread-safe reply byte buffer shared between a session and the
/// callbacks of its in-flight requests.
class ResponseOutbox {
 public:
  /// Appends a reply frame (dropped silently once closed).
  void Push(std::string frame);

  /// Returns and clears whatever is buffered (may be empty). Never blocks.
  std::string TakeNonblocking();

  /// Blocks until bytes are available or the outbox is closed; returns the
  /// buffered bytes (empty only when closed and drained).
  std::string WaitTake();

  /// Marks the client side gone; wakes blocked readers.
  void Close();

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string buf_;
  bool closed_ = false;
};

/// One connection's server-side state machine. Feed/TakeResponses are
/// thread-compatible (one transport reader thread); reply delivery from
/// dispatcher threads is internally synchronized via the outbox.
class ServerSession {
 public:
  /// Created via OreoServer::OpenSession. The server must outlive the
  /// session; the session may be destroyed with requests still in flight.
  ServerSession(OreoServer* server, uint32_t max_payload);
  ~ServerSession();

  ServerSession(const ServerSession&) = delete;
  ServerSession& operator=(const ServerSession&) = delete;

  /// Consumes connection bytes: buffers partial frames, dispatches every
  /// complete one. Bytes arriving after the session broke are discarded.
  void Feed(std::string_view bytes);

  /// Drains queued reply bytes without blocking (may return empty).
  std::string TakeResponses();

  /// Blocks until reply bytes are available (or the outbox closed).
  std::string WaitResponses();

  /// Closes the reply stream: a blocked WaitResponses caller wakes, drains
  /// whatever is buffered, and then sees empty. A transport running
  /// WaitResponses on a separate writer thread must call this and join
  /// that thread *before* destroying the session — destruction while the
  /// writer is inside WaitResponses is a use-after-free.
  void CloseResponses();

  /// True once the inbound stream is poisoned (framing lost).
  bool broken() const { return broken_; }

 private:
  void DispatchFrame(const FrameHeader& header, std::string_view payload);
  void EmitError(uint64_t request_id, uint32_t tenant_id, ReplyStatus status,
                 std::string message);
  /// Like EmitError but framed as a kIngestReply, so ingest requests are
  /// always answered in kind.
  void EmitIngestError(uint64_t request_id, uint32_t tenant_id,
                       ReplyStatus status, std::string message);

  OreoServer* server_;  // not owned
  std::shared_ptr<ResponseOutbox> outbox_;
  std::string inbuf_;
  const uint32_t max_payload_;
  bool broken_ = false;
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_SESSION_H_
