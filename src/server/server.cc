#include "server/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"

namespace oreo {
namespace server {

OreoServer::OreoServer(ServerOptions options) : options_(options) {}

OreoServer::~OreoServer() { Shutdown(); }

Status OreoServer::AddTenant(uint32_t tenant_id, TenantConfig config) {
  if (started_.load()) {
    return Status::InvalidArgument("AddTenant after Start");
  }
  return registry_.Add(tenant_id, std::move(config));
}

void OreoServer::set_test_hooks(ServerTestHooks hooks) {
  OREO_CHECK(!started_.load()) << "set_test_hooks after Start";
  hooks_ = std::move(hooks);
}

Status OreoServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (registry_.size() == 0) {
    return Status::InvalidArgument("no tenants registered");
  }
  OREO_RETURN_NOT_OK(registry_.InitAllAndFreeze());
  for (auto& [id, tenant] : registry_.tenants()) {
    auto batcher = std::make_unique<TenantBatcher>(
        id, tenant->engine(), tenant->config().batch, &hooks_);
    batcher->Start();
    batchers_.emplace(id, std::move(batcher));
  }
  return Status::OK();
}

void OreoServer::Shutdown() {
  if (!started_.load()) return;
  stopped_.store(true);
  // Drain serializes internally: a second concurrent Shutdown caller blocks
  // on each batcher until the first caller's drain finishes, so "no callback
  // outlives Shutdown" holds for every caller.
  for (auto& [id, batcher] : batchers_) batcher->Drain();
}

std::unique_ptr<ServerSession> OreoServer::OpenSession() {
  OREO_CHECK(started_.load()) << "OpenSession before Start";
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<ServerSession>(this, options_.max_payload);
}

void OreoServer::Submit(uint32_t tenant_id, Query query, uint64_t request_id,
                        ReplyCallback on_reply) {
  auto it = batchers_.find(tenant_id);
  if (it == batchers_.end()) {
    unknown_tenant_.fetch_add(1, std::memory_order_relaxed);
    QueryReply reply;
    reply.status = ReplyStatus::kUnknownTenant;
    reply.message =
        "no tenant registered under id " + std::to_string(tenant_id);
    if (on_reply) on_reply(reply);
    return;
  }
  PendingRequest request;
  request.request_id = request_id;
  request.query = std::move(query);
  request.on_reply = std::move(on_reply);
  // The batcher answers rejected requests inline and admitted ones from its
  // dispatcher — either way the callback fires exactly once.
  it->second->Submit(std::move(request));
}

ServerStats OreoServer::stats() const {
  ServerStats out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.rejected_unknown_tenant =
      unknown_tenant_.load(std::memory_order_relaxed);
  out.rejected_malformed = malformed_.load(std::memory_order_relaxed);
  for (const auto& [id, batcher] : batchers_) {
    TenantBatcher::Counters c = batcher->counters();
    out.admitted += c.admitted;
    out.executed += c.executed;
    out.batches += c.batches;
    out.max_batch_observed =
        std::max(out.max_batch_observed, c.max_batch_observed);
    out.rejected_backpressure += c.rejected_backpressure;
    out.rejected_shutdown += c.rejected_shutdown;
  }
  return out;
}

std::vector<int64_t> OreoServer::ExecutedIds(uint32_t tenant_id) const {
  auto it = batchers_.find(tenant_id);
  if (it == batchers_.end()) return {};
  return it->second->executed_ids();
}

core::OreoEngine* OreoServer::engine(uint32_t tenant_id) {
  Tenant* tenant = registry_.Find(tenant_id);
  return tenant ? tenant->engine() : nullptr;
}

}  // namespace server
}  // namespace oreo
