#include "server/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"

namespace oreo {
namespace server {

OreoServer::OreoServer(ServerOptions options) : options_(options) {}

OreoServer::~OreoServer() { Shutdown(); }

Status OreoServer::AddTenant(uint32_t tenant_id, TenantConfig config) {
  if (started_.load()) {
    return Status::InvalidArgument("AddTenant after Start");
  }
  return registry_.Add(tenant_id, std::move(config));
}

void OreoServer::set_test_hooks(ServerTestHooks hooks) {
  OREO_CHECK(!started_.load()) << "set_test_hooks after Start";
  hooks_ = std::move(hooks);
}

Status OreoServer::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (registry_.size() == 0) {
    return Status::InvalidArgument("no tenants registered");
  }
  OREO_RETURN_NOT_OK(registry_.InitAllAndFreeze());
  FairScheduler::Options sched;
  sched.dispatchers = options_.dispatchers;
  sched.quantum = options_.scheduler_quantum;
  scheduler_ = std::make_unique<FairScheduler>(sched, &hooks_);
  for (auto& [id, tenant] : registry_.tenants()) {
    scheduler_->AddTenant(id, tenant->config().weight, tenant->engine(),
                          tenant->config().batch);
  }
  scheduler_->Start();
  return Status::OK();
}

void OreoServer::Shutdown() {
  if (!started_.load()) return;
  stopped_.store(true);
  // Drain serializes internally: a second concurrent Shutdown caller blocks
  // until the first caller's drain finishes, so "no callback outlives
  // Shutdown" holds for every caller.
  if (scheduler_) scheduler_->Drain();
}

std::unique_ptr<ServerSession> OreoServer::OpenSession() {
  OREO_CHECK(started_.load()) << "OpenSession before Start";
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<ServerSession>(this, options_.max_payload);
}

void OreoServer::Submit(uint32_t tenant_id, Query query, uint64_t request_id,
                        uint64_t deadline_us, ReplyCallback on_reply) {
  Tenant* tenant = registry_.Find(tenant_id);
  if (tenant == nullptr) {
    unknown_tenant_.fetch_add(1, std::memory_order_relaxed);
    QueryReply reply;
    reply.status = ReplyStatus::kUnknownTenant;
    reply.message =
        "no tenant registered under id " + std::to_string(tenant_id);
    if (on_reply) on_reply(reply);
    return;
  }
  // The wire codec can only check that a query is well-formed; whether its
  // column indices exist is a per-tenant question answered here, before the
  // engine can be asked to scan a column that isn't there.
  const size_t columns = tenant->config().table->num_columns();
  for (const Predicate& p : query.conjuncts) {
    if (p.column < 0 || static_cast<size_t>(p.column) >= columns) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      QueryReply reply;
      reply.status = ReplyStatus::kBadRequest;
      reply.message = "predicate column " + std::to_string(p.column) +
                      " out of range for tenant " + std::to_string(tenant_id);
      if (on_reply) on_reply(reply);
      return;
    }
  }
  PendingRequest request;
  request.request_id = request_id;
  request.query = std::move(query);
  request.on_reply = std::move(on_reply);
  request.expiry_us = scheduler_->ComputeExpiry(deadline_us);
  // The scheduler answers rejected requests inline and admitted ones from a
  // dispatcher — either way the callback fires exactly once.
  scheduler_->Submit(tenant_id, std::move(request));
}

void OreoServer::SubmitIngest(uint32_t tenant_id, WireIngest ingest,
                              uint64_t request_id, uint64_t deadline_us,
                              IngestReplyCallback on_reply) {
  auto answer = [&on_reply](ReplyStatus status, std::string message) {
    if (!on_reply) return;
    IngestReply reply;
    reply.status = status;
    reply.message = std::move(message);
    on_reply(reply);
  };
  Tenant* tenant = registry_.Find(tenant_id);
  if (tenant == nullptr) {
    unknown_tenant_.fetch_add(1, std::memory_order_relaxed);
    answer(ReplyStatus::kUnknownTenant,
           "no tenant registered under id " + std::to_string(tenant_id));
    return;
  }
  // The wire codec is schema-neutral; arity, value types and delete-column
  // ranges are per-tenant questions answered here, before the engine (whose
  // Table::AppendRow CHECK-fails on mismatch) ever sees the batch.
  const Schema& schema = tenant->config().table->schema();
  const size_t columns = schema.num_fields();
  for (size_t i = 0; i < ingest.rows.size(); ++i) {
    const std::vector<Value>& row = ingest.rows[i];
    if (row.size() != columns) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      answer(ReplyStatus::kBadRequest,
             "ingest row " + std::to_string(i) + " has " +
                 std::to_string(row.size()) + " values, tenant " +
                 std::to_string(tenant_id) + " expects " +
                 std::to_string(columns));
      return;
    }
    for (size_t c = 0; c < columns; ++c) {
      if (row[c].type() != schema.field(c).type) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        answer(ReplyStatus::kBadRequest,
               "ingest row " + std::to_string(i) + " column " +
                   std::to_string(c) + " is " + DataTypeName(row[c].type()) +
                   ", tenant schema expects " +
                   DataTypeName(schema.field(c).type));
        return;
      }
    }
  }
  for (const Query& del : ingest.deletes) {
    for (const Predicate& p : del.conjuncts) {
      if (p.column < 0 || static_cast<size_t>(p.column) >= columns) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        answer(ReplyStatus::kBadRequest,
               "delete predicate column " + std::to_string(p.column) +
                   " out of range for tenant " + std::to_string(tenant_id));
        return;
      }
    }
  }

  auto batch = std::make_shared<core::IngestBatch>();
  batch->rows = Table(schema);
  batch->rows.Reserve(ingest.rows.size());
  for (const std::vector<Value>& row : ingest.rows) {
    batch->rows.AppendRow(row);
  }
  batch->deletes = std::move(ingest.deletes);

  PendingRequest request;
  request.request_id = request_id;
  request.ingest = std::move(batch);
  request.on_ingest_reply = std::move(on_reply);
  request.expiry_us = scheduler_->ComputeExpiry(deadline_us);
  scheduler_->Submit(tenant_id, std::move(request));
}

ServerStats OreoServer::stats() const {
  ServerStats out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.rejected_unknown_tenant =
      unknown_tenant_.load(std::memory_order_relaxed);
  out.rejected_malformed = malformed_.load(std::memory_order_relaxed);
  if (!scheduler_) return out;
  for (const TenantStats& c : scheduler_->tenant_stats()) {
    out.admitted += c.admitted;
    out.executed += c.executed;
    out.batches += c.batches;
    out.max_batch_observed =
        std::max(out.max_batch_observed, c.max_batch_observed);
    out.rejected_backpressure += c.rejected_backpressure;
    out.rejected_shutdown += c.rejected_shutdown;
    out.expired_admission += c.expired_admission;
    out.expired_formation += c.expired_formation;
    out.expired_reply += c.expired_reply;
    out.ingest_batches += c.ingest_batches;
    out.ingest_rows += c.ingest_rows;
  }
  return out;
}

StatsSnapshot OreoServer::stats_snapshot() const {
  StatsSnapshot snap;
  snap.server = stats();
  if (scheduler_) snap.tenants = scheduler_->tenant_stats();
  return snap;
}

std::vector<int64_t> OreoServer::ExecutedIds(uint32_t tenant_id) const {
  if (!scheduler_) return {};
  return scheduler_->executed_ids(tenant_id);
}

core::OreoEngine* OreoServer::engine(uint32_t tenant_id) {
  Tenant* tenant = registry_.Find(tenant_id);
  return tenant ? tenant->engine() : nullptr;
}

}  // namespace server
}  // namespace oreo
