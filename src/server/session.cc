#include "server/session.h"

#include <utility>

#include "server/server.h"

namespace oreo {
namespace server {

void ResponseOutbox::Push(std::string frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // client is gone; drop the reply bytes
    buf_.append(frame);
  }
  cv_.notify_all();
}

std::string ResponseOutbox::TakeNonblocking() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.swap(buf_);
  return out;
}

std::string ResponseOutbox::WaitTake() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !buf_.empty(); });
  std::string out;
  out.swap(buf_);
  return out;
}

void ResponseOutbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ResponseOutbox::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

ServerSession::ServerSession(OreoServer* server, uint32_t max_payload)
    : server_(server),
      outbox_(std::make_shared<ResponseOutbox>()),
      max_payload_(max_payload) {}

ServerSession::~ServerSession() {
  // In-flight callbacks hold their own reference to the outbox; closing it
  // turns their deliveries into no-ops. Nothing here waits for them.
  outbox_->Close();
}

void ServerSession::Feed(std::string_view bytes) {
  if (broken_) return;
  inbuf_.append(bytes.data(), bytes.size());
  while (!broken_) {
    if (inbuf_.size() < kHeaderBytes) return;  // wait for a full header
    FrameHeader header;
    Status parsed = DecodeHeader(inbuf_, max_payload_, &header);
    if (!parsed.ok()) {
      // Framing can no longer be trusted; answer once and go dark. The
      // header's request id is included on a best-effort basis (it may be
      // garbage, but a well-behaved client in version skew benefits).
      EmitError(header.request_id, header.tenant_id, ReplyStatus::kBadRequest,
                parsed.message());
      broken_ = true;
      inbuf_.clear();
      return;
    }
    const size_t frame_bytes = kHeaderBytes + header.payload_len;
    if (inbuf_.size() < frame_bytes) return;  // wait for the full payload
    DispatchFrame(header,
                  std::string_view(inbuf_).substr(kHeaderBytes,
                                                  header.payload_len));
    inbuf_.erase(0, frame_bytes);
  }
}

void ServerSession::DispatchFrame(const FrameHeader& header,
                                  std::string_view payload) {
  if (header.version < kWireVersion) {
    // Reject-old gracefully: every retired version frames correctly
    // (identical header layout), so it poisons only itself — the client
    // gets a request-level upgrade hint and the stream survives.
    EmitError(header.request_id, header.tenant_id, ReplyStatus::kBadRequest,
              "protocol version " + std::to_string(header.version) +
                  " retired: upgrade to version " +
                  std::to_string(kWireVersion));
    server_->CountMalformed();
    return;
  }
  if (header.type == static_cast<uint16_t>(MsgType::kStats)) {
    if (!payload.empty()) {
      EmitError(header.request_id, header.tenant_id, ReplyStatus::kBadRequest,
                "stats request carries no payload");
      server_->CountMalformed();
      return;
    }
    // Counters are snapshotted inline on the reader thread — a stats probe
    // never queues behind tenant work.
    outbox_->Push(
        EncodeStatsReplyFrame(header.request_id, server_->stats_snapshot()));
    return;
  }
  if (header.type == static_cast<uint16_t>(MsgType::kIngest)) {
    WireIngest ingest;
    uint64_t deadline_us = 0;
    Status decoded = DecodeIngestPayload(payload, &ingest, &deadline_us);
    if (!decoded.ok()) {
      // Ingest errors answer in kind (an kIngestReply frame), so a client
      // pipelining mixed traffic never has to guess which request a
      // kBadRequest belongs to by frame type.
      EmitIngestError(header.request_id, header.tenant_id,
                      ReplyStatus::kBadRequest, decoded.message());
      server_->CountMalformed();
      return;
    }
    std::shared_ptr<ResponseOutbox> outbox = outbox_;
    const uint64_t request_id = header.request_id;
    const uint32_t tenant_id = header.tenant_id;
    server_->SubmitIngest(
        tenant_id, std::move(ingest), request_id, deadline_us,
        [outbox, request_id, tenant_id](const IngestReply& reply) {
          outbox->Push(EncodeIngestReplyFrame(request_id, tenant_id, reply));
        });
    return;
  }
  if (header.type != static_cast<uint16_t>(MsgType::kQuery)) {
    // Known-but-unexpected type on the server side (a stray kReply):
    // request-level error, stream survives.
    EmitError(header.request_id, header.tenant_id, ReplyStatus::kBadRequest,
              "server expects query, ingest or stats frames");
    server_->CountMalformed();
    return;
  }
  Query query;
  uint64_t deadline_us = 0;
  Status decoded = DecodeQueryPayload(payload, &query, &deadline_us);
  if (!decoded.ok()) {
    EmitError(header.request_id, header.tenant_id, ReplyStatus::kBadRequest,
              decoded.message());
    server_->CountMalformed();
    return;
  }
  // The callback owns a reference to the outbox, never to the session:
  // destroying the session mid-flight leaves delivery safe (and mute).
  std::shared_ptr<ResponseOutbox> outbox = outbox_;
  const uint64_t request_id = header.request_id;
  const uint32_t tenant_id = header.tenant_id;
  server_->Submit(tenant_id, std::move(query), request_id, deadline_us,
                  [outbox, request_id, tenant_id](const QueryReply& reply) {
                    outbox->Push(
                        EncodeReplyFrame(request_id, tenant_id, reply));
                  });
}

void ServerSession::EmitError(uint64_t request_id, uint32_t tenant_id,
                              ReplyStatus status, std::string message) {
  QueryReply reply;
  reply.status = status;
  reply.message = std::move(message);
  outbox_->Push(EncodeReplyFrame(request_id, tenant_id, reply));
}

void ServerSession::EmitIngestError(uint64_t request_id, uint32_t tenant_id,
                                    ReplyStatus status, std::string message) {
  IngestReply reply;
  reply.status = status;
  reply.message = std::move(message);
  outbox_->Push(EncodeIngestReplyFrame(request_id, tenant_id, reply));
}

std::string ServerSession::TakeResponses() {
  return outbox_->TakeNonblocking();
}

std::string ServerSession::WaitResponses() { return outbox_->WaitTake(); }

void ServerSession::CloseResponses() { outbox_->Close(); }

}  // namespace server
}  // namespace oreo
