// Admission control for one tenant: a bounded multi-producer queue with
// explicit backpressure and shutdown semantics.
//
// The contract mirrors the ReorgPool shutdown-discard contract (PR 4) one
// level up the stack:
//   - Push never blocks. A full queue reports kBackpressure immediately —
//     the server answers the client with a retryable status instead of
//     buffering unboundedly or stalling the connection reader.
//   - After Close, Push reports kShutdown and PopBatch hands out no further
//     work; requests still queued are returned by DrainRemaining so the
//     owner can answer each one with a shutdown status. Work already popped
//     (the in-flight batch) is never revoked — it completes normally.
#ifndef OREO_SERVER_ADMISSION_H_
#define OREO_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/engine.h"
#include "query/query.h"
#include "server/wire.h"

namespace oreo {
namespace server {

/// Delivers one request's reply. Fired exactly once per submitted request,
/// on the submitting thread for rejections and on the tenant's dispatcher
/// thread for executed (or drain-rejected) requests.
using ReplyCallback = std::function<void(const QueryReply&)>;

/// Delivers one ingest request's reply; same exactly-once contract.
using IngestReplyCallback = std::function<void(const IngestReply&)>;

/// Outcome of offering a request to a tenant's queue.
enum class AdmissionOutcome : uint8_t {
  kAdmitted = 0,
  kBackpressure,  ///< queue at capacity; nothing was enqueued
  kShutdown,      ///< queue closed; nothing was enqueued
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

/// One admitted request waiting for a batch slot: a query (the common
/// case) or an ingest batch. Ingests ride the same queue, quota and DRR
/// accounting as queries — mutation traffic cannot starve a peer tenant —
/// and are told apart by a non-null `ingest`.
struct PendingRequest {
  uint64_t request_id = 0;
  Query query;
  ReplyCallback on_reply;
  /// Set for ingest requests (shared_ptr keeps PendingRequest movable and
  /// cheap to shuffle during batch formation; the batch itself can be MBs).
  std::shared_ptr<core::IngestBatch> ingest;
  IngestReplyCallback on_ingest_reply;
  /// Absolute expiry on the scheduler's clock (microseconds), 0 = none.
  /// Computed at admission from the wire `deadline_us` budget; checked
  /// again at batch formation and at reply time.
  uint64_t expiry_us = 0;
};

/// Bounded MPSC admission queue (many sessions push, one dispatcher pops).
class AdmissionQueue {
 public:
  /// `capacity` is the per-tenant quota on queued-but-unbatched requests.
  explicit AdmissionQueue(size_t capacity);

  /// Offers one request. Never blocks: returns kBackpressure when the queue
  /// is at capacity and kShutdown after Close. Consumes `*request` only on
  /// kAdmitted — on rejection the caller still owns it (and its callback,
  /// which must then be fired with the rejection reply).
  AdmissionOutcome Push(PendingRequest* request);

  /// Dispatcher side: blocks until at least one request is queued (or the
  /// queue is closed), then keeps collecting until `max_batch` requests are
  /// available or `max_delay_us` microseconds have passed since the pop
  /// began — the batch-formation latency/throughput policy. Pops up to
  /// `max_batch` requests into `out` (cleared first) and returns the count.
  /// Returns 0 with `*closed == true` once the queue is closed; queued
  /// leftovers are then owned by DrainRemaining, not handed out as work.
  size_t PopBatch(size_t max_batch, uint64_t max_delay_us,
                  std::vector<PendingRequest>* out, bool* closed);

  /// Closes the queue: subsequent Push reports kShutdown, the dispatcher's
  /// next PopBatch returns 0/closed.
  void Close();

  /// Returns every request still queued after Close (once, in arrival
  /// order). Precondition: Close() has been called.
  std::vector<PendingRequest> DrainRemaining();

  /// Registers a hook fired after each successful Push, outside the queue
  /// lock (the hook may take other locks — e.g. the scheduler's — without
  /// inverting against the sched-mu -> queue-mu order used by size()).
  /// Must be set before concurrent pushers exist; not synchronized itself.
  void set_ready_notifier(std::function<void()> notifier) {
    ready_notifier_ = std::move(notifier);
  }

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes the dispatcher on push/close
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
  std::function<void()> ready_notifier_;  // scheduler wakeup, post-Push
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_ADMISSION_H_
