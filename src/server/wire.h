// The serving tier's wire format: a length-prefixed binary protocol with a
// fixed versioned header, explicit request ids and tenant ids, and strict
// bounded decoding (a hostile or truncated byte stream can never make the
// server buffer unboundedly or read past a frame).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic        0x4F45524F ("OREO")
//        4     2  version      kWireVersion
//        6     2  type         MsgType
//        8     8  request id   echoed verbatim in the reply
//       16     4  tenant id    target engine (requests) / echo (replies)
//       20     4  payload len  bytes following the header (<= max payload)
//       24     n  payload      MsgType-specific body
//
// Protocol version 3 (this one) extends version 2 with the kIngest /
// kIngestReply frame pair: a client ships appended rows (tagged values,
// row-major) plus delete predicate queries as one mutation batch, and the
// server answers with the committed mutation-log version and row counters.
// Version 2 had added the per-request `deadline_us` budget and the
// kStats/kStatsReply pair on top of version 1. The header layout is
// unchanged across all three versions, so any retired-version frame is
// still *framed* correctly — the server answers it with a request-level
// kBadRequest ("upgrade to version 3") and the stream survives; only an
// unknown version poisons the stream.
//
// A kQuery payload is a serialized Query (id, template, deadline budget,
// conjuncts); a kReply payload is a ReplyStatus plus the step outcome
// (serving state, reorganized flag, the cost double transported as raw
// IEEE-754 bits so the loopback equivalence wall can compare bit-for-bit,
// and physical match counts when the tenant has a store attached). A
// kStats request has an empty payload; its kStatsReply carries a versioned
// binary StatsSnapshot (server totals + per-tenant scheduler counters).
//
// Decoding is strict: every length is bounds-checked against the enclosing
// frame, enum values are validated, and trailing bytes after a payload are
// an error. Malformed payloads poison only the request; a header that
// cannot be trusted (bad magic/unknown version, oversized declared
// payload) poisons the whole stream, because framing can no longer be
// re-synchronized.
#ifndef OREO_SERVER_WIRE_H_
#define OREO_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace oreo {
namespace server {

constexpr uint32_t kWireMagic = 0x4F45524Fu;  // "OREO" in little-endian
constexpr uint16_t kWireVersion = 3;
/// Oldest retired protocol version. Every version in
/// [kLegacyWireVersion, kWireVersion) frames identically and is answered
/// with a request-level kBadRequest upgrade hint instead of poisoning the
/// stream.
constexpr uint16_t kLegacyWireVersion = 1;
constexpr size_t kHeaderBytes = 24;

/// Default ceiling for a frame's declared payload length. Servers may
/// configure a smaller one; anything larger is rejected before buffering.
constexpr uint32_t kDefaultMaxPayload = 1u << 20;

/// Hard caps on the shapes inside a query payload, enforced on decode.
constexpr size_t kMaxConjuncts = 64;
constexpr size_t kMaxInListValues = 1024;
constexpr size_t kMaxStringBytes = 1u << 16;
/// Delete queries allowed in one ingest frame (appended rows are bounded by
/// the payload ceiling itself).
constexpr size_t kMaxIngestDeletes = 256;

/// Version tag of the kStatsReply payload (independent of the frame
/// version: the stats schema can evolve without a protocol bump).
/// Version 2 appends the per-tenant ingest counters.
constexpr uint16_t kStatsPayloadVersion = 2;

enum class MsgType : uint16_t {
  kQuery = 1,         ///< client -> server: run one query on a tenant's engine
  kStats = 2,         ///< client -> server: snapshot serving counters
  kIngest = 3,        ///< client -> server: apply one mutation batch
  kReply = 129,       ///< server -> client: status + step outcome
  kStatsReply = 130,  ///< server -> client: versioned StatsSnapshot payload
  kIngestReply = 131  ///< server -> client: committed version + row counters
};

/// Request disposition carried in every reply.
enum class ReplyStatus : uint8_t {
  kOk = 0,
  kBackpressure = 1,      ///< tenant queue full — retry later, nothing ran
  kShutdown = 2,          ///< server draining — request did not run
  kBadRequest = 3,        ///< malformed frame or payload
  kUnknownTenant = 4,     ///< no engine registered under the tenant id
  kInternal = 5,          ///< engine-side failure
  kDeadlineExceeded = 6,  ///< deadline_us budget elapsed (see QueryReply)
};

const char* ReplyStatusName(ReplyStatus status);

/// Maps a wire status onto the library's Status vocabulary (backpressure and
/// shutdown become kUnavailable: transient, retry elsewhere/later).
Status ToStatus(ReplyStatus status, const std::string& message);

/// The fixed frame prefix.
struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  uint32_t payload_len = 0;
};

/// One query's outcome as carried on the wire.
///
/// A kDeadlineExceeded reply comes in two flavors, told apart by
/// `executed`: the request expired while queued (admission or batch
/// formation — nothing ran, the other fields are defaults), or its
/// deadline passed while the engine was already running it (queries inside
/// RunBatch are never cancelled, so the outcome fields are populated and
/// the query is in the tenant's executed audit log).
struct QueryReply {
  ReplyStatus status = ReplyStatus::kOk;
  std::string message;  ///< human-readable error detail; empty on kOk
  int32_t state = -1;   ///< serving layout (-1: several shards / not run)
  bool reorganized = false;
  double query_cost = 0.0;  ///< c(state, q); bits survive the round trip
  bool has_physical = false;
  bool executed = false;  ///< the engine ran this query (always on kOk)
  uint64_t match_count = 0;  ///< physical rows matched (0 without a store)
};

/// One ingest batch as carried on the wire: appended rows as row-major
/// tagged values (every row must supply one value per tenant column, type-
/// checked server-side against the tenant schema) plus delete predicate
/// queries evaluated over the rows visible before the batch.
struct WireIngest {
  std::vector<std::vector<Value>> rows;  ///< row-major: rows[i][column]
  std::vector<Query> deletes;            ///< only the conjuncts matter
};

/// One ingest batch's outcome as carried on the wire. A non-zero `version`
/// means the batch committed — even under kDeadlineExceeded, whose deadline
/// passed while the engine was already applying it (mutations are never
/// rolled back, mirroring the query path's executed-but-late contract).
struct IngestReply {
  ReplyStatus status = ReplyStatus::kOk;
  std::string message;        ///< human-readable error detail; empty on kOk
  uint64_t version = 0;       ///< mutation-log version of the commit
  uint64_t rows_appended = 0;
  uint64_t rows_deleted = 0;  ///< rows the delete predicates tombstoned
  uint64_t visible_rows = 0;  ///< tenant-wide visible rows after the batch
  bool folded = false;        ///< the batch triggered a compaction fold
};

/// One tenant's scheduler counters as carried in a kStatsReply.
struct TenantStats {
  uint32_t tenant_id = 0;
  uint32_t weight = 1;
  int64_t deficit = 0;  ///< current DRR deficit (scheduling credit), queries
  uint64_t admitted = 0;
  uint64_t executed = 0;
  uint64_t batches = 0;
  uint64_t max_batch_observed = 0;
  uint64_t rejected_backpressure = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t expired_admission = 0;  ///< deadline already passed at admission
  uint64_t expired_formation = 0;  ///< expired waiting in queue (never ran)
  uint64_t expired_reply = 0;      ///< expired during execution (still ran)
  uint64_t ingest_batches = 0;     ///< mutation batches applied
  uint64_t ingest_rows = 0;        ///< rows appended through ingest
};

/// Aggregated serving counters (monotonic; snapshot via OreoServer::stats).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t admitted = 0;
  uint64_t executed = 0;
  uint64_t batches = 0;
  uint64_t max_batch_observed = 0;
  uint64_t rejected_backpressure = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t rejected_unknown_tenant = 0;
  uint64_t rejected_malformed = 0;
  uint64_t expired_admission = 0;
  uint64_t expired_formation = 0;
  uint64_t expired_reply = 0;
  uint64_t ingest_batches = 0;
  uint64_t ingest_rows = 0;
};

/// The kStatsReply payload: server totals plus per-tenant scheduler state.
struct StatsSnapshot {
  ServerStats server;
  std::vector<TenantStats> tenants;
};

// --- encoding -------------------------------------------------------------

/// Appends the 24-byte header to `out`.
void AppendHeader(const FrameHeader& header, std::string* out);

/// Serializes one query request frame (header + payload). `deadline_us` is
/// the request's latency budget in microseconds measured from server
/// receipt; 0 means no deadline.
std::string EncodeQueryFrame(uint64_t request_id, uint32_t tenant_id,
                             const Query& query, uint64_t deadline_us = 0);

/// Serializes one reply frame (header + payload).
std::string EncodeReplyFrame(uint64_t request_id, uint32_t tenant_id,
                             const QueryReply& reply);

/// Serializes one ingest request frame. `deadline_us` follows the query
/// frame's contract (latency budget from server receipt; 0 = none).
std::string EncodeIngestFrame(uint64_t request_id, uint32_t tenant_id,
                              const WireIngest& ingest,
                              uint64_t deadline_us = 0);

/// Serializes one ingest reply frame.
std::string EncodeIngestReplyFrame(uint64_t request_id, uint32_t tenant_id,
                                   const IngestReply& reply);

/// Serializes a stats request frame (empty payload; tenant id 0).
std::string EncodeStatsRequestFrame(uint64_t request_id);

/// Serializes a stats reply frame (versioned binary snapshot payload).
std::string EncodeStatsReplyFrame(uint64_t request_id,
                                  const StatsSnapshot& snapshot);

// --- decoding -------------------------------------------------------------

/// Parses a header from the first kHeaderBytes of `data` (which must hold at
/// least that many bytes). Validates magic, version (current or legacy —
/// the caller decides how to answer a legacy frame; both frame
/// identically), known type and `payload_len <= max_payload`. A failure
/// here poisons the stream; `out` still holds the parsed (unvalidated)
/// fields so errors can echo the request id best-effort.
Status DecodeHeader(std::string_view data, uint32_t max_payload,
                    FrameHeader* out);

/// Parses a kQuery payload. Strict: every length bounds-checked, enums
/// validated, no trailing bytes. `deadline_us` (optional) receives the
/// request's deadline budget (0 = none).
Status DecodeQueryPayload(std::string_view payload, Query* out,
                          uint64_t* deadline_us = nullptr);

/// Parses a kIngest payload. Strict like DecodeQueryPayload: every count
/// bounds-checked (rows are additionally bounded by the frame's payload
/// ceiling), ragged rows rejected, no trailing bytes. Value *types* are
/// checked later against the tenant schema — the codec is schema-neutral.
Status DecodeIngestPayload(std::string_view payload, WireIngest* out,
                           uint64_t* deadline_us = nullptr);

/// Parses a kReply payload (the client side of the round trip).
Status DecodeReplyPayload(std::string_view payload, QueryReply* out);

/// Parses a kIngestReply payload.
Status DecodeIngestReplyPayload(std::string_view payload, IngestReply* out);

/// Parses a kStatsReply payload. Rejects unknown stats-payload versions.
Status DecodeStatsPayload(std::string_view payload, StatsSnapshot* out);

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_WIRE_H_
