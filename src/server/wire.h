// The serving tier's wire format: a length-prefixed binary protocol with a
// fixed versioned header, explicit request ids and tenant ids, and strict
// bounded decoding (a hostile or truncated byte stream can never make the
// server buffer unboundedly or read past a frame).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic        0x4F45524F ("OREO")
//        4     2  version      kWireVersion
//        6     2  type         MsgType
//        8     8  request id   echoed verbatim in the reply
//       16     4  tenant id    target engine (requests) / echo (replies)
//       20     4  payload len  bytes following the header (<= max payload)
//       24     n  payload      MsgType-specific body
//
// A kQuery payload is a serialized Query (id, template, conjuncts); a
// kReply payload is a ReplyStatus plus the step outcome (serving state,
// reorganized flag, the cost double transported as raw IEEE-754 bits so the
// loopback equivalence wall can compare bit-for-bit, and physical match
// counts when the tenant has a store attached).
//
// Decoding is strict: every length is bounds-checked against the enclosing
// frame, enum values are validated, and trailing bytes after a payload are
// an error. Malformed payloads poison only the request; a header that
// cannot be trusted (bad magic/version, oversized declared payload) poisons
// the whole stream, because framing can no longer be re-synchronized.
#ifndef OREO_SERVER_WIRE_H_
#define OREO_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace oreo {
namespace server {

constexpr uint32_t kWireMagic = 0x4F45524Fu;  // "OREO" in little-endian
constexpr uint16_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 24;

/// Default ceiling for a frame's declared payload length. Servers may
/// configure a smaller one; anything larger is rejected before buffering.
constexpr uint32_t kDefaultMaxPayload = 1u << 20;

/// Hard caps on the shapes inside a query payload, enforced on decode.
constexpr size_t kMaxConjuncts = 64;
constexpr size_t kMaxInListValues = 1024;
constexpr size_t kMaxStringBytes = 1u << 16;

enum class MsgType : uint16_t {
  kQuery = 1,    ///< client -> server: run one query on a tenant's engine
  kReply = 129,  ///< server -> client: status + step outcome
};

/// Request disposition carried in every reply.
enum class ReplyStatus : uint8_t {
  kOk = 0,
  kBackpressure = 1,   ///< tenant queue full — retry later, nothing ran
  kShutdown = 2,       ///< server draining — request did not run
  kBadRequest = 3,     ///< malformed frame or payload
  kUnknownTenant = 4,  ///< no engine registered under the tenant id
  kInternal = 5,       ///< engine-side failure
};

const char* ReplyStatusName(ReplyStatus status);

/// Maps a wire status onto the library's Status vocabulary (backpressure and
/// shutdown become kUnavailable: transient, retry elsewhere/later).
Status ToStatus(ReplyStatus status, const std::string& message);

/// The fixed frame prefix.
struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint64_t request_id = 0;
  uint32_t tenant_id = 0;
  uint32_t payload_len = 0;
};

/// One query's outcome as carried on the wire.
struct QueryReply {
  ReplyStatus status = ReplyStatus::kOk;
  std::string message;  ///< human-readable error detail; empty on kOk
  int32_t state = -1;   ///< serving layout (-1: several shards / not run)
  bool reorganized = false;
  double query_cost = 0.0;  ///< c(state, q); bits survive the round trip
  bool has_physical = false;
  uint64_t match_count = 0;  ///< physical rows matched (0 without a store)
};

// --- encoding -------------------------------------------------------------

/// Appends the 24-byte header to `out`.
void AppendHeader(const FrameHeader& header, std::string* out);

/// Serializes one query request frame (header + payload).
std::string EncodeQueryFrame(uint64_t request_id, uint32_t tenant_id,
                             const Query& query);

/// Serializes one reply frame (header + payload).
std::string EncodeReplyFrame(uint64_t request_id, uint32_t tenant_id,
                             const QueryReply& reply);

// --- decoding -------------------------------------------------------------

/// Parses a header from the first kHeaderBytes of `data` (which must hold at
/// least that many bytes). Validates magic, version, known type and
/// `payload_len <= max_payload`. A failure here poisons the stream; `out`
/// still holds the parsed (unvalidated) fields so errors can echo the
/// request id best-effort.
Status DecodeHeader(std::string_view data, uint32_t max_payload,
                    FrameHeader* out);

/// Parses a kQuery payload. Strict: every length bounds-checked, enums
/// validated, no trailing bytes.
Status DecodeQueryPayload(std::string_view payload, Query* out);

/// Parses a kReply payload (the client side of the round trip).
Status DecodeReplyPayload(std::string_view payload, QueryReply* out);

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_WIRE_H_
