// Per-tenant batch formation and dispatch: the bridge between many
// concurrent sessions and one engine's single-caller RunBatch contract.
//
// Each tenant owns one TenantBatcher: a bounded AdmissionQueue plus one
// dispatcher thread. Sessions push requests (never blocking — a full queue
// answers with backpressure); the dispatcher collects up to
// `BatchPolicy::max_batch` requests or waits at most
// `BatchPolicy::max_delay_us` microseconds (the latency/throughput policy),
// then drives the whole batch through a core::BatchSubmitter — logical
// decisions via RunBatch, physical execution against the pinned snapshots
// and batch-boundary reconciliation when the tenant has a store — and
// answers every request in stream order.
//
// Because exactly one dispatcher thread exists per tenant and every
// submission goes through the submitter's lock, the engine's
// external-synchronization contract holds by construction no matter how
// many connections multiplex onto the tenant.
//
// Shutdown (Drain) follows the ReorgPool discard contract: the in-flight
// batch completes and its replies are delivered, the dispatcher is joined,
// and every request still queued is answered with a shutdown status — all
// before Drain returns, so no callback can outlive the server.
#ifndef OREO_SERVER_BATCHER_H_
#define OREO_SERVER_BATCHER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/admission.h"

namespace oreo {
namespace server {

/// Batch-formation and admission knobs of one tenant.
struct BatchPolicy {
  size_t max_batch = 64;        ///< N: dispatch when this many are waiting
  uint64_t max_delay_us = 200;  ///< T: or after this long, whichever first
  size_t max_queue = 1024;      ///< admission quota (backpressure beyond)
};

/// Test instrumentation shared by all tenants of a server.
struct ServerTestHooks {
  /// Runs on the dispatcher thread right after a batch is formed, before
  /// the engine sees it — the sentinel gate of the shutdown/robustness
  /// suites (mirrors ReorgPool::Job::on_start).
  std::function<void(uint32_t tenant_id, size_t batch_size)> on_batch_start;
};

/// One tenant's admission queue + dispatcher thread.
class TenantBatcher {
 public:
  /// `engine` must outlive this object; `hooks` may be null or empty and
  /// must outlive it when set.
  TenantBatcher(uint32_t tenant_id, core::OreoEngine* engine,
                const BatchPolicy& policy, const ServerTestHooks* hooks);
  /// Drains (idempotent with an explicit Drain) and joins.
  ~TenantBatcher();

  TenantBatcher(const TenantBatcher&) = delete;
  TenantBatcher& operator=(const TenantBatcher&) = delete;

  /// Starts the dispatcher thread. Call exactly once.
  void Start();

  /// Offers one request. Never blocks, and the reply callback always fires
  /// exactly once: from the dispatcher thread when admitted, or inline on
  /// the submitting thread with a backpressure/shutdown reply when rejected.
  AdmissionOutcome Submit(PendingRequest request);

  /// Graceful drain: close admission, let the in-flight batch complete,
  /// join the dispatcher, then answer every still-queued request with a
  /// shutdown status. All replies are delivered before Drain returns.
  void Drain();

  /// Query ids actually executed through the engine, in stream order —
  /// the audit trail the loopback equivalence wall replays against the
  /// library path. Safe to call after Drain or while quiescent.
  std::vector<int64_t> executed_ids() const;

  struct Counters {
    uint64_t admitted = 0;
    uint64_t executed = 0;
    uint64_t rejected_backpressure = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t batches = 0;
    uint64_t max_batch_observed = 0;
  };
  Counters counters() const;

  uint32_t tenant_id() const { return tenant_id_; }

 private:
  void DispatcherLoop();
  void RunOneBatch(std::vector<PendingRequest> batch);

  const uint32_t tenant_id_;
  core::OreoEngine* engine_;  // not owned
  core::BatchSubmitter submitter_;
  const BatchPolicy policy_;
  const ServerTestHooks* hooks_;  // not owned, may be null
  AdmissionQueue queue_;

  mutable std::mutex mu_;  // guards executed_ids_ and counters_
  std::vector<int64_t> executed_ids_;
  Counters counters_;

  std::thread dispatcher_;
  std::mutex drain_mu_;   // serializes Drain; guards drained_
  bool drained_ = false;  // Drain already ran to completion
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_BATCHER_H_
