// The in-process loopback client: drives a server through the exact wire
// path a remote client would use — every request is encoded to frame bytes,
// fed into a ServerSession, and every reply is parsed back out of the
// session's outbox byte stream. Nothing is shortcut, so a loopback test
// exercises framing, decoding, admission, batching and reply encoding
// end to end; only the socket is missing.
//
// Threading: one LoopbackClient is one connection and is single-threaded
// (like one remote client driving one socket). Open several clients — they
// are independent — to model concurrent connections.
#ifndef OREO_SERVER_CLIENT_H_
#define OREO_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "server/session.h"
#include "server/wire.h"

namespace oreo {
namespace server {

class OreoServer;

class LoopbackClient {
 public:
  /// Opens a connection (session) on a started server, which must outlive
  /// the client.
  explicit LoopbackClient(OreoServer* server);
  ~LoopbackClient();

  LoopbackClient(const LoopbackClient&) = delete;
  LoopbackClient& operator=(const LoopbackClient&) = delete;

  /// Sends one query to a tenant; returns the request id to Wait on.
  /// `deadline_us` is the request's latency budget measured from server
  /// receipt (0 = no deadline); an expired request answers
  /// kDeadlineExceeded.
  uint64_t Send(uint32_t tenant_id, const Query& query,
                uint64_t deadline_us = 0);

  /// Blocks until the reply for `request_id` arrives and returns it — with
  /// whatever wire status the server assigned (backpressure, shutdown and
  /// bad-request replies come back as values; inspect `reply.status`).
  /// Errors only on transport-level failure: the connection was dropped, or
  /// the reply byte stream failed to parse.
  Result<QueryReply> Wait(uint64_t request_id);

  /// Send + Wait in one round trip.
  Result<QueryReply> Call(uint32_t tenant_id, const Query& query,
                          uint64_t deadline_us = 0);

  /// Sends one mutation batch to a tenant; returns the request id to
  /// WaitIngest on. Same deadline contract as Send.
  uint64_t SendIngest(uint32_t tenant_id, const WireIngest& ingest,
                      uint64_t deadline_us = 0);

  /// Blocks until the ingest reply for `request_id` arrives. Wire-status
  /// errors (kBadRequest, kBackpressure, ...) come back as values in
  /// `reply.status`; only transport-level failures error. A broken-framing
  /// error the server answered with a generic kReply under the same request
  /// id is converted rather than hanging forever.
  Result<IngestReply> WaitIngest(uint64_t request_id);

  /// SendIngest + WaitIngest in one round trip.
  Result<IngestReply> CallIngest(uint32_t tenant_id, const WireIngest& ingest,
                                 uint64_t deadline_us = 0);

  /// Round-trips a kStats frame: server totals + per-tenant scheduler
  /// counters, through the same wire path as queries.
  Result<StatsSnapshot> FetchStats();

  /// Simulates the client vanishing mid-stream: drops the connection with
  /// requests possibly still in flight. Subsequent Send/Wait fail.
  void Disconnect();

  bool connected() const { return session_ != nullptr; }

  /// The underlying connection, for tests that feed raw (malformed) bytes.
  ServerSession* session() { return session_.get(); }

 private:
  /// Parses complete reply frames out of `recvbuf_` into `ready_`.
  Status ParseReceived();

  OreoServer* server_;  // not owned
  std::unique_ptr<ServerSession> session_;
  std::string recvbuf_;
  std::map<uint64_t, QueryReply> ready_;
  std::map<uint64_t, IngestReply> ingest_ready_;
  std::map<uint64_t, StatsSnapshot> stats_ready_;
  uint64_t next_request_id_ = 1;
  uint32_t max_payload_;
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_CLIENT_H_
