#include "server/tenant_registry.h"

#include <utility>

namespace oreo {
namespace server {

Tenant::Tenant(uint32_t id, TenantConfig config)
    : id_(id), config_(std::move(config)) {}

Status Tenant::Init() {
  engine_ = core::MakeEngine(config_.table, config_.generator,
                             config_.time_column, config_.options);
  if (!config_.physical_dir.empty()) {
    Status attached = engine_->AttachPhysical(config_.physical_dir,
                                              config_.store_threads);
    if (!attached.ok()) {
      engine_.reset();
      return Status(attached.code(),
                    "tenant " + std::to_string(id_) + " (" + config_.name +
                        "): " + attached.message());
    }
  }
  return Status::OK();
}

Status TenantRegistry::Add(uint32_t id, TenantConfig config) {
  if (frozen_) {
    return Status::InvalidArgument("registry is frozen: add tenants before "
                                   "the server starts");
  }
  if (config.table == nullptr || config.generator == nullptr) {
    return Status::InvalidArgument("tenant " + std::to_string(id) +
                                   ": table and generator are required");
  }
  if (config.weight < 1) {
    return Status::InvalidArgument("tenant " + std::to_string(id) +
                                   ": scheduling weight must be >= 1");
  }
  auto [it, inserted] = tenants_.emplace(
      id, std::make_unique<Tenant>(id, std::move(config)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("tenant id " + std::to_string(id) +
                                 " already registered");
  }
  return Status::OK();
}

Status TenantRegistry::InitAllAndFreeze() {
  for (auto& [id, tenant] : tenants_) {
    OREO_RETURN_NOT_OK(tenant->Init());
  }
  frozen_ = true;
  return Status::OK();
}

Tenant* TenantRegistry::Find(uint32_t id) {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

}  // namespace server
}  // namespace oreo
