#include "server/client.h"

#include <utility>

#include "common/logging.h"
#include "server/server.h"

namespace oreo {
namespace server {

LoopbackClient::LoopbackClient(OreoServer* server)
    : server_(server),
      session_(server->OpenSession()),
      max_payload_(server->max_payload()) {}

LoopbackClient::~LoopbackClient() = default;

uint64_t LoopbackClient::Send(uint32_t tenant_id, const Query& query) {
  OREO_CHECK(session_ != nullptr) << "Send on a disconnected client";
  const uint64_t request_id = next_request_id_++;
  session_->Feed(EncodeQueryFrame(request_id, tenant_id, query));
  return request_id;
}

Result<QueryReply> LoopbackClient::Wait(uint64_t request_id) {
  while (true) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      QueryReply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (session_ == nullptr) {
      return Status::Unavailable("connection dropped before the reply");
    }
    std::string bytes = session_->WaitResponses();
    if (bytes.empty()) {
      // WaitResponses returns empty only once the outbox is closed and
      // drained — the server side of the connection is gone.
      return Status::Unavailable("connection closed before the reply");
    }
    recvbuf_.append(bytes);
    OREO_RETURN_NOT_OK(ParseReceived());
  }
}

Status LoopbackClient::ParseReceived() {
  while (recvbuf_.size() >= kHeaderBytes) {
    FrameHeader header;
    OREO_RETURN_NOT_OK(DecodeHeader(recvbuf_, max_payload_, &header));
    if (header.type != static_cast<uint16_t>(MsgType::kReply)) {
      return Status::Corruption("client received a non-reply frame");
    }
    const size_t frame_bytes = kHeaderBytes + header.payload_len;
    if (recvbuf_.size() < frame_bytes) return Status::OK();  // partial frame
    QueryReply reply;
    OREO_RETURN_NOT_OK(DecodeReplyPayload(
        std::string_view(recvbuf_).substr(kHeaderBytes, header.payload_len),
        &reply));
    ready_[header.request_id] = std::move(reply);
    recvbuf_.erase(0, frame_bytes);
  }
  return Status::OK();
}

Result<QueryReply> LoopbackClient::Call(uint32_t tenant_id,
                                        const Query& query) {
  return Wait(Send(tenant_id, query));
}

void LoopbackClient::Disconnect() { session_.reset(); }

}  // namespace server
}  // namespace oreo
