#include "server/client.h"

#include <utility>

#include "common/logging.h"
#include "server/server.h"

namespace oreo {
namespace server {

LoopbackClient::LoopbackClient(OreoServer* server)
    : server_(server),
      session_(server->OpenSession()),
      max_payload_(server->max_payload()) {}

LoopbackClient::~LoopbackClient() = default;

uint64_t LoopbackClient::Send(uint32_t tenant_id, const Query& query,
                              uint64_t deadline_us) {
  OREO_CHECK(session_ != nullptr) << "Send on a disconnected client";
  const uint64_t request_id = next_request_id_++;
  session_->Feed(EncodeQueryFrame(request_id, tenant_id, query, deadline_us));
  return request_id;
}

Result<QueryReply> LoopbackClient::Wait(uint64_t request_id) {
  while (true) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      QueryReply reply = std::move(it->second);
      ready_.erase(it);
      return reply;
    }
    if (session_ == nullptr) {
      return Status::Unavailable("connection dropped before the reply");
    }
    std::string bytes = session_->WaitResponses();
    if (bytes.empty()) {
      // WaitResponses returns empty only once the outbox is closed and
      // drained — the server side of the connection is gone.
      return Status::Unavailable("connection closed before the reply");
    }
    recvbuf_.append(bytes);
    OREO_RETURN_NOT_OK(ParseReceived());
  }
}

Status LoopbackClient::ParseReceived() {
  while (recvbuf_.size() >= kHeaderBytes) {
    FrameHeader header;
    OREO_RETURN_NOT_OK(DecodeHeader(recvbuf_, max_payload_, &header));
    const size_t frame_bytes = kHeaderBytes + header.payload_len;
    if (recvbuf_.size() < frame_bytes) return Status::OK();  // partial frame
    const std::string_view payload =
        std::string_view(recvbuf_).substr(kHeaderBytes, header.payload_len);
    if (header.type == static_cast<uint16_t>(MsgType::kReply)) {
      QueryReply reply;
      OREO_RETURN_NOT_OK(DecodeReplyPayload(payload, &reply));
      ready_[header.request_id] = std::move(reply);
    } else if (header.type == static_cast<uint16_t>(MsgType::kIngestReply)) {
      IngestReply reply;
      OREO_RETURN_NOT_OK(DecodeIngestReplyPayload(payload, &reply));
      ingest_ready_[header.request_id] = std::move(reply);
    } else if (header.type == static_cast<uint16_t>(MsgType::kStatsReply)) {
      StatsSnapshot snap;
      OREO_RETURN_NOT_OK(DecodeStatsPayload(payload, &snap));
      stats_ready_[header.request_id] = std::move(snap);
    } else {
      return Status::Corruption("client received a non-reply frame");
    }
    recvbuf_.erase(0, frame_bytes);
  }
  return Status::OK();
}

Result<QueryReply> LoopbackClient::Call(uint32_t tenant_id, const Query& query,
                                        uint64_t deadline_us) {
  return Wait(Send(tenant_id, query, deadline_us));
}

uint64_t LoopbackClient::SendIngest(uint32_t tenant_id,
                                    const WireIngest& ingest,
                                    uint64_t deadline_us) {
  OREO_CHECK(session_ != nullptr) << "SendIngest on a disconnected client";
  const uint64_t request_id = next_request_id_++;
  session_->Feed(
      EncodeIngestFrame(request_id, tenant_id, ingest, deadline_us));
  return request_id;
}

Result<IngestReply> LoopbackClient::WaitIngest(uint64_t request_id) {
  while (true) {
    auto it = ingest_ready_.find(request_id);
    if (it != ingest_ready_.end()) {
      IngestReply reply = std::move(it->second);
      ingest_ready_.erase(it);
      return reply;
    }
    // A session whose framing broke answers with a generic kReply (it
    // cannot know what the unparseable frame asked for); convert it so the
    // caller is not left waiting for a kIngestReply that never comes.
    auto fallback = ready_.find(request_id);
    if (fallback != ready_.end()) {
      IngestReply reply;
      reply.status = fallback->second.status;
      reply.message = std::move(fallback->second.message);
      ready_.erase(fallback);
      return reply;
    }
    if (session_ == nullptr) {
      return Status::Unavailable("connection dropped before the reply");
    }
    std::string bytes = session_->WaitResponses();
    if (bytes.empty()) {
      return Status::Unavailable("connection closed before the reply");
    }
    recvbuf_.append(bytes);
    OREO_RETURN_NOT_OK(ParseReceived());
  }
}

Result<IngestReply> LoopbackClient::CallIngest(uint32_t tenant_id,
                                               const WireIngest& ingest,
                                               uint64_t deadline_us) {
  return WaitIngest(SendIngest(tenant_id, ingest, deadline_us));
}

Result<StatsSnapshot> LoopbackClient::FetchStats() {
  OREO_CHECK(session_ != nullptr) << "FetchStats on a disconnected client";
  const uint64_t request_id = next_request_id_++;
  session_->Feed(EncodeStatsRequestFrame(request_id));
  while (true) {
    auto it = stats_ready_.find(request_id);
    if (it != stats_ready_.end()) {
      StatsSnapshot snap = std::move(it->second);
      stats_ready_.erase(it);
      return snap;
    }
    if (session_ == nullptr) {
      return Status::Unavailable("connection dropped before the reply");
    }
    std::string bytes = session_->WaitResponses();
    if (bytes.empty()) {
      return Status::Unavailable("connection closed before the reply");
    }
    recvbuf_.append(bytes);
    OREO_RETURN_NOT_OK(ParseReceived());
  }
}

void LoopbackClient::Disconnect() { session_.reset(); }

}  // namespace server
}  // namespace oreo
