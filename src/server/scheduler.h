// Weighted fair-share scheduling across tenants: a shared dispatcher pool
// driven by deficit round-robin (DRR), replacing the thread-per-tenant
// batcher model.
//
// Every tenant owns a bounded AdmissionQueue and a scheduling weight. The
// FairScheduler holds one deficit counter per tenant — scheduling credit
// measured in queries — and a pool of K dispatcher threads. A free worker
// picks the next *eligible* tenant (ready: non-empty queue and no other
// worker currently serving it; funded: deficit >= 1) by scanning a fixed
// id-ordered ring from a cursor, forms a batch from that tenant's queue
// under its own BatchPolicy, drives it through the tenant's
// core::BatchSubmitter, and charges the executed count against the
// deficit. When no ready tenant is funded, a refill round grants every
// *active* tenant (queued or being served) `weight x quantum` credit and
// zeroes the balance of idle tenants — so unused share redistributes
// instead of banking, while over-served tenants carry negative balances
// forward and long-run shares converge to the configured weights exactly.
// The pick order is deterministic given the queue contents, which is what
// the fairness wall pins.
//
// At most one worker serves a tenant at a time (the per-tenant busy flag),
// so the engine's single-caller RunBatch contract holds by construction —
// exactly as it did with one dedicated thread per tenant — while idle
// tenants no longer hold threads hostage.
//
// Deadlines. A request may carry an absolute expiry (computed at admission
// from the wire `deadline_us` budget). Expiry is checked at three points:
// admission (rejected inline, nothing enqueued), batch formation (popped
// requests whose expiry passed are answered without running), and reply
// time (a query whose deadline passed *while the engine ran it* is still
// executed — never cancelled, keeping executed streams bit-identical — and
// answered kDeadlineExceeded with `executed = true` and the real outcome).
//
// Shutdown (Drain) keeps the ReorgPool discard contract: admission closes
// (pushers bounce inline with kShutdown), in-flight batches complete and
// answer normally, workers are joined, and every request still queued is
// answered with a shutdown status before Drain returns — no reply callback
// outlives the scheduler.
#ifndef OREO_SERVER_SCHEDULER_H_
#define OREO_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/admission.h"

namespace oreo {
namespace server {

/// Batch-formation and admission knobs of one tenant.
struct BatchPolicy {
  size_t max_batch = 64;        ///< N: dispatch when this many are waiting
  uint64_t max_delay_us = 200;  ///< T: or after this long, whichever first
  size_t max_queue = 1024;      ///< admission quota (backpressure beyond)
};

/// Test instrumentation shared by all tenants of a server.
struct ServerTestHooks {
  /// Runs on the dispatcher thread right after a batch is formed (expired
  /// requests already filtered out), before the engine sees it — the
  /// sentinel gate of the shutdown/robustness/fairness suites.
  std::function<void(uint32_t tenant_id, size_t batch_size)> on_batch_start;

  /// Replaces the scheduler's clock (microseconds, monotonic). The deadline
  /// wall injects a fake clock here to make all three expiry checkpoints
  /// deterministic. Must be thread-safe; unset = steady_clock.
  std::function<uint64_t()> now_micros;
};

/// The shared DRR dispatcher pool serving every tenant of one server.
class FairScheduler {
 public:
  struct Options {
    size_t dispatchers = 2;  ///< worker threads shared by all tenants
    /// Credit (in queries) granted per unit of weight at each refill round.
    /// Larger values lower scheduling overhead but coarsen the grain at
    /// which shares interleave; convergence is exact either way thanks to
    /// carried negative balances.
    uint32_t quantum = 64;
  };

  /// `hooks` may be null or empty and must outlive the scheduler when set.
  FairScheduler(const Options& options, const ServerTestHooks* hooks);
  /// Drains (idempotent with an explicit Drain) and joins.
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Registers a tenant (weight >= 1; `engine` must outlive the scheduler).
  /// Only valid before Start.
  void AddTenant(uint32_t tenant_id, uint32_t weight,
                 core::OreoEngine* engine, const BatchPolicy& policy);

  /// Starts the dispatcher pool. Call exactly once, after all AddTenant.
  void Start();

  /// Offers one request to a known tenant (caller pre-validates the id).
  /// Never blocks; the reply callback fires exactly once — inline on the
  /// submitting thread for rejections (backpressure, shutdown, deadline
  /// already expired at admission) and from a dispatcher otherwise.
  /// `request.expiry_us` must already be absolute (see ComputeExpiry).
  AdmissionOutcome Submit(uint32_t tenant_id, PendingRequest request);

  /// Graceful drain: close admission, complete in-flight batches, join the
  /// pool, answer every still-queued request with a shutdown status. All
  /// replies are delivered before Drain returns. Idempotent.
  void Drain();

  /// The scheduler's clock (test hook or steady_clock), microseconds.
  uint64_t NowMicros() const;

  /// Turns a wire deadline budget into an absolute expiry on this clock
  /// (0 stays 0 = no deadline).
  uint64_t ComputeExpiry(uint64_t deadline_us) const;

  /// Query ids actually executed through the tenant's engine, in stream
  /// order — the audit trail the loopback equivalence wall replays against
  /// the library path. Empty for unknown tenants. Safe after Drain or
  /// while quiescent.
  std::vector<int64_t> executed_ids(uint32_t tenant_id) const;

  /// Per-tenant scheduler counters (including the live deficit), id-ordered
  /// — the payload of the kStats frame.
  std::vector<TenantStats> tenant_stats() const;

  size_t num_tenants() const { return tenants_.size(); }

 private:
  struct TenantState {
    TenantState(uint32_t id_in, uint32_t weight_in, core::OreoEngine* engine_in,
                const BatchPolicy& policy_in)
        : id(id_in),
          weight(weight_in),
          engine(engine_in),
          submitter(engine_in),
          policy(policy_in),
          queue(policy_in.max_queue) {}

    const uint32_t id;
    const uint32_t weight;
    core::OreoEngine* engine;  // not owned
    core::BatchSubmitter submitter;
    const BatchPolicy policy;
    AdmissionQueue queue;

    // DRR state, guarded by the scheduler's mu_.
    int64_t deficit = 0;
    bool busy = false;  // a worker is serving this tenant right now

    // Counters and the executed audit log, guarded by cmu (leaf lock,
    // taken after mu_ where both are needed).
    mutable std::mutex cmu;
    std::vector<int64_t> executed_ids;
    uint64_t admitted = 0;
    uint64_t executed = 0;
    uint64_t batches = 0;
    uint64_t max_batch_observed = 0;
    uint64_t rejected_backpressure = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t expired_admission = 0;
    uint64_t expired_formation = 0;
    uint64_t expired_reply = 0;
    uint64_t ingest_batches = 0;
    uint64_t ingest_rows = 0;
  };

  void WorkerLoop();
  /// Blocks until a tenant is pickable (marking it busy) or drain begins
  /// (returns nullptr). Runs refill rounds as needed.
  TenantState* PickNext();
  /// Releases the tenant (busy -> false) and charges `executed` queries
  /// against its deficit.
  void FinishServing(TenantState* tenant, size_t executed);
  /// Serves one picked tenant: pop, filter expired, run, reply. A mixed
  /// batch is served in arrival order — contiguous query runs flush as one
  /// engine batch, ingests apply between them — so the data each query sees
  /// is a deterministic function of the tenant's request stream.
  void ServeTenant(TenantState* tenant);
  /// Flushes one contiguous query run through the tenant's engine (no-op on
  /// an empty run). `expired_in_run` accumulates reply-time deadline misses.
  void FlushQueryRun(TenantState* tenant, std::vector<PendingRequest*>* run,
                     size_t* expired_in_run);
  /// Applies one ingest request through the tenant's BatchSubmitter.
  void ServeIngest(TenantState* tenant, PendingRequest* request,
                   size_t* expired_in_run);

  const Options options_;
  const ServerTestHooks* hooks_;  // not owned, may be null

  // Id-ordered ring; fixed after Start (lookup map + scan vector).
  std::map<uint32_t, std::unique_ptr<TenantState>> tenants_;
  std::vector<TenantState*> ring_;

  mutable std::mutex mu_;        // guards deficit/busy/cursor_/draining_
  std::condition_variable cv_;   // wakes workers on push/finish/drain
  size_t cursor_ = 0;            // next ring position to scan from
  bool draining_ = false;

  std::vector<std::thread> workers_;
  std::mutex drain_mu_;   // serializes Drain; guards drained_
  bool drained_ = false;  // Drain already ran to completion
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_SCHEDULER_H_
