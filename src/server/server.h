// The multi-tenant query server: a fleet of OreoEngine instances (one per
// table/tenant) behind the length-prefixed wire protocol, multiplexing any
// number of concurrent client connections onto a shared dispatcher pool
// scheduled by weighted deficit round-robin (see scheduler.h).
//
//   server::OreoServer srv;
//   server::TenantConfig cfg;
//   cfg.name = "telemetry"; cfg.table = &table; cfg.generator = &gen;
//   cfg.weight = 3;                                // fair-share weight
//   OREO_CHECK_OK(srv.AddTenant(1, cfg));
//   OREO_CHECK_OK(srv.Start());
//   server::LoopbackClient client(&srv);           // or a TCP transport
//   auto reply = client.Call(1, query);            // wire round trip
//   srv.Shutdown();                                // graceful drain
//
// Life cycle: AddTenant* -> Start -> serve -> Shutdown (idempotent; the
// destructor calls it). Shutdown drains the scheduler under the ReorgPool
// discard contract: in-flight batches complete and answer OK, queued
// requests answer kShutdown, and no reply callback survives past
// Shutdown's return. Sessions may outlive their client (disconnect-safe via
// the shared outbox) but not the server.
#ifndef OREO_SERVER_SERVER_H_
#define OREO_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "server/scheduler.h"
#include "server/session.h"
#include "server/tenant_registry.h"
#include "server/wire.h"

namespace oreo {
namespace server {

/// Server-wide knobs.
struct ServerOptions {
  /// Per-frame payload ceiling enforced before buffering (see wire.h).
  uint32_t max_payload = kDefaultMaxPayload;

  /// Dispatcher threads shared by every tenant (the fair-share pool).
  size_t dispatchers = 2;

  /// DRR credit granted per unit of tenant weight at each refill round.
  uint32_t scheduler_quantum = 64;
};

class OreoServer {
 public:
  explicit OreoServer(ServerOptions options = ServerOptions{});
  /// Shuts down (graceful drain) if the owner has not already.
  ~OreoServer();

  OreoServer(const OreoServer&) = delete;
  OreoServer& operator=(const OreoServer&) = delete;

  /// Registers a tenant. Only valid before Start.
  Status AddTenant(uint32_t tenant_id, TenantConfig config);

  /// Installs test instrumentation. Only valid before Start.
  void set_test_hooks(ServerTestHooks hooks);

  /// Builds every tenant's engine (and physical store when configured) and
  /// starts the shared dispatcher pool.
  Status Start();

  /// Graceful drain, idempotent: stops admission, completes in-flight
  /// batches, answers queued requests with kShutdown, joins the pool.
  /// Every reply is delivered before Shutdown returns.
  void Shutdown();

  bool running() const { return started_.load() && !stopped_.load(); }

  /// Opens a connection endpoint. Requires a started server; the session
  /// must not outlive the server (it may be dropped mid-flight).
  std::unique_ptr<ServerSession> OpenSession();

  /// Request entry point used by sessions (and by in-process transports).
  /// `deadline_us` is the request's latency budget from this moment
  /// (0 = none). `on_reply` fires exactly once — inline on rejection
  /// (including a deadline that already expired at admission), from a
  /// dispatcher on execution or drain.
  void Submit(uint32_t tenant_id, Query query, uint64_t request_id,
              uint64_t deadline_us, ReplyCallback on_reply);

  /// Deadline-less convenience overload.
  void Submit(uint32_t tenant_id, Query query, uint64_t request_id,
              ReplyCallback on_reply) {
    Submit(tenant_id, std::move(query), request_id, /*deadline_us=*/0,
           std::move(on_reply));
  }

  /// Ingest entry point used by sessions (and in-process transports).
  /// Validates the wire batch against the tenant's schema here — the codec
  /// is schema-neutral, so arity/type errors and out-of-range delete columns
  /// become inline kBadRequest replies, never engine CHECK failures — then
  /// submits it through the same admission queue and fair scheduler as
  /// queries. Same exactly-once callback contract as Submit.
  void SubmitIngest(uint32_t tenant_id, WireIngest ingest, uint64_t request_id,
                    uint64_t deadline_us, IngestReplyCallback on_reply);

  ServerStats stats() const;

  /// Server totals plus per-tenant scheduler counters — the kStats payload.
  StatsSnapshot stats_snapshot() const;

  /// The tenant's executed query-id stream (audit hook for the loopback
  /// equivalence wall). Empty when the tenant is unknown.
  std::vector<int64_t> ExecutedIds(uint32_t tenant_id) const;

  /// Engine access for tests and stats; treat as read-only while the server
  /// is serving (engine accounting accessors race with dispatch otherwise —
  /// Shutdown first for exact reads).
  core::OreoEngine* engine(uint32_t tenant_id);

  uint32_t max_payload() const { return options_.max_payload; }

  /// Internal: session-side malformed-frame accounting.
  void CountMalformed() { malformed_.fetch_add(1, std::memory_order_relaxed); }

 private:
  ServerOptions options_;
  ServerTestHooks hooks_;
  TenantRegistry registry_;
  // Declared after the registry (and destroyed first): dispatcher threads
  // call into the engines the registry owns.
  std::unique_ptr<FairScheduler> scheduler_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> unknown_tenant_{0};
  std::atomic<uint64_t> malformed_{0};
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_SERVER_H_
