#include "server/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"

namespace oreo {
namespace server {

namespace {

QueryReply MakeErrorReply(ReplyStatus status, const char* message) {
  QueryReply reply;
  reply.status = status;
  reply.message = message;
  return reply;
}

// Answers whichever reply callback the request carries (query or ingest) —
// every rejection site must go through this, or an ingest rejected at
// admission/formation/drain would never resolve its client-side wait.
void AnswerError(PendingRequest* request, ReplyStatus status,
                 const char* message) {
  if (request->on_ingest_reply) {
    IngestReply reply;
    reply.status = status;
    reply.message = message;
    request->on_ingest_reply(reply);
  } else if (request->on_reply) {
    request->on_reply(MakeErrorReply(status, message));
  }
}

}  // namespace

FairScheduler::FairScheduler(const Options& options,
                             const ServerTestHooks* hooks)
    : options_(options), hooks_(hooks) {
  OREO_CHECK(options_.dispatchers > 0) << "need at least one dispatcher";
  OREO_CHECK(options_.quantum > 0) << "quantum must be positive";
}

FairScheduler::~FairScheduler() { Drain(); }

uint64_t FairScheduler::NowMicros() const {
  if (hooks_ != nullptr && hooks_->now_micros) return hooks_->now_micros();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t FairScheduler::ComputeExpiry(uint64_t deadline_us) const {
  return deadline_us == 0 ? 0 : NowMicros() + deadline_us;
}

void FairScheduler::AddTenant(uint32_t tenant_id, uint32_t weight,
                              core::OreoEngine* engine,
                              const BatchPolicy& policy) {
  OREO_CHECK(workers_.empty()) << "AddTenant after Start";
  OREO_CHECK(weight >= 1) << "tenant weight must be >= 1";
  auto [it, inserted] = tenants_.emplace(
      tenant_id,
      std::make_unique<TenantState>(tenant_id, weight, engine, policy));
  OREO_CHECK(inserted) << "tenant " << tenant_id << " already scheduled";
  // Push wakes the pool through the scheduler cv; the notifier runs outside
  // the queue lock, so the sched-mu -> queue-mu order PickNext uses (size()
  // under mu_) is never inverted.
  it->second->queue.set_ready_notifier([this] {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  });
}

void FairScheduler::Start() {
  OREO_CHECK(workers_.empty()) << "scheduler already started";
  ring_.reserve(tenants_.size());
  for (auto& [id, tenant] : tenants_) ring_.push_back(tenant.get());
  workers_.reserve(options_.dispatchers);
  for (size_t i = 0; i < options_.dispatchers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionOutcome FairScheduler::Submit(uint32_t tenant_id,
                                       PendingRequest request) {
  auto it = tenants_.find(tenant_id);
  OREO_CHECK(it != tenants_.end()) << "submit to unknown tenant " << tenant_id;
  TenantState* tenant = it->second.get();

  // Admission checkpoint: a request whose deadline has already passed is
  // answered here, on the submitting thread, without touching the queue.
  if (request.expiry_us != 0 && request.expiry_us <= NowMicros()) {
    {
      std::lock_guard<std::mutex> lock(tenant->cmu);
      ++tenant->expired_admission;
    }
    AnswerError(&request, ReplyStatus::kDeadlineExceeded,
                "deadline expired at admission");
    // The request never entered the queue; report it like a shutdown-class
    // inline rejection so callers know nothing was enqueued.
    return AdmissionOutcome::kShutdown;
  }

  AdmissionOutcome outcome = tenant->queue.Push(&request);
  {
    std::lock_guard<std::mutex> lock(tenant->cmu);
    switch (outcome) {
      case AdmissionOutcome::kAdmitted: ++tenant->admitted; break;
      case AdmissionOutcome::kBackpressure:
        ++tenant->rejected_backpressure;
        break;
      case AdmissionOutcome::kShutdown: ++tenant->rejected_shutdown; break;
    }
  }
  if (outcome != AdmissionOutcome::kAdmitted) {
    // Rejected requests are answered inline so the connection reader gets
    // immediate pushback instead of silence.
    if (outcome == AdmissionOutcome::kBackpressure) {
      AnswerError(&request, ReplyStatus::kBackpressure,
                  "tenant queue full: retry later");
    } else {
      AnswerError(&request, ReplyStatus::kShutdown,
                  "server draining: request not accepted");
    }
  }
  return outcome;
}

FairScheduler::TenantState* FairScheduler::PickNext() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (draining_) return nullptr;
    const size_t n = ring_.size();
    // One DRR scan: first ready tenant (queued, not being served) with a
    // positive balance wins; the cursor moves past it so equal-weight
    // tenants interleave instead of the lowest id monopolizing the pool.
    bool any_ready = false;
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = (cursor_ + i) % n;
      TenantState* t = ring_[pos];
      if (t->busy || t->queue.size() == 0) continue;
      any_ready = true;
      if (t->deficit >= 1) {
        t->busy = true;
        cursor_ = (pos + 1) % n;
        return t;
      }
    }
    if (any_ready) {
      // Refill round: every active tenant (queued, or mid-service — its
      // balance must survive the round) earns weight x quantum; idle
      // tenants are zeroed so unused share redistributes instead of
      // banking. Over-served tenants carry negative balances into the
      // grant, which is what makes long-run shares exact.
      for (TenantState* t : ring_) {
        if (t->busy || t->queue.size() > 0) {
          t->deficit +=
              static_cast<int64_t>(t->weight) * options_.quantum;
        } else {
          t->deficit = 0;
        }
      }
      continue;  // the scan above now finds a funded tenant
    }
    cv_.wait(lock);
  }
}

void FairScheduler::FinishServing(TenantState* tenant, size_t executed) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tenant->busy = false;
    tenant->deficit -= static_cast<int64_t>(executed);
  }
  // Wake peers: the tenant may be pickable again, or a worker may have been
  // waiting for the busy flag to clear.
  cv_.notify_all();
}

void FairScheduler::WorkerLoop() {
  while (true) {
    TenantState* tenant = PickNext();
    if (tenant == nullptr) return;
    ServeTenant(tenant);
  }
}

void FairScheduler::ServeTenant(TenantState* tenant) {
  std::vector<PendingRequest> popped;
  bool closed = false;
  // Cannot block indefinitely: this worker is the tenant's only consumer
  // (busy flag), so the non-empty queue PickNext observed is still
  // non-empty; only the max_delay_us fill window adds latency.
  tenant->queue.PopBatch(tenant->policy.max_batch, tenant->policy.max_delay_us,
                         &popped, &closed);
  if (closed) {
    // Drain hit between pick and pop; leftovers belong to DrainRemaining.
    FinishServing(tenant, 0);
    return;
  }

  // Formation checkpoint: requests whose deadline passed while they waited
  // in the queue are answered now and never reach the engine.
  std::vector<PendingRequest> batch;
  std::vector<PendingRequest> expired;
  const uint64_t formed_at = NowMicros();
  batch.reserve(popped.size());
  for (PendingRequest& r : popped) {
    if (r.expiry_us != 0 && r.expiry_us <= formed_at) {
      expired.push_back(std::move(r));
    } else {
      batch.push_back(std::move(r));
    }
  }
  if (!expired.empty()) {
    {
      std::lock_guard<std::mutex> lock(tenant->cmu);
      tenant->expired_formation += expired.size();
    }
    for (PendingRequest& r : expired) {
      AnswerError(&r, ReplyStatus::kDeadlineExceeded,
                  "deadline expired before the batch formed");
    }
  }
  if (batch.empty()) {
    FinishServing(tenant, 0);
    return;
  }

  if (hooks_ != nullptr && hooks_->on_batch_start) {
    hooks_->on_batch_start(tenant->id, batch.size());
  }

  {
    std::lock_guard<std::mutex> lock(tenant->cmu);
    ++tenant->batches;
    tenant->max_batch_observed =
        std::max<uint64_t>(tenant->max_batch_observed, batch.size());
  }

  // Arrival-order serving: contiguous query runs flush as one engine batch
  // (keeping the cross-query scan parallelism of the pure-query path), and
  // each ingest applies between the run before and the run after it — so
  // what data a query sees is fixed by the request stream alone, never by
  // scheduling.
  size_t expired_in_run = 0;
  std::vector<PendingRequest*> run;
  run.reserve(batch.size());
  for (PendingRequest& r : batch) {
    if (r.ingest != nullptr) {
      FlushQueryRun(tenant, &run, &expired_in_run);
      ServeIngest(tenant, &r, &expired_in_run);
    } else {
      run.push_back(&r);
    }
  }
  FlushQueryRun(tenant, &run, &expired_in_run);
  if (expired_in_run > 0) {
    std::lock_guard<std::mutex> lock(tenant->cmu);
    tenant->expired_reply += expired_in_run;
  }

  FinishServing(tenant, batch.size());
}

void FairScheduler::FlushQueryRun(TenantState* tenant,
                                  std::vector<PendingRequest*>* run,
                                  size_t* expired_in_run) {
  if (run->empty()) return;
  QueryBatch queries;
  queries.queries.reserve(run->size());
  for (const PendingRequest* r : *run) queries.queries.push_back(r->query);

  // Record the executed stream *before* running it: once handed to the
  // engine the run always completes, and the audit log must match what the
  // engine saw even if reply delivery fails downstream.
  {
    std::lock_guard<std::mutex> lock(tenant->cmu);
    for (const PendingRequest* r : *run) {
      tenant->executed_ids.push_back(r->query.id);
    }
    tenant->executed += run->size();
  }

  core::OreoEngine::BatchResult logical;
  const bool physical = tenant->engine->has_physical();
  Status exec_status;
  std::vector<core::PhysicalStore::QueryExec> per_query;
  if (physical) {
    Result<core::PhysicalStore::BatchExec> exec =
        tenant->submitter.RunPhysical(queries, &logical);
    if (exec.ok()) {
      per_query = std::move(exec->per_query);
    } else {
      exec_status = exec.status();
    }
  } else {
    logical = tenant->submitter.Run(queries);
  }

  // Reply checkpoint: a deadline that passed during execution downgrades
  // the status but never the work — the query ran, stays in the audit log,
  // and its real outcome rides along (`executed = true`).
  const uint64_t replied_at = NowMicros();
  for (size_t i = 0; i < run->size(); ++i) {
    PendingRequest& request = *(*run)[i];
    QueryReply reply;
    if (i < logical.steps.size()) {
      const core::OreoEngine::StepResult& step = logical.steps[i];
      reply.status = ReplyStatus::kOk;
      reply.executed = true;
      reply.state = step.state;
      reply.reorganized = step.reorganized;
      reply.query_cost = step.query_cost;
      if (physical) {
        if (exec_status.ok() && i < per_query.size()) {
          reply.has_physical = true;
          reply.match_count = per_query[i].matches;
        } else if (!exec_status.ok()) {
          // Decisions were made but the scan failed; surface the engine
          // error rather than pretending the rows were served.
          reply.status = ReplyStatus::kInternal;
          reply.message = exec_status.ToString();
        }
      }
      if (reply.status == ReplyStatus::kOk && request.expiry_us != 0 &&
          request.expiry_us <= replied_at) {
        reply.status = ReplyStatus::kDeadlineExceeded;
        reply.message = "deadline expired during execution";
        ++*expired_in_run;
      }
    } else {
      reply.status = ReplyStatus::kInternal;
      reply.message = "engine returned fewer steps than queries";
    }
    if (request.on_reply) request.on_reply(reply);
  }
  run->clear();
}

void FairScheduler::ServeIngest(TenantState* tenant, PendingRequest* request,
                                size_t* expired_in_run) {
  Result<core::IngestResult> result =
      tenant->submitter.RunIngest(std::move(*request->ingest));
  IngestReply reply;
  if (result.ok()) {
    reply.version = result->version;
    reply.rows_appended = result->rows_appended;
    reply.rows_deleted = result->rows_deleted;
    reply.visible_rows = result->visible_rows;
    reply.folded = result->folded;
    std::lock_guard<std::mutex> lock(tenant->cmu);
    ++tenant->ingest_batches;
    tenant->ingest_rows += result->rows_appended;
  } else {
    // Pre-validated at the server, so surviving InvalidArgument is rare —
    // but it is still the client's fault, not an engine failure.
    reply.status = result.status().code() == StatusCode::kInvalidArgument
                       ? ReplyStatus::kBadRequest
                       : ReplyStatus::kInternal;
    reply.message = result.status().ToString();
  }
  // Reply checkpoint, mirroring the query contract: a deadline that passed
  // while the engine was applying the batch downgrades the status but never
  // the commit — the non-zero version tells the client it landed.
  if (reply.status == ReplyStatus::kOk && request->expiry_us != 0 &&
      request->expiry_us <= NowMicros()) {
    reply.status = ReplyStatus::kDeadlineExceeded;
    reply.message = "deadline expired during ingest";
    ++*expired_in_run;
  }
  if (request->on_ingest_reply) request->on_ingest_reply(reply);
}

void FairScheduler::Drain() {
  // Serializes concurrent drainers: whoever arrives second blocks until the
  // first has finished, so "no callback outlives Drain" holds for every
  // caller; a repeat call is a no-op.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  // Close before join: a worker parked in a PopBatch fill window wakes on
  // the queue close instead of sleeping out its max_delay_us.
  for (auto& [id, tenant] : tenants_) tenant->queue.Close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // The pool is gone: whatever is still queued never ran. Answer each
  // request with a shutdown status (the serving-tier analogue of ReorgPool
  // discarding queued jobs) on this thread, before Drain returns.
  for (auto& [id, tenant] : tenants_) {
    std::vector<PendingRequest> leftovers = tenant->queue.DrainRemaining();
    for (PendingRequest& r : leftovers) {
      AnswerError(&r, ReplyStatus::kShutdown,
                  "server draining: request was queued but never ran");
    }
    std::lock_guard<std::mutex> lock(tenant->cmu);
    tenant->rejected_shutdown += leftovers.size();
  }
  drained_ = true;
}

std::vector<int64_t> FairScheduler::executed_ids(uint32_t tenant_id) const {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return {};
  std::lock_guard<std::mutex> lock(it->second->cmu);
  return it->second->executed_ids;
}

std::vector<TenantStats> FairScheduler::tenant_stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    TenantStats s;
    s.tenant_id = id;
    s.weight = tenant->weight;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s.deficit = tenant->deficit;
    }
    std::lock_guard<std::mutex> lock(tenant->cmu);
    s.admitted = tenant->admitted;
    s.executed = tenant->executed;
    s.batches = tenant->batches;
    s.max_batch_observed = tenant->max_batch_observed;
    s.rejected_backpressure = tenant->rejected_backpressure;
    s.rejected_shutdown = tenant->rejected_shutdown;
    s.expired_admission = tenant->expired_admission;
    s.expired_formation = tenant->expired_formation;
    s.expired_reply = tenant->expired_reply;
    s.ingest_batches = tenant->ingest_batches;
    s.ingest_rows = tenant->ingest_rows;
    out.push_back(s);
  }
  return out;
}

}  // namespace server
}  // namespace oreo
