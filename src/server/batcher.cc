#include "server/batcher.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace oreo {
namespace server {

TenantBatcher::TenantBatcher(uint32_t tenant_id, core::OreoEngine* engine,
                             const BatchPolicy& policy,
                             const ServerTestHooks* hooks)
    : tenant_id_(tenant_id),
      engine_(engine),
      submitter_(engine),
      policy_(policy),
      hooks_(hooks),
      queue_(policy.max_queue) {}

TenantBatcher::~TenantBatcher() { Drain(); }

void TenantBatcher::Start() {
  OREO_CHECK(!dispatcher_.joinable()) << "batcher already started";
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AdmissionOutcome TenantBatcher::Submit(PendingRequest request) {
  AdmissionOutcome outcome = queue_.Push(&request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (outcome) {
      case AdmissionOutcome::kAdmitted: ++counters_.admitted; break;
      case AdmissionOutcome::kBackpressure:
        ++counters_.rejected_backpressure;
        break;
      case AdmissionOutcome::kShutdown: ++counters_.rejected_shutdown; break;
    }
  }
  if (outcome != AdmissionOutcome::kAdmitted && request.on_reply) {
    // Rejected requests are answered here, on the submitting thread, so the
    // connection reader gets immediate pushback instead of silence.
    QueryReply reply;
    if (outcome == AdmissionOutcome::kBackpressure) {
      reply.status = ReplyStatus::kBackpressure;
      reply.message = "tenant queue full: retry later";
    } else {
      reply.status = ReplyStatus::kShutdown;
      reply.message = "server draining: request not accepted";
    }
    request.on_reply(reply);
  }
  return outcome;
}

void TenantBatcher::DispatcherLoop() {
  std::vector<PendingRequest> batch;
  bool closed = false;
  while (true) {
    size_t n = queue_.PopBatch(policy_.max_batch, policy_.max_delay_us,
                               &batch, &closed);
    if (closed) return;
    if (n == 0) continue;
    RunOneBatch(std::move(batch));
    batch = {};
  }
}

void TenantBatcher::RunOneBatch(std::vector<PendingRequest> batch) {
  if (hooks_ != nullptr && hooks_->on_batch_start) {
    hooks_->on_batch_start(tenant_id_, batch.size());
  }

  QueryBatch queries;
  queries.queries.reserve(batch.size());
  for (const PendingRequest& r : batch) queries.queries.push_back(r.query);

  // Record the executed stream *before* running it: once handed to the
  // engine the batch always runs to completion, and the audit log must
  // match what the engine saw even if reply delivery fails downstream.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const PendingRequest& r : batch) {
      executed_ids_.push_back(r.query.id);
    }
    counters_.executed += batch.size();
    ++counters_.batches;
    counters_.max_batch_observed =
        std::max<uint64_t>(counters_.max_batch_observed, batch.size());
  }

  core::OreoEngine::BatchResult logical;
  const bool physical = engine_->has_physical();
  Status exec_status;
  std::vector<core::PhysicalStore::QueryExec> per_query;
  if (physical) {
    Result<core::PhysicalStore::BatchExec> exec =
        submitter_.RunPhysical(queries, &logical);
    if (exec.ok()) {
      per_query = std::move(exec->per_query);
    } else {
      exec_status = exec.status();
    }
  } else {
    logical = submitter_.Run(queries);
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    QueryReply reply;
    if (i < logical.steps.size()) {
      const core::OreoEngine::StepResult& step = logical.steps[i];
      reply.status = ReplyStatus::kOk;
      reply.state = step.state;
      reply.reorganized = step.reorganized;
      reply.query_cost = step.query_cost;
      if (physical) {
        if (exec_status.ok() && i < per_query.size()) {
          reply.has_physical = true;
          reply.match_count = per_query[i].matches;
        } else if (!exec_status.ok()) {
          // Decisions were made but the scan failed; surface the engine
          // error rather than pretending the rows were served.
          reply.status = ReplyStatus::kInternal;
          reply.message = exec_status.ToString();
        }
      }
    } else {
      reply.status = ReplyStatus::kInternal;
      reply.message = "engine returned fewer steps than queries";
    }
    if (batch[i].on_reply) batch[i].on_reply(reply);
  }
}

void TenantBatcher::Drain() {
  // Serializes concurrent drainers: whoever arrives second blocks until the
  // first has finished, so "no callback outlives Drain" holds for every
  // caller; a repeat call is a no-op.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_) return;
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher is gone: whatever is still queued never ran. Answer each
  // request with a shutdown status (the serving-tier analogue of ReorgPool
  // discarding queued jobs) on this thread, before Drain returns.
  std::vector<PendingRequest> leftovers = queue_.DrainRemaining();
  for (PendingRequest& r : leftovers) {
    QueryReply reply;
    reply.status = ReplyStatus::kShutdown;
    reply.message = "server draining: request was queued but never ran";
    if (r.on_reply) r.on_reply(reply);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.rejected_shutdown += leftovers.size();
  }
  drained_ = true;
}

std::vector<int64_t> TenantBatcher::executed_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_ids_;
}

TenantBatcher::Counters TenantBatcher::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace server
}  // namespace oreo
