// The tenant registry: one OreoEngine per table/tenant behind integer
// tenant ids (the multi-engine shape of examples/multi_table.cpp, owned by
// the server instead of the example's main()).
//
// Tenants are registered before the server starts and frozen afterwards —
// the request path does lock-free lookups into an immutable map. Each
// tenant owns its engine (built through core::MakeEngine, so any sharding x
// storage-backend combination works unchanged) and, optionally, an attached
// physical store.
#ifndef OREO_SERVER_TENANT_REGISTRY_H_
#define OREO_SERVER_TENANT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/oreo.h"
#include "server/scheduler.h"

namespace oreo {
namespace server {

/// Everything needed to build one tenant's engine.
struct TenantConfig {
  std::string name;  ///< human-readable label for logs and stats

  /// Data and layout machinery; both must outlive the server.
  const Table* table = nullptr;
  const LayoutGenerator* generator = nullptr;
  int time_column = 0;

  /// Engine knobs — sharding, backends, seeds, threads all apply.
  core::OreoOptions options;

  /// Batch-formation and admission-quota knobs.
  BatchPolicy batch;

  /// Relative share of the dispatcher pool under saturation (>= 1). A
  /// weight-3 tenant gets 3x the executed throughput of a weight-1 tenant
  /// when both stay backlogged; idle tenants' shares redistribute.
  uint32_t weight = 1;

  /// When non-empty, AttachPhysical here at server start: queries then also
  /// execute against the materialized layout and replies carry match
  /// counts. Empty = logical decisions only.
  std::string physical_dir;
  size_t store_threads = 1;
};

/// One registered tenant: config + engine (+ physical store when configured).
class Tenant {
 public:
  Tenant(uint32_t id, TenantConfig config);

  /// Builds the engine and attaches the physical store when configured.
  Status Init();

  uint32_t id() const { return id_; }
  const TenantConfig& config() const { return config_; }
  core::OreoEngine* engine() { return engine_.get(); }
  const core::OreoEngine* engine() const { return engine_.get(); }

 private:
  uint32_t id_;
  TenantConfig config_;
  std::unique_ptr<core::OreoEngine> engine_;
};

/// Id-keyed tenant collection; mutable until Freeze, lookup-only after.
class TenantRegistry {
 public:
  /// Registers a tenant. Fails on duplicate ids, missing table/generator,
  /// or after Freeze.
  Status Add(uint32_t id, TenantConfig config);

  /// Builds every tenant's engine, then freezes the registry.
  Status InitAllAndFreeze();

  /// Lookup (nullptr when unknown). Lock-free after Freeze.
  Tenant* Find(uint32_t id);

  size_t size() const { return tenants_.size(); }
  bool frozen() const { return frozen_; }

  /// Iteration for stats/shutdown paths.
  std::map<uint32_t, std::unique_ptr<Tenant>>& tenants() { return tenants_; }

 private:
  std::map<uint32_t, std::unique_ptr<Tenant>> tenants_;
  bool frozen_ = false;
};

}  // namespace server
}  // namespace oreo

#endif  // OREO_SERVER_TENANT_REGISTRY_H_
