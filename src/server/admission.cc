#include "server/admission.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace oreo {
namespace server {

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted: return "ADMITTED";
    case AdmissionOutcome::kBackpressure: return "BACKPRESSURE";
    case AdmissionOutcome::kShutdown: return "SHUTDOWN";
  }
  return "UNKNOWN";
}

AdmissionQueue::AdmissionQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

AdmissionOutcome AdmissionQueue::Push(PendingRequest* request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return AdmissionOutcome::kShutdown;
    if (queue_.size() >= capacity_) return AdmissionOutcome::kBackpressure;
    queue_.push_back(std::move(*request));
  }
  cv_.notify_one();
  if (ready_notifier_) ready_notifier_();
  return AdmissionOutcome::kAdmitted;
}

size_t AdmissionQueue::PopBatch(size_t max_batch, uint64_t max_delay_us,
                                std::vector<PendingRequest>* out,
                                bool* closed) {
  OREO_CHECK(max_batch > 0);
  out->clear();
  *closed = false;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (closed_) {
    // Leftovers belong to DrainRemaining: a closed queue hands out no work,
    // mirroring the ReorgPool's queued-jobs-are-discarded shutdown contract.
    *closed = true;
    return 0;
  }
  if (max_delay_us > 0 && queue_.size() < max_batch) {
    // The latency side of the batching policy: give the batch up to T
    // microseconds to fill before running below capacity.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(max_delay_us);
    cv_.wait_until(lock, deadline,
                   [&] { return closed_ || queue_.size() >= max_batch; });
    if (closed_) {
      *closed = true;
      return 0;
    }
  }
  const size_t n = std::min(max_batch, queue_.size());
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return n;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> AdmissionQueue::DrainRemaining() {
  std::lock_guard<std::mutex> lock(mu_);
  OREO_CHECK(closed_) << "DrainRemaining before Close";
  std::vector<PendingRequest> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace server
}  // namespace oreo
