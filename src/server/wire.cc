#include "server/wire.h"

#include <cstring>

#include "catalog/value.h"

namespace oreo {
namespace server {

namespace {

// --- little-endian primitives --------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) { PutU32(static_cast<uint32_t>(v), out); }
void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }

void PutDoubleBits(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

// Bounds-checked sequential reader over one payload.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 2;
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool DoubleBits(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool Bytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- value serialization --------------------------------------------------

constexpr uint8_t kTagInt64 = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;

void PutValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kInt64:
      PutU8(kTagInt64, out);
      PutI64(v.AsInt64(), out);
      return;
    case DataType::kDouble:
      PutU8(kTagDouble, out);
      PutDoubleBits(v.AsDouble(), out);
      return;
    case DataType::kString: {
      PutU8(kTagString, out);
      const std::string& s = v.AsString();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      return;
    }
  }
}

bool ReadValue(ByteReader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagInt64: {
      int64_t v;
      if (!r->I64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagDouble: {
      double v;
      if (!r->DoubleBits(&v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagString: {
      uint32_t len;
      if (!r->U32(&len) || len > kMaxStringBytes) return false;
      std::string s;
      if (!r->Bytes(len, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

}  // namespace

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "OK";
    case ReplyStatus::kBackpressure: return "BACKPRESSURE";
    case ReplyStatus::kShutdown: return "SHUTDOWN";
    case ReplyStatus::kBadRequest: return "BAD_REQUEST";
    case ReplyStatus::kUnknownTenant: return "UNKNOWN_TENANT";
    case ReplyStatus::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

Status ToStatus(ReplyStatus status, const std::string& message) {
  switch (status) {
    case ReplyStatus::kOk:
      return Status::OK();
    case ReplyStatus::kBackpressure:
    case ReplyStatus::kShutdown:
      return Status::Unavailable(message);
    case ReplyStatus::kBadRequest:
      return Status::InvalidArgument(message);
    case ReplyStatus::kUnknownTenant:
      return Status::NotFound(message);
    case ReplyStatus::kInternal:
      return Status::Internal(message);
  }
  return Status::Internal(message);
}

void AppendHeader(const FrameHeader& header, std::string* out) {
  PutU32(header.magic, out);
  PutU16(header.version, out);
  PutU16(header.type, out);
  PutU64(header.request_id, out);
  PutU32(header.tenant_id, out);
  PutU32(header.payload_len, out);
}

std::string EncodeQueryFrame(uint64_t request_id, uint32_t tenant_id,
                             const Query& query) {
  std::string payload;
  PutI64(query.id, &payload);
  PutI32(query.template_id, &payload);
  PutU16(static_cast<uint16_t>(query.conjuncts.size()), &payload);
  for (const Predicate& p : query.conjuncts) {
    PutI32(p.column, &payload);
    PutU8(static_cast<uint8_t>(p.op), &payload);
    switch (p.op) {
      case CompareOp::kBetween:
        PutValue(p.value, &payload);
        PutValue(p.value2, &payload);
        break;
      case CompareOp::kIn:
        PutU16(static_cast<uint16_t>(p.in_list.size()), &payload);
        for (const Value& v : p.in_list) PutValue(v, &payload);
        break;
      default:
        PutValue(p.value, &payload);
        break;
    }
  }

  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kQuery);
  header.request_id = request_id;
  header.tenant_id = tenant_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendHeader(header, &frame);
  frame.append(payload);
  return frame;
}

std::string EncodeReplyFrame(uint64_t request_id, uint32_t tenant_id,
                             const QueryReply& reply) {
  std::string payload;
  PutU8(static_cast<uint8_t>(reply.status), &payload);
  PutU32(static_cast<uint32_t>(reply.message.size()), &payload);
  payload.append(reply.message);
  PutI32(reply.state, &payload);
  PutU8(reply.reorganized ? 1 : 0, &payload);
  PutU8(reply.has_physical ? 1 : 0, &payload);
  PutDoubleBits(reply.query_cost, &payload);
  PutU64(reply.match_count, &payload);

  FrameHeader header;
  header.type = static_cast<uint16_t>(MsgType::kReply);
  header.request_id = request_id;
  header.tenant_id = tenant_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendHeader(header, &frame);
  frame.append(payload);
  return frame;
}

Status DecodeHeader(std::string_view data, uint32_t max_payload,
                    FrameHeader* out) {
  ByteReader r(data.substr(0, kHeaderBytes));
  FrameHeader h;
  if (!r.U32(&h.magic) || !r.U16(&h.version) || !r.U16(&h.type) ||
      !r.U64(&h.request_id) || !r.U32(&h.tenant_id) || !r.U32(&h.payload_len)) {
    return Status::InvalidArgument("short frame header");
  }
  // Fill the out-param even when validation fails below: the session's
  // best-effort error reply can then echo the (possibly garbage) request id.
  *out = h;
  if (h.magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (h.version != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(h.version));
  }
  if (h.type != static_cast<uint16_t>(MsgType::kQuery) &&
      h.type != static_cast<uint16_t>(MsgType::kReply)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(h.type));
  }
  if (h.payload_len > max_payload) {
    return Status::InvalidArgument(
        "declared payload of " + std::to_string(h.payload_len) +
        " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  return Status::OK();
}

Status DecodeQueryPayload(std::string_view payload, Query* out) {
  ByteReader r(payload);
  Query q;
  uint16_t num_conjuncts;
  if (!r.I64(&q.id)) return Malformed("query id");
  int32_t template_id;
  if (!r.I32(&template_id)) return Malformed("template id");
  q.template_id = template_id;
  if (!r.U16(&num_conjuncts)) return Malformed("conjunct count");
  if (num_conjuncts > kMaxConjuncts) return Malformed("too many conjuncts");
  q.conjuncts.reserve(num_conjuncts);
  for (uint16_t i = 0; i < num_conjuncts; ++i) {
    Predicate p;
    uint8_t op;
    if (!r.I32(&p.column)) return Malformed("predicate column");
    if (!r.U8(&op) || op > static_cast<uint8_t>(CompareOp::kIn)) {
      return Malformed("predicate operator");
    }
    p.op = static_cast<CompareOp>(op);
    switch (p.op) {
      case CompareOp::kBetween:
        if (!ReadValue(&r, &p.value) || !ReadValue(&r, &p.value2)) {
          return Malformed("BETWEEN operands");
        }
        break;
      case CompareOp::kIn: {
        uint16_t count;
        if (!r.U16(&count) || count > kMaxInListValues) {
          return Malformed("IN-list size");
        }
        p.in_list.resize(count);
        for (uint16_t v = 0; v < count; ++v) {
          if (!ReadValue(&r, &p.in_list[v])) return Malformed("IN-list value");
        }
        break;
      }
      default:
        if (!ReadValue(&r, &p.value)) return Malformed("predicate operand");
        break;
    }
    q.conjuncts.push_back(std::move(p));
  }
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(q);
  return Status::OK();
}

Status DecodeReplyPayload(std::string_view payload, QueryReply* out) {
  ByteReader r(payload);
  QueryReply reply;
  uint8_t status;
  if (!r.U8(&status) || status > static_cast<uint8_t>(ReplyStatus::kInternal)) {
    return Malformed("reply status");
  }
  reply.status = static_cast<ReplyStatus>(status);
  uint32_t msg_len;
  if (!r.U32(&msg_len) || msg_len > kMaxStringBytes) {
    return Malformed("reply message length");
  }
  if (!r.Bytes(msg_len, &reply.message)) return Malformed("reply message");
  uint8_t flag;
  if (!r.I32(&reply.state)) return Malformed("reply state");
  if (!r.U8(&flag)) return Malformed("reorganized flag");
  reply.reorganized = flag != 0;
  if (!r.U8(&flag)) return Malformed("has_physical flag");
  reply.has_physical = flag != 0;
  if (!r.DoubleBits(&reply.query_cost)) return Malformed("query cost");
  if (!r.U64(&reply.match_count)) return Malformed("match count");
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(reply);
  return Status::OK();
}

}  // namespace server
}  // namespace oreo
