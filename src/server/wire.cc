#include "server/wire.h"

#include <cstring>

#include "catalog/value.h"

namespace oreo {
namespace server {

namespace {

// --- little-endian primitives --------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) { PutU32(static_cast<uint32_t>(v), out); }
void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }

void PutDoubleBits(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

// Bounds-checked sequential reader over one payload.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 2;
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool DoubleBits(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool Bytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- value serialization --------------------------------------------------

constexpr uint8_t kTagInt64 = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;

void PutValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kInt64:
      PutU8(kTagInt64, out);
      PutI64(v.AsInt64(), out);
      return;
    case DataType::kDouble:
      PutU8(kTagDouble, out);
      PutDoubleBits(v.AsDouble(), out);
      return;
    case DataType::kString: {
      PutU8(kTagString, out);
      const std::string& s = v.AsString();
      PutU32(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      return;
    }
  }
}

bool ReadValue(ByteReader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagInt64: {
      int64_t v;
      if (!r->I64(&v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagDouble: {
      double v;
      if (!r->DoubleBits(&v)) return false;
      *out = Value(v);
      return true;
    }
    case kTagString: {
      uint32_t len;
      if (!r->U32(&len) || len > kMaxStringBytes) return false;
      std::string s;
      if (!r->Bytes(len, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

// --- predicate-list codec (shared by query frames and ingest deletes) ------

void PutConjuncts(const std::vector<Predicate>& conjuncts, std::string* out) {
  PutU16(static_cast<uint16_t>(conjuncts.size()), out);
  for (const Predicate& p : conjuncts) {
    PutI32(p.column, out);
    PutU8(static_cast<uint8_t>(p.op), out);
    switch (p.op) {
      case CompareOp::kBetween:
        PutValue(p.value, out);
        PutValue(p.value2, out);
        break;
      case CompareOp::kIn:
        PutU16(static_cast<uint16_t>(p.in_list.size()), out);
        for (const Value& v : p.in_list) PutValue(v, out);
        break;
      default:
        PutValue(p.value, out);
        break;
    }
  }
}

Status ReadConjuncts(ByteReader* r, std::vector<Predicate>* out) {
  uint16_t num_conjuncts;
  if (!r->U16(&num_conjuncts)) return Malformed("conjunct count");
  if (num_conjuncts > kMaxConjuncts) return Malformed("too many conjuncts");
  out->clear();
  out->reserve(num_conjuncts);
  for (uint16_t i = 0; i < num_conjuncts; ++i) {
    Predicate p;
    uint8_t op;
    if (!r->I32(&p.column)) return Malformed("predicate column");
    if (!r->U8(&op) || op > static_cast<uint8_t>(CompareOp::kIn)) {
      return Malformed("predicate operator");
    }
    p.op = static_cast<CompareOp>(op);
    switch (p.op) {
      case CompareOp::kBetween:
        if (!ReadValue(r, &p.value) || !ReadValue(r, &p.value2)) {
          return Malformed("BETWEEN operands");
        }
        break;
      case CompareOp::kIn: {
        uint16_t count;
        if (!r->U16(&count) || count > kMaxInListValues) {
          return Malformed("IN-list size");
        }
        p.in_list.resize(count);
        for (uint16_t v = 0; v < count; ++v) {
          if (!ReadValue(r, &p.in_list[v])) return Malformed("IN-list value");
        }
        break;
      }
      default:
        if (!ReadValue(r, &p.value)) return Malformed("predicate operand");
        break;
    }
    out->push_back(std::move(p));
  }
  return Status::OK();
}

std::string FinishFrame(MsgType type, uint64_t request_id, uint32_t tenant_id,
                        const std::string& payload) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.request_id = request_id;
  header.tenant_id = tenant_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendHeader(header, &frame);
  frame.append(payload);
  return frame;
}

}  // namespace

const char* ReplyStatusName(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "OK";
    case ReplyStatus::kBackpressure: return "BACKPRESSURE";
    case ReplyStatus::kShutdown: return "SHUTDOWN";
    case ReplyStatus::kBadRequest: return "BAD_REQUEST";
    case ReplyStatus::kUnknownTenant: return "UNKNOWN_TENANT";
    case ReplyStatus::kInternal: return "INTERNAL";
    case ReplyStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

Status ToStatus(ReplyStatus status, const std::string& message) {
  switch (status) {
    case ReplyStatus::kOk:
      return Status::OK();
    case ReplyStatus::kBackpressure:
    case ReplyStatus::kShutdown:
      return Status::Unavailable(message);
    case ReplyStatus::kBadRequest:
      return Status::InvalidArgument(message);
    case ReplyStatus::kUnknownTenant:
      return Status::NotFound(message);
    case ReplyStatus::kInternal:
      return Status::Internal(message);
    case ReplyStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
  }
  return Status::Internal(message);
}

void AppendHeader(const FrameHeader& header, std::string* out) {
  PutU32(header.magic, out);
  PutU16(header.version, out);
  PutU16(header.type, out);
  PutU64(header.request_id, out);
  PutU32(header.tenant_id, out);
  PutU32(header.payload_len, out);
}

std::string EncodeQueryFrame(uint64_t request_id, uint32_t tenant_id,
                             const Query& query, uint64_t deadline_us) {
  std::string payload;
  PutI64(query.id, &payload);
  PutI32(query.template_id, &payload);
  PutU64(deadline_us, &payload);
  PutConjuncts(query.conjuncts, &payload);
  return FinishFrame(MsgType::kQuery, request_id, tenant_id, payload);
}

std::string EncodeIngestFrame(uint64_t request_id, uint32_t tenant_id,
                              const WireIngest& ingest, uint64_t deadline_us) {
  std::string payload;
  PutU64(deadline_us, &payload);
  PutU32(static_cast<uint32_t>(ingest.rows.size()), &payload);
  const uint16_t num_cols =
      ingest.rows.empty() ? 0
                          : static_cast<uint16_t>(ingest.rows.front().size());
  PutU16(num_cols, &payload);
  for (const std::vector<Value>& row : ingest.rows) {
    for (const Value& v : row) PutValue(v, &payload);
  }
  PutU16(static_cast<uint16_t>(ingest.deletes.size()), &payload);
  for (const Query& q : ingest.deletes) PutConjuncts(q.conjuncts, &payload);
  return FinishFrame(MsgType::kIngest, request_id, tenant_id, payload);
}

std::string EncodeReplyFrame(uint64_t request_id, uint32_t tenant_id,
                             const QueryReply& reply) {
  std::string payload;
  PutU8(static_cast<uint8_t>(reply.status), &payload);
  PutU32(static_cast<uint32_t>(reply.message.size()), &payload);
  payload.append(reply.message);
  PutI32(reply.state, &payload);
  PutU8(reply.reorganized ? 1 : 0, &payload);
  PutU8(reply.has_physical ? 1 : 0, &payload);
  PutU8(reply.executed ? 1 : 0, &payload);
  PutDoubleBits(reply.query_cost, &payload);
  PutU64(reply.match_count, &payload);
  return FinishFrame(MsgType::kReply, request_id, tenant_id, payload);
}

std::string EncodeIngestReplyFrame(uint64_t request_id, uint32_t tenant_id,
                                   const IngestReply& reply) {
  std::string payload;
  PutU8(static_cast<uint8_t>(reply.status), &payload);
  PutU32(static_cast<uint32_t>(reply.message.size()), &payload);
  payload.append(reply.message);
  PutU64(reply.version, &payload);
  PutU64(reply.rows_appended, &payload);
  PutU64(reply.rows_deleted, &payload);
  PutU64(reply.visible_rows, &payload);
  PutU8(reply.folded ? 1 : 0, &payload);
  return FinishFrame(MsgType::kIngestReply, request_id, tenant_id, payload);
}

std::string EncodeStatsRequestFrame(uint64_t request_id) {
  return FinishFrame(MsgType::kStats, request_id, /*tenant_id=*/0,
                     std::string());
}

std::string EncodeStatsReplyFrame(uint64_t request_id,
                                  const StatsSnapshot& snapshot) {
  std::string payload;
  PutU16(kStatsPayloadVersion, &payload);
  const ServerStats& s = snapshot.server;
  PutU64(s.sessions_opened, &payload);
  PutU64(s.admitted, &payload);
  PutU64(s.executed, &payload);
  PutU64(s.batches, &payload);
  PutU64(s.max_batch_observed, &payload);
  PutU64(s.rejected_backpressure, &payload);
  PutU64(s.rejected_shutdown, &payload);
  PutU64(s.rejected_unknown_tenant, &payload);
  PutU64(s.rejected_malformed, &payload);
  PutU64(s.expired_admission, &payload);
  PutU64(s.expired_formation, &payload);
  PutU64(s.expired_reply, &payload);
  PutU64(s.ingest_batches, &payload);
  PutU64(s.ingest_rows, &payload);
  PutU32(static_cast<uint32_t>(snapshot.tenants.size()), &payload);
  for (const TenantStats& t : snapshot.tenants) {
    PutU32(t.tenant_id, &payload);
    PutU32(t.weight, &payload);
    PutI64(t.deficit, &payload);
    PutU64(t.admitted, &payload);
    PutU64(t.executed, &payload);
    PutU64(t.batches, &payload);
    PutU64(t.max_batch_observed, &payload);
    PutU64(t.rejected_backpressure, &payload);
    PutU64(t.rejected_shutdown, &payload);
    PutU64(t.expired_admission, &payload);
    PutU64(t.expired_formation, &payload);
    PutU64(t.expired_reply, &payload);
    PutU64(t.ingest_batches, &payload);
    PutU64(t.ingest_rows, &payload);
  }
  return FinishFrame(MsgType::kStatsReply, request_id, /*tenant_id=*/0,
                     payload);
}

Status DecodeHeader(std::string_view data, uint32_t max_payload,
                    FrameHeader* out) {
  ByteReader r(data.substr(0, kHeaderBytes));
  FrameHeader h;
  if (!r.U32(&h.magic) || !r.U16(&h.version) || !r.U16(&h.type) ||
      !r.U64(&h.request_id) || !r.U32(&h.tenant_id) || !r.U32(&h.payload_len)) {
    return Status::InvalidArgument("short frame header");
  }
  // Fill the out-param even when validation fails below: the session's
  // best-effort error reply can then echo the (possibly garbage) request id.
  *out = h;
  if (h.magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  // Retired versions (v1, v2) share this exact header layout, so framing
  // stays intact; the session answers them per-request instead of dropping
  // the stream. Anything else is unframeable.
  if (h.version < kLegacyWireVersion || h.version > kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(h.version));
  }
  if (h.type != static_cast<uint16_t>(MsgType::kQuery) &&
      h.type != static_cast<uint16_t>(MsgType::kStats) &&
      h.type != static_cast<uint16_t>(MsgType::kIngest) &&
      h.type != static_cast<uint16_t>(MsgType::kReply) &&
      h.type != static_cast<uint16_t>(MsgType::kStatsReply) &&
      h.type != static_cast<uint16_t>(MsgType::kIngestReply)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(h.type));
  }
  if (h.payload_len > max_payload) {
    return Status::InvalidArgument(
        "declared payload of " + std::to_string(h.payload_len) +
        " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  return Status::OK();
}

Status DecodeQueryPayload(std::string_view payload, Query* out,
                          uint64_t* deadline_us) {
  ByteReader r(payload);
  Query q;
  if (!r.I64(&q.id)) return Malformed("query id");
  int32_t template_id;
  if (!r.I32(&template_id)) return Malformed("template id");
  q.template_id = template_id;
  uint64_t deadline = 0;
  if (!r.U64(&deadline)) return Malformed("deadline");
  OREO_RETURN_NOT_OK(ReadConjuncts(&r, &q.conjuncts));
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(q);
  if (deadline_us != nullptr) *deadline_us = deadline;
  return Status::OK();
}

Status DecodeIngestPayload(std::string_view payload, WireIngest* out,
                           uint64_t* deadline_us) {
  ByteReader r(payload);
  WireIngest ingest;
  uint64_t deadline = 0;
  if (!r.U64(&deadline)) return Malformed("deadline");
  uint32_t num_rows;
  uint16_t num_cols;
  if (!r.U32(&num_rows)) return Malformed("ingest row count");
  if (!r.U16(&num_cols)) return Malformed("ingest column count");
  if (num_rows > 0 && num_cols == 0) return Malformed("rows without columns");
  // No reserve with attacker-controlled counts: a declared count larger than
  // the payload can back fails on the first short value (one byte minimum
  // per value, so the payload ceiling bounds the loop).
  for (uint32_t i = 0; i < num_rows; ++i) {
    std::vector<Value> row;
    row.reserve(num_cols);
    for (uint16_t c = 0; c < num_cols; ++c) {
      Value v;
      if (!ReadValue(&r, &v)) return Malformed("ingest cell value");
      row.push_back(std::move(v));
    }
    ingest.rows.push_back(std::move(row));
  }
  uint16_t num_deletes;
  if (!r.U16(&num_deletes)) return Malformed("delete count");
  if (num_deletes > kMaxIngestDeletes) return Malformed("too many deletes");
  for (uint16_t i = 0; i < num_deletes; ++i) {
    Query q;
    OREO_RETURN_NOT_OK(ReadConjuncts(&r, &q.conjuncts));
    ingest.deletes.push_back(std::move(q));
  }
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(ingest);
  if (deadline_us != nullptr) *deadline_us = deadline;
  return Status::OK();
}

Status DecodeReplyPayload(std::string_view payload, QueryReply* out) {
  ByteReader r(payload);
  QueryReply reply;
  uint8_t status;
  if (!r.U8(&status) ||
      status > static_cast<uint8_t>(ReplyStatus::kDeadlineExceeded)) {
    return Malformed("reply status");
  }
  reply.status = static_cast<ReplyStatus>(status);
  uint32_t msg_len;
  if (!r.U32(&msg_len) || msg_len > kMaxStringBytes) {
    return Malformed("reply message length");
  }
  if (!r.Bytes(msg_len, &reply.message)) return Malformed("reply message");
  uint8_t flag;
  if (!r.I32(&reply.state)) return Malformed("reply state");
  if (!r.U8(&flag)) return Malformed("reorganized flag");
  reply.reorganized = flag != 0;
  if (!r.U8(&flag)) return Malformed("has_physical flag");
  reply.has_physical = flag != 0;
  if (!r.U8(&flag)) return Malformed("executed flag");
  reply.executed = flag != 0;
  if (!r.DoubleBits(&reply.query_cost)) return Malformed("query cost");
  if (!r.U64(&reply.match_count)) return Malformed("match count");
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(reply);
  return Status::OK();
}

Status DecodeIngestReplyPayload(std::string_view payload, IngestReply* out) {
  ByteReader r(payload);
  IngestReply reply;
  uint8_t status;
  if (!r.U8(&status) ||
      status > static_cast<uint8_t>(ReplyStatus::kDeadlineExceeded)) {
    return Malformed("reply status");
  }
  reply.status = static_cast<ReplyStatus>(status);
  uint32_t msg_len;
  if (!r.U32(&msg_len) || msg_len > kMaxStringBytes) {
    return Malformed("reply message length");
  }
  if (!r.Bytes(msg_len, &reply.message)) return Malformed("reply message");
  if (!r.U64(&reply.version)) return Malformed("ingest version");
  if (!r.U64(&reply.rows_appended)) return Malformed("rows appended");
  if (!r.U64(&reply.rows_deleted)) return Malformed("rows deleted");
  if (!r.U64(&reply.visible_rows)) return Malformed("visible rows");
  uint8_t folded;
  if (!r.U8(&folded)) return Malformed("folded flag");
  reply.folded = folded != 0;
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(reply);
  return Status::OK();
}

Status DecodeStatsPayload(std::string_view payload, StatsSnapshot* out) {
  ByteReader r(payload);
  StatsSnapshot snap;
  uint16_t version;
  if (!r.U16(&version)) return Malformed("stats version");
  if (version != kStatsPayloadVersion) {
    return Malformed("unknown stats payload version");
  }
  ServerStats& s = snap.server;
  if (!r.U64(&s.sessions_opened) || !r.U64(&s.admitted) ||
      !r.U64(&s.executed) || !r.U64(&s.batches) ||
      !r.U64(&s.max_batch_observed) || !r.U64(&s.rejected_backpressure) ||
      !r.U64(&s.rejected_shutdown) || !r.U64(&s.rejected_unknown_tenant) ||
      !r.U64(&s.rejected_malformed) || !r.U64(&s.expired_admission) ||
      !r.U64(&s.expired_formation) || !r.U64(&s.expired_reply) ||
      !r.U64(&s.ingest_batches) || !r.U64(&s.ingest_rows)) {
    return Malformed("server totals");
  }
  uint32_t tenant_count;
  if (!r.U32(&tenant_count)) return Malformed("tenant count");
  // No reserve with an attacker-controlled count: the per-record reads
  // below fail on the first short field.
  for (uint32_t i = 0; i < tenant_count; ++i) {
    TenantStats t;
    if (!r.U32(&t.tenant_id) || !r.U32(&t.weight) || !r.I64(&t.deficit) ||
        !r.U64(&t.admitted) || !r.U64(&t.executed) || !r.U64(&t.batches) ||
        !r.U64(&t.max_batch_observed) || !r.U64(&t.rejected_backpressure) ||
        !r.U64(&t.rejected_shutdown) || !r.U64(&t.expired_admission) ||
        !r.U64(&t.expired_formation) || !r.U64(&t.expired_reply) ||
        !r.U64(&t.ingest_batches) || !r.U64(&t.ingest_rows)) {
      return Malformed("tenant stats record");
    }
    snap.tenants.push_back(t);
  }
  if (!r.exhausted()) return Malformed("trailing bytes");
  *out = std::move(snap);
  return Status::OK();
}

}  // namespace server
}  // namespace oreo
