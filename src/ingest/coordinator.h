// Shard routing for ingest batches.
//
// The write path reuses the read path's routing function: appended rows go
// through ShardRouter::SplitRows (the exact mapping the initial table load
// used, so a row ingested later lands on the same shard it would have loaded
// onto), and delete predicates go to ShardRouter::ShardsForQuery's shard set.
// Routing completeness — shard s holds exactly the rows the routing function
// assigns to s — makes the delete filter sound: a shard pruned for the
// delete's predicate cannot hold a matching row, so skipping it removes
// nothing.
//
// The split itself is pure and deterministic (no engine state), so
// ShardedOreo can route first and then apply per-shard batches in ascending
// shard order — the serial application order that keeps the sharded engine
// bit-identical to per-shard serial references.
#ifndef OREO_INGEST_COORDINATOR_H_
#define OREO_INGEST_COORDINATOR_H_

#include <vector>

#include "query/query.h"
#include "storage/shard_router.h"
#include "storage/table.h"

namespace oreo {
namespace ingest {

/// One shard's slice of an ingest batch.
struct ShardIngest {
  Table rows;                  ///< appended rows routed to this shard
  std::vector<Query> deletes;  ///< delete predicates this shard must apply
};

/// Splits an ingest batch across `router.num_shards()` shards: rows by the
/// routing function, deletes by shard pruning. Result is indexed by shard id.
std::vector<ShardIngest> SplitIngest(const ShardRouter& router,
                                     const Table& rows,
                                     const std::vector<Query>& deletes);

}  // namespace ingest
}  // namespace oreo

#endif  // OREO_INGEST_COORDINATOR_H_
