// Versioning authority for live mutations.
//
// Every OreoEngine::Ingest call commits exactly one batch here and receives a
// monotonically increasing version number. A batch is the unit of visibility:
// its rows and deletes become query-visible atomically when Commit returns,
// never mid-batch, so the executed stream — and therefore every equivalence
// wall (costs, switches, traces, replay CRCs) — is a pure function of the
// request interleaving, independent of thread count, shard count or batch
// size.
//
// The log retains no row data: the logical table is always reconstructible
// from LiveTable (base ∖ tombstones ++ live delta rows), so memory stays
// bounded under sustained ingest. What the log owns is the version counter
// and the global appended/deleted accounting that backs the
//   visible_rows == total_appended − total_deleted
// invariant hard-checked by bench/micro_ingest at every batch boundary.
#ifndef OREO_INGEST_MUTATION_LOG_H_
#define OREO_INGEST_MUTATION_LOG_H_

#include <cstdint>

namespace oreo {
namespace ingest {

/// Monotonic batch-version counter plus global mutation accounting.
class MutationLog {
 public:
  /// One committed ingest batch.
  struct BatchRecord {
    uint64_t version = 0;        ///< batch version (1-based, monotonic)
    uint64_t rows_appended = 0;  ///< rows appended by this batch
    uint64_t rows_deleted = 0;   ///< rows tombstoned by this batch
  };

  /// Commits one batch and returns its record. Version numbers start at 1
  /// (version 0 means "initial load, nothing ingested yet").
  BatchRecord Commit(uint64_t rows_appended, uint64_t rows_deleted) {
    BatchRecord rec;
    rec.version = ++version_;
    rec.rows_appended = rows_appended;
    rec.rows_deleted = rows_deleted;
    total_appended_ += rows_appended;
    total_deleted_ += rows_deleted;
    return rec;
  }

  /// Version of the most recently committed batch (0 before any ingest).
  uint64_t version() const { return version_; }
  /// Total rows appended across all committed batches.
  uint64_t total_appended() const { return total_appended_; }
  /// Total rows deleted across all committed batches.
  uint64_t total_deleted() const { return total_deleted_; }
  /// Number of committed batches.
  uint64_t num_batches() const { return version_; }

 private:
  uint64_t version_ = 0;
  uint64_t total_appended_ = 0;
  uint64_t total_deleted_ = 0;
};

}  // namespace ingest
}  // namespace oreo

#endif  // OREO_INGEST_MUTATION_LOG_H_
