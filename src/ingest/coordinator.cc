#include "ingest/coordinator.h"

namespace oreo {
namespace ingest {

std::vector<ShardIngest> SplitIngest(const ShardRouter& router,
                                     const Table& rows,
                                     const std::vector<Query>& deletes) {
  std::vector<ShardIngest> out(router.num_shards());
  if (rows.num_rows() > 0) {
    std::vector<std::vector<uint32_t>> split = router.SplitRows(rows);
    for (size_t s = 0; s < out.size(); ++s) {
      out[s].rows = split[s].empty() ? Table(rows.schema())
                                     : rows.Take(split[s]);
    }
  } else {
    for (ShardIngest& si : out) si.rows = Table(rows.schema());
  }
  for (const Query& q : deletes) {
    for (uint32_t s : router.ShardsForQuery(q)) {
      out[s].deletes.push_back(q);
    }
  }
  return out;
}

}  // namespace ingest
}  // namespace oreo
