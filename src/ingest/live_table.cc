#include "ingest/live_table.h"

#include <utility>

#include "common/logging.h"
#include "query/kernels.h"

namespace oreo {
namespace ingest {

namespace {

/// Clears the live bits matched by `query`; returns how many were cleared.
/// One EvalQueryBitmap (vectorized kernel path) + one word-AND-NOT pass.
uint64_t ApplyDelete(const Table& rows, const Query& query, BitVector* live) {
  if (rows.num_rows() == 0) return 0;
  BitVector match = EvalQueryBitmap(rows, query);
  const size_t before = live->Count();
  live->AndNotInto(match, live);
  return before - live->Count();
}

}  // namespace

LiveTable::LiveTable(const Table* base)
    : original_(base), base_live_(base->num_rows()) {
  base_live_.SetAll();
}

LiveTable::ApplyStats LiveTable::Apply(Table rows,
                                       const std::vector<Query>& deletes,
                                       uint64_t version) {
  ApplyStats stats;
  // Deletes first: they target the rows visible before this batch, so the
  // chunk appended below is exempt by construction.
  for (const Query& q : deletes) {
    stats.rows_deleted += ApplyDelete(base(), q, &base_live_);
    for (DeltaChunk& chunk : deltas_) {
      stats.rows_deleted += ApplyDelete(chunk.rows, q, &chunk.live);
    }
  }
  base_tombstones_ = base().num_rows() - base_live_.Count();
  delta_tombstones_ = 0;
  for (const DeltaChunk& chunk : deltas_) {
    delta_tombstones_ += chunk.rows.num_rows() - chunk.live.Count();
  }
  if (rows.num_rows() > 0) {
    OREO_CHECK_EQ(rows.num_columns(), base().num_columns());
    stats.rows_appended = rows.num_rows();
    delta_rows_ += rows.num_rows();
    BitVector live(rows.num_rows());
    live.SetAll();
    ZoneMap zones = BuildZoneMap(rows);  // before the move below
    deltas_.push_back(DeltaChunk{std::move(rows), std::move(zones),
                                 std::move(live), version});
  }
  return stats;
}

double LiveTable::MutationFraction() const {
  const uint64_t physical = base().num_rows() + delta_rows_;
  if (physical == 0) return 0.0;
  const uint64_t debt = delta_rows_ + base_tombstones_;
  return static_cast<double>(debt) / static_cast<double>(physical);
}

uint64_t LiveTable::DeltaScanRows(const Query& query) const {
  uint64_t rows = 0;
  for (const DeltaChunk& chunk : deltas_) {
    if (!query.CanSkipPartition(chunk.zones)) rows += chunk.rows.num_rows();
  }
  return rows;
}

uint64_t LiveTable::CountDeltaMatches(const Query& query) const {
  uint64_t matches = 0;
  for (const DeltaChunk& chunk : deltas_) {
    if (query.CanSkipPartition(chunk.zones)) continue;
    if (query.conjuncts.empty()) {
      matches += chunk.live.Count();
      continue;
    }
    BitVector match = EvalQueryBitmap(chunk.rows, query);
    match.AndAssign(chunk.live);
    matches += match.Count();
  }
  return matches;
}

Table LiveTable::BuildLogicalTable() const {
  Table out = base().Take(base_live_.ToIndices());
  for (const DeltaChunk& chunk : deltas_) {
    if (chunk.live.Count() == chunk.rows.num_rows()) {
      out.Append(chunk.rows);
    } else {
      out.Append(chunk.rows.Take(chunk.live.ToIndices()));
    }
  }
  return out;
}

void LiveTable::Fold() {
  auto next = std::make_unique<Table>(BuildLogicalTable());
  folded_ = std::move(next);
  deltas_.clear();
  base_live_ = BitVector(folded_->num_rows());
  base_live_.SetAll();
  base_tombstones_ = 0;
  delta_rows_ = 0;
  delta_tombstones_ = 0;
}

}  // namespace ingest
}  // namespace oreo
