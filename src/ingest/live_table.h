// Mutable view over an immutable base table: delta chunks + tombstone masks.
//
// The storage layer's Table stays write-once; mutability is layered on top.
// A LiveTable is
//
//   logical table = (base rows where base_live bit is set, in row order)
//                ++ (delta-chunk rows where the chunk's live bit is set,
//                    in chunk order)
//
// Appends become immutable delta chunks (each with its own ZoneMap, so query
// pruning works on deltas exactly like on partitions). Deletes are predicate
// queries evaluated through the same vectorized kernel path as scans —
// EvalQueryBitmap produces the match bitmap and the live mask is updated with
// one word-AND-NOT per 64 rows, no per-row branches. Rows are never moved or
// erased in place, so every row keeps its id and pinned snapshots stay valid
// until the next fold.
//
// Batch semantics: deletes apply to the data visible *before* the batch;
// rows appended by the same batch are exempt (apply order inside
// Apply(): deletes first, then the append chunk is published).
//
// Fold() compacts everything into a fresh owned base table (live base rows in
// row order, then live delta rows in chunk order — the BuildLogicalTable()
// order, so folding never changes the logical table) and clears the deltas
// and tombstones. The engine folds when MutationFraction() crosses
// OreoOptions::fold_threshold, which bounds both the scan overhead of the
// delta path and the memory held by dead rows.
#ifndef OREO_INGEST_LIVE_TABLE_H_
#define OREO_INGEST_LIVE_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvector.h"
#include "query/query.h"
#include "storage/table.h"
#include "storage/zone_map.h"

namespace oreo {
namespace ingest {

/// Base table + delta chunks + tombstone bitmaps = one mutable logical table.
class LiveTable {
 public:
  /// `base` must outlive this object (it is the engine's original table).
  explicit LiveTable(const Table* base);

  /// One published append batch: an immutable row chunk with its zone map
  /// (for pruning) and a live-row bitmap (1 = visible; deletes clear bits).
  struct DeltaChunk {
    Table rows;
    ZoneMap zones;
    BitVector live;
    uint64_t version = 0;  ///< MutationLog version that published the chunk
  };

  struct ApplyStats {
    uint64_t rows_appended = 0;
    uint64_t rows_deleted = 0;
  };

  /// Applies one batch: deletes first (over the currently visible rows),
  /// then publishes `rows` as a new delta chunk (empty `rows` publishes no
  /// chunk). `rows` must match the base schema.
  ApplyStats Apply(Table rows, const std::vector<Query>& deletes,
                   uint64_t version);

  /// The current physical base: the fold result if Fold() has run, else the
  /// original table.
  const Table& base() const { return folded_ ? *folded_ : *original_; }
  /// Live-row mask over base() (all ones until a delete lands).
  const BitVector& base_live() const { return base_live_; }
  /// True if any base row is tombstoned — when false the scan path can skip
  /// masking entirely.
  bool has_base_tombstones() const { return base_tombstones_ > 0; }

  const std::vector<DeltaChunk>& deltas() const { return deltas_; }

  /// Rows currently visible to queries.
  uint64_t visible_rows() const {
    return base().num_rows() - base_tombstones_ + delta_rows_ -
           delta_tombstones_;
  }
  /// Total physical delta rows (live + dead).
  uint64_t delta_rows() const { return delta_rows_; }
  /// Tombstoned base rows.
  uint64_t base_tombstones() const { return base_tombstones_; }
  /// Tombstoned delta rows.
  uint64_t delta_tombstones() const { return delta_tombstones_; }
  /// True once any mutation (append or delete) is pending un-folded.
  bool has_mutations() const {
    return !deltas_.empty() || base_tombstones_ > 0;
  }

  /// Fraction of physical rows that are mutation debt — delta rows plus
  /// tombstones over total physical rows. The engine folds when this
  /// crosses its threshold.
  double MutationFraction() const;

  /// Physical delta rows the query must scan: rows of chunks whose zone map
  /// cannot prove emptiness (the delta analogue of FractionAccessed's
  /// numerator; dead rows still count — they are scanned, just masked).
  uint64_t DeltaScanRows(const Query& query) const;

  /// Live delta rows matching `query` (kernel bitmap AND live mask).
  uint64_t CountDeltaMatches(const Query& query) const;

  /// Materializes the logical table: live base rows in row order, then live
  /// delta rows in chunk order. This is the canonical logical content — a
  /// rebuild-from-scratch engine over this table must answer every query
  /// identically (pinned by tests/ingest_equivalence_test.cc).
  Table BuildLogicalTable() const;

  /// Compacts into a fresh owned base (BuildLogicalTable order), clearing
  /// deltas and tombstones. visible_rows() is unchanged.
  void Fold();
  /// True once Fold() has replaced the original base.
  bool folded() const { return folded_ != nullptr; }

 private:
  const Table* original_;          // engine-owned, never mutated
  std::unique_ptr<Table> folded_;  // owned replacement base after Fold()
  BitVector base_live_;
  std::vector<DeltaChunk> deltas_;
  uint64_t base_tombstones_ = 0;
  uint64_t delta_rows_ = 0;
  uint64_t delta_tombstones_ = 0;
};

}  // namespace ingest
}  // namespace oreo

#endif  // OREO_INGEST_LIVE_TABLE_H_
