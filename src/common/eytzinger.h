// Branchless binary search over a BFS (Eytzinger) layout.
//
// A sorted boundary array probed with std::lower_bound takes a data-dependent
// branch per level; once the array outgrows L2, every misprediction stalls on
// a cache miss and flushes the pipeline. Laying the same keys out in BFS
// order turns the search into `k = 2k + (key[k] < x)` — a pure data
// dependency the CPU never has to predict — and makes the first few levels
// share cache lines. The LLTI benchmark (SNIPPETS.md, Snippet 3) measured
// 2-4.2x lower lookup latency from exactly this transform on 10M keys.
//
// LowerBound/UpperBound return the same *rank* (index into the original
// sorted array) as std::lower_bound/std::upper_bound, so callers can swap the
// two freely: the layout assigners and the shard router dispatch on
// simd::VectorEnabled() and are pinned bit-identical by tests/kernels_test.cc.
#ifndef OREO_COMMON_EYTZINGER_H_
#define OREO_COMMON_EYTZINGER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace oreo {

/// Immutable BFS-layout search index over a sorted array. `Less` must be the
/// same strict weak ordering the array was sorted with.
template <typename T, typename Less = std::less<T>>
class EytzingerIndex {
 public:
  EytzingerIndex() = default;

  /// Builds from `sorted` (ascending under `less`). O(n) time and space.
  explicit EytzingerIndex(const std::vector<T>& sorted, Less less = Less())
      : n_(sorted.size()),
        less_(less),
        keys_(sorted.size() + 1),
        rank_(sorted.size() + 1, 0) {
    size_t next = 0;
    Fill(sorted, 1, &next);
  }

  size_t size() const { return n_; }

  /// Rank of the first element >= x (n if none): equals
  /// std::lower_bound(sorted.begin(), sorted.end(), x, less) - begin.
  size_t LowerBound(const T& x) const {
    size_t k = 1;
    while (k <= n_) {
      Prefetch(k);
      k = 2 * k + static_cast<size_t>(less_(keys_[k], x));
    }
    return Resolve(k);
  }

  /// Rank of the first element > x (n if none): equals
  /// std::upper_bound(sorted.begin(), sorted.end(), x, less) - begin.
  size_t UpperBound(const T& x) const {
    size_t k = 1;
    while (k <= n_) {
      Prefetch(k);
      k = 2 * k + static_cast<size_t>(!less_(x, keys_[k]));
    }
    return Resolve(k);
  }

  /// Writes LowerBound(probes[i]) to ranks[i] for i in [0, m). Descends
  /// kBatchLanes independent searches in lockstep: on a RAM-resident array
  /// every level of a single search is a serialized cache miss, but misses
  /// of *different* probes are independent, so interleaving keeps several in
  /// flight at once. This is where the bulk-assignment win lives — single
  /// probes are latency-bound no matter how branchless the loop is.
  void LowerBoundBatch(const T* probes, size_t m, uint32_t* ranks) const {
    size_t i = 0;
    for (; i + kBatchLanes <= m; i += kBatchLanes) {
      size_t k[kBatchLanes];
      for (size_t l = 0; l < kBatchLanes; ++l) k[l] = 1;
      // The tree is complete, so all lanes reach a leaf within one level of
      // each other; the lockstep loop wastes at most one round per lane.
      bool live = n_ > 0;
      while (live) {
        live = false;
        for (size_t l = 0; l < kBatchLanes; ++l) {
          if (k[l] <= n_) {
            Prefetch(k[l]);
            k[l] = 2 * k[l] +
                   static_cast<size_t>(less_(keys_[k[l]], probes[i + l]));
            live |= k[l] <= n_;
          }
        }
      }
      for (size_t l = 0; l < kBatchLanes; ++l) {
        ranks[i + l] = static_cast<uint32_t>(Resolve(k[l]));
      }
    }
    for (; i < m; ++i) {
      ranks[i] = static_cast<uint32_t>(LowerBound(probes[i]));
    }
  }

 private:
  // Independent dependency chains kept in flight by LowerBoundBatch; sized
  // to the ~10 outstanding L1 misses current x86 cores sustain.
  static constexpr size_t kBatchLanes = 8;

  // In-order fill: BFS slot k receives the next sorted element, so subtree
  // ordering matches the sorted array and rank_[k] records its position.
  void Fill(const std::vector<T>& sorted, size_t k, size_t* next) {
    if (k > n_) return;
    Fill(sorted, 2 * k, next);
    keys_[k] = sorted[*next];
    rank_[k] = static_cast<uint32_t>(*next);
    ++(*next);
    Fill(sorted, 2 * k + 1, next);
  }

  // Warm the great-great-grandchildren's cache line while the comparison
  // chain works down to them (16 = 2^4 slots ahead). The bounds check is a
  // predictable branch (taken until the last levels), unlike the search.
  void Prefetch(size_t k) const {
    if (16 * k < keys_.size()) __builtin_prefetch(&keys_[16 * k]);
  }

  // After the descent, k's trailing 1-bits are the right-turns taken since
  // the answer node was last visited; cancelling them (plus one left-turn)
  // recovers that node. k == 0 means every comparison went right: no element
  // satisfies the bound, i.e. rank n.
  size_t Resolve(size_t k) const {
    k >>= static_cast<unsigned>(
        __builtin_ffsll(static_cast<long long>(~k)));
    return k == 0 ? n_ : rank_[k];
  }

  size_t n_ = 0;
  Less less_{};
  std::vector<T> keys_;      // 1-based BFS order; keys_[0] unused
  std::vector<uint32_t> rank_;  // sorted-array position of keys_[k]
};

}  // namespace oreo

#endif  // OREO_COMMON_EYTZINGER_H_
