// Status / Result: lightweight error propagation without exceptions, in the
// style of Arrow/RocksDB. Fallible APIs return Status (or Result<T>); internal
// invariant violations use the CHECK macros from logging.h.
#ifndef OREO_COMMON_STATUS_H_
#define OREO_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace oreo {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kNotImplemented,
  kInternal,
  kUnavailable,       ///< transient failure; retrying the same op may succeed
  kDeadlineExceeded,  ///< the caller's deadline passed before completion
};

/// Returns a human-readable name for a status code (e.g. "Corruption").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error: holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace oreo

/// Propagates a non-OK Status to the caller.
#define OREO_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::oreo::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define OREO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define OREO_ASSIGN_OR_RETURN(lhs, expr) \
  OREO_ASSIGN_OR_RETURN_IMPL(OREO_CONCAT_(_res_, __LINE__), lhs, expr)
#define OREO_CONCAT_(a, b) OREO_CONCAT2_(a, b)
#define OREO_CONCAT2_(a, b) a##b

#endif  // OREO_COMMON_STATUS_H_
