// Kernel dispatch for the data-parallel hot paths (predicate bitmaps in
// query/kernels.h, block codec decode in storage/codec.cc, Eytzinger layout
// lookups in layout/ and storage/shard_router.cc).
//
// Every vectorized kernel keeps its scalar reference implementation and the
// two sides are bit-identical — same match counts, same decoded bytes, same
// partition assignments — so flipping the dispatch can never change a
// decision, a trace, or a file CRC (pinned by tests/kernels_test.cc and the
// kernel-mode case of the parallel equivalence wall). The dispatch resolves,
// in order:
//
//   1. the OREO_FORCE_SCALAR=1 environment variable (wins over everything;
//      the CI forced-scalar job runs the whole suite under it),
//   2. the process-wide mode set by SetGlobalKernelMode — OreoOptions::
//      kernel_mode applies itself here at engine construction,
//   3. kAuto: vectorized kernels run, using the widest instruction set the
//      build and the CPU both support (AVX2 when available, otherwise
//      portable word-at-a-time branchless code the compiler auto-vectorizes).
#ifndef OREO_COMMON_SIMD_H_
#define OREO_COMMON_SIMD_H_

#include <cstdint>

namespace oreo {
namespace simd {

/// Which implementation the data-parallel kernels dispatch to.
enum class KernelMode : uint8_t {
  kAuto = 0,    ///< vectorized kernels unless OREO_FORCE_SCALAR=1
  kScalar = 1,  ///< scalar reference implementations everywhere
  kVector = 2,  ///< vectorized kernels (env override still wins)
};

const char* KernelModeName(KernelMode m);

/// Process-wide kernel mode (default kAuto). Thread-safe; results are
/// bit-identical in every mode, so flipping it mid-run is benign.
void SetGlobalKernelMode(KernelMode m);
KernelMode GlobalKernelMode();

/// True when the OREO_FORCE_SCALAR environment variable pins the scalar
/// reference implementations (read once, cached for the process lifetime).
bool ForceScalarEnv();

/// True when the vectorized kernels should run: env override, then mode.
bool VectorEnabled();

/// True when the AVX2 kernel translation unit is built in AND the CPU
/// reports AVX2 support at runtime.
bool HasAvx2();

/// Human-readable dispatch state, e.g. "avx2", "portable", "scalar(env)",
/// "scalar(mode)" — recorded by bench/micro_kernels.
const char* DispatchDescription();

}  // namespace simd
}  // namespace oreo

#endif  // OREO_COMMON_SIMD_H_
