// Seeded pseudo-random number generation used throughout the library.
// All randomized components (the D-UMTS reorganizer, workload generators,
// samplers) take an explicit Rng so that every experiment is reproducible.
#ifndef OREO_COMMON_RNG_H_
#define OREO_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace oreo {

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Deterministic given the seed; suitable for simulation, not cryptography.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Geometric number of trials until first success, >= 1, success prob p.
  int64_t Geometric(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Zipf-distributed integer in [0, n) with exponent theta >= 0
  /// (theta = 0 is uniform). Uses inverse-CDF over precomputable weights;
  /// O(n) per call without state, so intended for small n (e.g. picking
  /// templates or categories).
  int64_t Zipf(int64_t n, double theta);

  /// Samples an index from non-negative weights (sum > 0).
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for parallel components that must
  /// not share a stream).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace oreo

#endif  // OREO_COMMON_RNG_H_
