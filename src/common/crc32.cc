#include "common/crc32.h"

namespace oreo {

namespace {
// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      table[i] = crc;
    }
  }
};
const Crc32cTable g_table;
}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ g_table.table[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace oreo
