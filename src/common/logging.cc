#include "common/logging.h"

#include <atomic>

namespace oreo {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (void)level_;
  std::cerr << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace oreo
