// Wall-clock stopwatch for the physical benchmarks (Figure 3, Table I).
#ifndef OREO_COMMON_STOPWATCH_H_
#define OREO_COMMON_STOPWATCH_H_

#include <chrono>

namespace oreo {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oreo

#endif  // OREO_COMMON_STOPWATCH_H_
