#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace oreo {

// One ParallelFor call: workers (and the caller) claim indices with a
// single fetch_add until `next` reaches `n`; the last finisher takes the
// mutex and signals done. Claims stay lock-free so fine-grained tasks (one
// QueryCost each in the layout manager) are not serialized on a lock.
struct ThreadPool::Batch {
  size_t n = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};       // first unclaimed index (may overshoot n)
  std::atomic<size_t> completed{0};  // finished fn() calls
  std::mutex mu;                     // guards the done_cv wait only
  std::condition_variable done_cv;
};

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  // With one thread, ParallelFor runs inline on the caller; spawning a
  // worker would only add wakeup latency.
  if (num_threads_ < 2) return;
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    OREO_CHECK(queue_.empty()) << "ThreadPool destroyed with work in flight";
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    size_t index = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch->n) return;
    (*batch->fn)(index);
    // Release pairs with the waiter's acquire load, so every task's writes
    // are visible to the ParallelFor caller when it wakes.
    size_t done = batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == batch->n) {
      // Take the mutex before notifying: the waiter checks the predicate
      // under it, so this cannot slip between its check and its sleep.
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->done_cv.notify_all();
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with no pending work
      batch = queue_.front();
      // Leave the batch queued so other idle workers can join it; it is
      // retracted once fully claimed (below, or by the ParallelFor caller).
    }
    RunBatch(batch.get());
    {
      // No unclaimed indices remain (RunBatch returned), so the batch must
      // not be handed to further workers.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = std::find(queue_.begin(), queue_.end(), batch);
      if (it != queue_.end()) queue_.erase(it);
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ < 2 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();
  // The caller works too: guarantees progress even if every worker is tied
  // up in another caller's batch, and saves a context switch for small n.
  RunBatch(batch.get());
  {
    // Retract the batch before waiting: all indices are claimed, so no new
    // worker should pick it up.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(queue_.begin(), queue_.end(), batch);
    if (it != queue_.end()) queue_.erase(it);
  }
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] {
    return batch->completed.load(std::memory_order_acquire) == batch->n;
  });
}

}  // namespace oreo
