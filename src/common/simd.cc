#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace oreo {
namespace simd {

namespace {

std::atomic<KernelMode> g_mode{KernelMode::kAuto};

bool ReadForceScalarEnv() {
  const char* env = std::getenv("OREO_FORCE_SCALAR");
  if (env == nullptr || *env == '\0') return false;
  // "0" / "false" / "off" disable; anything else enables.
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
         std::strcmp(env, "off") != 0;
}

}  // namespace

const char* KernelModeName(KernelMode m) {
  switch (m) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kVector:
      return "vector";
  }
  return "?";
}

void SetGlobalKernelMode(KernelMode m) {
  g_mode.store(m, std::memory_order_relaxed);
}

KernelMode GlobalKernelMode() { return g_mode.load(std::memory_order_relaxed); }

bool ForceScalarEnv() {
  static const bool force = ReadForceScalarEnv();
  return force;
}

bool VectorEnabled() {
  if (ForceScalarEnv()) return false;
  return GlobalKernelMode() != KernelMode::kScalar;
}

bool HasAvx2() {
#if defined(OREO_WITH_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

const char* DispatchDescription() {
  if (ForceScalarEnv()) return "scalar(env)";
  if (GlobalKernelMode() == KernelMode::kScalar) return "scalar(mode)";
  return HasAvx2() ? "avx2" : "portable";
}

}  // namespace simd
}  // namespace oreo
