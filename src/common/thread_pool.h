// Fixed-size worker pool shared by the physical engine and the layout
// manager. The design goal is determinism, not just speed: every parallel
// hot path in the engine follows the same recipe —
//
//   1. compute a work list serially (so the set and order of items is
//      identical at any thread count),
//   2. ParallelFor over the items, each task writing only into its own
//      pre-sized output slot (no shared accumulators),
//   3. reduce the staged outputs serially in item order (so floating-point
//      sums and error selection see the exact same sequence as a serial run).
//
// Under this contract, results are bit-identical for any pool size,
// including the degenerate single-thread pool (which runs tasks inline on
// the calling thread, making `num_threads = 1` the serial baseline the
// equivalence tests compare against).
#ifndef OREO_COMMON_THREAD_POOL_H_
#define OREO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace oreo {

/// A fixed set of worker threads executing queued tasks. One pool instance
/// may serve many concurrent ParallelFor callers (each caller participates
/// in its own batch); the pool itself is thread-safe.
class ThreadPool {
 public:
  /// `num_threads == 0` means one thread per hardware core; `1` creates no
  /// workers at all (ParallelFor runs inline). See ResolveThreads.
  explicit ThreadPool(size_t num_threads);
  /// Drains the queue and joins the workers. Outstanding ParallelFor calls
  /// must have returned before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The resolved thread count (>= 1; 1 means inline execution).
  size_t num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every i in [0, n) and blocks until all calls have
  /// returned. Indices are claimed dynamically, so which thread runs which
  /// index is nondeterministic — callers must stage results per index and
  /// reduce in index order (see the determinism recipe above). The calling
  /// thread participates, so the pool makes progress even when all workers
  /// are busy with another caller's tasks. `fn` must not call ParallelFor
  /// on the same pool (no nesting) and must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Maps the user-facing `num_threads` knob to a concrete count:
  /// 0 -> std::thread::hardware_concurrency() (at least 1), else unchanged.
  static size_t ResolveThreads(size_t requested);

 private:
  struct Batch;  // one ParallelFor invocation

  // Runs claimed indices of `batch` until none remain; the last finisher
  // signals the batch's done_cv. Shared by workers and the caller.
  static void RunBatch(Batch* batch);

  void WorkerLoop();

  const size_t num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers
  // Batches that may still have unclaimed indices. Shared ownership keeps a
  // batch alive for any worker that grabbed it moments before the caller
  // retracted it.
  std::vector<std::shared_ptr<Batch>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace oreo

#endif  // OREO_COMMON_THREAD_POOL_H_
