// Minimal leveled logging plus CHECK macros for internal invariants.
// CHECK failures abort: they indicate programmer errors, not runtime errors
// (runtime errors flow through Status).
#ifndef OREO_COMMON_LOGGING_H_
#define OREO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace oreo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level for emitted log lines (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Accumulates a message and aborts the process in the destructor.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace oreo

#define OREO_LOG(level)                                                \
  if (::oreo::LogLevel::k##level < ::oreo::GetLogLevel()) {            \
  } else                                                               \
    ::oreo::internal::LogMessage(::oreo::LogLevel::k##level, __FILE__, \
                                 __LINE__)                             \
        .stream()

#define OREO_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else                                                              \
    ::oreo::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define OREO_CHECK_OK(expr)                                              \
  do {                                                                   \
    ::oreo::Status _st = (expr);                                         \
    OREO_CHECK(_st.ok()) << _st.ToString();                              \
  } while (0)

#define OREO_CHECK_EQ(a, b) OREO_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define OREO_CHECK_NE(a, b) OREO_CHECK((a) != (b))
#define OREO_CHECK_LT(a, b) OREO_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define OREO_CHECK_LE(a, b) OREO_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define OREO_CHECK_GT(a, b) OREO_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define OREO_CHECK_GE(a, b) OREO_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define OREO_DCHECK(cond) OREO_CHECK(cond)
#else
#define OREO_DCHECK(cond) \
  if (true) {             \
  } else                  \
    ::oreo::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()
#endif

#endif  // OREO_COMMON_LOGGING_H_
