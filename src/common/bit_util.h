// Bit manipulation helpers, including Morton (Z-order) encoding used by the
// Z-order layout generator.
#ifndef OREO_COMMON_BIT_UTIL_H_
#define OREO_COMMON_BIT_UTIL_H_

#include <cstdint>
#include <vector>

namespace oreo {
namespace bit_util {

/// Spreads the low 21 bits of x so that bit i lands at position 3*i
/// (helper for 3-column Morton interleave).
uint64_t SpreadBits3(uint64_t x);

/// Spreads the low 32 bits of x so that bit i lands at position 2*i.
uint64_t SpreadBits2(uint64_t x);

/// Interleaves the low bits of the given per-dimension ranks into a single
/// Morton code. Supports 1..8 dimensions; `bits_per_dim` values above the
/// representable budget (64 / dims) are truncated from the high end.
/// Dimension 0 contributes the most significant interleaved bits.
uint64_t MortonEncode(const std::vector<uint32_t>& ranks, int bits_per_dim);

/// Number of set bits.
int PopCount(uint64_t x);

/// Ceil(log2(x)) for x >= 1; returns 0 for x == 1.
int CeilLog2(uint64_t x);

/// Rounds up to the next power of two (returns 1 for 0).
uint64_t NextPow2(uint64_t x);

}  // namespace bit_util
}  // namespace oreo

#endif  // OREO_COMMON_BIT_UTIL_H_
