#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oreo {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double NormalizedL1(const std::vector<double>& a,
                    const std::vector<double>& b) {
  OREO_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total / static_cast<double>(a.size());
}

double Median(std::vector<double> values) { return Quantile(std::move(values), 0.5); }

}  // namespace oreo
