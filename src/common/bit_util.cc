#include "common/bit_util.h"

#include "common/logging.h"

namespace oreo {
namespace bit_util {

uint64_t SpreadBits3(uint64_t x) {
  x &= 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

uint64_t SpreadBits2(uint64_t x) {
  x &= 0xffffffffULL;  // 32 bits
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint64_t MortonEncode(const std::vector<uint32_t>& ranks, int bits_per_dim) {
  const int dims = static_cast<int>(ranks.size());
  OREO_CHECK(dims >= 1 && dims <= 8);
  int usable = 64 / dims;
  if (bits_per_dim > usable) bits_per_dim = usable;
  if (dims == 2) {
    uint64_t a = ranks[0] & ((bits_per_dim >= 32) ? 0xffffffffULL
                                                  : ((1ULL << bits_per_dim) - 1));
    uint64_t b = ranks[1] & ((bits_per_dim >= 32) ? 0xffffffffULL
                                                  : ((1ULL << bits_per_dim) - 1));
    return (SpreadBits2(a) << 1) | SpreadBits2(b);
  }
  if (dims == 3) {
    uint64_t mask = (bits_per_dim >= 21) ? 0x1fffffULL
                                         : ((1ULL << bits_per_dim) - 1);
    return (SpreadBits3(ranks[0] & mask) << 2) |
           (SpreadBits3(ranks[1] & mask) << 1) | SpreadBits3(ranks[2] & mask);
  }
  // Generic path: bit-by-bit interleave, MSB first.
  uint64_t code = 0;
  for (int bit = bits_per_dim - 1; bit >= 0; --bit) {
    for (int d = 0; d < dims; ++d) {
      code = (code << 1) | ((ranks[d] >> bit) & 1ULL);
    }
  }
  return code;
}

int PopCount(uint64_t x) { return __builtin_popcountll(x); }

int CeilLog2(uint64_t x) {
  OREO_DCHECK(x >= 1);
  if (x <= 1) return 0;
  return 64 - __builtin_clzll(x - 1);
}

uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return 1ULL << CeilLog2(x);
}

}  // namespace bit_util
}  // namespace oreo
