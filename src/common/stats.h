// Small streaming statistics helpers used by benchmark reporting
// (mean/stddev for Table I rows, cumulative cost traces for Figure 4).
#ifndef OREO_COMMON_STATS_H_
#define OREO_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace oreo {

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by sorting a copy.
/// Linear interpolation between order statistics; 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Normalized L1 distance between two equal-length vectors:
///   sum_i |a_i - b_i| / n.
/// This is the data-layout distance used by Algorithm 5 (ADMIT STATE).
double NormalizedL1(const std::vector<double>& a, const std::vector<double>& b);

/// Median of a vector (by copy); 0 for empty input.
double Median(std::vector<double> values);

}  // namespace oreo

#endif  // OREO_COMMON_STATS_H_
