// CRC-32C (Castagnoli) used to checksum on-disk partition blocks, so the
// block reader can detect corruption (bit flips, truncation) as RocksDB and
// Parquet readers do.
#ifndef OREO_COMMON_CRC32_H_
#define OREO_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace oreo {

/// Computes CRC-32C over `data[0, n)` starting from `init` (pass 0 for a
/// fresh checksum; pass a previous return value to extend it).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

}  // namespace oreo

#endif  // OREO_COMMON_CRC32_H_
