// Dense fixed-size bit vector with fast intersection primitives. Used by the
// greedy Qd-tree builder to evaluate split gains over sample-row sets, and as
// the selection-bitmap type of the vectorized predicate kernels
// (query/kernels.h): kernels fill whole words at a time through
// mutable_words(), conjuncts combine with AndAssign, CountMatches is Count()
// (popcount) and row-id extraction is ToIndices() (branchless ctz walk).
#ifndef OREO_COMMON_BITVECTOR_H_
#define OREO_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace oreo {

/// Fixed-length bit vector (length set at construction).
class BitVector {
 public:
  explicit BitVector(size_t n)
      : n_(n), words_((n + 63) / 64, 0) {}

  size_t size() const { return n_; }

  void Set(size_t i) {
    OREO_DCHECK(i < n_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void Reset(size_t i) {
    OREO_DCHECK(i < n_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool Get(size_t i) const {
    OREO_DCHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// True if (*this & other) has any set bit. Early-exits.
  bool Intersects(const BitVector& other) const {
    OREO_DCHECK(n_ == other.n_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// out = *this & other. `out` must have the same length.
  void AndInto(const BitVector& other, BitVector* out) const {
    OREO_DCHECK(n_ == other.n_ && n_ == out->n_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out->words_[i] = words_[i] & other.words_[i];
    }
  }

  /// *this &= other.
  void AndAssign(const BitVector& other) {
    OREO_DCHECK(n_ == other.n_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// *this |= other.
  void OrAssign(const BitVector& other) {
    OREO_DCHECK(n_ == other.n_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// Sets every bit (the tail bits past n stay clear, so Count() == n).
  void SetAll() {
    if (words_.empty()) return;
    for (uint64_t& w : words_) w = ~0ULL;
    const size_t tail = n_ & 63;
    if (tail != 0) words_.back() = (1ULL << tail) - 1;
  }

  /// Clears every bit.
  void ClearAll() {
    for (uint64_t& w : words_) w = 0;
  }

  // Word-level access for the vectorized kernels. Word i covers bits
  // [64*i, 64*i + 63]; writers must keep the tail bits of the last word
  // clear (Count()/ToIndices() assume it).
  size_t num_words() const { return words_.size(); }
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  /// out = *this & ~other.
  void AndNotInto(const BitVector& other, BitVector* out) const {
    OREO_DCHECK(n_ == other.n_ && n_ == out->n_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out->words_[i] = words_[i] & ~other.words_[i];
    }
  }

  /// Indices of set bits, ascending.
  std::vector<uint32_t> ToIndices() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
    return out;
  }

 private:
  size_t n_;
  std::vector<uint64_t> words_;
};

}  // namespace oreo

#endif  // OREO_COMMON_BITVECTOR_H_
