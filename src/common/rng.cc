#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace oreo {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  OREO_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = (*this)();
  } while (r < threshold);
  return r % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  OREO_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int64_t Rng::Geometric(double p) {
  OREO_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u = UniformDouble();
  // Inverse CDF of the trials-until-success geometric.
  return 1 + static_cast<int64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double lambda) {
  OREO_DCHECK(lambda > 0.0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  OREO_DCHECK(n > 0);
  if (theta <= 0.0) return static_cast<int64_t>(Uniform(n));
  double total = 0.0;
  for (int64_t i = 1; i <= n; ++i) total += 1.0 / std::pow(i, theta);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(i, theta);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    OREO_DCHECK(w >= 0.0);
    total += w;
  }
  OREO_CHECK(total > 0.0) << "Discrete() requires a positive total weight";
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng((*this)() ^ 0xa0761d6478bd642fULL); }

}  // namespace oreo
