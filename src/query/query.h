// A query: a conjunction of predicates over one table, with workload
// bookkeeping (arrival order, originating template) used by the workload
// generators and the evaluation harness.
#ifndef OREO_QUERY_QUERY_H_
#define OREO_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "storage/metadata_io.h"
#include "storage/partitioning.h"

namespace oreo {

/// A conjunctive filter query. An empty conjunct list is a full scan.
struct Query {
  int64_t id = 0;           ///< arrival position in the stream
  int template_id = -1;     ///< originating workload template (-1 = unknown)
  std::vector<Predicate> conjuncts;

  /// True if row `row` of `table` satisfies all conjuncts.
  bool Matches(const Table& table, uint32_t row) const;

  /// True if the zone map proves no row of the partition matches
  /// (any conjunct proving emptiness suffices).
  bool CanSkipPartition(const ZoneMap& zone) const;

  std::string ToString(const Schema* schema = nullptr) const;
};

/// Number of rows among `row_ids` that match `query` (full scan within a
/// partition; used by the physical engine and by selectivity estimation).
uint64_t CountMatches(const Table& table, const std::vector<uint32_t>& row_ids,
                      const Query& query);

/// Number of matching rows over the whole table.
uint64_t CountMatches(const Table& table, const Query& query);

/// Fraction of matching rows in a sample table (selectivity estimate).
double EstimateSelectivity(const Table& sample, const Query& query);

/// The paper's query cost c(s, q): fraction of rows residing in partitions
/// that zone-map pruning cannot skip, in [0, 1].
double FractionAccessed(const Partitioning& partitioning, const Query& query);

/// c(s, q) evaluated from persisted partition metadata alone — identical to
/// FractionAccessed over the original partitioning.
double FractionAccessedFromMetadata(const PartitionMetadata& meta,
                                    const Query& query);

/// Ids of partitions that must be read for `query` (the "BID list").
std::vector<uint32_t> PartitionsToRead(const Partitioning& partitioning,
                                       const Query& query);

/// A group of queries admitted to the framework in one step, in stream
/// order. Batching changes *when* work is scheduled, never *what* is
/// decided: consumers (Oreo::RunBatch, PhysicalStore::ExecuteQueryBatch)
/// guarantee results bit-identical to feeding the queries one at a time.
struct QueryBatch {
  std::vector<Query> queries;

  QueryBatch() = default;
  explicit QueryBatch(std::vector<Query> qs) : queries(std::move(qs)) {}

  size_t size() const { return queries.size(); }
  bool empty() const { return queries.empty(); }
};

/// Splits a stream into consecutive batches of at most `batch_size` queries
/// (the last batch may be short). Precondition: batch_size > 0.
std::vector<QueryBatch> MakeBatches(const std::vector<Query>& stream,
                                    size_t batch_size);

}  // namespace oreo

#endif  // OREO_QUERY_QUERY_H_
