// Aggregate evaluation over filtered scans. The paper's query templates are
// SQL aggregates (q1 pricing summary, q6 revenue forecast, ...); the cost
// model only needs the fraction of data accessed, but a usable engine must
// also produce the answers. Aggregates run over the rows that survive the
// query's conjuncts.
#ifndef OREO_QUERY_AGGREGATE_H_
#define OREO_QUERY_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "storage/table.h"

namespace oreo {

/// Supported aggregate functions.
enum class AggOp : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggOpName(AggOp op);

/// One aggregate to compute: op over `column` (column ignored for kCount).
struct AggSpec {
  AggOp op = AggOp::kCount;
  int column = -1;
};

/// Result of one aggregate. kCount reports into `count`; numeric aggregates
/// report into `value` (int columns are widened to double). For empty inputs
/// kSum is 0, kMin/kMax/kAvg report `valid = false`.
struct AggResult {
  AggOp op;
  double value = 0.0;
  int64_t count = 0;
  bool valid = true;

  std::string ToString() const;
};

/// Streaming aggregate accumulator: feed rows from any number of partitions,
/// then Finish(). Mirrors how a scan operator folds partition blocks.
class Aggregator {
 public:
  explicit Aggregator(std::vector<AggSpec> specs);

  /// Folds every row of `table` that matches `query` (evaluated against
  /// `table`'s own schema — remap predicate columns for projected blocks).
  void Consume(const Table& table, const Query& query);

  /// Folds the given rows unconditionally.
  void ConsumeRows(const Table& table, const std::vector<uint32_t>& rows);

  std::vector<AggResult> Finish() const;
  int64_t rows_seen() const { return rows_seen_; }

 private:
  void FoldRow(const Table& table, uint32_t row);

  std::vector<AggSpec> specs_;
  std::vector<double> sums_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
  std::vector<int64_t> counts_;
  int64_t rows_seen_ = 0;
};

/// One-shot convenience: aggregates over a whole table.
std::vector<AggResult> RunAggregates(const Table& table, const Query& query,
                                     const std::vector<AggSpec>& specs);

}  // namespace oreo

#endif  // OREO_QUERY_AGGREGATE_H_
