#include "query/predicate.h"

#include <string_view>

#include "common/logging.h"

namespace oreo {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
    case CompareOp::kIn:
      return "IN";
  }
  return "?";
}

Predicate Predicate::Eq(int col, Value v) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kEq;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::Lt(int col, Value v) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kLt;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::Le(int col, Value v) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kLe;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::Gt(int col, Value v) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kGt;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::Ge(int col, Value v) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kGe;
  p.value = std::move(v);
  return p;
}

Predicate Predicate::Between(int col, Value lo, Value hi) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kBetween;
  p.value = std::move(lo);
  p.value2 = std::move(hi);
  return p;
}

Predicate Predicate::In(int col, std::vector<Value> values) {
  Predicate p;
  p.column = col;
  p.op = CompareOp::kIn;
  p.in_list = std::move(values);
  return p;
}

namespace {

// Typed comparison without materializing a Value per cell — this is the
// hottest loop in the system (row routing, selectivity estimation, physical
// scans all funnel through it).
template <typename T, typename Get>
bool MatchesTyped(const Predicate& p, const Get& get, const T& cell) {
  switch (p.op) {
    case CompareOp::kEq:
      return cell == get(p.value);
    case CompareOp::kLt:
      return cell < get(p.value);
    case CompareOp::kLe:
      return cell <= get(p.value);
    case CompareOp::kGt:
      return cell > get(p.value);
    case CompareOp::kGe:
      return cell >= get(p.value);
    case CompareOp::kBetween:
      return get(p.value) <= cell && cell <= get(p.value2);
    case CompareOp::kIn:
      for (const Value& v : p.in_list) {
        if (cell == get(v)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool Predicate::Matches(const Table& table, uint32_t row) const {
  OREO_DCHECK(column >= 0 &&
              static_cast<size_t>(column) < table.num_columns());
  const Column& col = table.column(static_cast<size_t>(column));
  switch (col.type()) {
    case DataType::kInt64:
      return MatchesTyped<int64_t>(
          *this, [](const Value& v) { return v.AsInt64(); },
          col.GetInt64(row));
    case DataType::kDouble:
      return MatchesTyped<double>(
          *this, [](const Value& v) { return v.AsDouble(); },
          col.GetDouble(row));
    case DataType::kString:
      return MatchesTyped<std::string_view>(
          *this,
          [](const Value& v) { return std::string_view(v.AsString()); },
          std::string_view(col.GetString(row)));
  }
  return false;
}

namespace {

// Numeric [min,max] interval of a zone for int64/double columns.
struct NumericBounds {
  double lo;
  double hi;
};

NumericBounds BoundsOf(const ColumnZone& zone) {
  if (zone.type == DataType::kInt64) {
    return {static_cast<double>(zone.int_min), static_cast<double>(zone.int_max)};
  }
  return {zone.dbl_min, zone.dbl_max};
}

}  // namespace

bool Predicate::ProvesEmpty(const ColumnZone& zone) const {
  if (zone.empty) return true;  // empty partition: trivially skippable

  if (zone.type == DataType::kString) {
    // String comparisons are lexicographic on [str_min, str_max], plus exact
    // membership when the distinct set did not overflow.
    switch (op) {
      case CompareOp::kEq: {
        const std::string& v = value.AsString();
        if (v < zone.str_min || v > zone.str_max) return true;
        if (!zone.distinct_overflow) return zone.distinct.count(v) == 0;
        return false;
      }
      case CompareOp::kIn: {
        for (const Value& v : in_list) {
          const std::string& s = v.AsString();
          if (s < zone.str_min || s > zone.str_max) continue;
          if (!zone.distinct_overflow) {
            if (zone.distinct.count(s) > 0) return false;
            continue;
          }
          return false;  // possibly present
        }
        return true;
      }
      case CompareOp::kLt:
        return zone.str_min >= value.AsString();
      case CompareOp::kLe:
        return zone.str_min > value.AsString();
      case CompareOp::kGt:
        return zone.str_max <= value.AsString();
      case CompareOp::kGe:
        return zone.str_max < value.AsString();
      case CompareOp::kBetween:
        return zone.str_max < value.AsString() ||
               zone.str_min > value2.AsString();
    }
    return false;
  }

  const NumericBounds b = BoundsOf(zone);
  switch (op) {
    case CompareOp::kEq: {
      double v = value.AsNumeric();
      return v < b.lo || v > b.hi;
    }
    case CompareOp::kLt:
      return b.lo >= value.AsNumeric();
    case CompareOp::kLe:
      return b.lo > value.AsNumeric();
    case CompareOp::kGt:
      return b.hi <= value.AsNumeric();
    case CompareOp::kGe:
      return b.hi < value.AsNumeric();
    case CompareOp::kBetween:
      return b.hi < value.AsNumeric() || b.lo > value2.AsNumeric();
    case CompareOp::kIn: {
      for (const Value& v : in_list) {
        double x = v.AsNumeric();
        if (x >= b.lo && x <= b.hi) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Predicate::ToString(const Schema* schema) const {
  std::string col_name =
      (schema != nullptr && column >= 0 &&
       static_cast<size_t>(column) < schema->num_fields())
          ? schema->field(static_cast<size_t>(column)).name
          : "col" + std::to_string(column);
  switch (op) {
    case CompareOp::kBetween:
      return col_name + " BETWEEN " + value.ToString() + " AND " +
             value2.ToString();
    case CompareOp::kIn: {
      std::string out = col_name + " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i].ToString();
      }
      return out + ")";
    }
    default:
      return col_name + " " + CompareOpName(op) + " " + value.ToString();
  }
}

}  // namespace oreo
