// Predicates: the building blocks of queries and of Qd-tree cuts.
// A predicate constrains a single column; a Query (query.h) is a conjunction
// of predicates, mirroring the filter shapes used for data skipping in the
// paper (range predicates, equality, IN-lists; Figure 2).
#ifndef OREO_QUERY_PREDICATE_H_
#define OREO_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "catalog/value.h"
#include "storage/table.h"
#include "storage/zone_map.h"

namespace oreo {

/// Comparison operator of a predicate.
enum class CompareOp : uint8_t {
  kEq = 0,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,  ///< inclusive [lo, hi]; uses `value` and `value2`
  kIn,       ///< membership in `in_list`
};

const char* CompareOpName(CompareOp op);

/// A single-column filter.
struct Predicate {
  int column = -1;  ///< field index in the table schema
  CompareOp op = CompareOp::kEq;
  Value value;                 ///< operand (lo for kBetween)
  Value value2;                ///< hi for kBetween
  std::vector<Value> in_list;  ///< operands for kIn

  // --- convenience constructors ---
  static Predicate Eq(int col, Value v);
  static Predicate Lt(int col, Value v);
  static Predicate Le(int col, Value v);
  static Predicate Gt(int col, Value v);
  static Predicate Ge(int col, Value v);
  static Predicate Between(int col, Value lo, Value hi);
  static Predicate In(int col, std::vector<Value> values);

  /// True if row `row` of `table` satisfies this predicate.
  bool Matches(const Table& table, uint32_t row) const;

  /// True if the zone metadata proves that *no* row in the partition can
  /// satisfy this predicate (i.e. the partition may be skipped on account of
  /// this conjunct). Conservative: false when unsure.
  bool ProvesEmpty(const ColumnZone& zone) const;

  /// Display form, e.g. "col3 BETWEEN 10 AND 20".
  std::string ToString(const Schema* schema = nullptr) const;
};

}  // namespace oreo

#endif  // OREO_QUERY_PREDICATE_H_
