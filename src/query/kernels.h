// Data-parallel scan kernels: columnar predicate evaluation producing
// selection bitmaps, bitmap AND across conjuncts, popcount match counting,
// and branchless row-id compaction.
//
// These are THE predicate-evaluation entry points — query::CountMatches, the
// PhysicalStore batch scan and Aggregator::Consume all funnel through here,
// so there is exactly one scalar reference loop and one vectorized
// implementation in the system. Dispatch (common/simd.h) picks between them
// at runtime; both sides are bit-identical for every input (match counts,
// bitmap words, row-id lists), pinned by tests/kernels_test.cc.
//
// The vectorized path fixes the two classic row-at-a-time sins: it fetches
// each referenced column once per (predicate, chunk) — never dereferencing
// Table/Column accessors per row — and evaluates each conjunct over the
// column's flat array into a BitVector, 64 rows per output word. Int64
// predicates normalize to one inclusive [lo, hi] range kernel; doubles get
// per-operator compare kernels (NaN semantics identical to the scalar `<`);
// string predicates evaluate once per dictionary entry and map codes through
// the resulting table. An AVX2 translation unit (kernels_avx2.cc, runtime
// cpuid-gated) accelerates the int64/double compares where the build and CPU
// support it; the portable word-at-a-time fallback is branchless and
// auto-vectorizable.
#ifndef OREO_QUERY_KERNELS_H_
#define OREO_QUERY_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "query/query.h"
#include "storage/table.h"

namespace oreo {

/// Match bitmap of a single predicate over all rows of `table`.
BitVector EvalPredicateBitmap(const Table& table, const Predicate& p);

/// Match bitmap of `query` (AND across conjuncts; all-ones when the query
/// has no conjuncts — a full scan matches every row).
BitVector EvalQueryBitmap(const Table& table, const Query& query);

/// Number of matching rows (popcount of the query bitmap). This is the
/// kernel behind query::CountMatches.
uint64_t KernelCountMatches(const Table& table, const Query& query);

/// Number of matches among `row_ids` only.
uint64_t KernelCountMatches(const Table& table,
                            const std::vector<uint32_t>& row_ids,
                            const Query& query);

/// Number of matches among rows whose `mask` bit is set — one word-AND of
/// the query bitmap with the mask, never a per-row branch. This is the
/// tombstone-respecting count of the live-ingest scan path (the mask is a
/// partition's live-row bitmap; see src/ingest/live_table.h). `mask` must
/// have exactly table.num_rows() bits. Note the mask applies through the
/// bitmap in every dispatch mode, so scalar and vectorized results stay
/// bit-identical.
uint64_t KernelCountMatchesMasked(const Table& table, const Query& query,
                                  const BitVector& mask);

/// Ids of matching rows, ascending (branchless compaction of the bitmap).
std::vector<uint32_t> KernelMatchingRowIds(const Table& table,
                                           const Query& query);

namespace kernel_detail {

// Word-filling primitives shared by the portable and AVX2 backends. Each
// fills words[0 .. ceil(n/64)) with one match bit per row; tail bits of the
// last word are left clear.

/// bit i = (lo <= v[i] && v[i] <= hi). Every int64 comparison operator
/// normalizes to such a range (an empty range lo > hi yields all-zero).
void Int64RangeWordsPortable(const int64_t* v, size_t n, int64_t lo,
                             int64_t hi, uint64_t* words);

/// Double comparison shapes (a = operand; b = upper bound for kBetween).
enum class DoubleCmp : uint8_t { kLt, kLe, kGt, kGe, kEq, kBetween };
void DoubleCmpWordsPortable(const double* v, size_t n, DoubleCmp op, double a,
                            double b, uint64_t* words);

/// bit i = (match[codes[i]] != 0) — dictionary-code table mapping for
/// string predicates.
void CodeTableWordsPortable(const uint32_t* codes, size_t n,
                            const uint8_t* match, uint64_t* words);

#ifdef OREO_WITH_AVX2
// Defined in kernels_avx2.cc (compiled with -mavx2); call only after
// simd::HasAvx2() reports true.
void Int64RangeWordsAvx2(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                         uint64_t* words);
void DoubleCmpWordsAvx2(const double* v, size_t n, DoubleCmp op, double a,
                        double b, uint64_t* words);
#endif

}  // namespace kernel_detail

}  // namespace oreo

#endif  // OREO_QUERY_KERNELS_H_
