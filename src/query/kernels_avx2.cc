// AVX2 backends for the word-filling compare kernels. This translation unit
// is the only one compiled with -mavx2 (see src/CMakeLists.txt); nothing here
// executes unless simd::HasAvx2() confirmed CPU support at runtime, so the
// rest of the binary stays runnable on the plain x86-64 baseline.
//
// Bit-identity with the portable kernels: integer compares are exact, and the
// ordered-quiet (_CMP_*_OQ) predicates return false on NaN operands exactly
// like the C comparisons in DoubleCmpWordsPortable.
#ifdef OREO_WITH_AVX2

#include <immintrin.h>

#include "query/kernels.h"

namespace oreo {
namespace kernel_detail {

namespace {

// bit i of the returned nibble-composed word = row i of the 64-row block.
// Each _mm256_movemask_pd grabs the sign bit (== full compare result) of 4
// 64-bit lanes.
inline uint64_t Int64RangeBlock(const int64_t* p, __m256i lov, __m256i hiv) {
  uint64_t bits = 0;
  for (int i = 0; i < 16; ++i) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i * 4));
    // out-of-range = (lo > x) | (x > hi); invert the 4-lane mask.
    const __m256i out = _mm256_or_si256(_mm256_cmpgt_epi64(lov, x),
                                        _mm256_cmpgt_epi64(x, hiv));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(out))) ^
        0xFu;
    bits |= static_cast<uint64_t>(m) << (i * 4);
  }
  return bits;
}

template <int Imm>
inline uint64_t DoubleCmpBlock(const double* p, __m256d av) {
  uint64_t bits = 0;
  for (int i = 0; i < 16; ++i) {
    const __m256d x = _mm256_loadu_pd(p + i * 4);
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(x, av, Imm)));
    bits |= static_cast<uint64_t>(m) << (i * 4);
  }
  return bits;
}

inline uint64_t DoubleBetweenBlock(const double* p, __m256d av, __m256d bv) {
  uint64_t bits = 0;
  for (int i = 0; i < 16; ++i) {
    const __m256d x = _mm256_loadu_pd(p + i * 4);
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(x, av, _CMP_GE_OQ),
                                     _mm256_cmp_pd(x, bv, _CMP_LE_OQ));
    bits |= static_cast<uint64_t>(
                static_cast<unsigned>(_mm256_movemask_pd(in)))
            << (i * 4);
  }
  return bits;
}

}  // namespace

void Int64RangeWordsAvx2(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                         uint64_t* words) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    words[w] = Int64RangeBlock(v + w * 64, lov, hiv);
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const int64_t* p = v + full * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < tail; ++b) {
      bits |= static_cast<uint64_t>(p[b] >= lo && p[b] <= hi) << b;
    }
    words[full] = bits;
  }
}

void DoubleCmpWordsAvx2(const double* v, size_t n, DoubleCmp op, double a,
                        double b, uint64_t* words) {
  const __m256d av = _mm256_set1_pd(a);
  const __m256d bv = _mm256_set1_pd(b);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const double* p = v + w * 64;
    switch (op) {
      case DoubleCmp::kLt:
        words[w] = DoubleCmpBlock<_CMP_LT_OQ>(p, av);
        break;
      case DoubleCmp::kLe:
        words[w] = DoubleCmpBlock<_CMP_LE_OQ>(p, av);
        break;
      case DoubleCmp::kGt:
        words[w] = DoubleCmpBlock<_CMP_GT_OQ>(p, av);
        break;
      case DoubleCmp::kGe:
        words[w] = DoubleCmpBlock<_CMP_GE_OQ>(p, av);
        break;
      case DoubleCmp::kEq:
        words[w] = DoubleCmpBlock<_CMP_EQ_OQ>(p, av);
        break;
      case DoubleCmp::kBetween:
        words[w] = DoubleBetweenBlock(p, av, bv);
        break;
    }
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    DoubleCmpWordsPortable(v + full * 64, tail, op, a, b, words + full);
  }
}

}  // namespace kernel_detail
}  // namespace oreo

#endif  // OREO_WITH_AVX2
