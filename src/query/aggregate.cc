#include "query/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "query/kernels.h"

namespace oreo {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return "count";
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggResult::ToString() const {
  std::string out = AggOpName(op);
  out += "=";
  if (!valid) return out + "NULL";
  if (op == AggOp::kCount) return out + std::to_string(count);
  return out + std::to_string(value);
}

Aggregator::Aggregator(std::vector<AggSpec> specs)
    : specs_(std::move(specs)),
      sums_(specs_.size(), 0.0),
      mins_(specs_.size(), std::numeric_limits<double>::infinity()),
      maxs_(specs_.size(), -std::numeric_limits<double>::infinity()),
      counts_(specs_.size(), 0) {
  for (const AggSpec& s : specs_) {
    OREO_CHECK(s.op == AggOp::kCount || s.column >= 0)
        << "aggregate needs a column";
  }
}

void Aggregator::FoldRow(const Table& table, uint32_t row) {
  ++rows_seen_;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const AggSpec& s = specs_[i];
    ++counts_[i];
    if (s.op == AggOp::kCount) continue;
    double v = table.column(static_cast<size_t>(s.column)).GetNumeric(row);
    sums_[i] += v;
    mins_[i] = std::min(mins_[i], v);
    maxs_[i] = std::max(maxs_[i], v);
  }
}

void Aggregator::Consume(const Table& table, const Query& query) {
  // Kernel-evaluated selection, then a fold over the surviving rows in
  // ascending order — the same order the old row-at-a-time loop folded in,
  // so floating-point accumulators are bit-identical.
  ConsumeRows(table, KernelMatchingRowIds(table, query));
}

void Aggregator::ConsumeRows(const Table& table,
                             const std::vector<uint32_t>& rows) {
  for (uint32_t r : rows) FoldRow(table, r);
}

std::vector<AggResult> Aggregator::Finish() const {
  std::vector<AggResult> out;
  out.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    AggResult r;
    r.op = specs_[i].op;
    r.count = counts_[i];
    switch (specs_[i].op) {
      case AggOp::kCount:
        break;
      case AggOp::kSum:
        r.value = sums_[i];
        break;
      case AggOp::kMin:
        r.value = mins_[i];
        r.valid = counts_[i] > 0;
        break;
      case AggOp::kMax:
        r.value = maxs_[i];
        r.valid = counts_[i] > 0;
        break;
      case AggOp::kAvg:
        r.valid = counts_[i] > 0;
        r.value = r.valid ? sums_[i] / static_cast<double>(counts_[i]) : 0.0;
        break;
    }
    out.push_back(r);
  }
  return out;
}

std::vector<AggResult> RunAggregates(const Table& table, const Query& query,
                                     const std::vector<AggSpec>& specs) {
  Aggregator agg(specs);
  agg.Consume(table, query);
  return agg.Finish();
}

}  // namespace oreo
