#include "query/query.h"

#include <algorithm>

#include "common/logging.h"
#include "query/kernels.h"

namespace oreo {

bool Query::Matches(const Table& table, uint32_t row) const {
  for (const Predicate& p : conjuncts) {
    if (!p.Matches(table, row)) return false;
  }
  return true;
}

bool Query::CanSkipPartition(const ZoneMap& zone) const {
  for (const Predicate& p : conjuncts) {
    OREO_DCHECK(p.column >= 0 &&
                static_cast<size_t>(p.column) < zone.columns.size());
    if (p.ProvesEmpty(zone.columns[static_cast<size_t>(p.column)])) {
      return true;
    }
  }
  return false;
}

std::string Query::ToString(const Schema* schema) const {
  if (conjuncts.empty()) return "SELECT * (full scan)";
  std::string out = "WHERE ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i].ToString(schema);
  }
  return out;
}

uint64_t CountMatches(const Table& table, const std::vector<uint32_t>& row_ids,
                      const Query& query) {
  return KernelCountMatches(table, row_ids, query);
}

uint64_t CountMatches(const Table& table, const Query& query) {
  return KernelCountMatches(table, query);
}

double EstimateSelectivity(const Table& sample, const Query& query) {
  if (sample.num_rows() == 0) return 0.0;
  return static_cast<double>(CountMatches(sample, query)) /
         static_cast<double>(sample.num_rows());
}

double FractionAccessed(const Partitioning& partitioning, const Query& query) {
  if (partitioning.total_rows == 0) return 0.0;
  uint64_t accessed = 0;
  for (size_t i = 0; i < partitioning.zones.size(); ++i) {
    if (!query.CanSkipPartition(partitioning.zones[i])) {
      accessed += partitioning.zones[i].num_rows;
    }
  }
  return static_cast<double>(accessed) /
         static_cast<double>(partitioning.total_rows);
}

double FractionAccessedFromMetadata(const PartitionMetadata& meta,
                                    const Query& query) {
  if (meta.total_rows == 0) return 0.0;
  uint64_t accessed = 0;
  for (const ZoneMap& zm : meta.zones) {
    if (!query.CanSkipPartition(zm)) accessed += zm.num_rows;
  }
  return static_cast<double>(accessed) /
         static_cast<double>(meta.total_rows);
}

std::vector<uint32_t> PartitionsToRead(const Partitioning& partitioning,
                                       const Query& query) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < partitioning.zones.size(); ++i) {
    if (!query.CanSkipPartition(partitioning.zones[i])) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::vector<QueryBatch> MakeBatches(const std::vector<Query>& stream,
                                    size_t batch_size) {
  OREO_CHECK_GT(batch_size, 0u);
  std::vector<QueryBatch> out;
  out.reserve((stream.size() + batch_size - 1) / batch_size);
  for (size_t start = 0; start < stream.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, stream.size());
    out.emplace_back(std::vector<Query>(stream.begin() + static_cast<ptrdiff_t>(start),
                                        stream.begin() + static_cast<ptrdiff_t>(end)));
  }
  return out;
}

}  // namespace oreo
