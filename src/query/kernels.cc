#include "query/kernels.h"

#include <cstddef>
#include <limits>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "common/simd.h"
#include "storage/column.h"

namespace oreo {

namespace kernel_detail {

void Int64RangeWordsPortable(const int64_t* v, size_t n, int64_t lo,
                             int64_t hi, uint64_t* words) {
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const int64_t* p = v + w * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < 64; ++b) {
      bits |= static_cast<uint64_t>(p[b] >= lo && p[b] <= hi) << b;
    }
    words[w] = bits;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const int64_t* p = v + full * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < tail; ++b) {
      bits |= static_cast<uint64_t>(p[b] >= lo && p[b] <= hi) << b;
    }
    words[full] = bits;
  }
}

namespace {

// Word-filling skeleton shared by the double comparisons: `cmp` is a
// branchless per-element predicate the compiler can vectorize.
template <typename Cmp>
void FillDoubleWords(const double* v, size_t n, uint64_t* words, Cmp cmp) {
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const double* p = v + w * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < 64; ++b) {
      bits |= static_cast<uint64_t>(cmp(p[b])) << b;
    }
    words[w] = bits;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const double* p = v + full * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < tail; ++b) {
      bits |= static_cast<uint64_t>(cmp(p[b])) << b;
    }
    words[full] = bits;
  }
}

}  // namespace

void DoubleCmpWordsPortable(const double* v, size_t n, DoubleCmp op, double a,
                            double b, uint64_t* words) {
  // Plain C comparisons: false on NaN operands, exactly like the ordered
  // quiet (_CMP_*_OQ) AVX2 predicates the vector backend uses.
  switch (op) {
    case DoubleCmp::kLt:
      FillDoubleWords(v, n, words, [a](double x) { return x < a; });
      return;
    case DoubleCmp::kLe:
      FillDoubleWords(v, n, words, [a](double x) { return x <= a; });
      return;
    case DoubleCmp::kGt:
      FillDoubleWords(v, n, words, [a](double x) { return x > a; });
      return;
    case DoubleCmp::kGe:
      FillDoubleWords(v, n, words, [a](double x) { return x >= a; });
      return;
    case DoubleCmp::kEq:
      FillDoubleWords(v, n, words, [a](double x) { return x == a; });
      return;
    case DoubleCmp::kBetween:
      FillDoubleWords(v, n, words,
                      [a, b](double x) { return x >= a && x <= b; });
      return;
  }
}

void CodeTableWordsPortable(const uint32_t* codes, size_t n,
                            const uint8_t* match, uint64_t* words) {
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    const uint32_t* p = codes + w * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < 64; ++b) {
      bits |= static_cast<uint64_t>(match[p[b]] != 0) << b;
    }
    words[w] = bits;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const uint32_t* p = codes + full * 64;
    uint64_t bits = 0;
    for (size_t b = 0; b < tail; ++b) {
      bits |= static_cast<uint64_t>(match[p[b]] != 0) << b;
    }
    words[full] = bits;
  }
}

}  // namespace kernel_detail

namespace {

using kernel_detail::DoubleCmp;

void Int64RangeWords(const int64_t* v, size_t n, int64_t lo, int64_t hi,
                     uint64_t* words) {
#ifdef OREO_WITH_AVX2
  if (simd::HasAvx2()) {
    kernel_detail::Int64RangeWordsAvx2(v, n, lo, hi, words);
    return;
  }
#endif
  kernel_detail::Int64RangeWordsPortable(v, n, lo, hi, words);
}

void DoubleCmpWords(const double* v, size_t n, DoubleCmp op, double a,
                    double b, uint64_t* words) {
#ifdef OREO_WITH_AVX2
  if (simd::HasAvx2()) {
    kernel_detail::DoubleCmpWordsAvx2(v, n, op, a, b, words);
    return;
  }
#endif
  kernel_detail::DoubleCmpWordsPortable(v, n, op, a, b, words);
}

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
// lo > hi: matches nothing (the range kernel yields all-zero naturally).
constexpr std::pair<int64_t, int64_t> kEmptyRange{kI64Max, kI64Min};

// Every int64 comparison is one inclusive range; kIn is a union of
// single-point ranges. The INT64_MIN/MAX guards avoid signed overflow on the
// open-bound adjustment.
std::pair<int64_t, int64_t> Int64Range(CompareOp op, int64_t v, int64_t v2) {
  switch (op) {
    case CompareOp::kEq:
      return {v, v};
    case CompareOp::kLt:
      return v == kI64Min ? kEmptyRange : std::pair<int64_t, int64_t>{kI64Min, v - 1};
    case CompareOp::kLe:
      return {kI64Min, v};
    case CompareOp::kGt:
      return v == kI64Max ? kEmptyRange : std::pair<int64_t, int64_t>{v + 1, kI64Max};
    case CompareOp::kGe:
      return {v, kI64Max};
    case CompareOp::kBetween:
      return {v, v2};
    case CompareOp::kIn:
      break;  // handled by the caller
  }
  OREO_CHECK(false) << "not a range op";
  return kEmptyRange;
}

void EvalInt64Predicate(const Column& col, const Predicate& p,
                        BitVector* out) {
  const int64_t* v = col.ints().data();
  const size_t n = col.ints().size();
  uint64_t* words = out->mutable_words();
  if (p.op == CompareOp::kIn) {
    // Union of equality bitmaps; an empty IN-list matches nothing.
    out->ClearAll();
    BitVector scratch(n);
    for (const Value& lit : p.in_list) {
      const int64_t x = lit.AsInt64();
      Int64RangeWords(v, n, x, x, scratch.mutable_words());
      out->OrAssign(scratch);
    }
    return;
  }
  const auto [lo, hi] = Int64Range(p.op, p.value.AsInt64(),
                                   p.op == CompareOp::kBetween
                                       ? p.value2.AsInt64()
                                       : int64_t{0});
  Int64RangeWords(v, n, lo, hi, words);
}

void EvalDoublePredicate(const Column& col, const Predicate& p,
                         BitVector* out) {
  const double* v = col.doubles().data();
  const size_t n = col.doubles().size();
  uint64_t* words = out->mutable_words();
  switch (p.op) {
    case CompareOp::kEq:
      DoubleCmpWords(v, n, DoubleCmp::kEq, p.value.AsDouble(), 0.0, words);
      return;
    case CompareOp::kLt:
      DoubleCmpWords(v, n, DoubleCmp::kLt, p.value.AsDouble(), 0.0, words);
      return;
    case CompareOp::kLe:
      DoubleCmpWords(v, n, DoubleCmp::kLe, p.value.AsDouble(), 0.0, words);
      return;
    case CompareOp::kGt:
      DoubleCmpWords(v, n, DoubleCmp::kGt, p.value.AsDouble(), 0.0, words);
      return;
    case CompareOp::kGe:
      DoubleCmpWords(v, n, DoubleCmp::kGe, p.value.AsDouble(), 0.0, words);
      return;
    case CompareOp::kBetween:
      DoubleCmpWords(v, n, DoubleCmp::kBetween, p.value.AsDouble(),
                     p.value2.AsDouble(), words);
      return;
    case CompareOp::kIn: {
      out->ClearAll();
      BitVector scratch(n);
      for (const Value& lit : p.in_list) {
        DoubleCmpWords(v, n, DoubleCmp::kEq, lit.AsDouble(), 0.0,
                       scratch.mutable_words());
        out->OrAssign(scratch);
      }
      return;
    }
  }
}

// Same semantics as Predicate::Matches' string_view branch, evaluated on one
// cell value.
bool StringPredicateMatches(const Predicate& p, std::string_view cell) {
  switch (p.op) {
    case CompareOp::kEq:
      return cell == std::string_view(p.value.AsString());
    case CompareOp::kLt:
      return cell < std::string_view(p.value.AsString());
    case CompareOp::kLe:
      return cell <= std::string_view(p.value.AsString());
    case CompareOp::kGt:
      return cell > std::string_view(p.value.AsString());
    case CompareOp::kGe:
      return cell >= std::string_view(p.value.AsString());
    case CompareOp::kBetween:
      return std::string_view(p.value.AsString()) <= cell &&
             cell <= std::string_view(p.value2.AsString());
    case CompareOp::kIn:
      for (const Value& v : p.in_list) {
        if (cell == std::string_view(v.AsString())) return true;
      }
      return false;
  }
  return false;
}

void EvalStringPredicate(const Column& col, const Predicate& p,
                         BitVector* out) {
  // Dictionary codes are insertion-ordered, not sorted, so comparisons must
  // act on the strings: evaluate the predicate once per dictionary entry,
  // then map every row's code through the resulting table.
  const std::vector<std::string>& dict = col.dictionary();
  std::vector<uint8_t> match(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    match[i] =
        StringPredicateMatches(p, std::string_view(dict[i])) ? 1 : 0;
  }
  kernel_detail::CodeTableWordsPortable(col.codes().data(), col.codes().size(),
                                        match.data(), out->mutable_words());
}

void EvalPredicateBitmapVector(const Table& table, const Predicate& p,
                               BitVector* out) {
  const Column& col = table.column(static_cast<size_t>(p.column));
  switch (col.type()) {
    case DataType::kInt64:
      EvalInt64Predicate(col, p, out);
      return;
    case DataType::kDouble:
      EvalDoublePredicate(col, p, out);
      return;
    case DataType::kString:
      EvalStringPredicate(col, p, out);
      return;
  }
}

}  // namespace

BitVector EvalPredicateBitmap(const Table& table, const Predicate& p) {
  const size_t n = table.num_rows();
  BitVector out(n);
  if (n == 0) return out;
  OREO_DCHECK(p.column >= 0 &&
              static_cast<size_t>(p.column) < table.num_columns());
  if (simd::VectorEnabled()) {
    EvalPredicateBitmapVector(table, p, &out);
    return out;
  }
  // Scalar reference: row at a time through the generic matcher.
  for (uint32_t r = 0; r < n; ++r) {
    if (p.Matches(table, r)) out.Set(r);
  }
  return out;
}

BitVector EvalQueryBitmap(const Table& table, const Query& query) {
  const size_t n = table.num_rows();
  if (query.conjuncts.empty()) {
    BitVector out(n);
    out.SetAll();
    return out;
  }
  if (!simd::VectorEnabled()) {
    BitVector out(n);
    for (uint32_t r = 0; r < n; ++r) {
      if (query.Matches(table, r)) out.Set(r);
    }
    return out;
  }
  BitVector out = EvalPredicateBitmap(table, query.conjuncts[0]);
  for (size_t i = 1; i < query.conjuncts.size(); ++i) {
    out.AndAssign(EvalPredicateBitmap(table, query.conjuncts[i]));
  }
  return out;
}

uint64_t KernelCountMatches(const Table& table, const Query& query) {
  if (!simd::VectorEnabled()) {
    uint64_t count = 0;
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      if (query.Matches(table, r)) ++count;
    }
    return count;
  }
  return EvalQueryBitmap(table, query).Count();
}

uint64_t KernelCountMatchesMasked(const Table& table, const Query& query,
                                  const BitVector& mask) {
  OREO_DCHECK(mask.size() == table.num_rows());
  if (query.conjuncts.empty()) return mask.Count();
  // EvalQueryBitmap already honors the scalar/vectorized dispatch, so both
  // modes produce the same bitmap and the masked count is mode-invariant.
  BitVector bits = EvalQueryBitmap(table, query);
  bits.AndAssign(mask);
  return bits.Count();
}

uint64_t KernelCountMatches(const Table& table,
                            const std::vector<uint32_t>& row_ids,
                            const Query& query) {
  // For a dense-enough subset the full bitmap amortizes; for sparse subsets
  // the per-row path wins. The cutover depends only on sizes, so the choice
  // (and of course the result) is deterministic.
  if (simd::VectorEnabled() && table.num_rows() > 0 &&
      row_ids.size() * 8 >= table.num_rows()) {
    const BitVector bits = EvalQueryBitmap(table, query);
    uint64_t count = 0;
    for (uint32_t id : row_ids) count += bits.Get(id) ? 1 : 0;
    return count;
  }
  uint64_t count = 0;
  for (uint32_t id : row_ids) {
    if (query.Matches(table, id)) ++count;
  }
  return count;
}

std::vector<uint32_t> KernelMatchingRowIds(const Table& table,
                                           const Query& query) {
  if (!simd::VectorEnabled()) {
    std::vector<uint32_t> out;
    for (uint32_t r = 0; r < table.num_rows(); ++r) {
      if (query.Matches(table, r)) out.push_back(r);
    }
    return out;
  }
  return EvalQueryBitmap(table, query).ToIndices();
}

}  // namespace oreo
