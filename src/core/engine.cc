#include "core/engine.h"

#include "common/logging.h"
#include "core/oreo.h"
#include "core/sharded_oreo.h"

namespace oreo {
namespace core {
namespace internal {

#ifndef NDEBUG
SingleCallerGuard::Scope::Scope(SingleCallerGuard* guard) : guard_(guard) {
  int prev = guard_->depth_.fetch_add(1, std::memory_order_acq_rel);
  if (prev == 0) {
    guard_->owner_.store(std::this_thread::get_id(),
                         std::memory_order_release);
  } else {
    // Re-entry from the owning thread (RunBatch -> Step) is fine; a second
    // thread inside the engine is the silent-corruption bug this exists to
    // catch.
    OREO_CHECK(guard_->owner_.load(std::memory_order_acquire) ==
               std::this_thread::get_id())
        << "concurrent Step/RunBatch callers on one engine: the online "
           "algorithm is sequential and requires external synchronization "
           "(wrap the engine in a core::BatchSubmitter)";
  }
}

SingleCallerGuard::Scope::~Scope() {
  guard_->depth_.fetch_sub(1, std::memory_order_acq_rel);
}
#else
SingleCallerGuard::Scope::Scope(SingleCallerGuard*) {}
SingleCallerGuard::Scope::~Scope() = default;
#endif

}  // namespace internal

OreoEngine::BatchResult BatchSubmitter::Run(const QueryBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_->RunBatch(batch);
}

Result<PhysicalStore::BatchExec> BatchSubmitter::RunPhysical(
    const QueryBatch& batch, OreoEngine::BatchResult* logical) {
  std::lock_guard<std::mutex> lock(mu_);
  OREO_CHECK(engine_->has_physical()) << "call AttachPhysical first";
  OreoEngine::BatchResult decisions = engine_->RunBatch(batch);
  Result<PhysicalStore::BatchExec> exec =
      engine_->ExecuteBatchPhysical(batch.queries);
  if (exec.ok()) engine_->SyncPhysical();
  if (logical != nullptr) *logical = std::move(decisions);
  return exec;
}

Result<IngestResult> BatchSubmitter::RunIngest(IngestBatch batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_->Ingest(std::move(batch));
}

std::unique_ptr<OreoEngine> MakeEngine(const Table* table,
                                       const LayoutGenerator* generator,
                                       int time_column,
                                       const OreoOptions& options) {
  if (options.num_shards <= 1) {
    return std::make_unique<Oreo>(table, generator, time_column, options);
  }
  return std::make_unique<ShardedOreo>(table, generator, time_column, options);
}

}  // namespace core
}  // namespace oreo
