#include "core/engine.h"

#include "core/oreo.h"
#include "core/sharded_oreo.h"

namespace oreo {
namespace core {

std::unique_ptr<OreoEngine> MakeEngine(const Table* table,
                                       const LayoutGenerator* generator,
                                       int time_column,
                                       const OreoOptions& options) {
  if (options.num_shards <= 1) {
    return std::make_unique<Oreo>(table, generator, time_column, options);
  }
  return std::make_unique<ShardedOreo>(table, generator, time_column, options);
}

}  // namespace core
}  // namespace oreo
