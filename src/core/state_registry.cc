#include "core/state_registry.h"

#include "common/logging.h"

namespace oreo {
namespace core {

int StateRegistry::Add(LayoutInstance instance) {
  int id = static_cast<int>(instances_.size());
  instances_.push_back(std::make_shared<LayoutInstance>(std::move(instance)));
  live_.insert(id);
  return id;
}

void StateRegistry::Remove(int id) {
  OREO_CHECK(IsLive(id)) << "removing non-live state " << id;
  live_.erase(id);
}

const LayoutInstance& StateRegistry::Get(int id) const {
  OREO_CHECK(id >= 0 && static_cast<size_t>(id) < instances_.size())
      << "unknown state id " << id;
  return *instances_[static_cast<size_t>(id)];
}

void StateRegistry::RematerializeAll(const Table& table) {
  for (std::shared_ptr<LayoutInstance>& inst : instances_) {
    *inst = Materialize(inst->name(), inst->shared_layout(), table);
  }
}

double StateRegistry::MeanCost(int id, const std::vector<Query>& queries) const {
  if (queries.empty()) return 0.0;
  double total = 0.0;
  for (const Query& q : queries) total += Cost(id, q);
  return total / static_cast<double>(queries.size());
}

}  // namespace core
}  // namespace oreo
