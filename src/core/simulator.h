// Logical-cost simulator (the paper's "Simulation" methodology, SVI-A1):
// query cost = fraction of rows accessed per partition metadata; every
// reorganization costs alpha. Supports the background-reorganization delay
// Delta of SVI-D5: the switch is charged when decided, but queries keep being
// served on the outgoing layout for the next Delta queries.
#ifndef OREO_CORE_SIMULATOR_H_
#define OREO_CORE_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <tuple>
#include <vector>

#include "core/layout_manager.h"
#include "core/state_registry.h"
#include "core/strategy.h"
#include "query/query.h"

namespace oreo {
namespace core {

struct SimOptions {
  double alpha = 80.0;
  /// Queries served on the outgoing layout after a switch decision (Delta).
  size_t reorg_delay = 0;
  /// Record per-query cumulative totals (Figure 4 traces).
  bool record_trace = false;
};

struct SimResult {
  std::string method;
  double query_cost = 0.0;
  double reorg_cost = 0.0;
  int64_t num_switches = 0;
  double total_cost() const { return query_cost + reorg_cost; }
  /// Cumulative total cost after each query (only if record_trace).
  std::vector<double> cumulative;
  /// State that physically served each query (only if record_trace).
  std::vector<int> serving_state;
  /// (query index, from, to) per switch decision.
  std::vector<std::tuple<int64_t, int, int>> switch_events;
  size_t final_live_states = 0;
};

/// Drives `strategy` over `queries`. `manager` may be null for strategies
/// with a fixed precomputed state space (Static / MTS-Optimal / Offline).
SimResult RunSimulation(Strategy* strategy, LayoutManager* manager,
                        const StateRegistry* registry,
                        const std::vector<Query>& queries,
                        const SimOptions& options);

}  // namespace core
}  // namespace oreo

#endif  // OREO_CORE_SIMULATOR_H_
