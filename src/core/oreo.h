// The public OREO facade: wires together the LAYOUT MANAGER and the
// REORGANIZER (paper Figure 1) behind one object. Downstream users interact
// with this class; the lower-level pieces (LayoutManager, DynamicUmts,
// strategies, simulator) remain available for composition.
//
// Typical use:
//   QdTreeGenerator gen;
//   Oreo oreo(&table, &gen, /*time_column=*/5, OreoOptions{});
//   for (const Query& q : stream) {
//     auto step = oreo.Step(q);
//     // serve q on layout `step.state`; if step.reorganized, kick off a
//     // background rewrite into oreo.registry().Get(step.state)
//   }
// High-throughput clients that accumulate queries between reorganization
// cadences feed whole batches instead:
//   for (const QueryBatch& b : MakeBatches(stream, 64)) {
//     auto batch = oreo.RunBatch(b);
//     // execute the batch physically, e.g. grouped by step.state through
//     // PhysicalStore::ExecuteQueryBatch
//   }
#ifndef OREO_CORE_OREO_H_
#define OREO_CORE_OREO_H_

#include <memory>
#include <optional>

#include "common/simd.h"
#include "core/background.h"
#include "core/engine.h"
#include "core/layout_manager.h"
#include "core/simulator.h"
#include "core/state_registry.h"
#include "core/strategy.h"
#include "ingest/live_table.h"
#include "ingest/mutation_log.h"
#include "storage/backend.h"
#include "storage/shard_router.h"

namespace oreo {

class SharedBlockCache;  // storage/shared_cache.h

namespace core {

/// All tuning knobs of the framework, with the paper's defaults.
struct OreoOptions {
  double alpha = 80.0;        ///< relative reorganization cost
  double epsilon = 0.08;      ///< layout admission distance threshold
  double gamma = 1.0;         ///< predictor transition-bias exponent
  size_t window_size = 200;   ///< sliding window of recent queries
  size_t generate_every = 200;  ///< generation cadence (queries)
  uint32_t target_partitions = 32;  ///< partitions per layout (k)
  size_t max_states = 16;     ///< dynamic state-space cap (0 = unbounded)
  size_t reorg_delay = 0;     ///< Delta: queries served on the old layout
  size_t dataset_sample_rows = 2000;  ///< sample for generate_layout
  size_t admission_sample_size = 50;  ///< time-biased query sample size
  CandidateSource source = CandidateSource::kSlidingWindow;
  MidPhasePolicy mid_phase_policy = MidPhasePolicy::kDefer;
  /// §V-B periodic pruning of redundant (epsilon-similar) states.
  bool prune_similar_states = true;
  /// §IV-A stay-in-place optimization at phase resets.
  bool stay_at_phase_start = true;
  /// Reuse cached per-(state, sample-chunk) cost contributions across
  /// generation cadences (see LayoutManagerOptions::incremental_cost_cache).
  /// Decisions are bit-identical with the cache on or off.
  bool incremental_cost_cache = true;
  /// Worker threads for the parallel hot paths (candidate cost evaluation
  /// here; scans and rewrites in PhysicalStore take the same knob). 0 = one
  /// per hardware core, 1 = serial. Determinism contract: costs, switch
  /// decisions and traces are bit-identical at any thread count.
  size_t num_threads = 0;
  /// --- sharding (consumed by ShardedOreo; a bare Oreo ignores them) ---
  /// Number of horizontal shards; each shard runs its own independent
  /// engine (LayoutManager + D-UMTS + PhysicalStore), preserving the
  /// per-shard competitive guarantee. 1 = the unsharded engine.
  size_t num_shards = 1;
  /// Routing column for the shard split (-1 = the time column).
  int shard_column = -1;
  /// Row→shard routing function (see storage/shard_router.h).
  ShardRouting shard_routing = ShardRouting::kHash;
  /// Physical byte store for AttachPhysical / replay (see
  /// storage/backend.h): nullptr = local posix files; MakeInMemoryBackend()
  /// serves disklessly; MakeCachedBackend(...) adds a bounded block cache
  /// with read coalescing. The determinism contract extends to backends:
  /// costs, switches, traces and partition bytes are backend-invariant.
  std::shared_ptr<StorageBackend> storage_backend;
  /// Cross-shard tiered block cache (see storage/shared_cache.h). When set,
  /// every shard's store wraps `storage_backend` (or posix when null) in a
  /// shard-charged SharedCacheBackend view: one global memory budget,
  /// single-flight dedup across shards, and async prefetch of the
  /// zone-map-surviving partitions of a batch's later queries. Serving
  /// results stay bit-identical with the cache on or off.
  std::shared_ptr<SharedBlockCache> shared_cache;
  /// Compaction trigger for live ingest: fold delta chunks and tombstones
  /// into a fresh base (and rematerialize the physical layout) when the
  /// mutation debt — (delta rows + tombstoned base rows) / physical rows —
  /// reaches this fraction at an Ingest boundary. Bounds both the delta-scan
  /// overhead and the memory held by dead rows; <= 0 folds after every
  /// mutating batch, > 1 never folds automatically.
  double fold_threshold = 0.25;
  /// Scan-kernel dispatch (common/simd.h): kAuto runs the vectorized
  /// predicate/decode/lookup kernels, kScalar pins the scalar reference
  /// implementations. Results are bit-identical either way (the OREO_FORCE_
  /// SCALAR env var still wins over this knob). The mode is process-wide:
  /// a non-kAuto value is applied globally at engine construction.
  simd::KernelMode kernel_mode = simd::KernelMode::kAuto;
  uint64_t seed = 42;  ///< master seed; sub-components derive their own
};

/// Online data-layout reorganization with worst-case guarantees — the
/// unsharded engine behind the OreoEngine interface.
///
/// The logical layer tracks layout states, costs and switch decisions.
/// AttachPhysical adds a PhysicalStore (through
/// OreoOptions::storage_backend) plus a single background rewriter, so
/// ExecuteBatchPhysical / SyncPhysical / WaitForReorgs mirror the sharded
/// facade's batch loop on one store.
class Oreo : public OreoEngine {
 public:
  /// `table` and `generator` must outlive this object. `time_column` defines
  /// the initial default layout (sort by arrival time).
  Oreo(const Table* table, const LayoutGenerator* generator, int time_column,
       const OreoOptions& options);
  ~Oreo() override;

  /// Streaming API: observe one query, get the serving layout and any
  /// reorganization decision.
  StepResult Step(const Query& query) override;

  /// Batched streaming API: admits a vector of queries in one step. The
  /// online algorithm is inherently sequential (every arrival updates the
  /// window, the samples and the D-UMTS counters), so decisions are made in
  /// stream order through the exact Step code path — results are
  /// bit-identical to calling Step per query. Batching buys amortized
  /// dispatch and hands the caller per-batch switch points, so physical
  /// execution can group each batch's queries by serving state and fan them
  /// out through PhysicalStore::ExecuteQueryBatch.
  ///
  /// External-synchronization contract: Step / RunBatch / Run assume a
  /// single caller — concurrent entry from two threads corrupts the
  /// sequential decision state and is a programmer error (aborted by a debug
  /// assert, see internal::SingleCallerGuard). Multiplexing front ends must
  /// serialize submission through a core::BatchSubmitter.
  BatchResult RunBatch(const QueryBatch& batch) override;

  /// Convenience API: run a whole stream through the framework and return
  /// the cost accounting. Resets nothing; intended for a fresh instance.
  SimResult Run(const std::vector<Query>& queries, bool record_trace = false);

  /// OreoEngine trace API: Run wrapped into the one-shard result shape.
  EngineSimResult RunTrace(const std::vector<Query>& queries,
                           bool record_trace = false) override;

  // --- live ingest (see OreoEngine::Ingest) --------------------------------

  /// Applies one mutation batch. Deletes tombstone the visible rows their
  /// predicates match (same-batch appends exempt); appended rows become a
  /// zone-mapped delta chunk, visible to every subsequent query. While
  /// mutations are pending, D-UMTS decides on — and the engine charges — the
  /// live cost
  ///   c_live(s, q) = (c_base(s, q) * B + D(q)) / (B + Delta)
  /// (B = physical base rows, Delta = physical delta rows, D(q) = zone-map-
  /// surviving delta rows): the true scanned-fraction of the mutated store.
  /// Theorem IV.1 holds verbatim on this matrix — D-UMTS is 2·H(|S_max|)-
  /// competitive for any cost matrix in [0, 1] — and with no pending
  /// mutations c_live is exactly c_base, so pre-ingest runs are bit-identical
  /// to builds without this subsystem. Crossing fold_threshold triggers the
  /// compaction fold (tombstones drop, deltas merge into a fresh base, every
  /// registry state rematerializes, the physical layout rebuilds, the
  /// manager's dataset sample redraws). Single-caller contract applies, like
  /// Step/RunBatch.
  Result<IngestResult> Ingest(IngestBatch batch) override;

  /// The mutable logical table (base + deltas + tombstone masks).
  const ingest::LiveTable& live() const { return live_; }
  /// Rows currently visible to queries.
  uint64_t visible_rows() const { return live_.visible_rows(); }
  /// Version of the last committed ingest batch (0 before any ingest).
  uint64_t data_version() const { return mutation_log_.version(); }
  /// The current physical base table: the engine's original table until the
  /// first fold, the owned fold result afterwards. Background rewrites and
  /// replays must read this, never the construction-time table.
  const Table& base_table() const { return live_.base(); }
  /// Number of compaction folds performed so far.
  uint64_t folds() const { return folds_; }
  /// The tombstone/delta overlay for snapshot scans, or nullptr when no
  /// mutation is pending (ShardedOreo threads this into its per-shard
  /// ExecuteQueryBatchOnSnapshot calls). Rebuilt at ingest and
  /// snapshot-refresh boundaries, never mid-batch.
  const PhysicalStore::LiveScanView* live_scan_view() const {
    return live_view_active_ ? &live_view_ : nullptr;
  }
  /// Rebuilds the overlay against `instance`'s partitioning — the layout the
  /// caller's snapshot serves. For engines whose physical store lives
  /// *outside* the Oreo (sharded mode: ShardEngine owns the store and pinned
  /// snapshot), the facade calls this after every ingest and snapshot
  /// refresh; an Oreo with its own store refreshes itself and never needs
  /// it. Passing nullptr deactivates the view.
  void RebuildLiveView(const LayoutInstance* instance);

  // --- physical execution (see OreoEngine) --------------------------------

  /// Creates the store under `base_dir`, materializes the current layout and
  /// starts one background rewriter. `reorg_workers` is accepted for
  /// interface parity; a single store keeps the paper's one-background-
  /// process contract regardless.
  Status AttachPhysical(const std::string& base_dir, size_t store_threads = 1,
                        size_t reorg_workers = 0) override;
  bool has_physical() const override { return store_ != nullptr; }
  PhysicalStore* store(size_t shard = 0) override;

  /// Executes a batch against the pinned snapshot (refreshed only at
  /// SyncPhysical, never mid-batch, so in-flight rewrites cannot tear it).
  Result<PhysicalStore::BatchExec> ExecuteBatchPhysical(
      const std::vector<Query>& queries) override;

  /// Batch-boundary reconciliation: adopts a finished background rewrite
  /// (refresh snapshot, vacuum superseded files) and submits one when the
  /// logical serving layout moved ahead of the materialized one. A target
  /// that failed is not resubmitted until the desired state moves on.
  size_t SyncPhysical() override;
  void WaitForReorgs() override;

  Result<PhysicalReplayResult> ReplayTrace(const EngineSimResult& sim,
                                           size_t stride,
                                           const std::string& dir,
                                           size_t num_threads = 0,
                                           size_t batch_size = 1)
      const override;

  // --- introspection ------------------------------------------------------

  size_t num_shards() const override { return 1; }
  Oreo& core(size_t shard = 0) override;
  const Oreo& core(size_t shard = 0) const override;
  const OreoOptions& options() const { return options_; }

  const StateRegistry& registry() const { return registry_; }
  const LayoutManager& manager() const { return *manager_; }
  const OreoStrategy& strategy() const { return *strategy_; }
  int current_state() const { return strategy_->current_state(); }
  int default_state() const { return default_state_; }
  /// Layout that physically serves queries right now (trails current_state
  /// by `reorg_delay` queries after a switch decision).
  int physical_state() const { return physical_state_; }

  double total_query_cost() const override { return query_cost_; }
  double total_reorg_cost() const override { return reorg_cost_; }
  int64_t num_switches() const override { return num_switches_; }

 private:
  /// The live cost c_live(s, q) D-UMTS decides on and Step charges; equals
  /// the registry's base cost exactly when no mutations are pending.
  double LiveCost(int state, const Query& query) const;
  /// The compaction fold (see Ingest). Quiesces background rewrites first.
  Status Fold();
  /// Rebuilds live_view_ against the own-store snapshot (or the instance the
  /// facade last supplied via RebuildLiveView); inactive when no mutation is
  /// pending.
  void RefreshLiveView();

  OreoOptions options_;
  const Table* table_;  // not owned
  ingest::LiveTable live_;
  ingest::MutationLog mutation_log_;
  uint64_t folds_ = 0;
  mutable internal::SingleCallerGuard caller_guard_;
  StateRegistry registry_;
  std::unique_ptr<LayoutManager> manager_;
  std::unique_ptr<OreoStrategy> strategy_;
  int default_state_;
  int physical_state_;
  std::deque<std::pair<size_t, int>> pending_;
  size_t queries_seen_ = 0;
  double query_cost_ = 0.0;
  double reorg_cost_ = 0.0;
  int64_t num_switches_ = 0;

  // Physical mode (null until AttachPhysical). The reorganizer is declared
  // after the store: its in-flight callback touches the store and must be
  // destroyed (joined) first.
  std::unique_ptr<PhysicalStore> store_;
  PhysicalStore::Snapshot snapshot_;
  PhysicalStore::LiveScanView live_view_;
  bool live_view_active_ = false;
  const LayoutInstance* live_view_instance_ = nullptr;  // masks' partitioning
  int materialized_state_ = -1;
  std::optional<int> pending_target_;
  std::optional<int> failed_target_;
  std::unique_ptr<BackgroundReorganizer> reorganizer_;
};

}  // namespace core
}  // namespace oreo

#endif  // OREO_CORE_OREO_H_
