#include "core/simulator.h"

#include "common/logging.h"

namespace oreo {
namespace core {

SimResult RunSimulation(Strategy* strategy, LayoutManager* manager,
                        const StateRegistry* registry,
                        const std::vector<Query>& queries,
                        const SimOptions& options) {
  OREO_CHECK(strategy != nullptr && registry != nullptr);
  SimResult result;
  result.method = strategy->name();
  if (options.record_trace) {
    result.cumulative.reserve(queries.size());
    result.serving_state.reserve(queries.size());
  }

  int physical_state = strategy->current_state();
  // Pending layout swaps: (effective query index, target state).
  std::deque<std::pair<size_t, int>> pending;

  for (size_t t = 0; t < queries.size(); ++t) {
    const Query& q = queries[t];

    // 1. Let the Layout Manager evolve the state space.
    int forced_switches = 0;
    if (manager != nullptr) {
      std::vector<ManagerEvent> events =
          manager->Observe(q, strategy->current_state());
      forced_switches = strategy->ApplyEvents(events);
    }

    // 2. Strategy decision for this query.
    bool switched = false;
    int logical_state = strategy->OnQuery(q, &switched);

    int switches_now = forced_switches + (switched ? 1 : 0);
    if (switches_now > 0) {
      result.reorg_cost += options.alpha * switches_now;
      result.num_switches += switches_now;
      result.switch_events.emplace_back(static_cast<int64_t>(t),
                                        physical_state, logical_state);
      pending.emplace_back(t + options.reorg_delay, logical_state);
    }

    // 3. Background reorganizations that have completed take effect.
    while (!pending.empty() && pending.front().first <= t) {
      physical_state = pending.front().second;
      pending.pop_front();
    }

    // 4. Serve the query on the physically current layout.
    result.query_cost += registry->Cost(physical_state, q);

    if (options.record_trace) {
      result.cumulative.push_back(result.total_cost());
      result.serving_state.push_back(physical_state);
    }
  }
  result.final_live_states = registry->num_live();
  return result;
}

}  // namespace core
}  // namespace oreo
