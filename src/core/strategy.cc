#include "core/strategy.h"

#include <algorithm>

#include "common/logging.h"

namespace oreo {
namespace core {

// ---------------------------------------------------------------- OREO ----

namespace {

mts::DumtsOptions WithMidPhase(mts::DumtsOptions options,
                               MidPhasePolicy policy) {
  // kReplay is realized in the strategy (it owns the query history); the
  // underlying algorithm only distinguishes defer vs immediate-with-counter.
  options.mid_phase_admission = (policy == MidPhasePolicy::kMedianCounter)
                                    ? mts::MidPhaseAdmission::kMedianCounter
                                    : mts::MidPhaseAdmission::kDefer;
  return options;
}

}  // namespace

OreoStrategy::OreoStrategy(const StateRegistry* registry, int initial_state,
                           const mts::DumtsOptions& options,
                           MidPhasePolicy mid_phase)
    : registry_(registry),
      mid_phase_(mid_phase),
      dumts_(WithMidPhase(options, mid_phase), registry->live(),
             initial_state) {}

int OreoStrategy::ApplyEvents(const std::vector<ManagerEvent>& events) {
  int forced = 0;
  for (const ManagerEvent& e : events) {
    if (e.kind == ManagerEvent::Kind::kAdded) {
      if (mid_phase_ == MidPhasePolicy::kReplay) {
        // SIV-C: fill in the counter as if the state had served every query
        // of the current phase so far.
        double counter = 0.0;
        for (const Query& q : phase_queries_) {
          counter += StateCost(e.state, q);
        }
        dumts_.AddStateWithCounter(e.state, counter);
      } else {
        dumts_.AddState(e.state);
      }
    } else {
      auto decision = dumts_.RemoveState(e.state);
      if (decision.has_value() && decision->switched) ++forced;
    }
  }
  return forced;
}

int OreoStrategy::OnQuery(const Query& query, bool* switched) {
  mts::DumtsDecision d = dumts_.OnQuery(
      [this, &query](mts::StateId s) { return StateCost(s, query); });
  *switched = d.switched;
  if (mid_phase_ == MidPhasePolicy::kReplay) {
    if (d.phase_reset) {
      // The deciding query's costs were absorbed by the *old* phase; the new
      // phase starts with empty counters, so the history restarts empty.
      phase_queries_.clear();
    } else {
      phase_queries_.push_back(query);
    }
  }
  return d.serve_state;
}

// -------------------------------------------------------------- Greedy ----

GreedyStrategy::GreedyStrategy(const StateRegistry* registry,
                               const LayoutManager* manager, int initial_state)
    : registry_(registry), manager_(manager), current_(initial_state) {}

int GreedyStrategy::ApplyEvents(const std::vector<ManagerEvent>& events) {
  for (const ManagerEvent& e : events) {
    if (e.kind == ManagerEvent::Kind::kRemoved && e.state == current_) {
      // Our layout was evicted (should not happen: the manager protects the
      // current state) — fall back to the best live state.
      OREO_CHECK(false) << "current state evicted from under Greedy";
    }
    if (e.kind != ManagerEvent::Kind::kAdded) continue;
    // Compare the newcomer with the current layout on the recent window and
    // switch whenever it is better, regardless of reorganization cost.
    std::vector<Query> window = manager_->WindowQueries();
    if (window.empty()) continue;
    double cand = registry_->MeanCost(e.state, window);
    double cur = registry_->MeanCost(current_, window);
    if (cand < cur) {
      current_ = e.state;
      pending_switch_ = true;
    }
  }
  return 0;  // charged via *switched on the next OnQuery
}

int GreedyStrategy::OnQuery(const Query& query, bool* switched) {
  (void)query;
  *switched = pending_switch_;
  pending_switch_ = false;
  return current_;
}

// -------------------------------------------------------------- Regret ----

RegretStrategy::RegretStrategy(const StateRegistry* registry, double alpha,
                               int initial_state)
    : registry_(registry), alpha_(alpha), current_(initial_state) {}

void RegretStrategy::ResetHistory() {
  history_.clear();
  savings_.clear();
  for (int id : registry_->live()) {
    if (id != current_) savings_[id] = 0.0;
  }
}

int RegretStrategy::ApplyEvents(const std::vector<ManagerEvent>& events) {
  for (const ManagerEvent& e : events) {
    if (e.kind == ManagerEvent::Kind::kAdded) {
      // Retroactively score the newcomer against all queries serviced on the
      // current layout (paper SVI-A3).
      double saving = 0.0;
      for (const Query& q : history_) {
        saving += registry_->Cost(current_, q) - registry_->Cost(e.state, q);
      }
      savings_[e.state] = saving;
    } else {
      savings_.erase(e.state);
      OREO_CHECK(e.state != current_) << "current state evicted under Regret";
    }
  }
  return 0;
}

int RegretStrategy::OnQuery(const Query& query, bool* switched) {
  *switched = false;
  // Accumulate this query into every alternative's cumulative saving.
  double cur_cost = registry_->Cost(current_, query);
  int best = -1;
  double best_saving = 0.0;
  for (auto& [id, saving] : savings_) {
    saving += cur_cost - registry_->Cost(id, query);
    if (saving > best_saving) {
      best_saving = saving;
      best = id;
    }
  }
  history_.push_back(query);
  if (best >= 0 && best_saving > alpha_) {
    current_ = best;
    *switched = true;
    ResetHistory();
  }
  return current_;
}

// --------------------------------------------------------- MTS-Optimal ----

MtsOptimalStrategy::MtsOptimalStrategy(const StateRegistry* registry,
                                       std::vector<int> states,
                                       int initial_state,
                                       const mts::DumtsOptions& options)
    : registry_(registry),
      states_(std::move(states)),
      dumts_(options, states_, initial_state) {}

int MtsOptimalStrategy::OnQuery(const Query& query, bool* switched) {
  mts::DumtsDecision d = dumts_.OnQuery(
      [this, &query](mts::StateId s) { return registry_->Cost(s, query); });
  *switched = d.switched;
  return d.serve_state;
}

// ----------------------------------------------------- Offline-Optimal ----

OfflineOptimalStrategy::OfflineOptimalStrategy(
    std::vector<int> template_state, const workloads::Workload* workload)
    : template_state_(std::move(template_state)), workload_(workload) {
  OREO_CHECK(workload_ != nullptr);
  OREO_CHECK(!workload_->queries.empty());
  current_ = template_state_[static_cast<size_t>(
      workload_->queries.front().template_id)];
}

int OfflineOptimalStrategy::OnQuery(const Query& query, bool* switched) {
  int want = template_state_[static_cast<size_t>(query.template_id)];
  *switched = (want != current_);
  current_ = want;
  return current_;
}

// ------------------------------------------------------------- helpers ----

std::vector<int> BuildPerTemplateStates(
    const Table& table, const Table& dataset_sample,
    const std::vector<workloads::QueryTemplate>& templates,
    const LayoutGenerator& generator, uint32_t target_partitions,
    size_t queries_per_template, uint64_t seed, StateRegistry* registry) {
  std::vector<int> state_ids;
  state_ids.reserve(templates.size());
  Rng rng(seed);
  for (size_t t = 0; t < templates.size(); ++t) {
    std::vector<Query> sample;
    sample.reserve(queries_per_template);
    for (size_t i = 0; i < queries_per_template; ++i) {
      Query q = templates[t].instantiate(&rng);
      q.template_id = static_cast<int>(t);
      sample.push_back(std::move(q));
    }
    std::unique_ptr<Layout> layout =
        generator.Generate(dataset_sample, sample, target_partitions);
    std::shared_ptr<const Layout> shared(std::move(layout));
    LayoutInstance instance = Materialize(
        "template:" + templates[t].name + ":" + generator.name(), shared,
        table);
    state_ids.push_back(registry->Add(std::move(instance)));
  }
  return state_ids;
}

}  // namespace core
}  // namespace oreo
