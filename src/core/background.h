// Background reorganization (paper SIII-B): "reorganization happens via a
// separate process in the background using a (partial) copy of the data and
// queries are still serviced on the existing data layout while
// reorganization is in progress. After reorganization is completed, the new
// layout is swapped with the existing layout."
//
// ReorgPool generalizes that single background process to a sharded store:
// a fixed set of worker threads executes PhysicalStore reorganizations with
// at most one in flight *per shard* — concurrent across shards, still
// strictly serialized within a shard (each shard keeps the paper's
// one-background-process contract for its own data). The foreground keeps
// executing queries against per-shard snapshots (PhysicalStore::GetSnapshot
// / ExecuteQueryOnSnapshot) and refreshes them at batch boundaries when a
// shard's generation() advances.
//
// Shutdown ordering: destroying the pool *discards* jobs that are queued but
// not yet started — their completion callbacks are destroyed unfired — and
// joins the workers, so a running job's callback always fires before the
// destructor returns and no callback can ever run after the pool is gone.
// Owners must therefore destroy the pool before anything a callback touches
// (declare it after the engines/stores it serves). Submit during or after
// shutdown returns false instead of enqueueing work that could outlive the
// owner.
//
// BackgroundReorganizer is the legacy single-store facade: a 1-worker,
// 1-shard pool with the PR 3 API, kept so unsharded callers and the seed
// tests keep working unchanged (and inherit the shutdown fix).
#ifndef OREO_CORE_BACKGROUND_H_
#define OREO_CORE_BACKGROUND_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/physical.h"

namespace oreo {
namespace core {

/// Shared asynchronous executor for per-shard layout rewrites.
class ReorgPool {
 public:
  /// Spawns `num_workers` worker threads (0 = one per hardware core).
  /// Concurrent reorganizations are bounded by min(workers, shards with
  /// submitted work).
  explicit ReorgPool(size_t num_workers);
  /// Discards queued-but-unstarted jobs, waits for running ones, joins.
  ~ReorgPool();

  ReorgPool(const ReorgPool&) = delete;
  ReorgPool& operator=(const ReorgPool&) = delete;

  /// One reorganization request. `store`, `table` and `target` must outlive
  /// the run; `shard` only identifies the serialization domain (any id works,
  /// ids need not be dense).
  struct Job {
    uint32_t shard = 0;
    PhysicalStore* store = nullptr;
    const Table* table = nullptr;
    const LayoutInstance* target = nullptr;
    /// Runs on the worker right after the layout swap (success or failure),
    /// before the shard reports idle — a concurrent Submit for the same
    /// shard cannot start until it returns. Discarded unfired if the job is
    /// still queued when the pool shuts down.
    std::function<void(const Status&)> on_done;
    /// Test hook: runs on the worker right before the reorganization.
    std::function<void()> on_start;
  };

  /// Requests a reorganization. Returns false — and does nothing — if the
  /// job's shard already has a reorganization queued or running, or if the
  /// pool is shutting down.
  bool Submit(Job job);

  /// True while `shard` has a reorganization queued or running.
  bool busy(uint32_t shard) const;

  /// Blocks until `shard` has no queued or running reorganization.
  void Wait(uint32_t shard);

  /// Blocks until no shard has queued or running work.
  void WaitAll();

  /// Monotonic count of completed reorganizations of `shard` (successful or
  /// not). A foreground batch loop polls this between batches: an unchanged
  /// value proves its snapshot is still that shard's current layout.
  uint64_t generation(uint32_t shard) const;

  /// Status of `shard`'s most recently completed reorganization.
  Status last_status(uint32_t shard) const;

  struct Stats {
    int64_t completed = 0;       ///< successful reorganizations, all shards
    int64_t discarded = 0;       ///< jobs dropped unstarted at shutdown
    double total_seconds = 0.0;  ///< summed wall clock of successful runs
  };
  Stats stats() const;

  /// High-water mark of simultaneously running reorganizations — the
  /// stress/bench evidence that per-shard rewrites really overlap.
  size_t max_concurrent_observed() const;

  size_t num_workers() const { return workers_.size(); }

 private:
  struct ShardState {
    bool queued = false;
    bool running = false;
    uint64_t generation = 0;
    Status last_status;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes workers on submit/shutdown
  std::condition_variable idle_cv_;  // wakes Wait/WaitAll on completion
  std::deque<Job> queue_;
  std::unordered_map<uint32_t, ShardState> shards_;
  bool shutdown_ = false;
  size_t running_now_ = 0;
  size_t max_concurrent_ = 0;
  Stats stats_;
  std::vector<std::thread> workers_;
};

/// Asynchronous executor for a single unsharded store (legacy facade over a
/// one-worker ReorgPool).
class BackgroundReorganizer {
 public:
  /// `store` and `table` must outlive this object.
  BackgroundReorganizer(PhysicalStore* store, const Table* table);

  /// Requests a reorganization into `target` (which must outlive the run).
  /// Returns false if one is already in flight — mirroring the single
  /// background process of the paper's setup.
  bool Submit(const LayoutInstance* target);

  /// Submit with a completion hook: `on_done` runs on the worker thread
  /// right after the layout swap (success or failure), before the
  /// reorganizer reports idle. Batch drivers use it to learn the exact
  /// point after which a fresh GetSnapshot() sees the new layout. A job
  /// still queued at destruction is discarded and its hook never fires
  /// (see the ReorgPool shutdown contract).
  bool Submit(const LayoutInstance* target,
              std::function<void(const Status&)> on_done);

  /// True while a reorganization is running or queued.
  bool busy() const { return pool_.busy(0); }

  /// Blocks until the in-flight reorganization (if any) has completed.
  void Wait() { pool_.Wait(0); }

  /// Monotonic count of completed reorganizations (successful or not).
  uint64_t generation() const { return pool_.generation(0); }

  struct Stats {
    int64_t completed = 0;
    double total_seconds = 0.0;
  };
  Stats stats() const;

  /// Status of the most recently completed reorganization.
  Status last_status() const { return pool_.last_status(0); }

  /// Points future Submits at a new source table. The live-ingest fold swaps
  /// the engine's base table; jobs capture the table pointer at Submit, so
  /// this is safe whenever the reorganizer is idle (the fold quiesces it
  /// first). `table` must outlive subsequent runs.
  void set_table(const Table* table) { table_ = table; }

 private:
  PhysicalStore* store_;
  const Table* table_;
  ReorgPool pool_;
};

}  // namespace core
}  // namespace oreo

#endif  // OREO_CORE_BACKGROUND_H_
