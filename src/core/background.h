// Background reorganization (paper SIII-B): "reorganization happens via a
// separate process in the background using a (partial) copy of the data and
// queries are still serviced on the existing data layout while
// reorganization is in progress. After reorganization is completed, the new
// layout is swapped with the existing layout."
//
// BackgroundReorganizer owns a worker thread that runs PhysicalStore
// reorganizations; the foreground keeps executing queries against a snapshot
// of the outgoing layout (PhysicalStore::GetSnapshot /
// ExecuteQueryOnSnapshot). One reorganization may be in flight at a time.
#ifndef OREO_CORE_BACKGROUND_H_
#define OREO_CORE_BACKGROUND_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "core/physical.h"

namespace oreo {
namespace core {

/// Asynchronous executor for layout rewrites.
class BackgroundReorganizer {
 public:
  /// `store` and `table` must outlive this object.
  BackgroundReorganizer(PhysicalStore* store, const Table* table);
  /// Joins the worker (waits for any in-flight reorganization).
  ~BackgroundReorganizer();

  BackgroundReorganizer(const BackgroundReorganizer&) = delete;
  BackgroundReorganizer& operator=(const BackgroundReorganizer&) = delete;

  /// Requests a reorganization into `target` (which must outlive the run).
  /// Returns false if one is already in flight — mirroring the single
  /// background process of the paper's setup.
  bool Submit(const LayoutInstance* target);

  /// Submit with a completion hook: `on_done` runs on the worker thread
  /// right after the layout swap (success or failure), before the
  /// reorganizer reports idle. Batch drivers use it to learn the exact
  /// point after which a fresh GetSnapshot() sees the new layout.
  bool Submit(const LayoutInstance* target,
              std::function<void(const Status&)> on_done);

  /// True while a reorganization is running or queued.
  bool busy() const;

  /// Blocks until the in-flight reorganization (if any) has completed.
  void Wait();

  /// Monotonic count of completed reorganizations (successful or not).
  /// A foreground batch loop polls this between batches: an unchanged value
  /// proves its snapshot is still the store's current layout, a changed one
  /// says re-snapshot (and Vacuum once no reader can hold old files).
  uint64_t generation() const;

  struct Stats {
    int64_t completed = 0;
    double total_seconds = 0.0;
  };
  Stats stats() const;

  /// Status of the most recently completed reorganization.
  Status last_status() const;

 private:
  void WorkerLoop();

  PhysicalStore* store_;
  const Table* table_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const LayoutInstance* pending_ = nullptr;  // queued target
  std::function<void(const Status&)> pending_callback_;
  bool running_ = false;                     // a reorg is executing
  bool shutdown_ = false;
  uint64_t generation_ = 0;  // completed reorganizations, success or not
  Stats stats_;
  Status last_status_;
  std::thread worker_;
};

}  // namespace core
}  // namespace oreo

#endif  // OREO_CORE_BACKGROUND_H_
